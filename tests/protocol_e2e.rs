//! End-to-end protocol tests: NP and N2 over the in-memory multicast hub
//! with receive-side fault injection — the full stack from application
//! bytes through wire format, suppression, parity repair and reassembly.

use std::time::Duration;

use parity_multicast::net::{FaultConfig, FaultyTransport, MemHub};
use parity_multicast::protocol::n2::{N2Receiver, N2Sender};
use parity_multicast::protocol::runtime::{
    drive_receiver, drive_sender, ReceiverReport, RuntimeConfig, SessionReport,
};
use parity_multicast::protocol::{CompletionPolicy, NpConfig, NpReceiver, NpSender, ProtocolError};

fn rt() -> RuntimeConfig {
    RuntimeConfig {
        packet_spacing: Duration::from_micros(50),
        stall_timeout: Duration::from_secs(20),
        complete_linger: Duration::from_millis(250),
        ..RuntimeConfig::default()
    }
}

fn payload(n: usize) -> Vec<u8> {
    (0..n)
        .map(|i| (i.wrapping_mul(2654435761) >> 9) as u8)
        .collect()
}

fn np_config(receivers: u32, k: usize, h: usize) -> NpConfig {
    let mut c = NpConfig::small(CompletionPolicy::KnownReceivers(receivers));
    c.k = k;
    c.h = h;
    c.payload_len = 512;
    c.nak_slot = 0.001;
    c.round_timeout = 0.05;
    c
}

/// Run one NP session: sender thread + `receivers` lossy receivers.
fn run_np(
    data: &[u8],
    cfg: NpConfig,
    receivers: u32,
    drop: f64,
    seed: u64,
) -> (SessionReport, Vec<ReceiverReport>) {
    let hub = MemHub::new();
    let session = 7000 + seed as u32;
    let handles: Vec<_> = (0..receivers)
        .map(|id| {
            let ep = hub.join();
            std::thread::spawn(move || {
                let mut tp =
                    FaultyTransport::new(ep, FaultConfig::drop_only(drop), seed + id as u64);
                let mut m = NpReceiver::new(id, session, 0.001, seed + id as u64);
                drive_receiver(&mut m, &mut tp, &rt()).expect("receiver failed")
            })
        })
        .collect();
    let mut sender_tp = hub.join();
    let mut sender = NpSender::new(session, data, cfg).expect("sender config");
    let sr = drive_sender(&mut sender, &mut sender_tp, &rt()).expect("sender failed");
    let rrs = handles
        .into_iter()
        .map(|h| h.join().expect("receiver thread"))
        .collect();
    (sr, rrs)
}

/// Run one N2 session with the same topology.
fn run_n2(
    data: &[u8],
    cfg: NpConfig,
    receivers: u32,
    drop: f64,
    seed: u64,
) -> (SessionReport, Vec<ReceiverReport>) {
    let hub = MemHub::new();
    let session = 8000 + seed as u32;
    let handles: Vec<_> = (0..receivers)
        .map(|id| {
            let ep = hub.join();
            std::thread::spawn(move || {
                let mut tp =
                    FaultyTransport::new(ep, FaultConfig::drop_only(drop), seed + id as u64);
                let mut m = N2Receiver::new(id, session, 0.001, seed + id as u64);
                drive_receiver(&mut m, &mut tp, &rt()).expect("receiver failed")
            })
        })
        .collect();
    let mut sender_tp = hub.join();
    let mut sender = N2Sender::new(session, data, cfg).expect("sender config");
    let sr = drive_sender(&mut sender, &mut sender_tp, &rt()).expect("sender failed");
    let rrs = handles
        .into_iter()
        .map(|h| h.join().expect("receiver thread"))
        .collect();
    (sr, rrs)
}

#[test]
fn np_delivers_under_moderate_loss() {
    let data = payload(100_000);
    let (sr, rrs) = run_np(&data, np_config(3, 20, 100), 3, 0.10, 1);
    for r in &rrs {
        assert_eq!(r.data, data);
    }
    assert!(
        sr.counters.repairs_sent > 0,
        "10% loss must trigger parity repair"
    );
}

#[test]
fn np_delivers_under_heavy_loss() {
    let data = payload(40_000);
    let (_, rrs) = run_np(&data, np_config(4, 10, 200), 4, 0.30, 2);
    for r in &rrs {
        assert_eq!(r.data, data);
        assert!(
            r.counters.packets_decoded > 0,
            "30% loss must exercise decoding"
        );
    }
}

#[test]
fn np_efficiency_close_to_analytical_bound() {
    // The flagship check: the live protocol's E[M] should land near the
    // paper's Eq. (6) lower bound for the same (k, p, R).
    let data = payload(200_000);
    let (k, receivers, drop) = (20usize, 3u32, 0.10);
    let (sr, _) = run_np(&data, np_config(receivers, k, 120), receivers, drop, 3);
    let m =
        (sr.counters.data_sent + sr.counters.repairs_sent) as f64 / sr.counters.data_sent as f64;
    let bound = parity_multicast::analysis::integrated::lower_bound(
        k,
        0,
        &parity_multicast::analysis::Population::homogeneous(drop, receivers as u64),
    );
    assert!(
        m < bound * 1.35,
        "protocol E[M] = {m:.3} too far above the analytical bound {bound:.3}"
    );
    assert!(m >= 1.0);
}

#[test]
fn np_beats_n2_on_repair_traffic() {
    // The paper's core claim, live on the wire: with several receivers
    // losing independently, parity repair needs fewer retransmissions
    // than N2's per-packet originals.
    let data = payload(150_000);
    let (receivers, drop) = (4u32, 0.15);
    let (np, np_rrs) = run_np(&data, np_config(receivers, 20, 120), receivers, drop, 4);
    let (n2, _) = run_n2(&data, np_config(receivers, 20, 0), receivers, drop, 4);
    assert!(
        np.counters.repairs_sent < n2.counters.repairs_sent,
        "NP repairs {} must undercut N2 repairs {}",
        np.counters.repairs_sent,
        n2.counters.repairs_sent
    );
    // And NP's receivers see almost no unnecessary repairs compared to the
    // repair volume N2 multicasts past uninterested receivers.
    let np_unneeded: u64 = np_rrs.iter().map(|r| r.counters.unneeded_receptions).sum();
    assert!(
        np_unneeded <= np.counters.repairs_sent * receivers as u64,
        "sanity: unneeded {np_unneeded}"
    );
}

#[test]
fn n2_delivers_under_loss() {
    let data = payload(60_000);
    let (_, rrs) = run_n2(&data, np_config(2, 10, 0), 2, 0.15, 5);
    for r in &rrs {
        assert_eq!(r.data, data);
    }
}

#[test]
fn preencoded_np_transfers_identically() {
    let data = payload(50_000);
    let mut cfg = np_config(2, 10, 30);
    cfg.preencode = true;
    let (sr, rrs) = run_np(&data, cfg, 2, 0.15, 6);
    for r in &rrs {
        assert_eq!(r.data, data);
    }
    // All parities were encoded upfront.
    assert!(sr.counters.parities_encoded >= 30);
}

#[test]
fn proactive_parities_reduce_feedback() {
    let data = payload(80_000);
    let mut reactive = np_config(3, 10, 50);
    reactive.proactive_parity = 0;
    let mut proactive = np_config(3, 10, 50);
    proactive.proactive_parity = 3;
    let (r0, _) = run_np(&data, reactive, 3, 0.12, 7);
    let (r1, _) = run_np(&data, proactive, 3, 0.12, 7);
    assert!(
        r1.counters.feedback_received < r0.counters.feedback_received,
        "a = 3 proactive parities should absorb most round-1 losses: {} vs {}",
        r1.counters.feedback_received,
        r0.counters.feedback_received
    );
}

#[test]
fn quiescence_completion_without_done() {
    // Quiescence mode must finish even though nobody reports Done.
    let data = payload(10_000);
    let mut cfg = np_config(1, 7, 20);
    cfg.completion = CompletionPolicy::Quiescence(0.2);
    let hub = MemHub::new();
    let mut sender_tp = hub.join();
    let recv = {
        let ep = hub.join();
        std::thread::spawn(move || {
            let mut tp = FaultyTransport::new(ep, FaultConfig::none(), 1);
            let mut m = NpReceiver::new(0, 7008, 0.001, 8);
            drive_receiver(&mut m, &mut tp, &rt()).expect("receiver failed")
        })
    };
    let mut sender = NpSender::new(7008, &data, cfg).expect("config");
    let sr = drive_sender(&mut sender, &mut sender_tp, &rt()).expect("sender");
    let rr = recv.join().unwrap();
    assert_eq!(rr.data, data);
    assert!(
        sr.elapsed >= Duration::from_millis(180),
        "must wait out the quiet period"
    );
}

#[test]
fn tiny_transfers() {
    for len in [1usize, 10, 511, 512, 513] {
        let data = payload(len);
        let (_, rrs) = run_np(&data, np_config(1, 7, 20), 1, 0.05, 100 + len as u64);
        assert_eq!(rrs[0].data, data, "len={len}");
    }
}

#[test]
fn empty_transfer_completes() {
    let (_, rrs) = run_np(&[], np_config(1, 7, 20), 1, 0.0, 9);
    assert!(rrs[0].data.is_empty());
}

#[test]
fn duplicate_and_reordered_packets_tolerated() {
    let data = payload(30_000);
    let hub = MemHub::new();
    let session = 7010;
    let cfg = np_config(1, 10, 40);
    let handle = {
        let ep = hub.join();
        std::thread::spawn(move || {
            let faults = FaultConfig {
                drop: 0.10,
                duplicate: 0.10,
                reorder: 0.10,
                ..FaultConfig::none()
            };
            let mut tp = FaultyTransport::new(ep, faults, 11);
            let mut m = NpReceiver::new(0, session, 0.001, 11);
            drive_receiver(&mut m, &mut tp, &rt()).expect("receiver failed")
        })
    };
    let mut sender_tp = hub.join();
    let mut sender = NpSender::new(session, &data, cfg).expect("config");
    drive_sender(&mut sender, &mut sender_tp, &rt()).expect("sender");
    let rr = handle.join().unwrap();
    assert_eq!(rr.data, data);
}

#[test]
fn receiver_without_sender_stalls_cleanly() {
    let hub = MemHub::new();
    let mut tp = hub.join();
    let mut m = NpReceiver::new(0, 1, 0.001, 1);
    let fast = RuntimeConfig {
        packet_spacing: Duration::from_micros(50),
        stall_timeout: Duration::from_millis(100),
        complete_linger: Duration::from_millis(50),
        ..RuntimeConfig::default()
    };
    match drive_receiver(&mut m, &mut tp, &fast) {
        Err(ProtocolError::Stalled { .. }) => {}
        other => panic!("expected stall, got {other:?}"),
    }
}

#[test]
fn many_receivers_single_nak_suppression_works() {
    // With 8 receivers on a lossless hub plus one lossy receiver, polls
    // should mostly be answered by at most one NAK thanks to damping.
    let data = payload(50_000);
    let (sr, rrs) = run_np(&data, np_config(8, 20, 100), 8, 0.08, 12);
    for r in &rrs {
        assert_eq!(r.data, data);
    }
    let suppressed: u64 = rrs.iter().map(|r| r.counters.feedback_suppressed).sum();
    let sent: u64 = rrs.iter().map(|r| r.counters.feedback_sent).sum();
    assert!(
        suppressed > 0,
        "8 receivers at 8% loss must overhear and suppress some NAKs (sent {sent})"
    );
    assert!(
        sr.counters.feedback_received < sent + 50,
        "sender sees bounded feedback"
    );
}
