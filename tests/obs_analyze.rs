//! `obs-analyze` end-to-end: a deterministic 16-receiver NP session under
//! the virtual-time harness produces a JSONL trace whose *measured* E\[M\]
//! (transmissions per distinct data packet) lands within 5% of the
//! `pm-analysis` analytical prediction at the same `(k, h, R, p)` — the
//! paper's Figure-4 claim recovered from a live trace rather than the
//! simulator. The trace is also written to `target/obs_smoke.jsonl` so CI
//! can re-run the comparison through the `obs-analyze` binary itself.
//!
//! A second test pins windowed telemetry as a *pure function of the event
//! set*: replaying the same trace in a different order (the worst case of
//! any worker-count change in a parallel producer) yields byte-identical
//! exported gauges.

use std::sync::Arc;

use parity_multicast::analysis::{integrated, Population};
use parity_multicast::loss::IndependentLoss;
use parity_multicast::obs::{
    analyze_trace, Event, Obs, Recorder, RingRecorder, WindowConfig, WindowTelemetry,
};
use parity_multicast::protocol::harness::{run_simulation, HarnessConfig};
use parity_multicast::protocol::{CompletionPolicy, NpConfig, NpReceiver, NpSender};

const SESSION: u32 = 0xE16;
const RECEIVERS: usize = 16;
const K: usize = 8;
const H: usize = 40;
const GROUPS: usize = 300;
const PAYLOAD: usize = 32;
const LOSS_P: f64 = 0.03;

/// Run the deterministic 16-receiver session and return the trace as
/// `(t, event)` pairs, including a leading `session_config`.
fn traced_session() -> Vec<(f64, Event)> {
    let ring = Arc::new(RingRecorder::new(1 << 18));
    let obs = Obs::new(ring.clone());
    obs.emit(0.0, || Event::SessionConfig {
        session: SESSION,
        k: K as u32,
        h: H as u32,
        receivers: RECEIVERS as u32,
        loss: LOSS_P,
        backend: pm_simd::backend_name(),
    });

    let data: Vec<u8> = (0..GROUPS * K * PAYLOAD)
        .map(|i| (i.wrapping_mul(2654435761) >> 5) as u8)
        .collect();
    let mut cfg = NpConfig::small(CompletionPolicy::KnownReceivers(RECEIVERS as u32));
    cfg.k = K;
    cfg.h = H;
    cfg.payload_len = PAYLOAD;
    cfg.nak_slot = 0.002;

    let mut sender = NpSender::new(SESSION, &data, cfg)
        .expect("valid config")
        .with_obs(obs.clone());
    let mut receivers: Vec<NpReceiver> = (0..RECEIVERS)
        .map(|id| NpReceiver::new(id as u32, SESSION, 0.002, id as u64).with_obs(obs.clone()))
        .collect();
    let mut loss = IndependentLoss::new(RECEIVERS, LOSS_P, 0xA11CE);
    let report = run_simulation(
        &mut sender,
        &mut receivers,
        &mut loss,
        &HarnessConfig::default(),
    )
    .expect("session completes");
    assert_eq!(report.completed, RECEIVERS, "all receivers must finish");
    assert_eq!(ring.evicted(), 0, "ring must hold the complete trace");
    ring.events()
}

fn render_jsonl(events: &[(f64, Event)]) -> String {
    let mut out = String::new();
    for (t, e) in events {
        let line = serde_json::to_string(&e.to_json(*t)).expect("render event");
        out.push_str(&line);
        out.push('\n');
    }
    out
}

#[test]
fn measured_em_matches_analysis_within_5_percent() {
    let events = traced_session();
    let text = render_jsonl(&events);
    // Leave the trace behind for the CI `obs-analyze` smoke run.
    std::fs::create_dir_all("target").expect("target dir");
    std::fs::write("target/obs_smoke.jsonl", &text).expect("write smoke trace");

    let ta = analyze_trace(&text).expect("trace validates");
    let (id, sess) = ta.sole_session().expect("exactly one session");
    assert_eq!(id, SESSION);
    assert_eq!(sess.data_packets, (GROUPS * K) as u64);
    assert!(sess.completed, "trace must show a completed session");

    let cfg = sess.config.clone().expect("session_config recorded");
    assert_eq!((cfg.k, cfg.h, cfg.receivers), (K as u32, H as u32, 16));
    assert_eq!(cfg.backend.as_deref(), Some(pm_simd::backend_name()));

    let measured = sess.measured_em().expect("measurable E[M]");
    let pop = Population::homogeneous(LOSS_P, RECEIVERS as u64);
    let analytic = integrated::finite(K, H, 0, &pop);
    let dev = (measured - analytic).abs() / analytic;
    assert!(
        dev < 0.05,
        "measured E[M] {measured:.4} deviates {:.1}% from analytic {analytic:.4}",
        dev * 100.0
    );

    // Everyone finished under homogeneous loss: fairness near 1.
    let fairness = sess.fairness().expect("fairness defined");
    assert!(fairness > 0.9, "Jain index {fairness:.3} unexpectedly low");
}

#[test]
fn windowed_gauges_are_order_independent() {
    let events = traced_session();

    let forward = Arc::new(WindowTelemetry::new(WindowConfig::default()));
    for (t, e) in &events {
        forward.record(*t, e);
    }

    // Interleave from both ends — a deliberately hostile reordering far
    // worse than any real worker-count change can produce.
    let shuffled = Arc::new(WindowTelemetry::new(WindowConfig::default()));
    let mut lo = 0usize;
    let mut hi = events.len();
    let mut from_front = false;
    while lo < hi {
        let (t, e) = if from_front {
            lo += 1;
            &events[lo - 1]
        } else {
            hi -= 1;
            &events[hi]
        };
        shuffled.record(*t, e);
        from_front = !from_front;
    }

    assert_eq!(
        forward.export_gauges(),
        shuffled.export_gauges(),
        "windowed gauges must be a pure function of the event set"
    );
}
