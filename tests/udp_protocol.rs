//! Protocol NP over *real* UDP multicast sockets (kernel loopback path).
//! Skips gracefully (with a note) on hosts without multicast support.

use std::net::{Ipv4Addr, SocketAddrV4};
use std::time::Duration;

use parity_multicast::net::udp::UdpHub;
use parity_multicast::net::{FaultConfig, FaultyTransport};
use parity_multicast::protocol::runtime::{drive_receiver, drive_sender, RuntimeConfig};
use parity_multicast::protocol::{CompletionPolicy, NpConfig, NpReceiver, NpSender};

fn try_hub(port: u16) -> Option<UdpHub> {
    match UdpHub::join(SocketAddrV4::new(Ipv4Addr::new(239, 255, 77, 2), port)) {
        Ok(h) => Some(h),
        Err(e) => {
            eprintln!("skipping UDP protocol test: {e}");
            None
        }
    }
}

fn rt() -> RuntimeConfig {
    RuntimeConfig {
        packet_spacing: Duration::from_micros(100),
        stall_timeout: Duration::from_secs(20),
        complete_linger: Duration::from_millis(250),
        ..RuntimeConfig::default()
    }
}

#[test]
fn np_over_udp_with_loss() {
    let Some(hub) = try_hub(46011) else { return };
    let data: Vec<u8> = (0..120_000usize)
        .map(|i| (i.wrapping_mul(97) >> 3) as u8)
        .collect();
    let session = 0xD06;
    let receivers = 3u32;
    let mut cfg = NpConfig::small(CompletionPolicy::KnownReceivers(receivers));
    cfg.k = 20;
    cfg.h = 120;
    cfg.payload_len = 1024;
    cfg.nak_slot = 0.002;
    cfg.round_timeout = 0.1;

    let handles: Vec<_> = (0..receivers)
        .map(|id| {
            let ep = hub.endpoint().expect("endpoint");
            std::thread::spawn(move || {
                let mut tp =
                    FaultyTransport::new(ep, FaultConfig::drop_only(0.10), 0xFACE + id as u64);
                let mut m = NpReceiver::new(id, session, 0.002, id as u64);
                drive_receiver(&mut m, &mut tp, &rt()).expect("receiver failed")
            })
        })
        .collect();

    let mut sender_tp = hub.endpoint().expect("endpoint");
    let mut sender = NpSender::new(session, &data, cfg).expect("config");
    let sr = drive_sender(&mut sender, &mut sender_tp, &rt()).expect("sender failed");
    for (id, h) in handles.into_iter().enumerate() {
        let rr = h.join().expect("receiver thread");
        assert_eq!(rr.data, data, "receiver {id}");
    }
    assert!(
        sr.counters.repairs_sent > 0,
        "10% loss must exercise parity repair on UDP"
    );
    // Self-delivery tolerance: the sender heard its own packets and
    // ignored them without protocol errors (we got here).
}

#[test]
fn n2_over_udp_lossless() {
    use parity_multicast::protocol::n2::{N2Receiver, N2Sender};
    let Some(hub) = try_hub(46013) else { return };
    let data: Vec<u8> = (0..30_000usize).map(|i| (i * 13 % 251) as u8).collect();
    let session = 0xD07;
    let mut cfg = NpConfig::small(CompletionPolicy::KnownReceivers(1));
    cfg.k = 10;
    cfg.h = 0; // N2 has no parities; keep k + h within the block limit
    cfg.payload_len = 512;

    let handle = {
        let ep = hub.endpoint().expect("endpoint");
        std::thread::spawn(move || {
            let mut tp = FaultyTransport::new(ep, FaultConfig::none(), 5);
            let mut m = N2Receiver::new(0, session, 0.001, 5);
            drive_receiver(&mut m, &mut tp, &rt()).expect("receiver failed")
        })
    };
    let mut sender_tp = hub.endpoint().expect("endpoint");
    let mut sender = N2Sender::new(session, &data, cfg).expect("config");
    drive_sender(&mut sender, &mut sender_tp, &rt()).expect("sender failed");
    assert_eq!(handle.join().unwrap().data, data);
}

#[test]
fn two_sessions_share_one_group() {
    // Session ids isolate concurrent transfers on the same multicast
    // group address.
    let Some(hub) = try_hub(46015) else { return };
    let data_a: Vec<u8> = vec![0xAA; 20_000];
    let data_b: Vec<u8> = vec![0xBB; 15_000];
    let mut cfg = NpConfig::small(CompletionPolicy::KnownReceivers(1));
    cfg.k = 10;
    cfg.h = 40;
    cfg.payload_len = 512;

    let mk_receiver = |session: u32, seed: u64| {
        let ep = hub.endpoint().expect("endpoint");
        std::thread::spawn(move || {
            let mut tp = FaultyTransport::new(ep, FaultConfig::drop_only(0.05), seed);
            let mut m = NpReceiver::new(seed as u32, session, 0.002, seed);
            drive_receiver(&mut m, &mut tp, &rt()).expect("receiver failed")
        })
    };
    let ra = mk_receiver(1, 100);
    let rb = mk_receiver(2, 200);

    let cfg_b = cfg.clone();
    let hub_b = hub.endpoint().expect("endpoint");
    let db = data_b.clone();
    let sb = std::thread::spawn(move || {
        let mut t = hub_b;
        let mut s = NpSender::new(2, &db, cfg_b).expect("config");
        drive_sender(&mut s, &mut t, &rt()).expect("sender b failed")
    });
    let mut ta = hub.endpoint().expect("endpoint");
    let mut sa = NpSender::new(1, &data_a, cfg).expect("config");
    drive_sender(&mut sa, &mut ta, &rt()).expect("sender a failed");
    sb.join().unwrap();

    assert_eq!(ra.join().unwrap().data, data_a);
    assert_eq!(rb.join().unwrap().data, data_b);
}
