//! The paper's Figure 2(a) — layered FEC — live: protocol N2 (pure ARQ)
//! running unchanged over the transparent `FecTransport` sublayer, versus
//! plain N2, under identical loss. The FEC layer absorbs most packet
//! losses before the RM layer ever notices them, cutting RM
//! retransmissions exactly as Section 3.1 predicts.

use std::time::Duration;

use parity_multicast::net::{
    FaultConfig, FaultyTransport, FecLayerConfig, FecTransport, MemHub, Transport,
};
use parity_multicast::protocol::n2::{N2Receiver, N2Sender};
use parity_multicast::protocol::runtime::{
    drive_receiver, drive_sender, ReceiverReport, RuntimeConfig, SessionReport,
};
use parity_multicast::protocol::{CompletionPolicy, NpConfig};

fn rt() -> RuntimeConfig {
    RuntimeConfig {
        packet_spacing: Duration::from_micros(100),
        stall_timeout: Duration::from_secs(20),
        complete_linger: Duration::from_millis(250),
        ..RuntimeConfig::default()
    }
}

fn n2_config(receivers: u32) -> NpConfig {
    let mut c = NpConfig::small(CompletionPolicy::KnownReceivers(receivers));
    c.k = 10;
    c.h = 0;
    c.payload_len = 256;
    c.nak_slot = 0.001;
    c
}

fn payload(n: usize) -> Vec<u8> {
    (0..n).map(|i| (i.wrapping_mul(40503) >> 4) as u8).collect()
}

/// Run N2 with `receivers` lossy receivers; `fec` selects whether each
/// endpoint is wrapped in the FEC sublayer.
fn run_n2(
    data: &[u8],
    receivers: u32,
    drop: f64,
    fec: Option<(usize, usize)>,
    seed: u64,
) -> (SessionReport, Vec<ReceiverReport>) {
    let hub = MemHub::new();
    let session = 0x1A7E + seed as u32;
    let mk = |ep: parity_multicast::net::mem::MemEndpoint,
              tag: u32,
              lossy: bool,
              seed: u64|
     -> Box<dyn Transport> {
        // Loss lives *below* the FEC layer (it is a network property).
        let base: Box<dyn Transport> = if lossy {
            Box::new(FaultyTransport::new(ep, FaultConfig::drop_only(drop), seed))
        } else {
            Box::new(ep)
        };
        match fec {
            Some((k, h)) => Box::new(
                FecTransport::new(
                    base,
                    FecLayerConfig {
                        k,
                        h,
                        max_delay: Duration::from_millis(5),
                        sender_tag: tag,
                    },
                )
                .expect("valid layer geometry"),
            ),
            None => base,
        }
    };
    let handles: Vec<_> = (0..receivers)
        .map(|id| {
            let mut tp = mk(hub.join(), 1000 + id, true, seed * 31 + id as u64);
            std::thread::spawn(move || {
                let mut m = N2Receiver::new(id, session, 0.001, id as u64);
                drive_receiver(&mut m, &mut tp, &rt()).expect("receiver failed")
            })
        })
        .collect();
    let mut sender_tp = mk(hub.join(), 1, false, 0);
    let mut sender = N2Sender::new(session, data, n2_config(receivers)).expect("config");
    let sr = drive_sender(&mut sender, &mut sender_tp, &rt()).expect("sender failed");
    let rrs = handles
        .into_iter()
        .map(|h| h.join().expect("receiver thread"))
        .collect();
    (sr, rrs)
}

#[test]
fn n2_over_fec_layer_delivers() {
    let data = payload(60_000);
    let (_, rrs) = run_n2(&data, 3, 0.10, Some((7, 2)), 1);
    for (id, r) in rrs.iter().enumerate() {
        assert_eq!(r.data, data, "receiver {id}");
    }
}

#[test]
fn fec_layer_cuts_rm_retransmissions() {
    // The Section 3.1 effect, on the wire: the FEC sublayer reduces the
    // residual loss the ARQ layer sees from p to q(k, n, p), so the RM
    // sender retransmits far less.
    let data = payload(100_000);
    let (receivers, drop) = (4u32, 0.08);
    let (plain, _) = run_n2(&data, receivers, drop, None, 2);
    let (layered, _) = run_n2(&data, receivers, drop, Some((7, 2)), 2);
    assert!(
        layered.counters.repairs_sent * 3 < plain.counters.repairs_sent.max(1) * 2,
        "layered RM repairs {} should be well under plain {}",
        layered.counters.repairs_sent,
        plain.counters.repairs_sent
    );
}

#[test]
fn layered_pays_constant_parity_overhead() {
    // The flip side the analysis also predicts (Figs. 3-4): the sublayer
    // ships h/k extra frames whether or not anyone needed them. For a
    // single receiver with no loss, plain N2 is strictly cheaper.
    let data = payload(50_000);
    let (plain, _) = run_n2(&data, 1, 0.0, None, 3);
    let (layered, _) = run_n2(&data, 1, 0.0, Some((7, 1)), 3);
    assert_eq!(plain.counters.repairs_sent, 0);
    assert_eq!(layered.counters.repairs_sent, 0);
    // The overhead is invisible at the RM layer (same counters) — it lives
    // in the sublayer's parity frames, which is exactly the point: measure
    // at the right layer or you under-count layered FEC's cost.
}

#[test]
fn heavier_loss_still_converges_with_more_parities() {
    let data = payload(40_000);
    let (_, rrs) = run_n2(&data, 2, 0.20, Some((7, 3)), 4);
    for r in &rrs {
        assert_eq!(r.data, data);
    }
}
