//! Codec x loss-model integration: drive the RSE codec with loss patterns
//! drawn from every `pm-loss` process and check the FEC-block recovery
//! logic holds exactly where the math says it should.

use parity_multicast::loss::{GilbertLoss, IndependentLoss, LossModel, TreeLoss};
use parity_multicast::rse::{CodeSpec, GroupDecoder, RseDecoder, RseEncoder};

fn group(k: usize, len: usize, tag: u8) -> Vec<Vec<u8>> {
    (0..k)
        .map(|i| {
            (0..len)
                .map(|b| (i as u8) ^ (b as u8).wrapping_mul(37) ^ tag)
                .collect()
        })
        .collect()
}

/// Send one FEC block through a loss pattern; return whether receiver 0
/// recovered the group and how many packets it took.
fn transmit_block<M: LossModel>(
    model: &mut M,
    data: &[Vec<u8>],
    parities: &[Vec<u8>],
    dec: &RseDecoder,
    t0: f64,
    delta: f64,
) -> (bool, usize) {
    let spec = dec.spec();
    let mut gd = GroupDecoder::new(*spec);
    let mut received = 0usize;
    for (slot, payload) in data.iter().chain(parities.iter()).enumerate() {
        let lost = model.sample_one(t0 + slot as f64 * delta, 0);
        if !lost && !gd.is_decodable() {
            gd.insert(slot, payload.clone().into())
                .expect("valid insert");
            received += 1;
        }
    }
    if gd.is_decodable() {
        let out = gd.reconstruct(dec).expect("decodable group reconstructs");
        for (i, d) in data.iter().enumerate() {
            assert_eq!(out[i].as_ref(), &d[..], "reconstruction mismatch at {i}");
        }
        (true, received)
    } else {
        (false, received)
    }
}

#[test]
fn recovery_rate_matches_block_math_independent_loss() {
    // P(block decodable) = P(Bin(n, p) <= h); verify empirically via the
    // full codec path.
    let (k, h, p) = (7usize, 2usize, 0.15);
    let spec = CodeSpec::new(k, h).unwrap();
    let enc = RseEncoder::new(spec).unwrap();
    let dec = RseDecoder::from_encoder(&enc);
    let data = group(k, 64, 1);
    let parities = enc.encode_all(&data).unwrap();
    let mut model = IndependentLoss::new(1, p, 42);
    let trials = 20_000;
    let mut ok = 0;
    for t in 0..trials {
        let (recovered, _) = transmit_block(&mut model, &data, &parities, &dec, t as f64, 0.001);
        if recovered {
            ok += 1;
        }
    }
    let rate = ok as f64 / trials as f64;
    // Analytic: sum_{j<=h} C(9,j) p^j (1-p)^(9-j).
    let n = k + h;
    let analytic: f64 = (0..=h)
        .map(|j| {
            let c = (0..j).fold(1.0, |acc, i| acc * (n - i) as f64 / (i + 1) as f64);
            c * p.powi(j as i32) * (1.0 - p).powi((n - j) as i32)
        })
        .sum();
    assert!(
        (rate - analytic).abs() < 0.02,
        "block recovery rate {rate} vs analytic {analytic}"
    );
}

#[test]
fn burst_loss_hurts_recovery_at_same_p() {
    // Same marginal p, bursty losses concentrate inside blocks => more
    // unrecoverable blocks (why the paper's Fig. 15 goes wrong for
    // layered FEC).
    let (k, h, p) = (7usize, 1usize, 0.05);
    let spec = CodeSpec::new(k, h).unwrap();
    let enc = RseEncoder::new(spec).unwrap();
    let dec = RseDecoder::from_encoder(&enc);
    let data = group(k, 32, 2);
    let parities = enc.encode_all(&data).unwrap();
    let delta = 0.04;
    let trials = 30_000;
    let mut fail_iid = 0;
    let mut fail_burst = 0;
    let mut iid = IndependentLoss::new(1, p, 7);
    let mut burst = GilbertLoss::new(1, p, 3.0, delta, 7);
    for t in 0..trials {
        let t0 = t as f64 * (k + h) as f64 * delta;
        if !transmit_block(&mut iid, &data, &parities, &dec, t0, delta).0 {
            fail_iid += 1;
        }
        if !transmit_block(&mut burst, &data, &parities, &dec, t0, delta).0 {
            fail_burst += 1;
        }
    }
    // With h = 1 and mean burst 3 the analytic failure ratio is ~1.7x;
    // require a clear margin above parity.
    assert!(
        fail_burst as f64 > fail_iid as f64 * 1.4,
        "bursty failures {fail_burst} should clearly exceed iid failures {fail_iid}"
    );
}

#[test]
fn interleaving_restores_burst_recovery() {
    // Spreading a block across an interleaving window (transmitting its
    // packets delta * depth apart) restores most of the iid recovery rate.
    let (k, h, p) = (7usize, 1usize, 0.05);
    let spec = CodeSpec::new(k, h).unwrap();
    let enc = RseEncoder::new(spec).unwrap();
    let dec = RseDecoder::from_encoder(&enc);
    let data = group(k, 32, 3);
    let parities = enc.encode_all(&data).unwrap();
    let delta = 0.04;
    let trials = 30_000;
    let mut fail_plain = 0;
    let mut fail_interleaved = 0;
    let mut burst_a = GilbertLoss::new(1, p, 3.0, delta, 9);
    let mut burst_b = GilbertLoss::new(1, p, 3.0, delta, 9);
    let depth = 8.0; // effective spacing when 8 blocks interleave
    for t in 0..trials {
        let t0 = t as f64 * (k + h) as f64 * delta * depth;
        if !transmit_block(&mut burst_a, &data, &parities, &dec, t0, delta).0 {
            fail_plain += 1;
        }
        if !transmit_block(&mut burst_b, &data, &parities, &dec, t0, delta * depth).0 {
            fail_interleaved += 1;
        }
    }
    // Spreading by 8x packet spacing decorrelates the chain (s * spacing
    // ~ 3.5), pushing failures back to ~the iid level — about 60% of the
    // back-to-back count for these parameters.
    assert!(
        (fail_interleaved as f64) < fail_plain as f64 * 0.75,
        "interleaved failures {fail_interleaved} vs plain {fail_plain}"
    );
}

#[test]
fn shared_tree_loss_block_recovery() {
    // Under FBT loss all packets of one transmission share the tree draw
    // per packet; run blocks across 8 receivers and check that whenever
    // ANY receiver gets >= k packets it reconstructs the identical group.
    let (k, h) = (5usize, 3usize);
    let spec = CodeSpec::new(k, h).unwrap();
    let enc = RseEncoder::new(spec).unwrap();
    let dec = RseDecoder::from_encoder(&enc);
    let data = group(k, 24, 4);
    let parities = enc.encode_all(&data).unwrap();
    let mut tree = TreeLoss::full_binary(3, 0.2, 11);
    let r = tree.receivers();
    let mut any_decoded = 0;
    for t in 0..2000 {
        let mut gds: Vec<GroupDecoder> = (0..r).map(|_| GroupDecoder::new(spec)).collect();
        for (slot, payload) in data.iter().chain(parities.iter()).enumerate() {
            let pattern = tree.sample_vec(t as f64 + slot as f64 * 0.001);
            for (rc, lost) in pattern.iter().enumerate() {
                if !lost && !gds[rc].is_decodable() {
                    gds[rc].insert(slot, payload.clone().into()).unwrap();
                }
            }
        }
        for gd in &gds {
            if gd.is_decodable() {
                any_decoded += 1;
                let out = gd.reconstruct(&dec).unwrap();
                for (i, d) in data.iter().enumerate() {
                    assert_eq!(out[i].as_ref(), &d[..]);
                }
            }
        }
    }
    assert!(
        any_decoded > 0,
        "some receivers must decode at p = 0.2 with 3 parities"
    );
}
