//! The pm-mux determinism contract under `PM_SIMD=auto` dispatch.
//!
//! `tests/mux_sessions.rs` pins mux transcripts against the blocking
//! drivers under whatever backend the ambient environment selects; this
//! binary forces `PM_SIMD=auto` before the first kernel dispatch (env
//! overrides are memoized process-wide, hence the dedicated test binary)
//! and re-runs the 32-session byte-identity sweep, so the vectorized
//! kernels are proven to leave every wire byte exactly where the scalar
//! reference puts it — end to end through encode, NAK repair and decode.

use std::time::Duration;

use parity_multicast::mux::{Mux, MuxConfig, VirtualClock};
use parity_multicast::net::{MemHub, Transcript, TranscriptTransport};
use parity_multicast::protocol::runtime::{
    drive_receiver, drive_sender, ReceiverReport, RuntimeConfig, SessionReport,
};
use parity_multicast::protocol::{CompletionPolicy, NpConfig, NpReceiver, NpSender};
use parity_multicast::rse::{CodeSpec, RseEncoder};
use parity_multicast::simd::{kernels_for, Backend};

fn np_cfg() -> NpConfig {
    let mut c = NpConfig::small(CompletionPolicy::KnownReceivers(1));
    c.k = 8;
    c.h = 40;
    c.payload_len = 128;
    c.nak_slot = 0.001;
    c
}

fn rt() -> RuntimeConfig {
    RuntimeConfig {
        packet_spacing: Duration::from_micros(50),
        stall_timeout: Duration::from_secs(5),
        complete_linger: Duration::from_millis(250),
        ..RuntimeConfig::default()
    }
}

fn pair_payload(i: u32) -> Vec<u8> {
    (0..1800 + 111 * i as usize)
        .map(|x| (x.wrapping_mul(2654435761) >> 11) as u8)
        .collect()
}

fn run_pair_blocking(
    i: u32,
    data: &[u8],
    rt: RuntimeConfig,
) -> (Transcript, Transcript, SessionReport, ReceiverReport) {
    let hub = MemHub::new();
    let mut sender_tp = TranscriptTransport::new(hub.join());
    let mut receiver_tp = TranscriptTransport::new(hub.join());
    let sender_log = sender_tp.transcript();
    let receiver_log = receiver_tp.transcript();
    let mut sender = NpSender::new(i, data, np_cfg()).expect("valid config");
    let handle = std::thread::spawn(move || {
        drive_sender(&mut sender, &mut sender_tp, &rt).expect("blocking sender")
    });
    let mut receiver = NpReceiver::new(1000 + i, i, 0.001, i as u64);
    let receiver_report =
        drive_receiver(&mut receiver, &mut receiver_tp, &rt).expect("blocking receiver");
    let sender_report = handle.join().expect("sender thread");
    let sent = sender_log.lock().clone();
    let received = receiver_log.lock().clone();
    (sent, received, sender_report, receiver_report)
}

#[test]
fn mux_transcripts_stay_byte_identical_under_auto_dispatch() {
    std::env::set_var(parity_multicast::simd::ENV_VAR, "auto");
    let backend = parity_multicast::simd::kernels().backend();
    assert_eq!(
        backend,
        Backend::detect(),
        "auto must resolve to the detected backend"
    );

    // GF arithmetic is exact, so whichever backend auto picked, parities
    // must equal the scalar reference byte-for-byte before any protocol
    // bytes move.
    let spec = CodeSpec::new(8, 4).expect("valid spec");
    let auto_enc = RseEncoder::new(spec).expect("auto encoder");
    let scalar_enc = RseEncoder::with_kernels(
        spec,
        kernels_for(Backend::Scalar).expect("scalar always available"),
    )
    .expect("scalar encoder");
    let group: Vec<Vec<u8>> = (0..8)
        .map(|i| pair_payload(i as u32)[..128].to_vec())
        .collect();
    assert_eq!(
        auto_enc.encode_all(&group).expect("auto parities"),
        scalar_enc.encode_all(&group).expect("scalar parities"),
        "{backend} parities diverged from scalar"
    );

    const PAIRS: u32 = 16; // 32 sessions

    let mut mux = Mux::new(MuxConfig::default(), VirtualClock::new());
    let mut logs = Vec::new();
    for i in 0..PAIRS {
        let hub = MemHub::new();
        let data = pair_payload(i);
        let sender_tp = TranscriptTransport::new(hub.join());
        let receiver_tp = TranscriptTransport::new(hub.join());
        logs.push((sender_tp.transcript(), receiver_tp.transcript()));
        mux.add_sender(
            NpSender::new(i, &data, np_cfg()).expect("valid config"),
            sender_tp,
            rt(),
        );
        mux.add_receiver(
            NpReceiver::new(1000 + i, i, 0.001, i as u64),
            receiver_tp,
            rt(),
        );
    }
    let outcomes = mux.run();
    assert_eq!(outcomes.len(), 2 * PAIRS as usize);

    for (i, (sender_log, receiver_log)) in logs.iter().enumerate() {
        let (blk_sent, blk_received, _, blk_r) =
            run_pair_blocking(i as u32, &pair_payload(i as u32), rt());
        let mux_sent = sender_log.lock().clone();
        let mux_received = receiver_log.lock().clone();
        assert_eq!(
            mux_sent, blk_sent,
            "pair {i}: sender transcript diverged under {backend}"
        );
        assert_eq!(
            mux_received, blk_received,
            "pair {i}: receiver transcript diverged under {backend}"
        );
        assert_eq!(
            blk_r.data,
            pair_payload(i as u32),
            "pair {i}: blocking receiver bytes"
        );
    }
}
