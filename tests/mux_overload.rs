//! Integration tests for the overload-robust session farm:
//!
//! 1. **Real-UDP farm** — 512 sessions (256 sender/receiver pairs) share
//!    ONE UDP socket on ONE driver thread, demultiplexed by the wire-v2
//!    session id, and every transfer completes with byte-identical data.
//! 2. **Load shedding** — under a sustained 2×+ budget overload the mux
//!    sheds deterministically: typed [`SessionOutcome::Shed`] reports
//!    with postmortems, identical victim sets across identical runs, and
//!    exact reconciliation between the driver ledger, the metrics
//!    counter, and the trace census.
//! 3. **Survivor fidelity** — sessions that are NOT shed produce wire
//!    transcripts byte-identical to an unloaded run of the same machines.
//! 4. **Admission control** — typed refusals at the session cap and past
//!    the utilization high-water mark.
//! 5. **Stale farm traffic** — datagrams from finished (or shed)
//!    sessions are counted and dropped, never resurrect state.
//! 6. **Churn soak** — generations of sessions join, leave and rejoin
//!    under chaos for over a virtual hour; memory stays bounded, every
//!    outcome lands in the tetrachotomy (clean / degraded / shed / typed
//!    error), and the shed ledger reconciles exactly.

use std::sync::{Arc, Mutex as StdMutex};
use std::time::Duration;

use parity_multicast::mux::{
    AdmissionError, Mux, MuxClock, MuxConfig, OverloadConfig, SessionOutcome, VirtualClock,
    WallClock,
};
use parity_multicast::net::{
    ChaosPreset, FarmEndpoint, FarmHub, FarmRole, FaultyTransport, MemHub, Message, PollTransport,
    TranscriptTransport,
};
use parity_multicast::obs::{analyze_trace, JsonlRecorder, MetricsRegistry, Obs, Postmortem};
use parity_multicast::protocol::runtime::RuntimeConfig;
use parity_multicast::protocol::{
    CompletionPolicy, NpConfig, NpReceiver, NpSender, ResiliencePolicy,
};

fn np_cfg() -> NpConfig {
    let mut c = NpConfig::small(CompletionPolicy::KnownReceivers(1));
    c.k = 8;
    c.h = 40;
    c.payload_len = 128;
    c.nak_slot = 0.001;
    c
}

fn rt() -> RuntimeConfig {
    RuntimeConfig {
        packet_spacing: Duration::from_micros(50),
        stall_timeout: Duration::from_secs(5),
        complete_linger: Duration::from_millis(250),
        ..RuntimeConfig::default()
    }
}

fn payload(n: usize) -> Vec<u8> {
    (0..n)
        .map(|i| (i.wrapping_mul(2654435761) >> 11) as u8)
        .collect()
}

/// A `Write` sink the test can read back after the mux consumed the
/// recorder — the in-memory stand-in for a `--trace` file.
#[derive(Clone, Default)]
struct SharedBuf(Arc<StdMutex<Vec<u8>>>);

impl SharedBuf {
    fn text(&self) -> String {
        String::from_utf8(self.0.lock().expect("buf lock").clone()).expect("utf8 trace")
    }
}

impl std::io::Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().expect("buf lock").extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

// ---------------------------------------------------------------- farm

#[test]
fn farm_of_512_sessions_completes_over_one_udp_socket() {
    const PAIRS: u32 = 256; // 512 sessions, one socket, one thread

    let hub = FarmHub::loopback().expect("loopback farm socket");
    let mut mux: Mux<FarmEndpoint, WallClock> = Mux::new(MuxConfig::default(), WallClock::new());
    let mut receivers = Vec::new();
    for i in 0..PAIRS {
        let data = payload(220 + 4 * i as usize);
        mux.add_sender(
            NpSender::new(i, &data, np_cfg()).expect("valid config"),
            hub.endpoint(i, FarmRole::Sender).expect("sender endpoint"),
            rt(),
        );
        let r_tok = mux.add_receiver(
            NpReceiver::new(1000 + i, i, 0.001, i as u64),
            hub.endpoint(i, FarmRole::Receiver)
                .expect("receiver endpoint"),
            rt(),
        );
        receivers.push((r_tok, data));
    }
    assert_eq!(hub.len(), 2 * PAIRS as usize);

    let outcomes = mux.run();
    assert_eq!(outcomes.len(), 2 * PAIRS as usize);
    assert!(mux.is_empty());
    for (tok, out) in &outcomes {
        assert!(out.is_ok(), "farm session {tok:?} failed: {:?}", out.err());
    }
    for (r_tok, data) in &receivers {
        let rep = outcomes
            .iter()
            .find_map(|(t, o)| (t == r_tok).then(|| o.receiver_report().expect("receiver ok")))
            .expect("receiver outcome");
        assert_eq!(&rep.data, data, "farm receiver bytes");
    }
    // Session endpoints dropped with their sessions; the hub is empty and
    // never hit a fatal socket error.
    assert!(hub.is_empty(), "all endpoints deregistered");
}

#[test]
fn late_farm_datagrams_for_ended_sessions_are_counted_not_resurrected() {
    let hub = FarmHub::loopback().expect("loopback farm socket");
    let mut mux: Mux<FarmEndpoint, WallClock> = Mux::new(MuxConfig::default(), WallClock::new());
    let data = payload(600);
    mux.add_sender(
        NpSender::new(3, &data, np_cfg()).expect("valid config"),
        hub.endpoint(3, FarmRole::Sender).expect("sender endpoint"),
        rt(),
    );
    let r_tok = mux.add_receiver(
        NpReceiver::new(30, 3, 0.001, 9),
        hub.endpoint(3, FarmRole::Receiver)
            .expect("receiver endpoint"),
        rt(),
    );
    let outcomes = mux.run();
    let rep = outcomes
        .iter()
        .find_map(|(t, o)| (*t == r_tok).then(|| o.receiver_report().expect("receiver ok")))
        .expect("receiver outcome");
    assert_eq!(rep.data, data);
    assert!(hub.is_empty(), "session endpoints retired with the session");

    // A straggler from the finished session arrives late. Keep one live
    // endpoint as the pump that drains the shared socket.
    let mut pump = hub
        .endpoint(999, FarmRole::Receiver)
        .expect("pump endpoint");
    let before = hub.stats().unknown_session;
    hub.inject_raw(&Message::Fin { session: 3 }.encode())
        .expect("inject stale datagram");
    // pm-audit: allow(determinism-time): test polls a real socket
    let deadline = std::time::Instant::now() + Duration::from_secs(2);
    while hub.stats().unknown_session == before {
        assert_eq!(pump.poll_recv().expect("pump poll"), None);
        assert!(
            std::time::Instant::now() < deadline,
            "stale datagram was never counted"
        );
        std::thread::sleep(Duration::from_micros(200));
    }
    // The retired session did not resurrect: re-registering starts clean.
    let mut fresh = hub
        .endpoint(3, FarmRole::Receiver)
        .expect("clean re-register");
    assert_eq!(fresh.poll_recv().expect("fresh poll"), None, "no backlog");
}

// ------------------------------------------------------------ shedding

/// Run `pairs` clean MemHub pairs under `overload`, tracing and metering,
/// and return (outcomes, shed signature, trace text, metrics registry,
/// shed ledger count).
#[allow(clippy::type_complexity)]
fn shed_run(
    pairs: u32,
    overload: OverloadConfig,
) -> (
    Vec<SessionOutcome>,
    Vec<(u32, String)>,
    String,
    MetricsRegistry,
    u64,
) {
    let buf = SharedBuf::default();
    let reg = MetricsRegistry::new();
    let cfg = MuxConfig {
        flight_capacity: Some(128),
        overload: Some(overload),
        ..MuxConfig::default()
    };
    let mut mux: Mux<Box<dyn PollTransport>, VirtualClock> = Mux::new(cfg, VirtualClock::new())
        .with_obs(Obs::new(Arc::new(JsonlRecorder::new(buf.clone()))));
    mux.bind_metrics(&reg);
    for i in 0..pairs {
        let hub = MemHub::new();
        let data = payload(900 + 37 * i as usize);
        mux.add_sender(
            NpSender::new(i, &data, np_cfg()).expect("valid config"),
            Box::new(hub.join()),
            rt(),
        );
        mux.add_receiver(
            NpReceiver::new(1000 + i, i, 0.001, i as u64),
            Box::new(hub.join()),
            rt(),
        );
    }
    let outcomes = mux.run();
    let mut signature: Vec<(u32, String)> = outcomes
        .iter()
        .filter_map(|(_, o)| o.shed_report())
        .map(|r| (r.session, format!("{:?}", r.role)))
        .collect();
    signature.sort();
    let shed_count = mux.shed_count();
    (
        outcomes.into_iter().map(|(_, o)| o).collect(),
        signature,
        buf.text(),
        reg,
        shed_count,
    )
}

fn overload_cfg() -> OverloadConfig {
    OverloadConfig {
        high_water: 0.5,
        drive_budget: 8,
        sustain_turns: 4,
        max_shed_per_turn: 2,
        alpha: 0.5,
        seed: 0xC4A0_7000,
        ..OverloadConfig::default()
    }
}

#[test]
fn sustained_overload_sheds_with_typed_reports_and_exact_reconciliation() {
    // 40 sessions against a drive budget of 8: a 5× overload.
    let (outcomes, signature, trace, reg, shed_count) = shed_run(20, overload_cfg());

    assert_eq!(
        outcomes.len(),
        40,
        "every session yields exactly one outcome"
    );
    let shed: Vec<_> = outcomes.iter().filter(|o| o.is_shed()).collect();
    assert!(!shed.is_empty(), "a 5× overload must shed");
    assert!(
        shed.len() < outcomes.len(),
        "shedding must stop once the load clears the high-water mark"
    );
    for o in &shed {
        let rep = o.shed_report().expect("shed report");
        assert!(rep.utilization > 0.5, "shed under saturation");
        let pm = rep.postmortem.as_ref().expect("shed postmortem");
        assert_eq!(pm.outcome, "shed");
        Postmortem::validate(&serde_json::from_str(&pm.to_string_json()).expect("parses"))
            .expect("schema-valid shed postmortem");
    }
    // Tetrachotomy: everything else ended in a typed report or error.
    for o in &outcomes {
        match o {
            SessionOutcome::Sender(_) | SessionOutcome::Receiver(_) | SessionOutcome::Shed(_) => {}
        }
    }

    // Exact reconciliation: outcome count == driver ledger == metrics
    // counter == trace census == analyzer shed-session ledger.
    assert_eq!(shed.len() as u64, shed_count, "ledger");
    assert_eq!(shed_count, reg.counter("mux.shed_sessions").get(), "metric");
    let ta = analyze_trace(&trace).expect("valid trace");
    assert_eq!(
        ta.census.get("mux_session_shed").copied().unwrap_or(0),
        shed_count,
        "census"
    );
    assert_eq!(ta.shed_sessions(), shed_count, "analyzer ledger");
    assert_eq!(
        ta.incidents
            .iter()
            .filter(|i| i.kind == "mux_session_shed")
            .count() as u64,
        shed_count,
        "incident timeline"
    );
    // The episode itself is on the timeline.
    assert!(ta.incidents.iter().any(|i| i.kind == "mux_overload"));
    assert!(!signature.is_empty());
}

#[test]
fn shedding_is_deterministic_across_identical_runs() {
    let (_, first, ..) = shed_run(20, overload_cfg());
    let (_, second, ..) = shed_run(20, overload_cfg());
    assert_eq!(first, second, "identical runs must shed identical victims");
}

#[test]
fn survivors_produce_transcripts_byte_identical_to_an_unloaded_run() {
    const PAIRS: u32 = 12;

    // Both runs share this farm builder; only the overload config differs.
    let run = |overload: Option<OverloadConfig>| {
        let cfg = MuxConfig {
            flight_capacity: Some(64),
            overload,
            ..MuxConfig::default()
        };
        let mut mux: Mux<Box<dyn PollTransport>, VirtualClock> = Mux::new(cfg, VirtualClock::new());
        let mut pairs = Vec::new();
        for i in 0..PAIRS {
            let hub = MemHub::new();
            let data = payload(1100 + 53 * i as usize);
            let sender_tp = TranscriptTransport::new(hub.join());
            let receiver_tp = TranscriptTransport::new(hub.join());
            let logs = (sender_tp.transcript(), receiver_tp.transcript());
            let s_tok = mux.add_sender(
                NpSender::new(i, &data, np_cfg()).expect("valid config"),
                Box::new(sender_tp),
                rt(),
            );
            let r_tok = mux.add_receiver(
                NpReceiver::new(1000 + i, i, 0.001, i as u64),
                Box::new(receiver_tp),
                rt(),
            );
            pairs.push((s_tok, r_tok, logs));
        }
        let outcomes = mux.run();
        (outcomes, pairs)
    };

    let overload = OverloadConfig {
        high_water: 0.6,
        drive_budget: 8,
        sustain_turns: 4,
        max_shed_per_turn: 2,
        alpha: 0.5,
        seed: 0xC4A0_8000,
        ..OverloadConfig::default()
    };
    let (loaded_outcomes, loaded_pairs) = run(Some(overload));
    let (unloaded_outcomes, unloaded_pairs) = run(None);
    assert!(
        unloaded_outcomes.iter().all(|(_, o)| o.is_ok()),
        "the unloaded run is the clean baseline"
    );

    let was_shed = |tok| {
        loaded_outcomes
            .iter()
            .any(|(t, o)| *t == tok && o.is_shed())
    };
    let mut survivors = 0;
    let mut shed_pairs = 0;
    for (i, ((s_tok, r_tok, loaded_logs), (_, _, unloaded_logs))) in
        loaded_pairs.iter().zip(&unloaded_pairs).enumerate()
    {
        if was_shed(*s_tok) || was_shed(*r_tok) {
            shed_pairs += 1;
            continue;
        }
        survivors += 1;
        assert_eq!(
            *loaded_logs.0.lock(),
            *unloaded_logs.0.lock(),
            "pair {i}: surviving sender transcript diverged under load"
        );
        assert_eq!(
            *loaded_logs.1.lock(),
            *unloaded_logs.1.lock(),
            "pair {i}: surviving receiver transcript diverged under load"
        );
    }
    assert!(shed_pairs > 0, "the overload run must actually shed");
    assert!(survivors > 0, "some pairs must survive intact");
}

// ----------------------------------------------------------- admission

#[test]
fn admission_is_refused_at_the_session_cap() {
    let overload = OverloadConfig {
        max_sessions: 4,
        ..OverloadConfig::default()
    };
    let cfg = MuxConfig {
        overload: Some(overload),
        ..MuxConfig::default()
    };
    let reg = MetricsRegistry::new();
    let mut mux: Mux<Box<dyn PollTransport>, VirtualClock> = Mux::new(cfg, VirtualClock::new());
    mux.bind_metrics(&reg);
    for i in 0..2u32 {
        let hub = MemHub::new();
        let data = payload(500);
        mux.try_add_sender(
            NpSender::new(i, &data, np_cfg()).expect("valid config"),
            Box::new(hub.join()),
            rt(),
        )
        .expect("under the cap");
        mux.try_add_receiver(
            NpReceiver::new(1000 + i, i, 0.001, i as u64),
            Box::new(hub.join()),
            rt(),
        )
        .expect("under the cap");
    }
    let hub = MemHub::new();
    match mux.try_add_sender(
        NpSender::new(9, &payload(100), np_cfg()).expect("valid config"),
        Box::new(hub.join()),
        rt(),
    ) {
        Err(AdmissionError::AtCapacity { limit }) => assert_eq!(limit, 4),
        other => panic!("expected AtCapacity, got {other:?}"),
    }
    assert_eq!(reg.counter("mux.admission_rejected").get(), 1);
    // The admitted population still completes.
    let outcomes = mux.run();
    assert_eq!(outcomes.len(), 4);
    assert!(outcomes.iter().all(|(_, o)| o.is_ok()));
}

#[test]
fn admission_is_refused_past_the_high_water_mark() {
    let overload = OverloadConfig {
        high_water: 0.4,
        drive_budget: 1,
        sustain_turns: u32::MAX, // admission control only — never shed
        alpha: 1.0,
        ..OverloadConfig::default()
    };
    let cfg = MuxConfig {
        overload: Some(overload),
        ..MuxConfig::default()
    };
    let mut mux: Mux<Box<dyn PollTransport>, VirtualClock> = Mux::new(cfg, VirtualClock::new());
    let hub = MemHub::new();
    let data = payload(1500);
    mux.try_add_sender(
        NpSender::new(1, &data, np_cfg()).expect("valid config"),
        Box::new(hub.join()),
        rt(),
    )
    .expect("fresh mux admits");
    mux.try_add_receiver(NpReceiver::new(10, 1, 0.001, 4), Box::new(hub.join()), rt())
        .expect("fresh mux admits");

    // Drive until a busy turn pushes the estimate past the mark.
    let mut saturated = false;
    for _ in 0..200 {
        mux.turn_once();
        if mux.utilization() > 0.4 {
            saturated = true;
            break;
        }
    }
    assert!(saturated, "a 1-drive budget must saturate within 200 turns");
    let late = MemHub::new();
    match mux.try_add_sender(
        NpSender::new(9, &payload(100), np_cfg()).expect("valid config"),
        Box::new(late.join()),
        rt(),
    ) {
        Err(AdmissionError::Saturated { utilization }) => assert!(utilization > 0.4),
        other => panic!("expected Saturated, got {other:?}"),
    }
}

// ---------------------------------------------------------- churn soak

#[test]
fn churn_soak_over_a_virtual_hour_stays_bounded_and_reconciles() {
    let overload = OverloadConfig {
        high_water: 0.7,
        max_sessions: 64,
        drive_budget: 6,
        sustain_turns: 4,
        max_shed_per_turn: 2,
        alpha: 0.5,
        seed: 0xC4A0_9000,
    };
    let cfg = MuxConfig {
        flight_capacity: Some(64),
        overload: Some(overload),
        ..MuxConfig::default()
    };
    let buf = SharedBuf::default();
    let reg = MetricsRegistry::new();
    let mut mux: Mux<Box<dyn PollTransport>, VirtualClock> = Mux::new(cfg, VirtualClock::new())
        .with_obs(Obs::new(Arc::new(JsonlRecorder::new(buf.clone()))));
    mux.bind_metrics(&reg);

    // The time burner: a sender nobody joins, with a long stall timeout —
    // each generation fast-forwards the virtual clock by two minutes.
    let burner_rt = RuntimeConfig {
        stall_timeout: Duration::from_secs(120),
        ..rt()
    };
    let chaos_rt = RuntimeConfig {
        resilience: ResiliencePolicy {
            eviction_timeout: Some(Duration::from_millis(500)),
            ..ResiliencePolicy::default()
        },
        ..rt()
    };

    let mut gen = 0u32;
    let mut clean = 0u64;
    let mut degraded = 0u64;
    let mut shed = 0u64;
    let mut errored = 0u64;
    let mut rejected = 0u64;

    while mux.clock().now() < 3600.0 {
        gen += 1;
        // Join: a wave of chaos pairs. Session ids 0..wave repeat every
        // generation — leave-and-rejoin of the same protocol sessions.
        // Every fourth generation is a burst that overloads the budget.
        let wave: u32 = if gen.is_multiple_of(4) { 12 } else { 3 };
        let mut gen_receivers = Vec::new();
        for j in 0..wave {
            let hub = MemHub::new();
            let preset = if j % 2 == 0 {
                ChaosPreset::Light
            } else {
                ChaosPreset::Heavy
            };
            let fault = preset.fault_config();
            let seed = (u64::from(gen) << 8) | u64::from(j);
            let data = payload(700 + 90 * j as usize);
            let s = mux.try_add_sender(
                NpSender::new(j, &data, np_cfg()).expect("valid config"),
                Box::new(FaultyTransport::new(hub.join(), fault, seed)),
                chaos_rt,
            );
            if s.is_err() {
                rejected += 1;
                continue;
            }
            match mux.try_add_receiver(
                NpReceiver::new(100 + j, j, 0.001, seed ^ 1),
                Box::new(FaultyTransport::new(hub.join(), fault, seed ^ 2)),
                chaos_rt,
            ) {
                Ok(r_tok) => gen_receivers.push((r_tok, data)),
                Err(_) => rejected += 1, // its sender will stall out: typed error
            }
        }
        if mux
            .try_add_sender(
                NpSender::new(50, &payload(400), np_cfg()).expect("valid config"),
                Box::new(MemHub::new().join()),
                burner_rt,
            )
            .is_err()
        {
            rejected += 1;
        }

        // Leave: drive the whole generation to completion.
        let mut turns = 0u64;
        while !mux.is_empty() {
            mux.turn_once();
            turns += 1;
            assert!(turns < 20_000_000, "generation {gen} hung");
        }
        // Bounded memory: a drained mux holds no sessions, no timers, and
        // the outcome/postmortem ledgers are emptied every generation.
        assert_eq!(mux.wheel_depth(), 0, "generation {gen}: timers leak");
        let outcomes = mux.take_outcomes();
        assert!(!outcomes.is_empty());
        let postmortems = mux.take_postmortems();
        assert!(
            postmortems.len() <= outcomes.len(),
            "generation {gen}: postmortem ledger outgrew its sessions"
        );
        for (tok, out) in &outcomes {
            match out {
                SessionOutcome::Receiver(Ok(rep)) => {
                    if let Some((_, data)) = gen_receivers.iter().find(|(t, _)| t == tok) {
                        assert_eq!(&rep.data, data, "gen {gen}: receiver bytes");
                    }
                    clean += 1;
                }
                SessionOutcome::Sender(Ok(rep)) => {
                    if rep.is_degraded() {
                        degraded += 1;
                    } else {
                        clean += 1;
                    }
                }
                SessionOutcome::Sender(Err(_)) | SessionOutcome::Receiver(Err(_)) => errored += 1,
                SessionOutcome::Shed(rep) => {
                    assert!(
                        rep.postmortem.is_some(),
                        "gen {gen}: shed without postmortem"
                    );
                    shed += 1;
                }
            }
        }
    }

    assert!(mux.clock().now() >= 3600.0, "a full virtual hour elapsed");
    assert!(gen >= 20, "the soak must churn many generations, got {gen}");
    assert!(clean > 0, "soak produced no clean sessions");
    assert!(shed > 0, "burst generations must trigger shedding");
    assert!(errored > 0, "every generation carries a stalling burner");

    // Exact reconciliation across all three ledgers, soak-wide.
    assert_eq!(shed, mux.shed_count(), "driver ledger");
    assert_eq!(shed, reg.counter("mux.shed_sessions").get(), "metric");
    assert_eq!(
        rejected,
        reg.counter("mux.admission_rejected").get(),
        "admission metric"
    );
    let ta = analyze_trace(&buf.text()).expect("soak trace validates");
    assert_eq!(
        ta.census.get("mux_session_shed").copied().unwrap_or(0),
        shed,
        "trace census"
    );
    let _ = degraded; // degradation is chaos-dependent; counted, not required
}
