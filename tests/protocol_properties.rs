//! Property-based tests of the protocol state machines: totality against
//! arbitrary message streams, and guaranteed convergence of deterministic
//! lossy exchanges (no wall clock, no threads — pure machine stepping).

use bytes::Bytes;
use proptest::prelude::*;

use parity_multicast::net::Message;
use parity_multicast::protocol::receiver::ReceiverAction;
use parity_multicast::protocol::sender::SenderStep;
use parity_multicast::protocol::{CompletionPolicy, NpConfig, NpReceiver, NpSender};

fn config(k: usize, h: usize) -> NpConfig {
    let mut c = NpConfig::small(CompletionPolicy::KnownReceivers(1));
    c.k = k;
    c.h = h;
    c.payload_len = 32;
    c.nak_slot = 0.001;
    c.round_timeout = 0.05;
    c
}

fn arbitrary_message() -> impl Strategy<Value = Message> {
    let session = 0u32..3;
    prop_oneof![
        (
            session.clone(),
            0u32..4,
            0u16..12,
            1u16..8,
            proptest::collection::vec(any::<u8>(), 0..40)
        )
            .prop_map(|(session, group, index, k, payload)| {
                let n = k + 4;
                Message::Packet {
                    session,
                    group,
                    index: index % n,
                    k,
                    n,
                    payload: Bytes::from(payload),
                }
            }),
        (session.clone(), 0u32..4, 0u16..30, 0u16..5).prop_map(|(session, group, sent, round)| {
            Message::Poll {
                session,
                group,
                sent,
                round,
            }
        }),
        (session.clone(), 0u32..4, 0u16..30, 0u16..5).prop_map(
            |(session, group, needed, round)| {
                Message::Nak {
                    session,
                    group,
                    needed,
                    round,
                }
            }
        ),
        (session.clone(), 0u32..4, 0u16..12).prop_map(|(session, group, index)| {
            Message::NakPacket {
                session,
                group,
                index,
            }
        }),
        (
            session.clone(),
            0u32..5,
            1u16..8,
            1u16..8,
            1u32..64,
            0u64..10_000
        )
            .prop_map(|(session, groups, k, last_k, payload_len, total_bytes)| {
                Message::Announce {
                    session,
                    groups,
                    k,
                    n: k + 4,
                    last_k: last_k.min(k),
                    payload_len,
                    total_bytes,
                }
            }),
        (session.clone(), 0u32..8)
            .prop_map(|(session, receiver)| Message::Done { session, receiver }),
        session.prop_map(|session| Message::Fin { session }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Arbitrary (even adversarial) message streams never panic the
    /// receiver; errors are returned, not thrown, and the machine stays
    /// usable afterwards for messages it accepts.
    #[test]
    fn receiver_total_against_arbitrary_streams(
        msgs in proptest::collection::vec(arbitrary_message(), 0..60),
        seed in any::<u64>(),
    ) {
        let mut rx = NpReceiver::new(1, 1, 0.001, seed);
        let mut t = 0.0f64;
        for m in &msgs {
            t += 0.001;
            let _ = rx.handle(m, t); // Err is acceptable; panic is not
            let _ = rx.on_timer(t);
        }
        let _ = rx.next_deadline();
        let _ = rx.is_complete();
    }

    /// Arbitrary feedback never panics the sender, and it never transmits
    /// a packet with an out-of-range FEC index.
    #[test]
    fn sender_total_against_arbitrary_feedback(
        msgs in proptest::collection::vec(arbitrary_message(), 0..60),
        data_len in 0usize..300,
        seed in any::<u64>(),
    ) {
        let data: Vec<u8> = (0..data_len).map(|i| (i as u64 ^ seed) as u8).collect();
        let mut tx = NpSender::new(1, &data, config(3, 5)).unwrap();
        let mut t = 0.0f64;
        for m in &msgs {
            t += 0.001;
            let _ = tx.handle(m, t);
            for _ in 0..3 {
                match tx.next_step(t) {
                    SenderStep::Transmit(Message::Packet { index, n, .. }) => {
                        prop_assert!(index < n, "index {index} >= n {n}");
                    }
                    SenderStep::Transmit(_) => {}
                    SenderStep::WaitUntil(_) | SenderStep::Finished => break,
                }
            }
        }
    }

    /// Deterministic lossy exchange always converges: drop packets by an
    /// arbitrary boolean pattern (re-used cyclically), rely on polls,
    /// NAKs and announces, and the receiver must end complete with the
    /// exact payload in bounded steps.
    #[test]
    fn lossy_exchange_always_converges(
        data_len in 1usize..400,
        drops in proptest::collection::vec(any::<bool>(), 16..128),
        seed in any::<u64>(),
    ) {
        let data: Vec<u8> = (0..data_len).map(|i| (i * 17 + 3) as u8).collect();
        let mut tx = NpSender::new(9, &data, config(4, 8)).unwrap();
        let mut rx = NpReceiver::new(0, 9, 0.001, seed);
        let mut drop_iter = drops.iter().cycle();
        let mut now = 0.0f64;
        let mut complete = false;
        let mut to_sender: Vec<Message> = Vec::new();
        // Generous step bound: every step advances time by 1 ms; the
        // machines must converge long before the bound.
        for _ in 0..40_000 {
            now += 0.001;
            // Sender turn: up to one transmission per tick.
            match tx.next_step(now) {
                SenderStep::Transmit(msg) => {
                    // Drop *data-plane* packets by the pattern; control
                    // messages get through (their loss is exercised by the
                    // e2e fault-injection tests; dropping every message
                    // class by an adversarial pattern could starve the
                    // exchange forever, which is not a protocol bug).
                    let dropped = matches!(msg, Message::Packet { .. })
                        && *drop_iter.next().unwrap();
                    if !dropped {
                        for a in rx.handle(&msg, now).unwrap() {
                            match a {
                                ReceiverAction::Send(m) => to_sender.push(m),
                                ReceiverAction::Complete => complete = true,
                                ReceiverAction::GroupDecoded { .. } => {}
                            }
                        }
                    }
                }
                SenderStep::WaitUntil(_) => {}
                SenderStep::Finished => break,
            }
            // Receiver timers.
            for a in rx.on_timer(now) {
                if let ReceiverAction::Send(m) = a {
                    to_sender.push(m);
                }
            }
            for m in std::mem::take(&mut to_sender) {
                tx.handle(&m, now).unwrap();
            }
        }
        prop_assert!(complete, "exchange did not converge (len={data_len})");
        prop_assert_eq!(rx.take_data().unwrap(), data);
    }

    /// The same property for the N2 baseline.
    #[test]
    fn n2_lossy_exchange_converges(
        data_len in 1usize..300,
        drops in proptest::collection::vec(any::<bool>(), 16..96),
        seed in any::<u64>(),
    ) {
        use parity_multicast::protocol::n2::{N2Receiver, N2Sender};
        let data: Vec<u8> = (0..data_len).map(|i| (i * 29 + 1) as u8).collect();
        let mut tx = N2Sender::new(9, &data, config(4, 0)).unwrap();
        let mut rx = N2Receiver::new(0, 9, 0.001, seed);
        let mut drop_iter = drops.iter().cycle();
        let mut now = 0.0f64;
        let mut complete = false;
        let mut to_sender: Vec<Message> = Vec::new();
        for _ in 0..40_000 {
            now += 0.001;
            match tx.next_step(now) {
                SenderStep::Transmit(msg) => {
                    let dropped = matches!(msg, Message::Packet { .. })
                        && *drop_iter.next().unwrap();
                    if !dropped {
                        for a in rx.handle(&msg, now).unwrap() {
                            match a {
                                ReceiverAction::Send(m) => to_sender.push(m),
                                ReceiverAction::Complete => complete = true,
                                ReceiverAction::GroupDecoded { .. } => {}
                            }
                        }
                    }
                }
                SenderStep::WaitUntil(_) => {}
                SenderStep::Finished => break,
            }
            for a in rx.on_timer(now) {
                if let ReceiverAction::Send(m) = a {
                    to_sender.push(m);
                }
            }
            for m in std::mem::take(&mut to_sender) {
                tx.handle(&m, now).unwrap();
            }
        }
        prop_assert!(complete, "N2 exchange did not converge (len={data_len})");
        prop_assert_eq!(rx.take_data().unwrap(), data);
    }
}
