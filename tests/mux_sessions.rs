//! Integration tests for `pm-mux`, the event-driven session multiplexer:
//!
//! 1. **Equivalence** — a 32-session mux run produces byte-identical wire
//!    transcripts to 32 dedicated blocking-driver runs of the same
//!    machines (the mux is the blocking runtime, re-scheduled).
//! 2. **Scale** — a 256-session farm completes on one driver thread under
//!    the in-memory transport, with reports identical to the blocking
//!    drivers' (elapsed excluded: virtual vs wall time).
//! 3. **Isolation** — a Heavy-preset hostile session cannot delay a clean
//!    neighbor by more than one timer tick.
//! 4. **Chaos** — concurrent faulted sessions in one mux uphold the same
//!    degradation trichotomy the blocking chaos grid pins.
//! 5. **Postmortems** — with `flight_capacity` set, every degraded or
//!    errored session yields exactly one schema-valid postmortem; clean
//!    sessions yield none.
//! 6. **Telemetry determinism** — two identical farm runs under the
//!    virtual clock export byte-identical windowed gauges.

use std::sync::Arc;
use std::time::Duration;

use parity_multicast::mux::{Mux, MuxConfig, SessionOutcome, VirtualClock};
use parity_multicast::net::{
    ChaosPreset, FaultyTransport, MemHub, PollTransport, Transcript, TranscriptTransport,
};
use parity_multicast::obs::{Postmortem, WindowConfig, WindowTelemetry};
use parity_multicast::par::{available_workers, Pool};
use parity_multicast::protocol::runtime::{
    drive_receiver, drive_sender, ReceiverReport, RuntimeConfig, SessionReport,
};
use parity_multicast::protocol::{
    CompletionPolicy, NpConfig, NpReceiver, NpSender, ResiliencePolicy,
};

fn np_cfg() -> NpConfig {
    let mut c = NpConfig::small(CompletionPolicy::KnownReceivers(1));
    c.k = 8;
    c.h = 40;
    c.payload_len = 128;
    c.nak_slot = 0.001;
    c
}

fn rt() -> RuntimeConfig {
    RuntimeConfig {
        packet_spacing: Duration::from_micros(50),
        stall_timeout: Duration::from_secs(5),
        complete_linger: Duration::from_millis(250),
        ..RuntimeConfig::default()
    }
}

fn payload(n: usize) -> Vec<u8> {
    (0..n)
        .map(|i| (i.wrapping_mul(2654435761) >> 11) as u8)
        .collect()
}

fn pair_payload(i: u32) -> Vec<u8> {
    payload(1800 + 111 * i as usize)
}

/// One sender/receiver pair under the dedicated blocking drivers,
/// transcribing both endpoints.
fn run_pair_blocking(
    i: u32,
    data: &[u8],
    rt: RuntimeConfig,
) -> (Transcript, Transcript, SessionReport, ReceiverReport) {
    let hub = MemHub::new();
    let mut sender_tp = TranscriptTransport::new(hub.join());
    let mut receiver_tp = TranscriptTransport::new(hub.join());
    let sender_log = sender_tp.transcript();
    let receiver_log = receiver_tp.transcript();
    let mut sender = NpSender::new(i, data, np_cfg()).expect("valid config");
    let handle = std::thread::spawn(move || {
        drive_sender(&mut sender, &mut sender_tp, &rt).expect("blocking sender")
    });
    let mut receiver = NpReceiver::new(1000 + i, i, 0.001, i as u64);
    let receiver_report =
        drive_receiver(&mut receiver, &mut receiver_tp, &rt).expect("blocking receiver");
    let sender_report = handle.join().expect("sender thread");
    let sent = sender_log.lock().clone();
    let received = receiver_log.lock().clone();
    (sent, received, sender_report, receiver_report)
}

/// Reports must match the blocking drivers field-for-field, except
/// `elapsed`, which is virtual time under the mux and wall time under the
/// blocking drivers.
fn assert_reports_match(
    i: usize,
    mux_s: &SessionReport,
    mux_r: &ReceiverReport,
    blk_s: &SessionReport,
    blk_r: &ReceiverReport,
) {
    assert_eq!(mux_s.counters, blk_s.counters, "pair {i}: sender counters");
    assert_eq!(mux_s.completed, blk_s.completed, "pair {i}: completed set");
    assert_eq!(mux_s.evicted, blk_s.evicted, "pair {i}: evicted count");
    assert_eq!(
        mux_s.corrupt_dropped, blk_s.corrupt_dropped,
        "pair {i}: sender corrupt_dropped"
    );
    assert_eq!(
        mux_s.send_retries, blk_s.send_retries,
        "pair {i}: sender send_retries"
    );
    assert_eq!(mux_r.data, blk_r.data, "pair {i}: received bytes");
    assert_eq!(
        mux_r.counters, blk_r.counters,
        "pair {i}: receiver counters"
    );
    assert_eq!(
        mux_r.corrupt_dropped, blk_r.corrupt_dropped,
        "pair {i}: receiver corrupt_dropped"
    );
}

#[test]
fn mux_transcripts_are_byte_identical_to_blocking_drivers() {
    const PAIRS: u32 = 16; // 32 sessions

    // One mux, one thread, one virtual clock — all 32 sessions at once.
    let mut mux = Mux::new(MuxConfig::default(), VirtualClock::new());
    let mut logs = Vec::new();
    let mut tokens = Vec::new();
    for i in 0..PAIRS {
        let hub = MemHub::new();
        let data = pair_payload(i);
        let sender_tp = TranscriptTransport::new(hub.join());
        let receiver_tp = TranscriptTransport::new(hub.join());
        logs.push((sender_tp.transcript(), receiver_tp.transcript()));
        let s_tok = mux.add_sender(
            NpSender::new(i, &data, np_cfg()).expect("valid config"),
            sender_tp,
            rt(),
        );
        let r_tok = mux.add_receiver(
            NpReceiver::new(1000 + i, i, 0.001, i as u64),
            receiver_tp,
            rt(),
        );
        tokens.push((s_tok, r_tok));
    }
    let outcomes = mux.run();
    assert_eq!(outcomes.len(), 2 * PAIRS as usize);

    // The same 32 machines under dedicated blocking drivers.
    let pool = Pool::new(available_workers());
    let blocking = pool.par_map(PAIRS as usize, |i| {
        run_pair_blocking(i as u32, &pair_payload(i as u32), rt())
    });

    for (i, ((sender_log, receiver_log), (blk_sent, blk_received, blk_s, blk_r))) in
        logs.iter().zip(&blocking).enumerate()
    {
        let mux_sent = sender_log.lock().clone();
        let mux_received = receiver_log.lock().clone();
        assert_eq!(mux_sent, *blk_sent, "pair {i}: sender transcript diverged");
        assert_eq!(
            mux_received, *blk_received,
            "pair {i}: receiver transcript diverged"
        );

        let (s_tok, r_tok) = tokens[i];
        let mux_s = outcomes
            .iter()
            .find_map(|(t, o)| (*t == s_tok).then(|| o.sender_report().expect("sender ok")))
            .expect("sender outcome");
        let mux_r = outcomes
            .iter()
            .find_map(|(t, o)| (*t == r_tok).then(|| o.receiver_report().expect("receiver ok")))
            .expect("receiver outcome");
        assert_reports_match(i, mux_s, mux_r, blk_s, blk_r);
    }
}

#[test]
fn farm_of_256_sessions_completes_on_one_driver_thread() {
    const PAIRS: u32 = 128; // 256 sessions

    let mut mux = Mux::new(MuxConfig::default(), VirtualClock::new());
    let mut tokens = Vec::new();
    for i in 0..PAIRS {
        let hub = MemHub::new();
        let data = payload(400 + 13 * i as usize);
        let s_tok = mux.add_sender(
            NpSender::new(i, &data, np_cfg()).expect("valid config"),
            hub.join(),
            rt(),
        );
        let r_tok = mux.add_receiver(
            NpReceiver::new(1000 + i, i, 0.001, i as u64),
            hub.join(),
            rt(),
        );
        tokens.push((s_tok, r_tok, data));
    }
    let outcomes = mux.run();
    assert_eq!(outcomes.len(), 2 * PAIRS as usize);
    assert!(mux.is_empty());
    for (tok, out) in &outcomes {
        assert!(out.is_ok(), "session {tok:?} failed: {:?}", out.err());
    }
    for (_, r_tok, data) in &tokens {
        let rep = outcomes
            .iter()
            .find_map(|(t, o)| (t == r_tok).then(|| o.receiver_report().expect("receiver ok")))
            .expect("receiver outcome");
        assert_eq!(&rep.data, data, "farm receiver bytes");
    }
}

/// Drive one clean NP pair under a virtual-clock mux, optionally next to a
/// Heavy-preset hostile pair, and return the clean receiver's session
/// elapsed (pure virtual time).
fn clean_session_elapsed(with_hostile: bool) -> Duration {
    let mut mux: Mux<Box<dyn PollTransport>, VirtualClock> =
        Mux::new(MuxConfig::default(), VirtualClock::new());
    let hub = MemHub::new();
    let data = payload(2000);
    mux.add_sender(
        NpSender::new(7, &data, np_cfg()).expect("valid config"),
        Box::new(hub.join()),
        rt(),
    );
    let r_tok = mux.add_receiver(NpReceiver::new(70, 7, 0.001, 9), Box::new(hub.join()), rt());
    if with_hostile {
        // A separate session whose both endpoints sit behind Heavy fault
        // injection: sustained drops, duplicates, reordering, corruption,
        // truncation and garbage — the worst neighbor the chaos grid has.
        let hostile = MemHub::new();
        let cfg = ChaosPreset::Heavy.fault_config();
        let hostile_data = payload(2000);
        mux.add_sender(
            NpSender::new(8, &hostile_data, np_cfg()).expect("valid config"),
            Box::new(FaultyTransport::new(hostile.join(), cfg, 0xBAD_CAFE)),
            rt(),
        );
        mux.add_receiver(
            NpReceiver::new(80, 8, 0.001, 0xBAD_CAFE),
            Box::new(FaultyTransport::new(hostile.join(), cfg, 0xBAD_CAFE ^ 7)),
            rt(),
        );
    }
    let outcomes = mux.run();
    outcomes
        .iter()
        .find_map(|(t, o)| (*t == r_tok).then(|| o.receiver_report().expect("clean receiver ok")))
        .expect("clean receiver outcome")
        .elapsed
}

#[test]
fn heavy_hostile_neighbor_delays_clean_session_by_at_most_one_tick() {
    let solo = clean_session_elapsed(false);
    let contended = clean_session_elapsed(true);
    let tick = MuxConfig::default().tick;
    let diff = contended.abs_diff(solo);
    assert!(
        diff <= tick,
        "hostile neighbor moved the clean session by {diff:?} (solo {solo:?}, contended {contended:?}, tick {tick:?})"
    );
}

#[test]
fn concurrent_chaos_sessions_uphold_the_degradation_trichotomy() {
    // The chaos-grid posture, multiplexed: several faulted sessions share
    // one driver thread. Every session must end in clean completion with
    // byte-identical data, a typed degraded report, or a typed error —
    // never a panic, never a hang (the virtual clock jumps stalls away).
    let rt = RuntimeConfig {
        resilience: ResiliencePolicy {
            eviction_timeout: Some(Duration::from_millis(500)),
            ..ResiliencePolicy::default()
        },
        ..rt()
    };
    let mut mux: Mux<Box<dyn PollTransport>, VirtualClock> =
        Mux::new(MuxConfig::default(), VirtualClock::new());
    let presets = [
        ChaosPreset::Light,
        ChaosPreset::Heavy,
        ChaosPreset::Light,
        ChaosPreset::Heavy,
        ChaosPreset::Light,
        ChaosPreset::Heavy,
    ];
    let mut receivers = Vec::new();
    for (i, preset) in presets.iter().enumerate() {
        let i = i as u32;
        let hub = MemHub::new();
        let cfg = preset.fault_config();
        let seed = 0xC4A0_5000 + i as u64;
        let data = payload(1500 + 200 * i as usize);
        mux.add_sender(
            NpSender::new(i, &data, np_cfg()).expect("valid config"),
            Box::new(FaultyTransport::new(hub.join(), cfg, seed)),
            rt,
        );
        let r_tok = mux.add_receiver(
            NpReceiver::new(100 + i, i, 0.001, seed ^ 1),
            Box::new(FaultyTransport::new(hub.join(), cfg, seed ^ 2)),
            rt,
        );
        receivers.push((r_tok, data));
    }
    let outcomes = mux.run();
    assert_eq!(outcomes.len(), 2 * presets.len());
    for (tok, out) in &outcomes {
        match out {
            // Clean or degraded completion: a receiver that claims success
            // must hold byte-identical data.
            SessionOutcome::Receiver(Ok(rep)) => {
                let (_, data) = receivers
                    .iter()
                    .find(|(t, _)| t == tok)
                    .expect("known receiver");
                assert_eq!(&rep.data, data, "receiver {tok:?} returned damaged data");
            }
            SessionOutcome::Sender(Ok(rep)) => {
                assert!(
                    rep.evicted > 0 || !rep.completed.is_empty() || rep.counters.data_sent > 0,
                    "sender {tok:?} claims success without doing work"
                );
            }
            // Typed failure is an acceptable trichotomy outcome under
            // Heavy chaos; a panic or hang is not (reaching here at all
            // proves neither happened).
            SessionOutcome::Sender(Err(_)) | SessionOutcome::Receiver(Err(_)) => {}
            // Shedding requires an overload policy; none is configured.
            SessionOutcome::Shed(rep) => {
                panic!("no overload policy configured, yet {tok:?} was shed: {rep:?}")
            }
        }
    }
}

/// Build the chaos farm of `concurrent_chaos_sessions...` on `mux`.
fn add_chaos_farm(mux: &mut Mux<Box<dyn PollTransport>, VirtualClock>) -> usize {
    let rt = RuntimeConfig {
        resilience: ResiliencePolicy {
            eviction_timeout: Some(Duration::from_millis(500)),
            ..ResiliencePolicy::default()
        },
        ..rt()
    };
    let presets = [
        ChaosPreset::Light,
        ChaosPreset::Heavy,
        ChaosPreset::Light,
        ChaosPreset::Heavy,
    ];
    for (i, preset) in presets.iter().enumerate() {
        let i = i as u32;
        let hub = MemHub::new();
        let cfg = preset.fault_config();
        let seed = 0xC4A0_6000 + i as u64;
        let data = payload(1500 + 200 * i as usize);
        mux.add_sender(
            NpSender::new(i, &data, np_cfg()).expect("valid config"),
            Box::new(FaultyTransport::new(hub.join(), cfg, seed)),
            rt,
        );
        mux.add_receiver(
            NpReceiver::new(100 + i, i, 0.001, seed ^ 1),
            Box::new(FaultyTransport::new(hub.join(), cfg, seed ^ 2)),
            rt,
        );
    }

    // A guaranteed-degraded session: two receivers announced, one joins —
    // the sender completes for the live one and evicts the ghost.
    let hub = MemHub::new();
    let mut cfg = np_cfg();
    cfg.completion = CompletionPolicy::KnownReceivers(2);
    mux.add_sender(
        NpSender::new(50, &payload(2000), cfg).expect("valid config"),
        Box::new(hub.join()),
        rt,
    );
    mux.add_receiver(
        NpReceiver::new(150, 50, 0.001, 77),
        Box::new(hub.join()),
        rt,
    );

    // A guaranteed-errored session: a sender alone on its hub stalls out
    // (nobody ever joins, so it cannot even degrade).
    let hub = MemHub::new();
    mux.add_sender(
        NpSender::new(51, &payload(1000), np_cfg()).expect("valid config"),
        Box::new(hub.join()),
        rt,
    );

    2 * presets.len() + 3
}

#[test]
fn mux_postmortems_fire_exactly_once_per_degraded_session() {
    let cfg = MuxConfig {
        flight_capacity: Some(256),
        ..MuxConfig::default()
    };
    let mut mux: Mux<Box<dyn PollTransport>, VirtualClock> = Mux::new(cfg, VirtualClock::new());
    let sessions = add_chaos_farm(&mut mux);
    let outcomes = mux.run();
    assert_eq!(outcomes.len(), sessions);
    let ledger = mux.take_postmortems();

    let mut expected_ledger = 0usize;
    let mut yielded = 0usize;
    for (tok, out) in &outcomes {
        match out {
            SessionOutcome::Sender(Ok(rep)) => {
                // Degraded rides the report, exactly as the blocking
                // drive_sender_flight attaches it; clean carries nothing.
                assert_eq!(
                    rep.postmortem.is_some(),
                    rep.is_degraded(),
                    "sender {tok:?}: postmortem iff degraded"
                );
                if let Some(pm) = &rep.postmortem {
                    assert_eq!(pm.outcome, "degraded");
                    yielded += 1;
                    Postmortem::validate(
                        &serde_json::from_str(&pm.to_string_json()).expect("parses"),
                    )
                    .expect("schema-valid sender postmortem");
                }
                assert!(
                    !ledger.iter().any(|(t, _)| t == tok),
                    "sender {tok:?}: a reported session must not also be ledgered"
                );
            }
            SessionOutcome::Receiver(Ok(_)) => {
                assert!(
                    !ledger.iter().any(|(t, _)| t == tok),
                    "receiver {tok:?}: clean sessions yield no postmortem"
                );
            }
            SessionOutcome::Sender(Err(_)) | SessionOutcome::Receiver(Err(_)) => {
                expected_ledger += 1;
                let entries: Vec<_> = ledger.iter().filter(|(t, _)| t == tok).collect();
                assert_eq!(
                    entries.len(),
                    1,
                    "{tok:?}: exactly one ledger postmortem per errored session"
                );
                let (_, pm) = entries[0];
                yielded += 1;
                Postmortem::validate(&serde_json::from_str(&pm.to_string_json()).expect("parses"))
                    .expect("schema-valid ledger postmortem");
            }
            SessionOutcome::Shed(rep) => {
                panic!("no overload policy configured, yet {tok:?} was shed: {rep:?}")
            }
        }
    }
    assert_eq!(ledger.len(), expected_ledger, "no orphan ledger entries");
    assert!(
        yielded > 0,
        "the chaos farm must produce at least one degraded or errored session"
    );
}

#[test]
fn windowed_telemetry_is_deterministic_across_runs() {
    let run = || {
        let cfg = MuxConfig {
            flight_capacity: Some(128),
            ..MuxConfig::default()
        };
        let tel = Arc::new(WindowTelemetry::new(WindowConfig::default()));
        let mut mux: Mux<Box<dyn PollTransport>, VirtualClock> = Mux::new(cfg, VirtualClock::new())
            .with_obs(parity_multicast::obs::Obs::new(tel.clone()));
        mux.bind_telemetry(tel.clone());
        add_chaos_farm(&mut mux);
        mux.run();
        // Render to text so the comparison is byte-for-byte, bit-patterns
        // of every f64 included.
        tel.export_gauges()
            .into_iter()
            .map(|(name, v)| format!("{name} {v:?} {:016x}\n", v.to_bits()))
            .collect::<String>()
    };
    let first = run();
    let second = run();
    assert!(!first.is_empty(), "telemetry must export something");
    assert_eq!(first, second, "windowed gauges must be run-deterministic");
}
