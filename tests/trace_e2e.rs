//! End-to-end observability: run real NP sessions with every layer wired
//! to one shared recorder and check the trace against ground truth —
//! causality (sends precede receives), reconciliation (event counts match
//! the transports' and machines' own counters), and decode-cache reuse
//! under a repeating loss pattern.

use std::sync::Arc;
use std::time::Duration;

use parity_multicast::loss::LossModel;
use parity_multicast::net::{FaultConfig, FaultyTransport, MemHub};
use parity_multicast::obs::{Event, Obs, RingRecorder};
use parity_multicast::protocol::harness::{run_simulation, HarnessConfig};
use parity_multicast::protocol::runtime::{
    drive_receiver_obs, drive_sender_obs, ReceiverReport, RuntimeConfig,
};
use parity_multicast::protocol::{CompletionPolicy, NpConfig, NpReceiver, NpSender};

fn payload(n: usize) -> Vec<u8> {
    (0..n).map(|i| (i.wrapping_mul(40503) >> 3) as u8).collect()
}

#[test]
fn threaded_session_trace_reconciles_with_counters() {
    const RECEIVERS: u32 = 3;
    let ring = Arc::new(RingRecorder::new(1 << 16));
    let obs = Obs::new(ring.clone());

    let hub = MemHub::new();
    let data = payload(40_000);
    let session = 0x0B5;
    let mut cfg = NpConfig::small(CompletionPolicy::KnownReceivers(RECEIVERS));
    cfg.k = 8;
    cfg.h = 40;
    cfg.payload_len = 256;
    cfg.nak_slot = 0.002;
    let rt = RuntimeConfig {
        packet_spacing: Duration::from_micros(100),
        stall_timeout: Duration::from_secs(15),
        complete_linger: Duration::from_millis(300),
        ..RuntimeConfig::default()
    };

    let handles: Vec<std::thread::JoinHandle<(ReceiverReport, u64)>> = (0..RECEIVERS)
        .map(|id| {
            let ep = hub.join();
            let obs = obs.clone();
            std::thread::spawn(move || {
                let mut tp =
                    FaultyTransport::new(ep, FaultConfig::drop_only(0.08), 0xD0 + id as u64)
                        .with_obs(obs.clone());
                let mut m = NpReceiver::new(id, session, 0.002, id as u64).with_obs(obs.clone());
                let report = drive_receiver_obs(&mut m, &mut tp, &rt, &obs).expect("receive");
                (report, tp.stats().dropped)
            })
        })
        .collect();

    let mut sender_tp = hub.join().with_obs(obs.clone());
    let mut sender = NpSender::new(session, &data, cfg)
        .expect("config")
        .with_obs(obs.clone());
    drive_sender_obs(&mut sender, &mut sender_tp, &rt, &obs).expect("send");

    let mut injected_drops = 0u64;
    let mut suppressed_counted = 0u64;
    for h in handles {
        let (report, dropped) = h.join().expect("receiver thread");
        assert_eq!(report.data, data);
        injected_drops += dropped;
        suppressed_counted += report.counters.feedback_suppressed;
    }

    assert_eq!(ring.evicted(), 0, "ring must hold the complete trace");
    let events = ring.events();

    // Causality: every data/parity reception was transmitted first.
    let mut sent: std::collections::HashSet<(u32, u32, u16, bool)> = Default::default();
    for (_, ev) in &events {
        match *ev {
            Event::DataSent {
                session: s,
                group,
                index,
            } => {
                sent.insert((s, group, index, true));
            }
            Event::ParitySent {
                session: s,
                group,
                index,
            } => {
                sent.insert((s, group, index, false));
            }
            Event::DataRecv {
                session: s,
                group,
                index,
            } => {
                assert!(
                    sent.contains(&(s, group, index, true)),
                    "data_recv {s}/{group}/{index} before any data_sent"
                );
            }
            Event::ParityRecv {
                session: s,
                group,
                index,
            } => {
                assert!(
                    sent.contains(&(s, group, index, false)),
                    "parity_recv {s}/{group}/{index} before any parity_sent"
                );
            }
            _ => {}
        }
    }

    // Reconciliation: fault-injector drops and damped NAKs match 1:1.
    let count =
        |pred: &dyn Fn(&Event) -> bool| events.iter().filter(|(_, e)| pred(e)).count() as u64;
    assert_eq!(
        count(&|e| matches!(e, Event::NetDropped { .. })),
        injected_drops,
        "net_dropped events must equal the injector's drop count"
    );
    assert_eq!(
        count(&|e| matches!(e, Event::NakSuppressed { .. })),
        suppressed_counted,
        "nak_suppressed events must equal the feedback_suppressed counters"
    );

    // Lifecycle: one session_start per endpoint, everyone ends Completed.
    assert_eq!(
        count(&|e| matches!(e, Event::SessionStart { .. })),
        RECEIVERS as u64 + 1
    );
    assert_eq!(
        count(&|e| matches!(
            e,
            Event::SessionEnd {
                outcome: parity_multicast::obs::Outcome::Completed,
                ..
            }
        )),
        RECEIVERS as u64 + 1
    );
    assert_eq!(count(&|e| matches!(e, Event::StallTimeout { .. })), 0);
}

/// Drops exactly the second data packet of every round-1 group: the first
/// `groups * k` sampled transmissions are round-1 data (repairs only start
/// after the round-trip), so `count % k == 1` hits data index 1 each group.
struct SecondPacketOfEachGroup {
    k: usize,
    round1: usize,
    count: usize,
}

impl LossModel for SecondPacketOfEachGroup {
    fn receivers(&self) -> usize {
        1
    }
    fn sample(&mut self, _time: f64, lost: &mut [bool]) {
        lost[0] = self.count < self.round1 && self.count % self.k == 1;
        self.count += 1;
    }
}

#[test]
fn repeating_loss_pattern_hits_the_inverse_cache() {
    const K: usize = 4;
    const GROUPS: usize = 4;
    let ring = Arc::new(RingRecorder::new(1 << 12));
    let obs = Obs::new(ring.clone());

    let mut cfg = NpConfig::small(CompletionPolicy::KnownReceivers(1));
    cfg.k = K;
    cfg.h = 8;
    cfg.payload_len = 64;
    cfg.nak_slot = 0.001;
    let data = payload(GROUPS * K * 64); // exact multiple: every group same spec

    let mut sender = NpSender::new(0xCAC, &data, cfg).expect("config");
    let mut receivers = vec![NpReceiver::new(0, 0xCAC, 0.001, 9).with_obs(obs)];
    let mut loss = SecondPacketOfEachGroup {
        k: K,
        round1: GROUPS * K,
        count: 0,
    };
    // Latency far above the round-1 transmission time, so repairs cannot
    // interleave with (and shift the count of) first-round data.
    let report = run_simulation(
        &mut sender,
        &mut receivers,
        &mut loss,
        &HarnessConfig {
            delta: 0.001,
            latency: 0.05,
            lossy_control: false,
            time_cap: 600.0,
        },
    )
    .expect("session completes");
    assert_eq!(report.completed, 1);
    assert_eq!(receivers[0].take_data().unwrap(), data);

    let events = ring.events();
    let hits = events
        .iter()
        .filter(|(_, e)| matches!(e, Event::DecodeCacheHit { .. }))
        .count();
    let misses = events
        .iter()
        .filter(|(_, e)| matches!(e, Event::DecodeCacheMiss { .. }))
        .count();
    assert_eq!(
        misses, 1,
        "one erasure pattern means one matrix inversion total"
    );
    assert_eq!(hits, GROUPS - 1, "remaining groups reuse the inverse");

    let decoded: Vec<_> = events
        .iter()
        .filter_map(|(_, e)| match e {
            Event::GroupDecoded {
                group, recovered, ..
            } => Some((*group, *recovered)),
            _ => None,
        })
        .collect();
    assert_eq!(decoded.len(), GROUPS);
    assert!(decoded.iter().all(|&(_, rec)| rec == 1));
}
