//! Failure-injection tests: the unhappy paths a production deployment
//! hits — hostile/corrupt traffic, session collisions, pathological
//! geometry, and resource bounds.

use std::sync::Arc;
use std::time::Duration;

use parity_multicast::net::{FaultConfig, FaultyTransport, MemHub, Message, Transport};
use parity_multicast::obs::{validate_trace, JsonlRecorder, Obs};
use parity_multicast::protocol::harness::{run_simulation, HarnessConfig};
use parity_multicast::protocol::runtime::{
    drive_receiver, drive_receiver_obs, drive_sender, RuntimeConfig,
};
use parity_multicast::protocol::{CompletionPolicy, NpConfig, NpReceiver, NpSender, ProtocolError};

fn rt() -> RuntimeConfig {
    RuntimeConfig {
        packet_spacing: Duration::from_micros(50),
        stall_timeout: Duration::from_secs(15),
        complete_linger: Duration::from_millis(200),
        ..RuntimeConfig::default()
    }
}

fn config(receivers: u32) -> NpConfig {
    let mut c = NpConfig::small(CompletionPolicy::KnownReceivers(receivers));
    c.k = 8;
    c.h = 40;
    c.payload_len = 256;
    c.nak_slot = 0.001;
    c
}

fn payload(n: usize) -> Vec<u8> {
    (0..n).map(|i| (i.wrapping_mul(69069) >> 5) as u8).collect()
}

#[test]
fn hostile_garbage_on_the_group_is_ignored() {
    // A third party blasts unrelated, malformed-adjacent traffic onto the
    // group while a transfer runs; the session must complete untouched.
    let hub = MemHub::new();
    let data = payload(30_000);
    let session = 0xFA11;

    // The saboteur: floods Done/Nak/Announce messages for OTHER sessions
    // and self-contradictory packets for this one... on a foreign session.
    let mut saboteur = hub.join();
    let sab = std::thread::spawn(move || {
        for i in 0..2000u32 {
            let _ = saboteur.send(&Message::Nak {
                session: session + 1,
                group: i % 7,
                needed: 9,
                round: 1,
            });
            let _ = saboteur.send(&Message::Done {
                session: session + 1,
                receiver: i,
            });
            if i % 50 == 0 {
                std::thread::sleep(Duration::from_micros(200));
            }
        }
    });

    let recv = {
        let ep = hub.join();
        std::thread::spawn(move || {
            let mut tp = FaultyTransport::new(ep, FaultConfig::drop_only(0.05), 3);
            let mut m = NpReceiver::new(0, session, 0.001, 3);
            drive_receiver(&mut m, &mut tp, &rt()).expect("receiver failed")
        })
    };
    let mut sender_tp = hub.join();
    let mut sender = NpSender::new(session, &data, config(1)).expect("config");
    drive_sender(&mut sender, &mut sender_tp, &rt()).expect("sender failed");
    assert_eq!(recv.join().unwrap().data, data);
    sab.join().unwrap();
}

#[test]
fn spoofed_done_messages_cannot_fake_completion_everywhere() {
    // A hostile Done for OUR session can trick KnownReceivers counting —
    // that is an accepted protocol limitation (no authentication in the
    // 1997 design) — but the *receiver* must never report completion
    // without the actual data. Pin the receiver-side guarantee.
    let session = 0x5EC;
    let mut rx = NpReceiver::new(0, session, 0.001, 1);
    for i in 0..50 {
        rx.handle(
            &Message::Done {
                session,
                receiver: i,
            },
            0.0,
        )
        .unwrap();
    }
    assert!(!rx.is_complete());
    assert!(rx.take_data().is_err());
}

#[test]
fn conflicting_announces_abort_cleanly() {
    let session = 0xBAD;
    let mut rx = NpReceiver::new(0, session, 0.001, 1);
    let a1 = Message::Announce {
        session,
        groups: 4,
        k: 8,
        n: 48,
        last_k: 8,
        payload_len: 256,
        total_bytes: 8192,
    };
    let a2 = Message::Announce {
        session,
        groups: 9,
        k: 8,
        n: 48,
        last_k: 8,
        payload_len: 256,
        total_bytes: 9999,
    };
    rx.handle(&a1, 0.0).unwrap();
    match rx.handle(&a2, 0.1) {
        Err(ProtocolError::Inconsistent(_)) => {}
        other => panic!("expected Inconsistent, got {other:?}"),
    }
}

#[test]
fn extreme_loss_eventually_succeeds() {
    // 50% loss: brutal but recoverable given the full parity budget and
    // announce-driven recovery. Uses the deterministic harness so the test
    // is not timing-sensitive.
    use parity_multicast::loss::IndependentLoss;
    let data = payload(8 * 256 * 3);
    let mut sender = NpSender::new(0xE0, &data, config(4)).expect("config");
    let mut receivers: Vec<NpReceiver> = (0..4)
        .map(|i| NpReceiver::new(i, 0xE0, 0.001, i as u64))
        .collect();
    let mut loss = IndependentLoss::new(4, 0.5, 77);
    let report = run_simulation(
        &mut sender,
        &mut receivers,
        &mut loss,
        &HarnessConfig {
            time_cap: 1200.0,
            ..Default::default()
        },
    )
    .expect("session completes even at 50% loss");
    assert_eq!(report.completed, 4);
    for rx in &receivers {
        assert_eq!(rx.take_data().unwrap(), data);
    }
}

#[test]
fn zero_receiver_population_rejected_by_config() {
    let c = NpConfig::small(CompletionPolicy::KnownReceivers(0));
    assert!(NpSender::new(1, &[1, 2, 3], c).is_err());
}

#[test]
fn oversized_payload_config_rejected() {
    let mut c = config(1);
    c.payload_len = 100_000; // above wire MAX_PAYLOAD
    assert!(NpSender::new(1, &[0u8; 10], c).is_err());
}

#[test]
fn max_geometry_session_works() {
    // k + h = 255 exactly, multi-group, odd tail.
    use parity_multicast::loss::IndependentLoss;
    let mut c = NpConfig::small(CompletionPolicy::KnownReceivers(2));
    c.k = 200;
    c.h = 55;
    c.payload_len = 32;
    c.nak_slot = 0.001;
    let data = payload(200 * 32 + 777);
    let mut sender = NpSender::new(0xED6E, &data, c).expect("config");
    let mut receivers: Vec<NpReceiver> = (0..2)
        .map(|i| NpReceiver::new(i, 0xED6E, 0.001, i as u64))
        .collect();
    let mut loss = IndependentLoss::new(2, 0.1, 5);
    let report = run_simulation(
        &mut sender,
        &mut receivers,
        &mut loss,
        &HarnessConfig::default(),
    )
    .expect("completes");
    assert_eq!(report.completed, 2);
    for rx in &receivers {
        assert_eq!(rx.take_data().unwrap(), data);
    }
}

#[test]
fn stalled_errors_carry_last_progress_context() {
    use parity_multicast::obs::{Event, MsgKind};

    let fast = RuntimeConfig {
        packet_spacing: Duration::from_micros(50),
        stall_timeout: Duration::from_millis(150),
        complete_linger: Duration::from_millis(300),
        ..RuntimeConfig::default()
    };

    // A sender with no receivers transmits its whole schedule, then stalls
    // waiting for feedback: the error must remember the last transmission.
    let hub = MemHub::new();
    let mut tp = hub.join();
    let mut s = NpSender::new(3, &payload(500), config(1)).expect("config");
    match drive_sender(&mut s, &mut tp, &fast) {
        Err(ProtocolError::Stalled {
            last_progress: Some(ev),
            ..
        }) => {
            assert!(
                matches!(ev, Event::NetSent { .. }),
                "sender progress is its own transmissions, got {ev:?}"
            );
        }
        other => panic!("expected stall with context, got {other:?}"),
    }

    // A receiver that never hears anything has no progress to report.
    let hub = MemHub::new();
    let mut tp = hub.join();
    let mut r = NpReceiver::new(1, 1, 0.001, 5);
    match drive_receiver(&mut r, &mut tp, &fast) {
        Err(ProtocolError::Stalled {
            last_progress: None,
            waited_secs,
        }) => assert!(waited_secs >= 0.15),
        other => panic!("expected bare stall, got {other:?}"),
    }

    // The Display form surfaces the event name for post-mortems.
    let e = ProtocolError::Stalled {
        waited_secs: 1.5,
        last_progress: Some(Event::NetRecv { kind: MsgKind::Nak }),
    };
    assert!(e.to_string().contains("last progress: net_recv"));
}

#[test]
fn corrupt_datagrams_on_the_wire_are_dropped_not_fatal() {
    // Checksum-damaged frames queued at both drivers before the session
    // starts: the resilience layer must count-and-drop them (satellite
    // regression for the once-fatal decode path in recv_timeout) and the
    // transfer must complete byte-identically.
    let hub = MemHub::new();
    let data = payload(10_000);
    let session = 0xC0DE;

    let rx_ep = hub.join();
    let tx_ep = hub.join();
    let saboteur = hub.join();
    for i in 0..5u32 {
        // A structurally valid frame with one byte of bit damage — exactly
        // what a flaky NIC delivers. The v2 checksum must catch it.
        let mut raw = Message::Done {
            session,
            receiver: i,
        }
        .encode()
        .to_vec();
        let last = raw.len() - 1;
        raw[last] ^= 0x80;
        saboteur.send_raw(bytes::Bytes::from(raw));
    }

    let recv = std::thread::spawn(move || {
        let mut tp = rx_ep;
        let mut m = NpReceiver::new(0, session, 0.001, 11);
        drive_receiver(&mut m, &mut tp, &rt()).expect("receiver survives corruption")
    });
    let mut tp = tx_ep;
    let mut sender = NpSender::new(session, &data, config(1)).expect("config");
    let report = drive_sender(&mut sender, &mut tp, &rt()).expect("sender survives corruption");

    let rr = recv.join().unwrap();
    assert_eq!(rr.data, data);
    assert!(
        rr.corrupt_dropped >= 1,
        "receiver must report the dropped frames, got {}",
        rr.corrupt_dropped
    );
    assert!(
        report.corrupt_dropped >= 1,
        "sender must report the dropped frames, got {}",
        report.corrupt_dropped
    );
    assert!(!report.is_degraded(), "drops alone are not degradation");
}

#[test]
fn sustained_corruption_reconciles_stats_trace_and_report() {
    // A receiver behind a byte-level hostile link (bit flips, truncation,
    // garbage injection): the session completes, and the three independent
    // ledgers — FaultStats at the transport, trace events in the JSONL
    // recorder, corrupt_dropped in the report — must tell the same story.
    let trace_path = std::env::temp_dir().join("pm_failure_injection_corruption.jsonl");
    let trace_path = trace_path.to_str().expect("utf8 temp path").to_string();
    let rec = Arc::new(JsonlRecorder::create(&trace_path).expect("trace file"));
    let obs = Obs::new(rec.clone());

    let hub = MemHub::new();
    let data = payload(20_000);
    let session = 0xB17;
    let fault = FaultConfig {
        corrupt: 0.04,
        truncate: 0.02,
        garbage: 0.02,
        ..FaultConfig::none()
    };

    let recv = {
        let ep = hub.join();
        let obs = obs.clone();
        std::thread::spawn(move || {
            let mut tp = FaultyTransport::new(ep, fault, 0xC0FFEE).with_obs(obs.clone());
            let mut m = NpReceiver::new(0, session, 0.001, 7);
            let report =
                drive_receiver_obs(&mut m, &mut tp, &rt(), &obs).expect("receiver completes");
            (report, tp.stats())
        })
    };
    let mut sender_tp = hub.join();
    let mut sender = NpSender::new(session, &data, config(1)).expect("config");
    drive_sender(&mut sender, &mut sender_tp, &rt()).expect("sender completes");

    let (report, stats) = recv.join().unwrap();
    assert_eq!(report.data, data, "corruption may delay, never damage");
    assert!(stats.corrupted > 0, "fault rates must have fired");

    // Every injected fault surfaces as a checksum/framing failure the
    // driver counted — nothing slips through, nothing is double-counted.
    assert_eq!(
        report.corrupt_dropped,
        stats.corrupted + stats.truncated + stats.garbage_injected,
        "report must account for exactly the injected damage: {stats:?}"
    );

    rec.flush();
    let text = std::fs::read_to_string(&trace_path).expect("trace readable");
    let census = validate_trace(&text).expect("trace must stay schema-clean under chaos");
    assert_eq!(census.get("net_corrupted").copied(), Some(stats.corrupted));
    assert_eq!(
        census.get("net_truncated").copied().unwrap_or(0),
        stats.truncated
    );
    assert_eq!(
        census.get("net_garbage").copied().unwrap_or(0),
        stats.garbage_injected
    );
    assert_eq!(
        census.get("corrupt_dropped").copied().unwrap_or(0),
        report.corrupt_dropped,
        "one trace event per dropped datagram"
    );
    let _ = std::fs::remove_file(&trace_path);
}

#[test]
fn blackout_window_stalls_then_recovers() {
    // The receiver is deaf for the first quarter second — the entire
    // initial schedule falls into the blackout — then the announce
    // heartbeat drives full recovery through NAK/repair rounds.
    let hub = MemHub::new();
    let data = payload(30_000);
    let session = 0xB1AC;
    let fault = FaultConfig {
        blackout: Some((0.0, 0.25)),
        ..FaultConfig::none()
    };

    let recv = {
        let ep = hub.join();
        std::thread::spawn(move || {
            let mut tp = FaultyTransport::new(ep, fault, 0xDA4C);
            let mut m = NpReceiver::new(0, session, 0.001, 13);
            let report = drive_receiver(&mut m, &mut tp, &rt()).expect("recovers after blackout");
            (report, tp.stats())
        })
    };
    let mut sender_tp = hub.join();
    let mut sender = NpSender::new(session, &data, config(1)).expect("config");
    drive_sender(&mut sender, &mut sender_tp, &rt()).expect("sender completes");

    let (report, stats) = recv.join().unwrap();
    assert_eq!(report.data, data);
    assert!(
        stats.blackout_recv > 0,
        "the blackout window must have swallowed traffic: {stats:?}"
    );
}

#[test]
fn corruption_over_real_udp_completes() {
    // Same hostile-link story over kernel UDP multicast (skips with a note
    // on hosts without multicast support, like the other UDP tests).
    use parity_multicast::net::udp::UdpHub;
    use std::net::{Ipv4Addr, SocketAddrV4};

    let group = SocketAddrV4::new(Ipv4Addr::new(239, 255, 77, 9), 46017);
    let hub = match UdpHub::join(group) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("skipping UDP corruption test: {e}");
            return;
        }
    };
    let data = payload(40_000);
    let session = 0xD08;
    let fault = FaultConfig {
        corrupt: 0.05,
        drop: 0.05,
        ..FaultConfig::none()
    };

    let recv = {
        let ep = hub.endpoint().expect("endpoint");
        std::thread::spawn(move || {
            let mut tp = FaultyTransport::new(ep, fault, 0x0DD);
            let mut m = NpReceiver::new(0, session, 0.002, 21);
            let report = drive_receiver(&mut m, &mut tp, &rt()).expect("receiver completes");
            (report, tp.stats())
        })
    };
    let mut sender_tp = hub.endpoint().expect("endpoint");
    let mut cfg = config(1);
    cfg.payload_len = 512;
    let mut sender = NpSender::new(session, &data, cfg).expect("config");
    drive_sender(&mut sender, &mut sender_tp, &rt()).expect("sender completes");

    let (report, stats) = recv.join().unwrap();
    assert_eq!(report.data, data);
    assert!(stats.corrupted > 0, "corruption must have fired: {stats:?}");
    assert!(
        report.corrupt_dropped >= stats.corrupted,
        "every checksum-damaged UDP frame is counted ({} dropped, {} corrupted)",
        report.corrupt_dropped,
        stats.corrupted
    );
}

#[test]
fn sender_survives_nak_storm() {
    // Suppression failure worst case: every receiver NAKs every round.
    // Round gating + the service quarantine must keep repair traffic
    // bounded (no amplification beyond one service per storm burst).
    let data = payload(8 * 256);
    let mut sender = NpSender::new(0x570, &data, config(1)).expect("config");
    // Drain the initial schedule.
    let mut sent = 0u64;
    while let parity_multicast::protocol::SenderStep::Transmit(_) = sender.next_step(0.0) {
        sent += 1;
    }
    assert!(sent > 0);
    // 100 duplicate NAKs for the same round arrive within a millisecond.
    for i in 0..100 {
        sender
            .handle(
                &Message::Nak {
                    session: 0x570,
                    group: 0,
                    needed: 3,
                    round: 1,
                },
                0.001 + i as f64 * 1e-6,
            )
            .unwrap();
    }
    let mut repairs = 0u64;
    loop {
        match sender.next_step(0.002) {
            parity_multicast::protocol::SenderStep::Transmit(Message::Packet { .. }) => {
                repairs += 1
            }
            parity_multicast::protocol::SenderStep::Transmit(_) => {}
            _ => break,
        }
    }
    assert_eq!(
        repairs, 3,
        "exactly one service of 3 parities despite 100 NAKs"
    );
}
