//! The deterministic chaos grid: full NP sessions under every cell of
//! {corruption} × {blackout} × {dup/reorder} × {receiver death}, pinned to
//! the degradation trichotomy — each session must end in
//!
//! 1. clean completion with byte-identical data at every receiver, or
//! 2. a typed degraded report (responsive population completed, silent
//!    stragglers evicted and counted), or
//! 3. a typed [`ProtocolError`],
//!
//! and never a panic or an unbounded hang. The grid is seeded: a failure
//! reproduces bit-for-bit from the same base seed.
//!
//! Every endpoint drives through the flight-recorder wrappers, pinning the
//! postmortem contract alongside the trichotomy: a schema-valid postmortem
//! exactly when a session ends degraded or errored, never for a clean one.

use std::sync::Arc;
use std::time::{Duration, Instant};

use parity_multicast::net::{scenario_grid, FaultyTransport, MemHub};
use parity_multicast::obs::{FlightRecorder, Obs, Postmortem};
use parity_multicast::protocol::runtime::{
    drive_receiver_flight, drive_sender_flight, RuntimeConfig,
};
use parity_multicast::protocol::{
    CompletionPolicy, NpConfig, NpReceiver, NpSender, ResiliencePolicy,
};

/// Events each session's bounded flight ring retains.
const FLIGHT_CAPACITY: usize = 256;

/// A postmortem must exist exactly when the outcome is degraded/errored,
/// and its JSON rendering must satisfy the `pm.postmortem.v1` schema.
fn check_postmortem(scenario: &str, who: &str, pm: &Option<Postmortem>, wants: bool) {
    assert_eq!(
        pm.is_some(),
        wants,
        "{scenario}: {who} postmortem presence must match the outcome \
         (got {:?}, wanted {wants})",
        pm.is_some(),
    );
    if let Some(pm) = pm {
        let rendered = serde_json::from_str(&pm.to_string_json()).expect("postmortem parses");
        Postmortem::validate(&rendered)
            .unwrap_or_else(|e| panic!("{scenario}: {who} postmortem invalid: {e}"));
    }
}

/// Announced population per scenario; dead receivers never join.
const RECEIVERS: u32 = 3;

fn config() -> NpConfig {
    let mut c = NpConfig::small(CompletionPolicy::KnownReceivers(RECEIVERS));
    c.k = 8;
    c.h = 40;
    c.payload_len = 128;
    c.nak_slot = 0.001;
    c
}

fn rt() -> RuntimeConfig {
    RuntimeConfig {
        packet_spacing: Duration::from_micros(50),
        // The hang backstop: every driver gives up after this much silence.
        stall_timeout: Duration::from_secs(6),
        complete_linger: Duration::from_millis(250),
        resilience: ResiliencePolicy {
            // ~10 announce intervals of receiver silence before the sender
            // completes for the responsive population.
            eviction_timeout: Some(Duration::from_millis(500)),
            ..ResiliencePolicy::default()
        },
    }
}

fn payload(n: usize) -> Vec<u8> {
    (0..n)
        .map(|i| (i.wrapping_mul(2654435761) >> 11) as u8)
        .collect()
}

#[test]
fn chaos_grid_upholds_the_degradation_trichotomy() {
    let data = payload(6000);
    for scenario in scenario_grid(0xC4A05) {
        let started = Instant::now();
        let hub = MemHub::new();
        let session = 0xC4A0;
        let live = RECEIVERS - scenario.dead_receivers;

        let handles: Vec<_> = (0..live)
            .map(|id| {
                let ep = hub.join();
                let fault = scenario.receiver_fault;
                let seed = scenario.seed ^ (id as u64 + 1);
                std::thread::Builder::new()
                    .name(format!("chaos-rx-{}-{id}", scenario.name))
                    .spawn(move || {
                        let flight = Arc::new(FlightRecorder::new(FLIGHT_CAPACITY));
                        let obs = Obs::null().tee(flight.clone());
                        let mut tp = FaultyTransport::new(ep, fault, seed);
                        let mut m = NpReceiver::new(id, session, 0.001, seed).with_obs(obs.clone());
                        drive_receiver_flight(&mut m, &mut tp, &rt(), &obs, &flight)
                    })
                    .expect("spawn receiver")
            })
            .collect();

        let flight = Arc::new(FlightRecorder::new(FLIGHT_CAPACITY));
        let obs = Obs::null().tee(flight.clone());
        let mut sender_tp = FaultyTransport::new(hub.join(), scenario.sender_fault, scenario.seed);
        let mut sender = NpSender::new(session, &data, config())
            .expect("valid config")
            .with_obs(obs.clone());
        let (sender_verdict, sender_pm) =
            drive_sender_flight(&mut sender, &mut sender_tp, &rt(), &obs, &flight);

        // A panicking driver thread fails the join — arm zero of the
        // trichotomy is "no panics, ever".
        let receiver_verdicts: Vec<_> = handles
            .into_iter()
            .map(|h| h.join().expect("receiver driver panicked"))
            .collect();

        // Postmortem contract, sender side: one exactly when the report is
        // degraded or the driver errored, both attached and returned.
        let sender_degraded = match &sender_verdict {
            Ok(report) => report.is_degraded(),
            Err(_) => true,
        };
        check_postmortem(&scenario.name, "sender", &sender_pm, sender_degraded);
        if let Ok(report) = &sender_verdict {
            assert_eq!(
                report.postmortem.is_some(),
                report.is_degraded(),
                "{}: the report carries the postmortem iff degraded",
                scenario.name
            );
        }

        // Arm three of the trichotomy needs no assert: an Err is a typed
        // ProtocolError by construction, and the join proved no panic.
        if let Ok(report) = &sender_verdict {
            // Complete or degraded-complete: everyone announced is
            // accounted for, either finished or explicitly evicted.
            assert_eq!(
                report.completed.len() as u32 + report.evicted,
                RECEIVERS,
                "{}: completed {:?} + evicted {} must cover the population",
                scenario.name,
                report.completed,
                report.evicted,
            );
            if scenario.dead_receivers > 0 {
                assert!(
                    report.is_degraded(),
                    "{}: dead receivers can only end in a degraded report",
                    scenario.name
                );
                assert!(
                    report.evicted >= scenario.dead_receivers,
                    "{}: at least the dead must be evicted",
                    scenario.name
                );
            }
        }

        for (id, (verdict, pm)) in receiver_verdicts.iter().enumerate() {
            // Arm one: any receiver that claims success must hold the exact
            // bytes — corruption may delay a transfer, never silently
            // damage it.
            if let Ok(report) = verdict {
                assert_eq!(
                    report.data, data,
                    "{}: receiver {id} completed with wrong bytes",
                    scenario.name
                );
            }
            // Postmortem contract, receiver side: errored sessions only.
            check_postmortem(
                &scenario.name,
                &format!("receiver {id}"),
                pm,
                verdict.is_err(),
            );
        }

        let elapsed = started.elapsed();
        assert!(
            elapsed < Duration::from_secs(30),
            "{}: exceeded the wall-clock bound ({elapsed:?})",
            scenario.name
        );
    }
}

/// The acceptance scenario pinned on its own: R receivers, one dead —
/// the session completes for R-1 and reports the straggler.
#[test]
fn one_dead_receiver_completes_for_the_rest() {
    let data = payload(4000);
    let hub = MemHub::new();
    let session = 0xDEAD;
    let live = RECEIVERS - 1;

    let handles: Vec<_> = (0..live)
        .map(|id| {
            let ep = hub.join();
            std::thread::spawn(move || {
                let flight = Arc::new(FlightRecorder::new(FLIGHT_CAPACITY));
                let obs = Obs::null().tee(flight.clone());
                let mut tp = ep;
                let mut m =
                    NpReceiver::new(id, session, 0.001, id as u64 + 9).with_obs(obs.clone());
                drive_receiver_flight(&mut m, &mut tp, &rt(), &obs, &flight)
            })
        })
        .collect();

    let flight = Arc::new(FlightRecorder::new(FLIGHT_CAPACITY));
    let obs = Obs::null().tee(flight.clone());
    let mut sender_tp = hub.join();
    let mut sender = NpSender::new(session, &data, config())
        .expect("valid config")
        .with_obs(obs.clone());
    let (verdict, pm) = drive_sender_flight(&mut sender, &mut sender_tp, &rt(), &obs, &flight);
    let report = verdict.expect("degraded completion");

    assert!(report.is_degraded());
    assert_eq!(report.evicted, 1);
    assert_eq!(report.completed, vec![0, 1]);

    // The degraded session yields its postmortem, attached and returned,
    // labelled with the outcome and the session's own events.
    let pm = pm.expect("degraded session must yield a postmortem");
    assert_eq!(pm.outcome, "degraded");
    assert_eq!(pm.role, "sender");
    assert!(pm
        .events
        .iter()
        .any(|(_, e)| matches!(e, parity_multicast::obs::Event::ReceiverEvicted { .. })));
    assert_eq!(report.postmortem.as_ref(), Some(&pm));
    Postmortem::validate(&serde_json::from_str(&pm.to_string_json()).expect("parses"))
        .expect("schema-valid postmortem");

    for h in handles {
        let (r, rx_pm) = h.join().expect("receiver panicked");
        assert_eq!(r.expect("receiver completes").data, data);
        assert!(rx_pm.is_none(), "clean receivers yield no postmortem");
    }
}
