//! The deterministic chaos grid: full NP sessions under every cell of
//! {corruption} × {blackout} × {dup/reorder} × {receiver death}, pinned to
//! the degradation trichotomy — each session must end in
//!
//! 1. clean completion with byte-identical data at every receiver, or
//! 2. a typed degraded report (responsive population completed, silent
//!    stragglers evicted and counted), or
//! 3. a typed [`ProtocolError`],
//!
//! and never a panic or an unbounded hang. The grid is seeded: a failure
//! reproduces bit-for-bit from the same base seed.

use std::time::{Duration, Instant};

use parity_multicast::net::{scenario_grid, FaultyTransport, MemHub};
use parity_multicast::protocol::runtime::{drive_receiver, drive_sender, RuntimeConfig};
use parity_multicast::protocol::{
    CompletionPolicy, NpConfig, NpReceiver, NpSender, ResiliencePolicy,
};

/// Announced population per scenario; dead receivers never join.
const RECEIVERS: u32 = 3;

fn config() -> NpConfig {
    let mut c = NpConfig::small(CompletionPolicy::KnownReceivers(RECEIVERS));
    c.k = 8;
    c.h = 40;
    c.payload_len = 128;
    c.nak_slot = 0.001;
    c
}

fn rt() -> RuntimeConfig {
    RuntimeConfig {
        packet_spacing: Duration::from_micros(50),
        // The hang backstop: every driver gives up after this much silence.
        stall_timeout: Duration::from_secs(6),
        complete_linger: Duration::from_millis(250),
        resilience: ResiliencePolicy {
            // ~10 announce intervals of receiver silence before the sender
            // completes for the responsive population.
            eviction_timeout: Some(Duration::from_millis(500)),
            ..ResiliencePolicy::default()
        },
    }
}

fn payload(n: usize) -> Vec<u8> {
    (0..n)
        .map(|i| (i.wrapping_mul(2654435761) >> 11) as u8)
        .collect()
}

#[test]
fn chaos_grid_upholds_the_degradation_trichotomy() {
    let data = payload(6000);
    for scenario in scenario_grid(0xC4A05) {
        let started = Instant::now();
        let hub = MemHub::new();
        let session = 0xC4A0;
        let live = RECEIVERS - scenario.dead_receivers;

        let handles: Vec<_> = (0..live)
            .map(|id| {
                let ep = hub.join();
                let fault = scenario.receiver_fault;
                let seed = scenario.seed ^ (id as u64 + 1);
                std::thread::Builder::new()
                    .name(format!("chaos-rx-{}-{id}", scenario.name))
                    .spawn(move || {
                        let mut tp = FaultyTransport::new(ep, fault, seed);
                        let mut m = NpReceiver::new(id, session, 0.001, seed);
                        drive_receiver(&mut m, &mut tp, &rt())
                    })
                    .expect("spawn receiver")
            })
            .collect();

        let mut sender_tp = FaultyTransport::new(hub.join(), scenario.sender_fault, scenario.seed);
        let mut sender = NpSender::new(session, &data, config()).expect("valid config");
        let sender_verdict = drive_sender(&mut sender, &mut sender_tp, &rt());

        // A panicking driver thread fails the join — arm zero of the
        // trichotomy is "no panics, ever".
        let receiver_verdicts: Vec<_> = handles
            .into_iter()
            .map(|h| h.join().expect("receiver driver panicked"))
            .collect();

        // Arm three of the trichotomy needs no assert: an Err is a typed
        // ProtocolError by construction, and the join proved no panic.
        if let Ok(report) = &sender_verdict {
            // Complete or degraded-complete: everyone announced is
            // accounted for, either finished or explicitly evicted.
            assert_eq!(
                report.completed.len() as u32 + report.evicted,
                RECEIVERS,
                "{}: completed {:?} + evicted {} must cover the population",
                scenario.name,
                report.completed,
                report.evicted,
            );
            if scenario.dead_receivers > 0 {
                assert!(
                    report.is_degraded(),
                    "{}: dead receivers can only end in a degraded report",
                    scenario.name
                );
                assert!(
                    report.evicted >= scenario.dead_receivers,
                    "{}: at least the dead must be evicted",
                    scenario.name
                );
            }
        }

        for (id, verdict) in receiver_verdicts.iter().enumerate() {
            // Arm one: any receiver that claims success must hold the exact
            // bytes — corruption may delay a transfer, never silently
            // damage it.
            if let Ok(report) = verdict {
                assert_eq!(
                    report.data, data,
                    "{}: receiver {id} completed with wrong bytes",
                    scenario.name
                );
            }
        }

        let elapsed = started.elapsed();
        assert!(
            elapsed < Duration::from_secs(30),
            "{}: exceeded the wall-clock bound ({elapsed:?})",
            scenario.name
        );
    }
}

/// The acceptance scenario pinned on its own: R receivers, one dead —
/// the session completes for R-1 and reports the straggler.
#[test]
fn one_dead_receiver_completes_for_the_rest() {
    let data = payload(4000);
    let hub = MemHub::new();
    let session = 0xDEAD;
    let live = RECEIVERS - 1;

    let handles: Vec<_> = (0..live)
        .map(|id| {
            let ep = hub.join();
            std::thread::spawn(move || {
                let mut tp = ep;
                let mut m = NpReceiver::new(id, session, 0.001, id as u64 + 9);
                drive_receiver(&mut m, &mut tp, &rt())
            })
        })
        .collect();

    let mut sender_tp = hub.join();
    let mut sender = NpSender::new(session, &data, config()).expect("valid config");
    let report = drive_sender(&mut sender, &mut sender_tp, &rt()).expect("degraded completion");

    assert!(report.is_degraded());
    assert_eq!(report.evicted, 1);
    assert_eq!(report.completed, vec![0, 1]);
    for h in handles {
        let r = h
            .join()
            .expect("receiver panicked")
            .expect("receiver completes");
        assert_eq!(r.data, data);
    }
}
