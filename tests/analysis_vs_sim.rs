//! Cross-validation: the independent-loss simulator must agree with the
//! closed-form analysis on a parameter grid, and the paper's qualitative
//! orderings must hold in both.

use parity_multicast::analysis::{integrated, layered, nofec, Population};
use parity_multicast::sim::runner::{run_env, LossEnv, Scheme};
use parity_multicast::sim::SimConfig;

const SEED: u64 = 0xA11CE;

fn close(sim: f64, se: f64, analytic: f64, what: &str) {
    let tol = (5.0 * se).max(0.02 * analytic).max(0.02);
    assert!(
        (sim - analytic).abs() < tol,
        "{what}: sim {sim:.4} (se {se:.4}) vs analytic {analytic:.4}"
    );
}

#[test]
fn nofec_grid() {
    let cfg = SimConfig::paper_timing(4000);
    for &(p, r) in &[(0.01, 8usize), (0.05, 16), (0.25, 4), (0.1, 64)] {
        let res = run_env(&cfg, Scheme::NoFec, LossEnv::Independent { p }, r, SEED);
        let analytic = nofec::expected_transmissions(&Population::homogeneous(p, r as u64));
        close(
            res.mean_transmissions,
            res.stderr,
            analytic,
            &format!("nofec p={p} R={r}"),
        );
    }
}

#[test]
fn layered_grid() {
    let cfg = SimConfig::paper_timing(2500);
    for &(k, h, p, r) in &[
        (7usize, 1usize, 0.05, 16usize),
        (7, 3, 0.1, 8),
        (20, 2, 0.02, 32),
    ] {
        let res = run_env(
            &cfg,
            Scheme::Layered { k, h },
            LossEnv::Independent { p },
            r,
            SEED + 1,
        );
        let analytic = layered::expected_transmissions(k, h, &Population::homogeneous(p, r as u64));
        close(
            res.mean_transmissions,
            res.stderr,
            analytic,
            &format!("layered k={k} h={h} p={p} R={r}"),
        );
    }
}

#[test]
fn integrated_grid() {
    let cfg = SimConfig::paper_timing(4000);
    for &(k, p, r) in &[(7usize, 0.05, 16usize), (20, 0.1, 8), (7, 0.01, 64)] {
        let bound = integrated::lower_bound(k, 0, &Population::homogeneous(p, r as u64));
        for scheme in [Scheme::Integrated1 { k }, Scheme::Integrated2 { k }] {
            let res = run_env(&cfg, scheme, LossEnv::Independent { p }, r, SEED + 2);
            close(
                res.mean_transmissions,
                res.stderr,
                bound,
                &format!("{} p={p} R={r}", scheme.label()),
            );
        }
    }
}

#[test]
fn scheme_ordering_matches_paper_under_independent_loss() {
    // integrated <= layered <= no-FEC at scale (Fig. 5), in the simulator.
    let cfg = SimConfig::paper_timing(1500);
    let (p, r) = (0.01, 512usize);
    let env = LossEnv::Independent { p };
    let arq = run_env(&cfg, Scheme::NoFec, env, r, SEED + 3).mean_transmissions;
    let lay = run_env(&cfg, Scheme::Layered { k: 7, h: 1 }, env, r, SEED + 3).mean_transmissions;
    let int = run_env(&cfg, Scheme::Integrated2 { k: 7 }, env, r, SEED + 3).mean_transmissions;
    assert!(int < lay, "integrated {int} < layered {lay}");
    assert!(lay < arq, "layered {lay} < no-FEC {arq}");
}

#[test]
fn shared_loss_equivalent_population_shrinks() {
    // Section 4.1: shared loss behaves like a *smaller* independent
    // population. Verify E[M] under FBT loss at R = 256 is bracketed by
    // independent-loss E[M] at R = 4 and R = 256.
    let cfg = SimConfig::paper_timing(2500);
    let p = 0.05;
    let shared = run_env(
        &cfg,
        Scheme::NoFec,
        LossEnv::FullBinaryTree { p },
        256,
        SEED + 4,
    )
    .mean_transmissions;
    let indep_small = nofec::expected_transmissions(&Population::homogeneous(p, 4));
    let indep_full = nofec::expected_transmissions(&Population::homogeneous(p, 256));
    assert!(
        shared > indep_small && shared < indep_full,
        "{indep_small} < {shared} < {indep_full}"
    );
}

#[test]
fn burst_loss_breaks_layered_but_not_large_group_integrated() {
    // Section 4.2's two headline facts in one deterministic run.
    let cfg = SimConfig::paper_timing(2500);
    let env = LossEnv::Burst {
        p: 0.01,
        mean_burst: 2.0,
    };
    let r = 64;
    let arq = run_env(&cfg, Scheme::NoFec, env, r, SEED + 5).mean_transmissions;
    let lay = run_env(&cfg, Scheme::Layered { k: 7, h: 1 }, env, r, SEED + 5).mean_transmissions;
    assert!(
        lay > arq,
        "bursts: layered(7+1) {lay} must lose to no-FEC {arq}"
    );
    let int100 = run_env(&cfg, Scheme::Integrated2 { k: 100 }, env, r, SEED + 5).mean_transmissions;
    assert!(
        int100 < 1.15,
        "k=100 integrated stays near 1 under bursts: {int100}"
    );
}

#[test]
fn rounds_bounded_by_appendix_formula() {
    let cfg = SimConfig::paper_timing(3000);
    let (k, p, r) = (20usize, 0.05, 16usize);
    let res = run_env(
        &cfg,
        Scheme::Integrated2 { k },
        LossEnv::Independent { p },
        r,
        SEED + 6,
    );
    let bound = parity_multicast::analysis::rounds::expected_rounds(
        k,
        &Population::homogeneous(p, r as u64),
    );
    assert!(
        res.mean_rounds <= bound + 0.05,
        "sim rounds {} vs bound {bound}",
        res.mean_rounds
    );
    assert!(res.mean_rounds >= 1.0);
}

#[test]
fn heterogeneous_simulation_matches_eq8() {
    // Figs. 9/10 are analytical in the paper; cross-check by simulation.
    let cfg = SimConfig::paper_timing(3000);
    let (r, alpha, p_low, p_high) = (32usize, 0.25, 0.01, 0.25);
    let env = LossEnv::TwoClass {
        alpha,
        p_low,
        p_high,
    };
    let pop = Population::two_class(r as u64, alpha, p_low, p_high);
    let arq = run_env(&cfg, Scheme::NoFec, env, r, SEED + 7);
    let arq_analytic = nofec::expected_transmissions(&pop);
    assert!(
        (arq.mean_transmissions - arq_analytic).abs() < 5.0 * arq.stderr.max(0.02),
        "hetero no-FEC: sim {} vs Eq. (7) {arq_analytic}",
        arq.mean_transmissions
    );
    let int = run_env(&cfg, Scheme::Integrated2 { k: 7 }, env, r, SEED + 8);
    let int_analytic = integrated::lower_bound(7, 0, &pop);
    assert!(
        (int.mean_transmissions - int_analytic).abs() < 5.0 * int.stderr.max(0.02),
        "hetero integrated: sim {} vs Eq. (8) {int_analytic}",
        int.mean_transmissions
    );
}

#[test]
fn shared_bursts_are_the_worst_case_for_layered_fec() {
    // Extension scenario: Gilbert chains at tree nodes give shared bursts.
    // Layered FEC (which the paper shows failing under either correlation
    // alone) fares no better when both combine; integrated with large k
    // still copes.
    let cfg = SimConfig::paper_timing(2000);
    let r = 64;
    let env = LossEnv::TreeBurst {
        p: 0.01,
        mean_burst: 2.0,
    };
    let arq = run_env(&cfg, Scheme::NoFec, env, r, SEED + 9).mean_transmissions;
    let lay = run_env(&cfg, Scheme::Layered { k: 7, h: 1 }, env, r, SEED + 9).mean_transmissions;
    assert!(
        lay > arq * 0.98,
        "layered(7+1) should show no real benefit under shared bursts: {lay} vs {arq}"
    );
    let int100 = run_env(&cfg, Scheme::Integrated2 { k: 100 }, env, r, SEED + 9).mean_transmissions;
    assert!(
        int100 < arq && int100 < 1.2,
        "large-k integrated copes: {int100}"
    );
}

#[test]
fn parity_repair_eliminates_unnecessary_receptions() {
    // Section 2.1, bullet 3: "the number of duplicate packets received due
    // to retransmissions by any receiver can be reduced nearly to zero
    // with parity transmission." Measure all three schemes.
    let cfg = SimConfig::paper_timing(2000);
    let (p, r) = (0.05, 128usize);
    let env = LossEnv::Independent { p };
    let arq = run_env(&cfg, Scheme::NoFec, env, r, SEED + 10);
    let int2 = run_env(&cfg, Scheme::Integrated2 { k: 20 }, env, r, SEED + 10);
    let int1 = run_env(&cfg, Scheme::Integrated1 { k: 20 }, env, r, SEED + 10);
    // ARQ wastes plenty: nearly every retransmission reaches R-1 receivers
    // that did not need it.
    assert!(
        arq.mean_unneeded > 0.5,
        "ARQ should waste receptions at R=128: {}",
        arq.mean_unneeded
    );
    // Integrated FEC 2: a parity is useful to *any* receiver still
    // missing packets; per packet the waste is tiny.
    let int2_per_packet = int2.mean_unneeded / 20.0;
    assert!(
        int2_per_packet < arq.mean_unneeded / 5.0,
        "integrated per-packet waste {int2_per_packet} vs ARQ {}",
        arq.mean_unneeded
    );
    // Integrated FEC 1 (receivers leave when done): exactly zero.
    assert_eq!(int1.mean_unneeded, 0.0);
}
