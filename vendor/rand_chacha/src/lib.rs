//! Offline vendored `ChaCha8Rng`.
//!
//! A genuine ChaCha stream cipher core (8 rounds) driving the workspace's
//! vendored [`rand`] traits. Deterministic under `seed_from_u64`; the
//! keystream is a real RFC-7539-layout ChaCha block function, though the
//! seed expansion does not replicate upstream `rand_chacha` exactly (this
//! workspace only relies on seeded determinism and statistical quality).

use rand::{RngCore, SeedableRng};

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

/// ChaCha with 8 rounds, exposed with the `rand_chacha` type name used by
/// this workspace.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    /// Key + constants + counter/nonce in ChaCha state layout.
    key: [u32; 8],
    counter: u64,
    buf: [u32; 16],
    /// Next unread word in `buf`; 16 means exhausted.
    idx: usize,
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        const SIGMA: [u32; 4] = [0x61707865, 0x3320646e, 0x79622d32, 0x6b206574];
        let mut s = [0u32; 16];
        s[..4].copy_from_slice(&SIGMA);
        s[4..12].copy_from_slice(&self.key);
        s[12] = self.counter as u32;
        s[13] = (self.counter >> 32) as u32;
        s[14] = 0;
        s[15] = 0;
        let mut w = s;
        for _ in 0..4 {
            // Double round: 4 column + 4 diagonal quarter rounds.
            quarter_round(&mut w, 0, 4, 8, 12);
            quarter_round(&mut w, 1, 5, 9, 13);
            quarter_round(&mut w, 2, 6, 10, 14);
            quarter_round(&mut w, 3, 7, 11, 15);
            quarter_round(&mut w, 0, 5, 10, 15);
            quarter_round(&mut w, 1, 6, 11, 12);
            quarter_round(&mut w, 2, 7, 8, 13);
            quarter_round(&mut w, 3, 4, 9, 14);
        }
        for i in 0..16 {
            self.buf[i] = w[i].wrapping_add(s[i]);
        }
        self.counter = self.counter.wrapping_add(1);
        self.idx = 0;
    }
}

impl SeedableRng for ChaCha8Rng {
    fn seed_from_u64(seed: u64) -> Self {
        // SplitMix64 expansion of the seed into a 256-bit key.
        let mut z = seed;
        let mut key = [0u32; 8];
        for pair in key.chunks_exact_mut(2) {
            z = z.wrapping_add(0x9E3779B97F4A7C15);
            let mut x = z;
            x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
            x ^= x >> 31;
            pair[0] = x as u32;
            pair[1] = (x >> 32) as u32;
        }
        ChaCha8Rng {
            key,
            counter: 0,
            buf: [0; 16],
            idx: 16,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.idx >= 16 {
            self.refill();
        }
        let v = self.buf[self.idx];
        self.idx += 1;
        v
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = ChaCha8Rng::seed_from_u64(43);
        assert_ne!(ChaCha8Rng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn f64_unit_interval_and_roughly_uniform() {
        let mut r = ChaCha8Rng::seed_from_u64(7);
        let mut below_half = 0usize;
        for _ in 0..10_000 {
            let x: f64 = r.random();
            assert!((0.0..1.0).contains(&x));
            if x < 0.5 {
                below_half += 1;
            }
        }
        assert!((4500..5500).contains(&below_half), "{below_half}");
    }
}
