//! Offline vendored property-testing harness.
//!
//! Source-compatible with the subset of the `proptest` crate this
//! workspace uses: the `proptest! { #[test] fn name(x in strategy) {..} }`
//! macro (with optional `#![proptest_config(...)]`), `any::<T>()`, integer
//! and float range strategies, tuple strategies, `prop_map` /
//! `prop_filter_map`, `proptest::collection::vec`, `prop_oneof!`, and the
//! `prop_assert*` / `prop_assume!` macros.
//!
//! Differences from upstream: generation is driven by a deterministic
//! SplitMix64 RNG seeded per test name (every run explores the same
//! cases), and failing cases are reported without shrinking. That trades
//! minimal counter-examples for zero dependencies, which the offline
//! build environment requires.

pub mod test_runner {
    /// Runner configuration (vendored subset: case count only).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of accepted cases to run per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Configure an explicit case count.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// Why a single generated case did not pass.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// `prop_assume!` filtered the case out; it is not counted.
        Reject(String),
        /// An assertion failed; the whole property fails.
        Fail(String),
    }

    /// Deterministic SplitMix64 generator driving all strategies.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seed deterministically from a test identifier.
        pub fn for_test(name: &str) -> Self {
            let mut h: u64 = 0xcbf29ce484222325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100000001b3);
            }
            TestRng { state: h }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }

        /// Next 32 random bits.
        pub fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        /// Uniform in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform integer in `[0, bound)` (`bound > 0`).
        pub fn below(&mut self, bound: u64) -> u64 {
            // Multiply-shift bounded sampling (bias negligible for tests).
            ((self.next_u64() as u128 * bound as u128) >> 64) as u64
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;
    use std::ops::{Range, RangeInclusive};

    /// A recipe producing random values of `Self::Value`.
    ///
    /// Object-safe core (`generate`) plus sized combinators, mirroring the
    /// `prop_map`-style surface of upstream proptest.
    pub trait Strategy {
        /// The produced type.
        type Value;

        /// Draw one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Transform-and-filter; regenerates until the closure returns
        /// `Some` (bounded retries).
        fn prop_filter_map<O, F>(self, whence: &'static str, f: F) -> FilterMap<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> Option<O>,
        {
            FilterMap {
                inner: self,
                whence,
                f,
            }
        }

        /// Keep only values satisfying the predicate (bounded retries).
        fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter {
                inner: self,
                whence,
                f,
            }
        }

        /// Erase the concrete strategy type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy.
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (**self).generate(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            (**self).generate(rng)
        }
    }

    /// Always produces a clone of the same value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    const FILTER_RETRIES: usize = 4096;

    /// See [`Strategy::prop_filter_map`].
    #[derive(Debug, Clone)]
    pub struct FilterMap<S, F> {
        inner: S,
        whence: &'static str,
        f: F,
    }

    impl<S, O, F> Strategy for FilterMap<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> Option<O>,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            for _ in 0..FILTER_RETRIES {
                if let Some(v) = (self.f)(self.inner.generate(rng)) {
                    return v;
                }
            }
            panic!(
                "prop_filter_map '{}' rejected {} consecutive candidates",
                self.whence, FILTER_RETRIES
            );
        }
    }

    /// See [`Strategy::prop_filter`].
    #[derive(Debug, Clone)]
    pub struct Filter<S, F> {
        inner: S,
        whence: &'static str,
        f: F,
    }

    impl<S, F> Strategy for Filter<S, F>
    where
        S: Strategy,
        F: Fn(&S::Value) -> bool,
    {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..FILTER_RETRIES {
                let v = self.inner.generate(rng);
                if (self.f)(&v) {
                    return v;
                }
            }
            panic!(
                "prop_filter '{}' rejected {} consecutive candidates",
                self.whence, FILTER_RETRIES
            );
        }
    }

    /// Uniform choice between type-erased alternatives (`prop_oneof!`).
    pub struct Union<T> {
        arms: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Build from at least one alternative.
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.arms.len() as u64) as usize;
            self.arms[i].generate(rng)
        }
    }

    /// Helper used by `prop_oneof!` to unify arm types.
    pub fn boxed_arm<S: Strategy + 'static>(s: S) -> BoxedStrategy<S::Value> {
        Box::new(s)
    }

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        /// Draw an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arb_int {
        ($($t:ty),*) => {
            $(impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            })*
        };
    }
    arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            // Finite, sign-balanced, wide dynamic range.
            let m = rng.unit_f64() * 2.0 - 1.0;
            let e = (rng.below(41) as i32 - 20) as f64;
            m * 10f64.powf(e)
        }
    }

    impl Arbitrary for char {
        fn arbitrary(rng: &mut TestRng) -> Self {
            char::from_u32(rng.below(0xD800) as u32).unwrap_or('\u{fffd}')
        }
    }

    macro_rules! arb_tuple {
        ($($name:ident),+) => {
            impl<$($name: Arbitrary),+> Arbitrary for ($($name,)+) {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    ($($name::arbitrary(rng),)+)
                }
            }
        };
    }
    arb_tuple!(A);
    arb_tuple!(A, B);
    arb_tuple!(A, B, C);
    arb_tuple!(A, B, C, D);

    /// Strategy for [`Arbitrary`] types; construct via [`crate::arbitrary::any`].
    pub struct Any<T> {
        _marker: PhantomData<fn() -> T>,
    }

    impl<T> Default for Any<T> {
        fn default() -> Self {
            Any {
                _marker: PhantomData,
            }
        }
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    macro_rules! range_strategy {
        ($($t:ty),*) => {
            $(
                impl Strategy for Range<$t> {
                    type Value = $t;
                    fn generate(&self, rng: &mut TestRng) -> $t {
                        assert!(self.start < self.end, "empty range strategy");
                        let span = (self.end as u64).wrapping_sub(self.start as u64);
                        self.start + rng.below(span) as $t
                    }
                }
                impl Strategy for RangeInclusive<$t> {
                    type Value = $t;
                    fn generate(&self, rng: &mut TestRng) -> $t {
                        let (lo, hi) = (*self.start(), *self.end());
                        assert!(lo <= hi, "empty range strategy");
                        let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                        if span == 0 {
                            // Full-width inclusive range.
                            return rng.next_u64() as $t;
                        }
                        lo + rng.below(span) as $t
                    }
                }
            )*
        };
    }
    range_strategy!(u8, u16, u32, u64, usize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    impl Strategy for RangeInclusive<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            self.start() + rng.unit_f64() * (self.end() - self.start())
        }
    }

    macro_rules! tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }
    tuple_strategy!(A);
    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
    tuple_strategy!(A, B, C, D, E);
    tuple_strategy!(A, B, C, D, E, F);
    tuple_strategy!(A, B, C, D, E, F, G);
}

pub mod arbitrary {
    use crate::strategy::{Any, Arbitrary};

    /// The canonical strategy for `T` (`any::<u8>()` etc.).
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any::default()
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Element-count bounds for collection strategies.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    /// Strategy producing `Vec`s of `element` with a length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi_inclusive - self.size.lo + 1) as u64;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Everything the `proptest!` macro body needs in scope.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Define property tests. See the crate docs for supported syntax.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! {
            config = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (config = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat_param in $strat:expr),* $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng = $crate::test_runner::TestRng::for_test(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                let mut accepted: u32 = 0;
                let mut attempts: u32 = 0;
                let max_attempts = config.cases.saturating_mul(16).max(64);
                while accepted < config.cases && attempts < max_attempts {
                    attempts += 1;
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)*
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    match outcome {
                        ::std::result::Result::Ok(()) => accepted += 1,
                        ::std::result::Result::Err(
                            $crate::test_runner::TestCaseError::Reject(_),
                        ) => {}
                        ::std::result::Result::Err(
                            $crate::test_runner::TestCaseError::Fail(msg),
                        ) => panic!(
                            "property '{}' failed after {} cases: {}",
                            stringify!($name), accepted, msg
                        ),
                    }
                }
            }
        )*
    };
}

/// Fail the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fail the current case unless the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        if !(*lhs == *rhs) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!(
                    "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                    stringify!($lhs), stringify!($rhs), lhs, rhs
                ),
            ));
        }
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        if !(*lhs == *rhs) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)+),
            ));
        }
    }};
}

/// Fail the current case if the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        if *lhs == *rhs {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($lhs),
                stringify!($rhs),
                lhs
            )));
        }
    }};
}

/// Discard the current case (not counted against the case budget) unless
/// the condition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::boxed_arm($arm)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_respect_bounds(a in 3u32..17, b in 5usize..=9, x in 0.25f64..0.75) {
            prop_assert!((3..17).contains(&a));
            prop_assert!((5..=9).contains(&b));
            prop_assert!((0.25..0.75).contains(&x));
        }

        #[test]
        fn maps_and_tuples(v in (0u8..10, 0u8..10).prop_map(|(a, b)| (a as u16) + (b as u16))) {
            prop_assert!(v <= 18);
        }

        #[test]
        fn vec_sizes(v in crate::collection::vec(any::<u8>(), 2..5)) {
            prop_assert!(v.len() >= 2 && v.len() < 5);
        }

        #[test]
        fn assume_rejects_without_failing(n in 0u32..100) {
            prop_assume!(n % 2 == 0);
            prop_assert!(n % 2 == 0);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]
        #[test]
        fn oneof_hits_each_arm_eventually(v in prop_oneof![0u32..1, 10u32..11]) {
            prop_assert!(v == 0 || v == 10);
        }
    }

    #[test]
    #[should_panic(expected = "property 'fails' failed")]
    fn failure_panics() {
        // No `#[test]` on the inner fn: it would be a nested test item
        // (uncollectable) and we call it directly below anyway.
        proptest! {
            fn fails(n in 0u32..10) {
                prop_assert!(n < 5, "n was {}", n);
            }
        }
        fails();
    }

    #[test]
    fn deterministic_across_runs() {
        use crate::strategy::Strategy;
        let mut r1 = crate::test_runner::TestRng::for_test("x");
        let mut r2 = crate::test_runner::TestRng::for_test("x");
        let s = 0u64..1000;
        for _ in 0..100 {
            assert_eq!(s.generate(&mut r1), s.generate(&mut r2));
        }
    }
}
