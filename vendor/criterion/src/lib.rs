//! Offline vendored benchmark harness, API-compatible with the subset of
//! `criterion` 0.5 this workspace's benches use.
//!
//! Measurement model: each benchmark is calibrated (iteration count grown
//! until a sample takes >= 10 ms), then timed over several samples sized
//! to a budget derived from `sample_size`; the minimum per-iteration time
//! across samples is reported (robust to scheduler noise), along with
//! throughput when configured. No statistics files are written.
//!
//! Passing `--test` (as `cargo test` does for harness-less bench targets)
//! or setting `CRITERION_QUICK=1` runs every benchmark exactly once for a
//! smoke check.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Units for reported throughput.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Abstract elements processed per iteration.
    Elements(u64),
}

/// Benchmark identifier (`group/function/parameter` path segments).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// Just the parameter as the identifier.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Timing handle passed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Run the routine `iters` times and record the elapsed wall clock.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn format_time(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

fn format_throughput(t: Throughput, ns_per_iter: f64) -> String {
    match t {
        Throughput::Bytes(bytes) => {
            let per_sec = bytes as f64 / (ns_per_iter * 1e-9);
            if per_sec >= 1024.0 * 1024.0 * 1024.0 {
                format!("{:.3} GiB/s", per_sec / (1024.0 * 1024.0 * 1024.0))
            } else if per_sec >= 1024.0 * 1024.0 {
                format!("{:.3} MiB/s", per_sec / (1024.0 * 1024.0))
            } else {
                format!("{:.3} KiB/s", per_sec / 1024.0)
            }
        }
        Throughput::Elements(n) => {
            let per_sec = n as f64 / (ns_per_iter * 1e-9);
            format!("{per_sec:.0} elem/s")
        }
    }
}

/// The benchmark driver.
pub struct Criterion {
    quick: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let quick = std::env::args().any(|a| a == "--test")
            || std::env::var_os("CRITERION_QUICK").is_some();
        Criterion { quick }
    }
}

impl Criterion {
    /// Run one standalone benchmark.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        run_benchmark(self.quick, &id.id, None, 100, f);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let quick = self.quick;
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            quick,
            throughput: None,
            sample_size: 100,
        }
    }
}

/// Group of benchmarks sharing a name prefix, throughput and sample size.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    quick: bool,
    throughput: Option<Throughput>,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Set the per-iteration throughput used in reports.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Scale the measurement budget (criterion's sample count knob).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(10);
        self
    }

    /// Run one benchmark in the group.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        let label = format!("{}/{}", self.name, id.id);
        run_benchmark(self.quick, &label, self.throughput, self.sample_size, f);
        self
    }

    /// Run one benchmark with an input value.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// Close the group (report separator).
    pub fn finish(self) {}
}

fn run_benchmark(
    quick: bool,
    label: &str,
    throughput: Option<Throughput>,
    sample_size: usize,
    mut f: impl FnMut(&mut Bencher),
) {
    if quick {
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        println!("bench {label:<40} ... ok (quick mode)");
        return;
    }

    // Calibrate: grow iteration count until one sample is >= 10 ms.
    let mut iters: u64 = 1;
    let mut elapsed;
    loop {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        elapsed = b.elapsed;
        if elapsed >= Duration::from_millis(10) || iters >= 1 << 24 {
            break;
        }
        iters = iters.saturating_mul(4);
    }

    // Measure: several samples whose combined budget tracks sample_size
    // (default 100 -> ~300 ms of measurement).
    let per_iter_ns = (elapsed.as_nanos().max(1) as f64 / iters as f64).max(0.1);
    let budget_ns = 3_000_000.0 * sample_size as f64;
    let samples: u32 = 5;
    let sample_iters =
        ((budget_ns / samples as f64 / per_iter_ns).ceil() as u64).clamp(1, 100_000_000);
    let mut best_ns_per_iter = f64::INFINITY;
    for _ in 0..samples {
        let mut b = Bencher {
            iters: sample_iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        let ns = b.elapsed.as_nanos() as f64 / sample_iters as f64;
        if ns < best_ns_per_iter {
            best_ns_per_iter = ns;
        }
    }

    match throughput {
        Some(t) => println!(
            "bench {label:<40} time: [{:>12}]  thrpt: [{:>14}]",
            format_time(best_ns_per_iter),
            format_throughput(t, best_ns_per_iter)
        ),
        None => println!(
            "bench {label:<40} time: [{:>12}]",
            format_time(best_ns_per_iter)
        ),
    }
}

/// Bundle benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
    ($name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        $crate::criterion_group!($name, $($target),+);
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_mode_runs_once() {
        let mut calls = 0u32;
        run_benchmark(true, "t", None, 100, |b| {
            b.iter(|| {
                calls += 1;
            });
        });
        assert_eq!(calls, 1);
    }

    #[test]
    fn formatting() {
        assert!(format_time(12.3).contains("ns"));
        assert!(format_time(12_300.0).contains("µs"));
        assert!(format_throughput(Throughput::Bytes(1 << 30), 1e9).contains("GiB/s"));
    }

    #[test]
    fn ids_compose() {
        assert_eq!(BenchmarkId::new("k=7", "h=3").id, "k=7/h=3");
        assert_eq!(BenchmarkId::from_parameter(42).id, "42");
    }
}
