//! Offline vendored `crossbeam` facade.
//!
//! Only `crossbeam::channel` is provided, backed by `std::sync::mpsc`
//! (whose `Sender` has been `Sync + Clone` since Rust 1.72). The error
//! types are `std`'s, which share the variant names crossbeam exposes
//! (`Timeout`, `Disconnected`).

/// MPSC channels with crossbeam's module layout.
pub mod channel {
    pub use std::sync::mpsc::{RecvError, RecvTimeoutError, SendError, Sender, TryRecvError};

    /// Receiving half (std's; not `Clone`, which this workspace never needs).
    pub use std::sync::mpsc::Receiver;

    /// Unbounded FIFO channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        std::sync::mpsc::channel()
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{unbounded, RecvTimeoutError};
    use std::time::Duration;

    #[test]
    fn send_recv_and_timeout() {
        let (tx, rx) = unbounded();
        tx.send(7).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_millis(10)).unwrap(), 7);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(5)).unwrap_err(),
            RecvTimeoutError::Timeout
        );
        let tx2 = tx.clone();
        drop(tx);
        tx2.send(8).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_millis(10)).unwrap(), 8);
    }
}
