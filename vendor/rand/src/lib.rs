//! Offline vendored subset of the `rand` 0.9 API.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the tiny slice of `rand` it actually uses: the [`RngCore`] /
//! [`Rng`] / [`SeedableRng`] traits and `Rng::random::<T>()` for the
//! primitive types drawn in the codebase. Algorithms are deterministic and
//! self-contained; they do not match upstream `rand` streams bit-for-bit
//! (nothing in this repo depends on upstream streams, only on seeded
//! determinism).

/// Low-level source of randomness.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for c in &mut chunks {
            c.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let b = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&b[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly from an RNG (the subset of
/// `StandardUniform` distributions this workspace draws).
pub trait Standard: Sized {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u8 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as u8
    }
}
impl Standard for u16 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as u16
    }
}
impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}
impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}
impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}
impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}
impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample of `T` (matches `rand` 0.9's `Rng::random`).
    fn random<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Uniform sample in `[0, 1)` convenience (not in upstream; harmless).
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.random::<f64>() < p
    }
}

impl<R: RngCore> Rng for R {}

/// RNGs constructible from a seed.
pub trait SeedableRng: Sized {
    /// Construct deterministically from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

#[cfg(test)]
mod tests {
    use super::*;

    struct SplitMix(u64);
    impl RngCore for SplitMix {
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SplitMix(1);
        for _ in 0..1000 {
            let x: f64 = r.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut r = SplitMix(7);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
