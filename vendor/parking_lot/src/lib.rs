//! Offline vendored `parking_lot` facade.
//!
//! Provides `parking_lot`-shaped `Mutex`/`RwLock` (non-poisoning `lock()`
//! signatures) backed by `std::sync`. Poisoned locks are recovered rather
//! than propagated, matching parking_lot's panic-transparent behaviour.

use std::sync;

/// Mutual exclusion lock with parking_lot's non-poisoning API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// RAII guard for [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Wrap a value.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consume and return the value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, recovering from poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner
            .lock()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Try to acquire without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

/// Reader-writer lock with parking_lot's non-poisoning API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

/// RAII guard for [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// RAII guard for [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Wrap a value.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner
            .read()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner
            .write()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basics() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_basics() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
    }
}
