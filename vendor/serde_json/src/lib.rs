//! Offline vendored `serde_json` subset: pretty/compact rendering and a
//! recursive-descent parser for the vendored [`serde::Value`] tree.

pub use serde::Value;

use std::fmt;

/// Parse or render failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.msg)
    }
}

impl std::error::Error for Error {}

fn err<T>(msg: impl Into<String>) -> Result<T, Error> {
    Err(Error { msg: msg.into() })
}

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn format_number(n: f64) -> String {
    if n.is_finite() && n == n.trunc() && n.abs() < 1e15 {
        format!("{:.1}", n)
    } else if n.is_finite() {
        format!("{}", n)
    } else {
        // JSON has no Inf/NaN; serialize as null like serde_json's lossy modes.
        "null".to_string()
    }
}

fn render(v: &Value, pretty: bool, indent: usize, out: &mut String) {
    let pad = |out: &mut String, level: usize| {
        if pretty {
            out.push('\n');
            for _ in 0..level {
                out.push_str("  ");
            }
        }
    };
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => out.push_str(&format_number(*n)),
        Value::String(s) => escape_into(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                pad(out, indent + 1);
                render(item, pretty, indent + 1, out);
            }
            pad(out, indent);
            out.push(']');
        }
        Value::Object(members) => {
            if members.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in members.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                pad(out, indent + 1);
                escape_into(k, out);
                out.push(':');
                if pretty {
                    out.push(' ');
                }
                render(val, pretty, indent + 1, out);
            }
            pad(out, indent);
            out.push('}');
        }
    }
}

/// Render with two-space indentation.
///
/// # Errors
/// Never fails for the vendored value model; the `Result` mirrors the
/// upstream signature.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    render(&value.to_value(), true, 0, &mut out);
    Ok(out)
}

/// Render compactly.
///
/// # Errors
/// Never fails for the vendored value model.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    render(&value.to_value(), false, 0, &mut out);
    Ok(out)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.parse_lit("null", Value::Null),
            Some(b't') => self.parse_lit("true", Value::Bool(true)),
            Some(b'f') => self.parse_lit("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            Some(c) => err(format!("unexpected '{}' at byte {}", c as char, self.pos)),
            None => err("unexpected end of input"),
        }
    }

    fn parse_lit(&mut self, lit: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            match b {
                b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9' => self.pos += 1,
                _ => break,
            }
        }
        let s = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|_| Error {
            msg: "bad utf8 in number".into(),
        })?;
        match s.parse::<f64>() {
            Ok(n) => Ok(Value::Number(n)),
            Err(_) => err(format!("invalid number {s:?}")),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return err("unterminated string"),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            if self.pos + 4 >= self.bytes.len() {
                                return err("truncated \\u escape");
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos + 1..self.pos + 5])
                                .map_err(|_| Error {
                                    msg: "bad \\u escape".into(),
                                })?;
                            let code = u32::from_str_radix(hex, 16).map_err(|_| Error {
                                msg: "bad \\u escape".into(),
                            })?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return err("bad escape"),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (may be multi-byte).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..]).map_err(|_| Error {
                        msg: "bad utf8 in string".into(),
                    })?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(members));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(members));
                }
                _ => return err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

/// Parse a JSON document.
///
/// # Errors
/// [`Error`] on malformed input or trailing garbage.
pub fn from_str(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return err(format!("trailing characters at byte {}", p.pos));
    }
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_pretty() {
        let v = Value::Object(vec![
            ("id".into(), Value::String("fig\"1\"".into())),
            (
                "series".into(),
                Value::Array(vec![Value::Object(vec![(
                    "points".into(),
                    Value::Array(vec![Value::Array(vec![
                        Value::Number(1.0),
                        Value::Number(2.5),
                    ])]),
                )])]),
            ),
            ("log_x".into(), Value::Bool(true)),
            ("empty".into(), Value::Array(vec![])),
        ]);
        let s = to_string_pretty(&v).unwrap();
        let back = from_str(&s).unwrap();
        assert_eq!(back, v);
        assert_eq!(back["series"][0]["points"][0][1], 2.5);
    }

    #[test]
    fn parses_numbers_and_rejects_garbage() {
        assert_eq!(from_str("-1.5e3").unwrap(), Value::Number(-1500.0));
        assert_eq!(
            from_str(" [1, 2] ").unwrap(),
            Value::Array(vec![Value::Number(1.0), Value::Number(2.0)])
        );
        assert!(from_str("[1,]").is_err());
        assert!(from_str("{\"a\":1} x").is_err());
        assert!(from_str("").is_err());
    }
}
