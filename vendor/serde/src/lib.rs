//! Offline vendored `serde` subset.
//!
//! Upstream serde's derive machinery needs proc-macro crates that are not
//! available offline, so this vendored stand-in models serialization as
//! conversion into a small JSON [`Value`] tree. Types implement
//! [`Serialize`] by hand (see `pm-bench`'s `common.rs`); `serde_json`
//! renders and parses the tree.

use std::collections::BTreeMap;
use std::ops::Index;

/// A JSON document tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (stored as `f64`).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object with insertion-ordered keys.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Object member by key, [`Value::Null`] if absent or not an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(m) => m.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Array element by index.
    pub fn get_index(&self, i: usize) -> Option<&Value> {
        match self {
            Value::Array(a) => a.get(i),
            _ => None,
        }
    }

    /// The number, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The string, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }
}

static NULL: Value = Value::Null;

impl Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl Index<usize> for Value {
    type Output = Value;
    fn index(&self, i: usize) -> &Value {
        self.get_index(i).unwrap_or(&NULL)
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<f64> for Value {
    fn eq(&self, other: &f64) -> bool {
        self.as_f64() == Some(*other)
    }
}

impl PartialEq<i32> for Value {
    fn eq(&self, other: &i32) -> bool {
        self.as_f64() == Some(*other as f64)
    }
}

impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        matches!(self, Value::Bool(b) if b == other)
    }
}

/// Conversion into the JSON [`Value`] tree (this vendored subset's stand-in
/// for upstream serde's `Serialize`).
pub trait Serialize {
    /// Build the JSON tree for `self`.
    fn to_value(&self) -> Value;
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

macro_rules! impl_serialize_num {
    ($($t:ty),*) => {
        $(impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(*self as f64)
            }
        })*
    };
}
impl_serialize_num!(f64, f32, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(v) => v.to_value(),
        }
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Array(vec![
            self.0.to_value(),
            self.1.to_value(),
            self.2.to_value(),
        ])
    }
}

impl<K: AsRef<str>, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.as_ref().to_string(), v.to_value()))
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_and_eq() {
        let v = Value::Object(vec![
            ("id".into(), Value::String("figX".into())),
            (
                "pts".into(),
                Value::Array(vec![Value::Number(1.0), Value::Number(2.0)]),
            ),
        ]);
        assert_eq!(v["id"], "figX");
        assert_eq!(v["pts"][1], 2.0);
        assert_eq!(v["missing"], Value::Null);
    }

    #[test]
    fn tuple_and_vec_serialize() {
        let pts: Vec<(f64, f64)> = vec![(1.0, 2.0)];
        match pts.to_value() {
            Value::Array(a) => assert_eq!(
                a[0],
                Value::Array(vec![Value::Number(1.0), Value::Number(2.0)])
            ),
            other => panic!("{other:?}"),
        }
    }
}
