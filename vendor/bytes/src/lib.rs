//! Offline vendored subset of the `bytes` crate.
//!
//! [`Bytes`] is a cheaply-cloneable, sliceable, immutable byte buffer
//! (an `Arc<[u8]>` window or a borrowed `&'static` slice); [`BytesMut`]
//! is a growable builder that freezes into [`Bytes`]. Only the API this
//! workspace exercises is provided: big-endian `get_*`/`put_*` cursor
//! operations, `slice`, `split_to`, and the usual conversions.

use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Bound, Deref, DerefMut, RangeBounds};
use std::sync::Arc;

#[derive(Clone)]
enum Inner {
    Static(&'static [u8]),
    Shared(Arc<Vec<u8>>),
}

/// Immutable shared byte buffer with O(1) `clone` and `slice`.
#[derive(Clone)]
pub struct Bytes {
    inner: Inner,
    start: usize,
    end: usize,
}

impl Bytes {
    /// Empty buffer.
    pub const fn new() -> Self {
        Bytes {
            inner: Inner::Static(&[]),
            start: 0,
            end: 0,
        }
    }

    /// Borrow a static slice without copying.
    pub const fn from_static(s: &'static [u8]) -> Self {
        Bytes {
            inner: Inner::Static(s),
            start: 0,
            end: s.len(),
        }
    }

    /// Copy a slice into a fresh shared buffer.
    pub fn copy_from_slice(s: &[u8]) -> Self {
        Bytes::from(s.to_vec())
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    fn backing(&self) -> &[u8] {
        match &self.inner {
            Inner::Static(s) => s,
            Inner::Shared(v) => v.as_slice(),
        }
    }

    /// Sub-window sharing the same backing storage.
    ///
    /// # Panics
    /// Panics if the range is out of bounds.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let len = self.len();
        let begin = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => len,
        };
        assert!(begin <= end && end <= len, "slice out of bounds");
        Bytes {
            inner: self.inner.clone(),
            start: self.start + begin,
            end: self.start + end,
        }
    }

    /// Split off and return the first `at` bytes; `self` keeps the rest.
    ///
    /// # Panics
    /// Panics if `at > len`.
    pub fn split_to(&mut self, at: usize) -> Bytes {
        assert!(at <= self.len(), "split_to out of bounds");
        let head = Bytes {
            inner: self.inner.clone(),
            start: self.start,
            end: self.start + at,
        };
        self.start += at;
        head
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.backing()[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Bytes {
            inner: Inner::Shared(Arc::new(v)),
            start: 0,
            end,
        }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Self {
        Bytes::from_static(s)
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Self {
        Bytes::from_static(s.as_bytes())
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Self {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self[..] == other[..]
    }
}
impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        &self[..] == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        &self[..] == *other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self[..] == other[..]
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self[..].hash(state)
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self[..].cmp(&other[..])
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.iter() {
            for e in std::ascii::escape_default(b) {
                write!(f, "{}", e as char)?;
            }
        }
        write!(f, "\"")
    }
}

/// Read cursor over a byte source (big-endian getters).
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// Current unread window.
    fn chunk(&self) -> &[u8];
    /// Discard the next `cnt` bytes.
    fn advance(&mut self, cnt: usize);

    /// Read one byte.
    ///
    /// # Panics
    /// Panics (like upstream `bytes`) when fewer than the requested bytes
    /// remain; callers are expected to check [`Buf::remaining`] first.
    fn get_u8(&mut self) -> u8 {
        let v = self.chunk()[0];
        self.advance(1);
        v
    }
    /// Read a big-endian `u16`.
    fn get_u16(&mut self) -> u16 {
        let v = u16::from_be_bytes(self.chunk()[..2].try_into().unwrap());
        self.advance(2);
        v
    }
    /// Read a big-endian `u32`.
    fn get_u32(&mut self) -> u32 {
        let v = u32::from_be_bytes(self.chunk()[..4].try_into().unwrap());
        self.advance(4);
        v
    }
    /// Read a big-endian `u64`.
    fn get_u64(&mut self) -> u64 {
        let v = u64::from_be_bytes(self.chunk()[..8].try_into().unwrap());
        self.advance(8);
        v
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self
    }
    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end");
        self.start += cnt;
    }
}

/// Write cursor over a growable byte sink (big-endian putters).
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }
    /// Append a big-endian `u16`.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }
    /// Append a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }
    /// Append a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
}

/// Growable byte buffer that freezes into [`Bytes`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Empty buffer.
    pub fn new() -> Self {
        BytesMut { data: Vec::new() }
    }

    /// Empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Append a slice (mirrors `Vec::extend_from_slice`).
    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }

    /// Resize to `new_len`, filling with `value` when growing.
    pub fn resize(&mut self, new_len: usize, value: u8) {
        self.data.resize(new_len, value);
    }

    /// Convert into an immutable [`Bytes`] without copying.
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl AsMut<[u8]> for BytesMut {
    fn as_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_cursor() {
        let mut b = BytesMut::with_capacity(16);
        b.put_u16(0xBEEF);
        b.put_u8(7);
        b.put_u32(0xDEADBEEF);
        b.put_u64(42);
        b.put_slice(b"xyz");
        let mut bytes = b.freeze();
        assert_eq!(bytes.remaining(), 2 + 1 + 4 + 8 + 3);
        assert_eq!(bytes.get_u16(), 0xBEEF);
        assert_eq!(bytes.get_u8(), 7);
        assert_eq!(bytes.get_u32(), 0xDEADBEEF);
        assert_eq!(bytes.get_u64(), 42);
        assert_eq!(&bytes[..], b"xyz");
    }

    #[test]
    fn slice_and_split_share_storage() {
        let b = Bytes::from(vec![1, 2, 3, 4, 5]);
        let s = b.slice(1..4);
        assert_eq!(&s[..], &[2, 3, 4]);
        let mut c = b.clone();
        let head = c.split_to(2);
        assert_eq!(&head[..], &[1, 2]);
        assert_eq!(&c[..], &[3, 4, 5]);
        assert_eq!(b.len(), 5, "original untouched");
    }

    #[test]
    fn equality_and_statics() {
        assert_eq!(Bytes::from_static(b"hi"), Bytes::from(b"hi".to_vec()));
        assert_eq!(Bytes::new().len(), 0);
        assert!(Bytes::new().is_empty());
    }
}
