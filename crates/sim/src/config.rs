//! Simulation parameters shared by every scheme.

/// Timing and effort parameters of one simulation run.
///
/// Defaults follow Section 4.2 of the paper: packet spacing
/// `delta = 40 ms` (Bolot's measured 25 packets/s INRIA–UCL path) and
/// feedback turnaround `T = 300 ms`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimConfig {
    /// Spacing between consecutive packet transmissions, seconds.
    pub delta: f64,
    /// Feedback/retransmission turnaround `T`, seconds: the gap a scheme
    /// waits between a (re)transmission round and the next.
    pub feedback_delay: f64,
    /// Number of independent transmission groups (or packets, for no-FEC)
    /// to average over.
    pub trials: usize,
}

impl SimConfig {
    /// The paper's Section 4.2 timing with a chosen trial count.
    ///
    /// # Panics
    /// Panics if `trials == 0`.
    pub fn paper_timing(trials: usize) -> Self {
        assert!(trials > 0, "need at least one trial");
        SimConfig {
            delta: 0.040,
            feedback_delay: 0.300,
            trials,
        }
    }

    /// Override the packet spacing.
    ///
    /// # Panics
    /// Panics unless `delta > 0`.
    pub fn with_delta(mut self, delta: f64) -> Self {
        assert!(delta > 0.0, "delta must be positive");
        self.delta = delta;
        self
    }

    /// Override the feedback turnaround.
    ///
    /// # Panics
    /// Panics if negative.
    pub fn with_feedback_delay(mut self, t: f64) -> Self {
        assert!(t >= 0.0, "feedback delay cannot be negative");
        self.feedback_delay = t;
        self
    }
}

impl Default for SimConfig {
    fn default() -> Self {
        Self::paper_timing(1000)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults() {
        let c = SimConfig::paper_timing(500);
        assert_eq!(c.delta, 0.040);
        assert_eq!(c.feedback_delay, 0.300);
        assert_eq!(c.trials, 500);
    }

    #[test]
    fn builders() {
        let c = SimConfig::paper_timing(10)
            .with_delta(0.01)
            .with_feedback_delay(0.0);
        assert_eq!(c.delta, 0.01);
        assert_eq!(c.feedback_delay, 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one trial")]
    fn zero_trials_rejected() {
        let _ = SimConfig::paper_timing(0);
    }
}
