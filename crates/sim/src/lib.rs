#![forbid(unsafe_code)]
//! Simulation of reliable-multicast loss recovery — the tool behind the
//! paper's Figs. 11, 12, 15 and 16 (the scenarios where closed forms are
//! unavailable: shared tree loss and temporally correlated burst loss).
//!
//! Four recovery schemes are simulated, each with the exact timing model of
//! the paper's Fig. 13 (`delta` between consecutive packets, `T` for the
//! feedback/retransmission turnaround):
//!
//! * [`scheme::nofec`] — plain ARQ; retransmissions of a packet spaced
//!   `delta + T`.
//! * [`scheme::layered`] — FEC blocks of `k` data + `h` parities below an
//!   ARQ layer; a packet keeps its block position across retransmission
//!   rounds, consecutive blocks separated by `delta + T`.
//! * [`scheme::integrated_1`] — parities stream right behind the data at
//!   the full rate `1/delta`; each receiver "leaves the group" once it
//!   holds `k` packets (no feedback, no unnecessary receptions).
//! * [`scheme::integrated_2`] — the NP-style hybrid ARQ: after each round
//!   the sender learns the maximum number of packets any receiver still
//!   needs and multicasts exactly that many parities, rounds separated by
//!   `delta + T` (which *interleaves* parities across loss bursts).
//!
//! Every scheme is generic over a [`pm_loss::LossModel`], so the same code
//! runs under independent, shared-tree (FBT) and Markov burst loss. All
//! simulations are deterministic given the model's seed.
//!
//! The [`runner`] entry points seed each trial independently via
//! `pm_par::mix_seed(seed, trial_index)`, which makes trials order-free:
//! [`runner::run_env_par`] and [`runner::sweep_receivers_par`] fan them
//! across a [`pm_par::Pool`] and return results **bit-identical** to the
//! serial [`runner::run_env`] / [`runner::sweep_receivers`] at any worker
//! count.
//!
//! The headline metric matches the paper: **E\[M\]**, the expected number of
//! packet transmissions per data packet delivered reliably to every
//! receiver, reported with its standard error ([`metrics::SimResult`]).
//!
//! ```
//! use pm_sim::runner::{run_env, LossEnv, Scheme};
//! use pm_sim::SimConfig;
//! let cfg = SimConfig::paper_timing(200);
//! let res = run_env(&cfg, Scheme::Integrated2 { k: 7 },
//!                   LossEnv::Independent { p: 0.05 }, 16, 42);
//! assert!(res.mean_transmissions >= 1.0);
//! ```

pub mod config;
pub mod metrics;
pub mod runner;
pub mod scheme;

pub use config::SimConfig;
pub use metrics::{RunningStat, SimResult};
