//! Online statistics and simulation results.

/// Welford online mean/variance accumulator.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RunningStat {
    n: u64,
    mean: f64,
    m2: f64,
}

impl RunningStat {
    /// Empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let d = x - self.mean;
        self.mean += d / self.n as f64;
        self.m2 += d * (x - self.mean);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 when empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Unbiased sample variance (0 with fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Standard error of the mean.
    pub fn stderr(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            (self.variance() / self.n as f64).sqrt()
        }
    }
}

/// Result of one simulated configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimResult {
    /// Mean transmissions per data packet, `E[M]`.
    pub mean_transmissions: f64,
    /// Standard error of `mean_transmissions`.
    pub stderr: f64,
    /// Mean transmission rounds per group (1 when the scheme has no round
    /// structure, e.g. integrated FEC 1).
    pub mean_rounds: f64,
    /// Mean *unnecessary receptions* per receiver per transmission group:
    /// packets received by a receiver that no longer needed them (the
    /// duplicate-waste metric of the paper's Section 2.1; parity repair
    /// drives it "nearly to zero").
    pub mean_unneeded: f64,
    /// Trials averaged.
    pub trials: usize,
}

impl SimResult {
    /// Assemble from accumulators.
    pub fn from_stats(m: &RunningStat, rounds: &RunningStat, unneeded: &RunningStat) -> Self {
        SimResult {
            mean_transmissions: m.mean(),
            stderr: m.stderr(),
            mean_rounds: rounds.mean(),
            mean_unneeded: unneeded.mean(),
            trials: m.count() as usize,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_variance() {
        let mut s = RunningStat::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.push(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        // Population variance 4 => sample variance 32/7.
        assert!((s.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert!((s.stderr() - (32.0 / 7.0 / 8.0_f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn degenerate_cases() {
        let s = RunningStat::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.stderr(), 0.0);
        let mut s = RunningStat::new();
        s.push(3.0);
        assert_eq!(s.mean(), 3.0);
        assert_eq!(s.variance(), 0.0);
    }

    #[test]
    fn result_assembly() {
        let mut m = RunningStat::new();
        let mut r = RunningStat::new();
        for i in 0..10 {
            m.push(1.0 + i as f64 * 0.1);
            r.push(2.0);
        }
        let res = SimResult::from_stats(&m, &r, &RunningStat::new());
        assert_eq!(res.trials, 10);
        assert!((res.mean_rounds - 2.0).abs() < 1e-12);
        assert_eq!(res.mean_unneeded, 0.0);
        assert!(res.stderr > 0.0);
    }
}
