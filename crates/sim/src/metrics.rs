//! Simulation results.
//!
//! The Welford accumulator lives in `pm-obs` ([`pm_obs::RunningStat`]) so
//! the observability layer and the simulator share one implementation; it
//! is re-exported here for existing `pm_sim::RunningStat` call sites.

pub use pm_obs::RunningStat;

/// Result of one simulated configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimResult {
    /// Mean transmissions per data packet, `E[M]`.
    pub mean_transmissions: f64,
    /// Standard error of `mean_transmissions` (`NaN` with fewer than two
    /// trials — undefined, not zero).
    pub stderr: f64,
    /// Half-width of the 95% confidence interval on `mean_transmissions`
    /// (`1.96 × stderr`; `NaN` with fewer than two trials).
    pub ci95: f64,
    /// Mean transmission rounds per group (1 when the scheme has no round
    /// structure, e.g. integrated FEC 1).
    pub mean_rounds: f64,
    /// Mean *unnecessary receptions* per receiver per transmission group:
    /// packets received by a receiver that no longer needed them (the
    /// duplicate-waste metric of the paper's Section 2.1; parity repair
    /// drives it "nearly to zero").
    pub mean_unneeded: f64,
    /// Trials averaged.
    pub trials: usize,
}

impl SimResult {
    /// Assemble from accumulators.
    pub fn from_stats(m: &RunningStat, rounds: &RunningStat, unneeded: &RunningStat) -> Self {
        SimResult {
            mean_transmissions: m.mean(),
            stderr: m.stderr(),
            ci95: m.ci95(),
            mean_rounds: rounds.mean(),
            mean_unneeded: unneeded.mean(),
            trials: m.count() as usize,
        }
    }
}

/// Raw outputs of one simulated trial — one transmission group (one packet
/// for no-FEC), produced by the per-trial scheme functions and folded into
/// [`SchemeStats`] by the runner. Keeping the trial→accumulator step
/// explicit is what lets serial and parallel drivers share one
/// numerically identical aggregation path.
#[derive(Debug, Clone, PartialEq)]
pub struct TrialOut {
    /// Per-packet `E[M]` samples this trial contributes, in slot order —
    /// `k` values for layered FEC (one per data slot), a single value for
    /// the other schemes.
    pub m_values: Vec<f64>,
    /// Rounds the trial took (1 for schemes without round structure).
    pub rounds: f64,
    /// Unnecessary receptions per receiver, `None` for schemes that by
    /// construction produce none (integrated FEC 1, where completed
    /// receivers leave the group).
    pub unneeded: Option<f64>,
}

impl TrialOut {
    /// Mean of this trial's `m_values` — the per-trial `M` sample reported
    /// in `sim_trial` trace events.
    pub fn mean_m(&self) -> f64 {
        if self.m_values.is_empty() {
            return 0.0;
        }
        self.m_values.iter().sum::<f64>() / self.m_values.len() as f64
    }
}

/// The three per-run accumulators every scheme feeds, with a Chan-et-al
/// merge so per-chunk instances from a parallel run collapse into one
/// result. Both the serial and the parallel driver accumulate through
/// this type with the *same chunk layout and merge order*, which is what
/// makes their `SimResult`s bit-identical.
#[derive(Debug, Clone, Default)]
pub struct SchemeStats {
    m: RunningStat,
    rounds: RunningStat,
    unneeded: RunningStat,
}

impl SchemeStats {
    /// Empty accumulators.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fold one trial's outputs in, in the same push order the legacy
    /// single-stream runners used.
    pub fn push_trial(&mut self, out: &TrialOut) {
        for &m in &out.m_values {
            self.m.push(m);
        }
        self.rounds.push(out.rounds);
        if let Some(u) = out.unneeded {
            self.unneeded.push(u);
        }
    }

    /// Absorb another accumulator (parallel variance combine on all three
    /// statistics).
    pub fn merge(&mut self, other: &SchemeStats) {
        self.m.merge(&other.m);
        self.rounds.merge(&other.rounds);
        self.unneeded.merge(&other.unneeded);
    }

    /// Number of `E[M]` samples accumulated so far.
    pub fn count(&self) -> u64 {
        self.m.count()
    }

    /// Finish into a [`SimResult`].
    pub fn result(&self) -> SimResult {
        SimResult::from_stats(&self.m, &self.rounds, &self.unneeded)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn result_assembly() {
        let mut m = RunningStat::new();
        let mut r = RunningStat::new();
        for i in 0..10 {
            m.push(1.0 + i as f64 * 0.1);
            r.push(2.0);
        }
        let res = SimResult::from_stats(&m, &r, &RunningStat::new());
        assert_eq!(res.trials, 10);
        assert!((res.mean_rounds - 2.0).abs() < 1e-12);
        assert_eq!(res.mean_unneeded, 0.0);
        assert!(res.stderr > 0.0);
        assert!((res.ci95 - 1.96 * res.stderr).abs() < 1e-12);
    }

    #[test]
    fn single_trial_interval_is_nan() {
        let mut m = RunningStat::new();
        m.push(3.0);
        let res = SimResult::from_stats(&m, &m, &m);
        assert_eq!(res.trials, 1);
        assert_eq!(res.mean_transmissions, 3.0);
        assert!(res.stderr.is_nan(), "n=1 stderr must be NaN, not 0");
        assert!(res.ci95.is_nan());
    }
}
