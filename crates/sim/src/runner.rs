//! Scheme dispatch and parameter sweeps.

use pm_loss::{GilbertLoss, IndependentLoss, LossModel, TreeBurstLoss, TreeLoss, TwoClassLoss};
use pm_obs::{Event, Obs};

use crate::config::SimConfig;
use crate::metrics::SimResult;
use crate::scheme;

/// A recovery scheme with its coding parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scheme {
    /// Plain ARQ.
    NoFec,
    /// Layered FEC with TG size `k` and `h` parities per block.
    Layered { k: usize, h: usize },
    /// Integrated FEC 1: parities streamed back-to-back, receivers leave.
    Integrated1 { k: usize },
    /// Integrated FEC 2: NP-style rounds, parities on demand.
    Integrated2 { k: usize },
}

impl Scheme {
    /// Short label used in figure output.
    pub fn label(&self) -> String {
        match self {
            Scheme::NoFec => "no-FEC".to_string(),
            Scheme::Layered { k, h } => format!("layered({k}+{h})"),
            Scheme::Integrated1 { k } => format!("integrated1(k={k})"),
            Scheme::Integrated2 { k } => format!("integrated2(k={k})"),
        }
    }
}

/// Run one scheme against one loss model.
pub fn run<M: LossModel>(cfg: &SimConfig, scheme: Scheme, model: &mut M) -> SimResult {
    match scheme {
        Scheme::NoFec => scheme::nofec(cfg, model),
        Scheme::Layered { k, h } => scheme::layered(cfg, k, h, model),
        Scheme::Integrated1 { k } => scheme::integrated_1(cfg, k, model),
        Scheme::Integrated2 { k } => scheme::integrated_2(cfg, k, model),
    }
}

/// The loss environments of Section 4, by name.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LossEnv {
    /// Independent per-receiver loss with probability `p` (receivers only).
    Independent { p: f64 },
    /// Full binary tree of height `d` (`R = 2^d`), per-receiver end-to-end
    /// loss `p` (Section 4.1).
    FullBinaryTree { p: f64 },
    /// Two-state Markov burst loss with probability `p` and mean burst
    /// length `b`, calibrated at the run's `delta` (Section 4.2).
    Burst { p: f64, mean_burst: f64 },
    /// Two-class heterogeneous population (Section 3.3): fraction `alpha`
    /// of receivers at `p_high`, the rest at `p_low`.
    TwoClass { alpha: f64, p_low: f64, p_high: f64 },
    /// Shared bursts: Gilbert chains at every FBT node (extension
    /// combining Sections 4.1 and 4.2).
    TreeBurst { p: f64, mean_burst: f64 },
}

/// Run `scheme` in `env` with `receivers` receivers (must be a power of two
/// for [`LossEnv::FullBinaryTree`]).
///
/// # Panics
/// Panics if `receivers == 0`, or is not a power of two for the FBT
/// environment.
pub fn run_env(
    cfg: &SimConfig,
    scheme: Scheme,
    env: LossEnv,
    receivers: usize,
    seed: u64,
) -> SimResult {
    assert!(receivers > 0, "need at least one receiver");
    match env {
        LossEnv::Independent { p } => {
            let mut m = IndependentLoss::new(receivers, p, seed);
            run(cfg, scheme, &mut m)
        }
        LossEnv::FullBinaryTree { p } => {
            assert!(
                receivers.is_power_of_two(),
                "FBT needs a power-of-two receiver count"
            );
            let d = receivers.trailing_zeros();
            let mut m = TreeLoss::full_binary(d, p, seed);
            run(cfg, scheme, &mut m)
        }
        LossEnv::Burst { p, mean_burst } => {
            let mut m = GilbertLoss::new(receivers, p, mean_burst, cfg.delta, seed);
            run(cfg, scheme, &mut m)
        }
        LossEnv::TwoClass {
            alpha,
            p_low,
            p_high,
        } => {
            let mut m = TwoClassLoss::new(receivers, alpha, p_low, p_high, seed);
            run(cfg, scheme, &mut m)
        }
        LossEnv::TreeBurst { p, mean_burst } => {
            assert!(
                receivers.is_power_of_two(),
                "tree-burst needs a power-of-two receiver count"
            );
            let d = receivers.trailing_zeros();
            let mut m = TreeBurstLoss::new(d, p, mean_burst, cfg.delta, seed);
            run(cfg, scheme, &mut m)
        }
    }
}

/// [`run_env`] with a `sim_run` summary event emitted to `obs` at
/// timestamp `now` once the run finishes.
///
/// # Panics
/// Same conditions as [`run_env`].
pub fn run_env_traced(
    cfg: &SimConfig,
    scheme: Scheme,
    env: LossEnv,
    receivers: usize,
    seed: u64,
    obs: &Obs,
    now: f64,
) -> SimResult {
    let res = run_env(cfg, scheme, env, receivers, seed);
    obs.emit(now, || Event::SimRun {
        scheme: scheme.label(),
        receivers: receivers as u64,
        trials: res.trials as u64,
        mean_m: res.mean_transmissions,
        ci95: res.ci95,
        mean_rounds: res.mean_rounds,
    });
    res
}

/// Sweep receiver counts `2^0 .. 2^max_exp`, returning `(R, result)` pairs.
pub fn sweep_receivers(
    cfg: &SimConfig,
    scheme: Scheme,
    env: LossEnv,
    max_exp: u32,
    seed: u64,
) -> Vec<(usize, SimResult)> {
    (0..=max_exp)
        .map(|d| {
            let r = 1usize << d;
            (r, run_env(cfg, scheme, env, r, seed ^ (d as u64) << 32))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels() {
        assert_eq!(Scheme::NoFec.label(), "no-FEC");
        assert_eq!(Scheme::Layered { k: 7, h: 1 }.label(), "layered(7+1)");
        assert_eq!(Scheme::Integrated2 { k: 20 }.label(), "integrated2(k=20)");
    }

    #[test]
    fn dispatch_runs_all_schemes() {
        let cfg = SimConfig::paper_timing(50);
        for s in [
            Scheme::NoFec,
            Scheme::Layered { k: 3, h: 1 },
            Scheme::Integrated1 { k: 3 },
            Scheme::Integrated2 { k: 3 },
        ] {
            let res = run_env(&cfg, s, LossEnv::Independent { p: 0.1 }, 4, 1);
            assert!(res.mean_transmissions >= 1.0, "{s:?}");
            assert_eq!(
                res.trials,
                if matches!(s, Scheme::Layered { .. }) {
                    150
                } else {
                    50
                }
            );
        }
    }

    #[test]
    fn environments_construct() {
        let cfg = SimConfig::paper_timing(30);
        for env in [
            LossEnv::Independent { p: 0.05 },
            LossEnv::FullBinaryTree { p: 0.05 },
            LossEnv::Burst {
                p: 0.05,
                mean_burst: 2.0,
            },
            LossEnv::TwoClass {
                alpha: 0.25,
                p_low: 0.01,
                p_high: 0.25,
            },
            LossEnv::TreeBurst {
                p: 0.05,
                mean_burst: 2.0,
            },
        ] {
            let res = run_env(&cfg, Scheme::NoFec, env, 8, 2);
            assert!(res.mean_transmissions >= 1.0);
        }
    }

    #[test]
    fn shared_loss_needs_fewer_transmissions() {
        // Fig. 11/12's core observation: FBT shared loss yields lower E[M]
        // than independent loss at the same per-receiver p.
        let cfg = SimConfig::paper_timing(1500);
        let r = 256;
        let indep =
            run_env(&cfg, Scheme::NoFec, LossEnv::Independent { p: 0.05 }, r, 7).mean_transmissions;
        let shared = run_env(
            &cfg,
            Scheme::NoFec,
            LossEnv::FullBinaryTree { p: 0.05 },
            r,
            7,
        )
        .mean_transmissions;
        assert!(
            shared < indep,
            "shared loss E[M]={shared} should undercut independent {indep}"
        );
    }

    #[test]
    fn sweep_shapes() {
        let cfg = SimConfig::paper_timing(60);
        let pts = sweep_receivers(&cfg, Scheme::NoFec, LossEnv::Independent { p: 0.1 }, 4, 3);
        assert_eq!(pts.len(), 5);
        assert_eq!(pts[0].0, 1);
        assert_eq!(pts[4].0, 16);
        // Monotone within noise: last >= first.
        assert!(pts[4].1.mean_transmissions >= pts[0].1.mean_transmissions);
    }

    #[test]
    fn traced_run_emits_summary() {
        use std::sync::Arc;
        let ring = Arc::new(pm_obs::RingRecorder::new(4));
        let obs = Obs::new(ring.clone());
        let cfg = SimConfig::paper_timing(40);
        let res = run_env_traced(
            &cfg,
            Scheme::Integrated2 { k: 3 },
            LossEnv::Independent { p: 0.1 },
            4,
            1,
            &obs,
            2.5,
        );
        let events = ring.events();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].0, 2.5);
        match &events[0].1 {
            Event::SimRun {
                scheme,
                receivers,
                trials,
                mean_m,
                ..
            } => {
                assert_eq!(scheme, "integrated2(k=3)");
                assert_eq!(*receivers, 4);
                assert_eq!(*trials as usize, res.trials);
                assert_eq!(*mean_m, res.mean_transmissions);
            }
            other => panic!("expected SimRun, got {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn fbt_requires_power_of_two() {
        let cfg = SimConfig::paper_timing(10);
        let _ = run_env(
            &cfg,
            Scheme::NoFec,
            LossEnv::FullBinaryTree { p: 0.1 },
            3,
            0,
        );
    }
}
