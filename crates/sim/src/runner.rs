//! Scheme dispatch, deterministic per-trial seeding, and parameter sweeps
//! — serial and parallel.
//!
//! # Execution model
//!
//! [`run_env`] gives every trial its **own** loss model, seeded with
//! [`pm_par::mix_seed`]`(seed, trial_index)`. Trials are therefore
//! mutually independent and order-free: trial 517 samples the same random
//! bits whether it runs first, last, or on another thread. [`run_env_par`]
//! exploits exactly that — it fans trial chunks across a [`Pool`] and
//! merges per-chunk [`SchemeStats`] in fixed chunk order (Chan et al.
//! parallel variance combine), so its [`SimResult`] is **bit-identical**
//! to the serial one for every scheme × environment pair; the
//! `parallel_equivalence` integration test pins this.
//!
//! The pre-existing single-stream drivers ([`run`] and the public scheme
//! functions) remain for callers that bring their own stateful model, but
//! everything seeded through a [`LossEnv`] flows through the per-trial
//! path.

use pm_loss::{GilbertLoss, IndependentLoss, LossModel, TreeBurstLoss, TreeLoss, TwoClassLoss};
use pm_obs::{Event, EventBuffer, Obs};
use pm_par::{mix_seed, Pool};

use crate::config::SimConfig;
use crate::metrics::{SchemeStats, SimResult, TrialOut};
use crate::scheme;

/// Trials per work chunk in the parallel drivers. Fixed (never derived
/// from the worker count) so the chunk layout — and with it the merge
/// order of floating-point accumulators — is a pure function of the trial
/// count. Small enough to load-balance a 4-worker pool on a 50-trial run,
/// large enough that the one atomic fetch-add per chunk is noise.
const TRIAL_CHUNK: usize = 8;

/// A recovery scheme with its coding parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scheme {
    /// Plain ARQ.
    NoFec,
    /// Layered FEC with TG size `k` and `h` parities per block.
    Layered { k: usize, h: usize },
    /// Integrated FEC 1: parities streamed back-to-back, receivers leave.
    Integrated1 { k: usize },
    /// Integrated FEC 2: NP-style rounds, parities on demand.
    Integrated2 { k: usize },
}

impl Scheme {
    /// Short label used in figure output.
    pub fn label(&self) -> String {
        match self {
            Scheme::NoFec => "no-FEC".to_string(),
            Scheme::Layered { k, h } => format!("layered({k}+{h})"),
            Scheme::Integrated1 { k } => format!("integrated1(k={k})"),
            Scheme::Integrated2 { k } => format!("integrated2(k={k})"),
        }
    }

    /// Coding geometry `(k, h)` as recorded in `session_config` trace
    /// events. No-FEC sends bare packets (`k = 1`, no parity); the
    /// integrated schemes generate parities on demand, so their static
    /// budget is reported as `h = 0`.
    pub fn geometry(&self) -> (u32, u32) {
        match self {
            Scheme::NoFec => (1, 0),
            Scheme::Layered { k, h } => (*k as u32, *h as u32),
            Scheme::Integrated1 { k } | Scheme::Integrated2 { k } => (*k as u32, 0),
        }
    }

    /// Validate coding parameters (the per-trial path checks them once up
    /// front rather than once per trial).
    fn validate(&self) {
        match self {
            Scheme::NoFec => {}
            Scheme::Layered { k, .. } | Scheme::Integrated1 { k } | Scheme::Integrated2 { k } => {
                assert!(*k >= 1, "k must be at least 1");
            }
        }
    }
}

/// Simulate exactly one trial of `scheme` on `model`, advancing `now`.
fn run_trial<M: LossModel>(
    cfg: &SimConfig,
    scheme: Scheme,
    model: &mut M,
    now: &mut f64,
) -> TrialOut {
    match scheme {
        Scheme::NoFec => scheme::nofec_trial(cfg, model, now),
        Scheme::Layered { k, h } => scheme::layered_trial(cfg, k, h, model, now),
        Scheme::Integrated1 { k } => scheme::integrated_1_trial(cfg, k, model, now),
        Scheme::Integrated2 { k } => scheme::integrated_2_trial(cfg, k, model, now),
    }
}

/// Run one scheme against one caller-supplied loss model: all
/// `cfg.trials` trials consume the model's single random stream in order.
/// Kept for callers with bespoke stateful models; the [`LossEnv`] entry
/// points reseed per trial instead (and can run in parallel).
pub fn run<M: LossModel>(cfg: &SimConfig, scheme: Scheme, model: &mut M) -> SimResult {
    match scheme {
        Scheme::NoFec => scheme::nofec(cfg, model),
        Scheme::Layered { k, h } => scheme::layered(cfg, k, h, model),
        Scheme::Integrated1 { k } => scheme::integrated_1(cfg, k, model),
        Scheme::Integrated2 { k } => scheme::integrated_2(cfg, k, model),
    }
}

/// The loss environments of Section 4, by name.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LossEnv {
    /// Independent per-receiver loss with probability `p` (receivers only).
    Independent { p: f64 },
    /// Full binary tree of height `d` (`R = 2^d`), per-receiver end-to-end
    /// loss `p` (Section 4.1).
    FullBinaryTree { p: f64 },
    /// Two-state Markov burst loss with probability `p` and mean burst
    /// length `b`, calibrated at the run's `delta` (Section 4.2).
    Burst { p: f64, mean_burst: f64 },
    /// Two-class heterogeneous population (Section 3.3): fraction `alpha`
    /// of receivers at `p_high`, the rest at `p_low`.
    TwoClass { alpha: f64, p_low: f64, p_high: f64 },
    /// Shared bursts: Gilbert chains at every FBT node (extension
    /// combining Sections 4.1 and 4.2).
    TreeBurst { p: f64, mean_burst: f64 },
}

impl LossEnv {
    /// Check the `(environment, receivers)` combination before any trial
    /// runs.
    ///
    /// # Panics
    /// Panics if `receivers == 0`, or is not a power of two for the
    /// tree-shaped environments.
    fn validate(&self, receivers: usize) {
        assert!(receivers > 0, "need at least one receiver");
        match self {
            LossEnv::FullBinaryTree { .. } => assert!(
                receivers.is_power_of_two(),
                "FBT needs a power-of-two receiver count"
            ),
            LossEnv::TreeBurst { .. } => assert!(
                receivers.is_power_of_two(),
                "tree-burst needs a power-of-two receiver count"
            ),
            _ => {}
        }
    }

    /// Mean per-receiver end-to-end loss probability, as recorded in
    /// `session_config` trace events. Exact for the homogeneous
    /// environments; the population average for [`LossEnv::TwoClass`].
    pub fn mean_loss(&self) -> f64 {
        match self {
            LossEnv::Independent { p }
            | LossEnv::FullBinaryTree { p }
            | LossEnv::Burst { p, .. }
            | LossEnv::TreeBurst { p, .. } => *p,
            LossEnv::TwoClass {
                alpha,
                p_low,
                p_high,
            } => alpha * p_high + (1.0 - alpha) * p_low,
        }
    }
}

/// One concrete loss model instance built from a [`LossEnv`] — the
/// factory product handed to each trial. An enum (not a boxed trait
/// object) so per-trial construction costs no allocation beyond the
/// model's own state.
enum EnvModel {
    Independent(IndependentLoss),
    Tree(TreeLoss),
    Gilbert(GilbertLoss),
    TwoClass(TwoClassLoss),
    TreeBurst(TreeBurstLoss),
}

impl EnvModel {
    /// Build the model for `env` with its RNG seeded at `seed`.
    /// `env.validate(receivers)` must have passed.
    fn build(env: LossEnv, receivers: usize, delta: f64, seed: u64) -> EnvModel {
        match env {
            LossEnv::Independent { p } => {
                EnvModel::Independent(IndependentLoss::new(receivers, p, seed))
            }
            LossEnv::FullBinaryTree { p } => {
                let d = receivers.trailing_zeros();
                EnvModel::Tree(TreeLoss::full_binary(d, p, seed))
            }
            LossEnv::Burst { p, mean_burst } => {
                EnvModel::Gilbert(GilbertLoss::new(receivers, p, mean_burst, delta, seed))
            }
            LossEnv::TwoClass {
                alpha,
                p_low,
                p_high,
            } => EnvModel::TwoClass(TwoClassLoss::new(receivers, alpha, p_low, p_high, seed)),
            LossEnv::TreeBurst { p, mean_burst } => {
                let d = receivers.trailing_zeros();
                EnvModel::TreeBurst(TreeBurstLoss::new(d, p, mean_burst, delta, seed))
            }
        }
    }
}

impl LossModel for EnvModel {
    fn receivers(&self) -> usize {
        match self {
            EnvModel::Independent(m) => m.receivers(),
            EnvModel::Tree(m) => m.receivers(),
            EnvModel::Gilbert(m) => m.receivers(),
            EnvModel::TwoClass(m) => m.receivers(),
            EnvModel::TreeBurst(m) => m.receivers(),
        }
    }

    fn sample(&mut self, time: f64, lost: &mut [bool]) {
        match self {
            EnvModel::Independent(m) => m.sample(time, lost),
            EnvModel::Tree(m) => m.sample(time, lost),
            EnvModel::Gilbert(m) => m.sample(time, lost),
            EnvModel::TwoClass(m) => m.sample(time, lost),
            EnvModel::TreeBurst(m) => m.sample(time, lost),
        }
    }
}

/// Shared trial body of the serial and parallel drivers: build the
/// trial's model from its mixed seed, run it from simulated time zero,
/// fold the outputs, and (when tracing) stage + flush a `sim_trial` event
/// at the trial boundary.
struct TrialCtx<'a> {
    cfg: &'a SimConfig,
    scheme: Scheme,
    env: LossEnv,
    receivers: usize,
    seed: u64,
    trace: Option<(&'a Obs, &'a str)>,
}

impl TrialCtx<'_> {
    fn run_into(&self, acc: &mut TracedAccum, trial: usize) {
        let mut model = EnvModel::build(
            self.env,
            self.receivers,
            self.cfg.delta,
            mix_seed(self.seed, trial as u64),
        );
        let mut now = 0.0f64;
        let out = run_trial(self.cfg, self.scheme, &mut model, &mut now);
        if let Some((obs, label)) = self.trace {
            acc.buf.emit(now, || Event::SimTrial {
                scheme: label.to_string(),
                trial: trial as u64,
                m: out.mean_m(),
                rounds: out.rounds,
            });
            // Trial boundary: hand the whole batch to the shared recorder
            // so events of different trials never interleave mid-trial.
            acc.buf.flush_to(obs);
        }
        acc.stats.push_trial(&out);
    }

    fn accum(&self) -> TracedAccum {
        TracedAccum {
            stats: SchemeStats::new(),
            buf: match self.trace {
                Some((obs, _)) => EventBuffer::for_obs(obs),
                None => EventBuffer::default(),
            },
        }
    }

    /// Fan this context's trials across `pool` and reduce
    /// deterministically.
    fn run_all(&self, pool: &Pool) -> SimResult {
        pool.par_map_reduce(
            self.cfg.trials,
            TRIAL_CHUNK,
            || self.accum(),
            |acc, trial| self.run_into(acc, trial),
            |acc, part| acc.stats.merge(&part.stats),
        )
        .stats
        .result()
    }
}

/// Chunk accumulator of the parallel drivers: statistics plus the
/// thread-local event staging buffer.
struct TracedAccum {
    stats: SchemeStats,
    buf: EventBuffer,
}

/// Run `scheme` in `env` with `receivers` receivers (must be a power of
/// two for the tree environments), serially, with one independently
/// seeded loss model per trial. Bit-identical to [`run_env_par`] at any
/// worker count.
///
/// # Panics
/// Panics if `receivers == 0`, or is not a power of two for the FBT /
/// tree-burst environments.
pub fn run_env(
    cfg: &SimConfig,
    scheme: Scheme,
    env: LossEnv,
    receivers: usize,
    seed: u64,
) -> SimResult {
    run_env_par(cfg, scheme, env, receivers, seed, &Pool::serial())
}

/// [`run_env`] with trials fanned across `pool`.
///
/// Determinism: trial `i` always draws from `mix_seed(seed, i)`, chunks
/// are fixed at [`TRIAL_CHUNK`] trials, and chunk statistics merge in
/// chunk order — the result is a pure function of the arguments, never of
/// `pool.workers()` or the OS schedule.
///
/// # Panics
/// Same conditions as [`run_env`].
pub fn run_env_par(
    cfg: &SimConfig,
    scheme: Scheme,
    env: LossEnv,
    receivers: usize,
    seed: u64,
    pool: &Pool,
) -> SimResult {
    scheme.validate();
    env.validate(receivers);
    TrialCtx {
        cfg,
        scheme,
        env,
        receivers,
        seed,
        trace: None,
    }
    .run_all(pool)
}

/// [`run_env`] with a `sim_run` summary event emitted to `obs` at
/// timestamp `now` once the run finishes.
///
/// # Panics
/// Same conditions as [`run_env`].
pub fn run_env_traced(
    cfg: &SimConfig,
    scheme: Scheme,
    env: LossEnv,
    receivers: usize,
    seed: u64,
    obs: &Obs,
    now: f64,
) -> SimResult {
    run_env_par_traced(cfg, scheme, env, receivers, seed, &Pool::serial(), obs, now)
}

/// [`run_env_par`] with tracing: every trial emits a `sim_trial` event
/// (timestamped with the trial's *simulated* end time), batched in a
/// thread-local [`EventBuffer`] and flushed to `obs` at the trial
/// boundary; a `sim_run` summary follows at wall-clock timestamp `now`.
/// The returned statistics stay bit-identical to [`run_env`].
///
/// # Panics
/// Same conditions as [`run_env`].
#[allow(clippy::too_many_arguments)] // the traced superset of run_env_par's signature
pub fn run_env_par_traced(
    cfg: &SimConfig,
    scheme: Scheme,
    env: LossEnv,
    receivers: usize,
    seed: u64,
    pool: &Pool,
    obs: &Obs,
    now: f64,
) -> SimResult {
    scheme.validate();
    env.validate(receivers);
    let (k, h) = scheme.geometry();
    obs.emit(now, || Event::SessionConfig {
        session: 0,
        k,
        h,
        receivers: receivers as u32,
        loss: env.mean_loss(),
        backend: pm_simd::backend_name(),
    });
    let label = scheme.label();
    let res = TrialCtx {
        cfg,
        scheme,
        env,
        receivers,
        seed,
        trace: Some((obs, &label)),
    }
    .run_all(pool);
    obs.emit(now, || Event::SimRun {
        scheme: label.clone(),
        receivers: receivers as u64,
        trials: res.trials as u64,
        mean_m: res.mean_transmissions,
        ci95: res.ci95,
        mean_rounds: res.mean_rounds,
    });
    res
}

/// Sweep receiver counts `2^0 .. 2^max_exp`, returning `(R, result)`
/// pairs. Each sweep point derives its seed with [`mix_seed`] (the old
/// `seed ^ (d << 32)` mixer left the low 32 RNG-seed bits identical
/// across all points).
pub fn sweep_receivers(
    cfg: &SimConfig,
    scheme: Scheme,
    env: LossEnv,
    max_exp: u32,
    seed: u64,
) -> Vec<(usize, SimResult)> {
    sweep_receivers_par(cfg, scheme, env, max_exp, seed, &Pool::serial())
}

/// [`sweep_receivers`] fanned across `pool`: the work queue is the
/// flattened set of `(sweep point, trial chunk)` pairs, so small-R points
/// and the trial chunks of large-R points fill the pool together instead
/// of the sweep serializing on its biggest point. Results are merged per
/// point in chunk order — bit-identical to the serial sweep at any worker
/// count.
///
/// # Panics
/// Same conditions as [`run_env`] (applied per point; all points of a
/// power-of-two sweep satisfy the tree constraints).
pub fn sweep_receivers_par(
    cfg: &SimConfig,
    scheme: Scheme,
    env: LossEnv,
    max_exp: u32,
    seed: u64,
    pool: &Pool,
) -> Vec<(usize, SimResult)> {
    scheme.validate();
    let points: Vec<(usize, u64)> = (0..=max_exp)
        .map(|d| (1usize << d, mix_seed(seed, d as u64)))
        .collect();
    for &(r, _) in &points {
        env.validate(r);
    }
    let chunks_per_point = cfg.trials.div_ceil(TRIAL_CHUNK);
    // Flattened (point, chunk) descriptors, ordered point-major so the
    // merge below can consume them sequentially.
    let descs: Vec<(usize, usize)> = (0..points.len())
        .flat_map(|p| (0..chunks_per_point).map(move |c| (p, c)))
        .collect();
    let parts: Vec<SchemeStats> = pool.par_map(descs.len(), |i| {
        let (p, c) = descs[i];
        let (receivers, point_seed) = points[p];
        let ctx = TrialCtx {
            cfg,
            scheme,
            env,
            receivers,
            seed: point_seed,
            trace: None,
        };
        let mut acc = ctx.accum();
        for trial in c * TRIAL_CHUNK..((c + 1) * TRIAL_CHUNK).min(cfg.trials) {
            ctx.run_into(&mut acc, trial);
        }
        acc.stats
    });
    points
        .iter()
        .zip(parts.chunks(chunks_per_point))
        .map(|(&(r, _), point_parts)| {
            let mut stats = SchemeStats::new();
            for part in point_parts {
                stats.merge(part);
            }
            (r, stats.result())
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels() {
        assert_eq!(Scheme::NoFec.label(), "no-FEC");
        assert_eq!(Scheme::Layered { k: 7, h: 1 }.label(), "layered(7+1)");
        assert_eq!(Scheme::Integrated2 { k: 20 }.label(), "integrated2(k=20)");
    }

    #[test]
    fn dispatch_runs_all_schemes() {
        let cfg = SimConfig::paper_timing(50);
        for s in [
            Scheme::NoFec,
            Scheme::Layered { k: 3, h: 1 },
            Scheme::Integrated1 { k: 3 },
            Scheme::Integrated2 { k: 3 },
        ] {
            let res = run_env(&cfg, s, LossEnv::Independent { p: 0.1 }, 4, 1);
            assert!(res.mean_transmissions >= 1.0, "{s:?}");
            assert_eq!(
                res.trials,
                if matches!(s, Scheme::Layered { .. }) {
                    150
                } else {
                    50
                }
            );
        }
    }

    #[test]
    fn environments_construct() {
        let cfg = SimConfig::paper_timing(30);
        for env in [
            LossEnv::Independent { p: 0.05 },
            LossEnv::FullBinaryTree { p: 0.05 },
            LossEnv::Burst {
                p: 0.05,
                mean_burst: 2.0,
            },
            LossEnv::TwoClass {
                alpha: 0.25,
                p_low: 0.01,
                p_high: 0.25,
            },
            LossEnv::TreeBurst {
                p: 0.05,
                mean_burst: 2.0,
            },
        ] {
            let res = run_env(&cfg, Scheme::NoFec, env, 8, 2);
            assert!(res.mean_transmissions >= 1.0);
        }
    }

    #[test]
    fn shared_loss_needs_fewer_transmissions() {
        // Fig. 11/12's core observation: FBT shared loss yields lower E[M]
        // than independent loss at the same per-receiver p.
        let cfg = SimConfig::paper_timing(1500);
        let r = 256;
        let indep =
            run_env(&cfg, Scheme::NoFec, LossEnv::Independent { p: 0.05 }, r, 7).mean_transmissions;
        let shared = run_env(
            &cfg,
            Scheme::NoFec,
            LossEnv::FullBinaryTree { p: 0.05 },
            r,
            7,
        )
        .mean_transmissions;
        assert!(
            shared < indep,
            "shared loss E[M]={shared} should undercut independent {indep}"
        );
    }

    #[test]
    fn sweep_shapes() {
        let cfg = SimConfig::paper_timing(60);
        let pts = sweep_receivers(&cfg, Scheme::NoFec, LossEnv::Independent { p: 0.1 }, 4, 3);
        assert_eq!(pts.len(), 5);
        assert_eq!(pts[0].0, 1);
        assert_eq!(pts[4].0, 16);
        // Monotone within noise: last >= first.
        assert!(pts[4].1.mean_transmissions >= pts[0].1.mean_transmissions);
    }

    #[test]
    fn sweep_points_get_distinct_low_seed_bits() {
        // The regression the satellite fix targets: with the old
        // `seed ^ (d << 32)` mixing, all sweep points shared identical low
        // 32 seed bits. The derived point seeds must now differ in their
        // low words.
        let seeds: std::collections::HashSet<u32> =
            (0..16u64).map(|d| mix_seed(99, d) as u32).collect();
        assert_eq!(seeds.len(), 16);
    }

    #[test]
    fn trial_reseeding_makes_trials_order_free() {
        // Doubling the trial count must leave the first trials' samples
        // untouched: with per-trial seeding the run is a prefix-stable
        // sequence, unlike a shared stream where every trial depends on
        // its predecessors. Proxy: a 50-trial mean over seeds 0..49 equals
        // the matching prefix recomputed trial-by-trial.
        let cfg_small = SimConfig::paper_timing(50);
        let env = LossEnv::Burst {
            p: 0.05,
            mean_burst: 2.0,
        };
        let direct = run_env(&cfg_small, Scheme::Integrated2 { k: 7 }, env, 8, 11);
        let cfg_one = SimConfig::paper_timing(1);
        let mut stats = SchemeStats::new();
        for t in 0..50usize {
            // One-trial runs at shifted base seeds reproduce each trial:
            // run_env(seed) trial 0 uses mix_seed(seed, 0), so walk the
            // seed domain trial by trial via the same mixer inputs.
            let mut model = EnvModel::build(env, 8, cfg_one.delta, mix_seed(11, t as u64));
            let mut now = 0.0;
            stats.push_trial(&run_trial(
                &cfg_one,
                Scheme::Integrated2 { k: 7 },
                &mut model,
                &mut now,
            ));
        }
        // Same trials, but accumulated without the chunked merge — means
        // agree to reassociation error, counts exactly.
        let manual = stats.result();
        assert_eq!(direct.trials, manual.trials);
        assert!((direct.mean_transmissions - manual.mean_transmissions).abs() < 1e-9);
        assert!((direct.mean_rounds - manual.mean_rounds).abs() < 1e-9);
    }

    #[test]
    fn traced_run_emits_summary() {
        use std::sync::Arc;
        let ring = Arc::new(pm_obs::RingRecorder::new(64));
        let obs = Obs::new(ring.clone());
        let cfg = SimConfig::paper_timing(40);
        let res = run_env_traced(
            &cfg,
            Scheme::Integrated2 { k: 3 },
            LossEnv::Independent { p: 0.1 },
            4,
            1,
            &obs,
            2.5,
        );
        let events = ring.events();
        // A session_config header, 40 sim_trial events, one sim_run summary.
        assert_eq!(events.len(), 42);
        match &events[0].1 {
            Event::SessionConfig {
                k,
                h,
                receivers,
                backend,
                ..
            } => {
                assert_eq!((*k, *h), (3, 0));
                assert_eq!(*receivers, 4);
                assert_eq!(*backend, pm_simd::backend_name());
            }
            other => panic!("expected SessionConfig, got {other:?}"),
        }
        let (t, last) = events.last().unwrap();
        assert_eq!(*t, 2.5);
        match last {
            Event::SimRun {
                scheme,
                receivers,
                trials,
                mean_m,
                ..
            } => {
                assert_eq!(scheme, "integrated2(k=3)");
                assert_eq!(*receivers, 4);
                assert_eq!(*trials as usize, res.trials);
                assert_eq!(*mean_m, res.mean_transmissions);
            }
            other => panic!("expected SimRun, got {other:?}"),
        }
        // Trial events carry their index and the scheme label.
        match &events[1].1 {
            Event::SimTrial { scheme, trial, .. } => {
                assert_eq!(scheme, "integrated2(k=3)");
                assert_eq!(*trial, 0);
            }
            other => panic!("expected SimTrial, got {other:?}"),
        }
    }

    #[test]
    fn traced_stats_match_untraced() {
        use std::sync::Arc;
        let cfg = SimConfig::paper_timing(30);
        let env = LossEnv::Independent { p: 0.1 };
        let plain = run_env(&cfg, Scheme::NoFec, env, 4, 9);
        let ring = Arc::new(pm_obs::RingRecorder::new(256));
        let obs = Obs::new(ring.clone());
        let traced = run_env_traced(&cfg, Scheme::NoFec, env, 4, 9, &obs, 0.0);
        assert_eq!(plain, traced, "tracing must not perturb statistics");
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn fbt_requires_power_of_two() {
        let cfg = SimConfig::paper_timing(10);
        let _ = run_env(
            &cfg,
            Scheme::NoFec,
            LossEnv::FullBinaryTree { p: 0.1 },
            3,
            0,
        );
    }
}
