//! The four recovery schemes (Fig. 13 timing).

mod integrated;
mod layered;
mod nofec;

pub use integrated::{integrated_1, integrated_2};
pub use layered::layered;
pub use nofec::nofec;
