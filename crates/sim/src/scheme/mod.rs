//! The four recovery schemes (Fig. 13 timing).
//!
//! Each scheme exposes two layers:
//!
//! * a crate-private `*_trial` function simulating **one** transmission
//!   group (one packet for no-FEC) against a caller-supplied model and
//!   clock, returning the raw [`crate::metrics::TrialOut`] — the unit the
//!   parallel runner fans across threads with a fresh per-trial RNG; and
//! * the public legacy driver (`nofec`, `layered`, `integrated_1`,
//!   `integrated_2`) looping `cfg.trials` trials over one shared loss
//!   stream, for callers that bring their own stateful model.

mod integrated;
mod layered;
mod nofec;

pub(crate) use integrated::{integrated_1_trial, integrated_2_trial};
pub(crate) use layered::layered_trial;
pub(crate) use nofec::nofec_trial;

pub use integrated::{integrated_1, integrated_2};
pub use layered::layered;
pub use nofec::nofec;
