//! Plain ARQ simulation.

use pm_loss::LossModel;

use crate::config::SimConfig;
use crate::metrics::{SchemeStats, SimResult, TrialOut};

/// One no-FEC trial: multicast one packet and retransmit — spaced
/// `delta + T` per the paper's timing diagram — until all receivers have
/// it. `now` is advanced past the packet so a time-correlated model sees
/// the real schedule; the trailing gap to the next packet is `delta`.
pub(crate) fn nofec_trial<M: LossModel>(cfg: &SimConfig, model: &mut M, now: &mut f64) -> TrialOut {
    let r = model.receivers();
    let mut lost = vec![false; r];
    let mut has = vec![false; r];
    let mut remaining = r;
    let mut tx = 0u64;
    let mut unneeded = 0u64;
    while remaining > 0 {
        tx += 1;
        model.sample(*now, &mut lost);
        for rc in 0..r {
            if !lost[rc] {
                if has[rc] {
                    // A multicast retransmission reaching a receiver
                    // that already had the packet: pure waste.
                    unneeded += 1;
                } else {
                    has[rc] = true;
                    remaining -= 1;
                }
            }
        }
        *now += if remaining == 0 {
            cfg.delta // next packet follows at line rate
        } else {
            cfg.delta + cfg.feedback_delay // NAK turnaround
        };
    }
    TrialOut {
        m_values: vec![tx as f64],
        rounds: tx as f64,
        unneeded: Some(unneeded as f64 / r as f64),
    }
}

/// Simulate no-FEC reliable multicast over `cfg.trials` consecutive
/// packets drawn from `model`'s single loss stream (one trial is one
/// packet). Prefer [`crate::runner::run_env`], which reseeds the model
/// per trial and therefore parallelizes; this entry point remains for
/// callers that bring their own stateful model.
pub fn nofec<M: LossModel>(cfg: &SimConfig, model: &mut M) -> SimResult {
    let mut stats = SchemeStats::new();
    let mut now = 0.0f64;
    for _ in 0..cfg.trials {
        stats.push_trial(&nofec_trial(cfg, model, &mut now));
    }
    stats.result()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pm_loss::IndependentLoss;

    #[test]
    fn lossless_sends_once() {
        let mut model = IndependentLoss::new(16, 0.0, 1);
        let res = nofec(&SimConfig::paper_timing(100), &mut model);
        assert_eq!(res.mean_transmissions, 1.0);
        assert_eq!(res.stderr, 0.0);
        assert_eq!(res.trials, 100);
    }

    #[test]
    fn single_receiver_geometric_mean() {
        let p = 0.2;
        let mut model = IndependentLoss::new(1, p, 7);
        let res = nofec(&SimConfig::paper_timing(20_000), &mut model);
        let expect = 1.0 / (1.0 - p);
        assert!(
            (res.mean_transmissions - expect).abs() < 4.0 * res.stderr.max(0.005),
            "sim {} vs analytic {expect}",
            res.mean_transmissions
        );
    }

    #[test]
    fn more_receivers_cost_more() {
        let mut small = IndependentLoss::new(2, 0.1, 3);
        let mut large = IndependentLoss::new(64, 0.1, 3);
        let cfg = SimConfig::paper_timing(4000);
        let a = nofec(&cfg, &mut small).mean_transmissions;
        let b = nofec(&cfg, &mut large).mean_transmissions;
        assert!(b > a, "R=64 ({b}) should beat R=2 ({a})");
    }

    #[test]
    fn trial_reports_raw_outputs() {
        let mut model = IndependentLoss::new(4, 0.0, 1);
        let mut now = 0.0;
        let out = nofec_trial(&SimConfig::paper_timing(1), &mut model, &mut now);
        assert_eq!(out.m_values, vec![1.0]);
        assert_eq!(out.rounds, 1.0);
        assert_eq!(out.unneeded, Some(0.0));
        assert!(now > 0.0, "trial must advance simulated time");
    }
}
