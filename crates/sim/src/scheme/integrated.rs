//! Integrated FEC simulations (Section 4.2's two protocol variants).

use pm_loss::LossModel;

use crate::config::SimConfig;
use crate::metrics::{SchemeStats, SimResult, TrialOut};

/// Safety valve: a single TG may not consume more than this many
/// transmissions (would indicate a pathological loss model, e.g. p ~ 1).
const MAX_TX_PER_GROUP: u64 = 1_000_000;

/// One integrated-FEC-1 trial: parities stream back-to-back behind the
/// data at rate `1/delta` until every receiver holds `k` packets.
///
/// # Panics
/// Panics if the trial exceeds the internal transmission cap (loss model
/// stuck at 100% loss).
pub(crate) fn integrated_1_trial<M: LossModel>(
    cfg: &SimConfig,
    k: usize,
    model: &mut M,
    now: &mut f64,
) -> TrialOut {
    let r = model.receivers();
    let mut lost = vec![false; r];
    let mut have = vec![0usize; r];
    let mut remaining = r;
    let mut tx = 0u64;
    while remaining > 0 {
        tx += 1;
        assert!(tx <= MAX_TX_PER_GROUP, "loss model never delivers packets");
        model.sample(*now, &mut lost);
        *now += cfg.delta;
        for rc in 0..r {
            // Departed receivers (have >= k) no longer listen — by
            // construction integrated FEC 1 has zero unnecessary
            // receptions (the paper's Section 2.1 bullet 3).
            if have[rc] < k && !lost[rc] {
                have[rc] += 1;
                if have[rc] == k {
                    remaining -= 1;
                }
            }
        }
    }
    TrialOut {
        m_values: vec![tx as f64 / k as f64],
        rounds: 1.0,
        unneeded: None, // departed receivers hear nothing
    }
}

/// **Integrated FEC 1**: parities follow the data back-to-back at rate
/// `1/delta`; a receiver departs the multicast group the moment it holds
/// `k` packets, and the sender stops once everyone has departed. No
/// feedback rounds, no interleaving — under burst loss consecutive parities
/// fall into the same loss burst.
///
/// One trial is one transmission group. `E[M] = (k + L)/k` with `L` the
/// number of parities streamed. Runs `cfg.trials` groups on `model`'s
/// single loss stream; prefer [`crate::runner::run_env`], which reseeds
/// per trial and therefore parallelizes.
///
/// # Panics
/// Panics unless `k >= 1`; panics if a trial exceeds the internal
/// transmission cap (loss model stuck at 100% loss).
pub fn integrated_1<M: LossModel>(cfg: &SimConfig, k: usize, model: &mut M) -> SimResult {
    assert!(k >= 1, "k must be at least 1");
    let mut stats = SchemeStats::new();
    let mut now = 0.0f64;
    for _ in 0..cfg.trials {
        stats.push_trial(&integrated_1_trial(cfg, k, model, &mut now));
    }
    stats.result()
}

/// One integrated-FEC-2 trial (protocol NP's schedule): round 1 multicasts
/// the `k` data packets; after a feedback gap of `T` the sender multicasts
/// exactly as many parities as the worst receiver still needs; repeat.
///
/// # Panics
/// As for [`integrated_1_trial`].
pub(crate) fn integrated_2_trial<M: LossModel>(
    cfg: &SimConfig,
    k: usize,
    model: &mut M,
    now: &mut f64,
) -> TrialOut {
    let r = model.receivers();
    let mut lost = vec![false; r];
    let mut have = vec![0usize; r];
    let mut tx = 0u64;
    let mut rounds = 0u64;
    let mut unneeded = 0u64;
    loop {
        // How many packets does the worst receiver still need?
        let need = have.iter().map(|&h| k - h.min(k)).max().unwrap_or(0);
        if need == 0 {
            break;
        }
        rounds += 1;
        // Send `k` in round 1 (data), `need` parities afterwards.
        let burst = if rounds == 1 { k } else { need };
        for _ in 0..burst {
            tx += 1;
            assert!(tx <= MAX_TX_PER_GROUP, "loss model never delivers packets");
            model.sample(*now, &mut lost);
            *now += cfg.delta;
            for rc in 0..r {
                if !lost[rc] {
                    if have[rc] < k {
                        have[rc] += 1;
                    } else {
                        // Completed receivers still on the group hear
                        // repair parities they cannot use.
                        unneeded += 1;
                    }
                }
            }
        }
        *now += cfg.feedback_delay;
    }
    TrialOut {
        m_values: vec![tx as f64 / k as f64],
        rounds: rounds as f64,
        unneeded: Some(unneeded as f64 / r as f64),
    }
}

/// **Integrated FEC 2** (protocol NP's transmission schedule): round 1
/// multicasts the `k` data packets; after a feedback gap of `T` the sender
/// multicasts exactly `l` parities, where `l` is the maximum number of
/// packets any receiver still needs; repeat. Parities of one group are
/// thereby spread over time (implicit interleaving).
///
/// One trial is one transmission group. Also records the mean number of
/// rounds (`E[T]` in the paper's appendix). Runs `cfg.trials` groups on
/// `model`'s single loss stream; prefer [`crate::runner::run_env`], which
/// reseeds per trial and therefore parallelizes.
///
/// # Panics
/// As for [`integrated_1`].
pub fn integrated_2<M: LossModel>(cfg: &SimConfig, k: usize, model: &mut M) -> SimResult {
    assert!(k >= 1, "k must be at least 1");
    let mut stats = SchemeStats::new();
    let mut now = 0.0f64;
    for _ in 0..cfg.trials {
        stats.push_trial(&integrated_2_trial(cfg, k, model, &mut now));
    }
    stats.result()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pm_analysis::{integrated, rounds, Population};
    use pm_loss::{GilbertLoss, IndependentLoss};

    #[test]
    fn lossless_is_one() {
        let cfg = SimConfig::paper_timing(50);
        let mut m = IndependentLoss::new(8, 0.0, 1);
        assert_eq!(integrated_1(&cfg, 7, &mut m).mean_transmissions, 1.0);
        let mut m = IndependentLoss::new(8, 0.0, 1);
        let res = integrated_2(&cfg, 7, &mut m);
        assert_eq!(res.mean_transmissions, 1.0);
        assert_eq!(res.mean_rounds, 1.0);
    }

    #[test]
    fn both_variants_match_lower_bound_under_independent_loss() {
        // With memoryless loss the two schedules are statistically
        // identical and equal the Eq. (6) lower bound.
        let (k, p, r) = (7usize, 0.05, 16usize);
        let cfg = SimConfig::paper_timing(6000);
        let analytic = integrated::lower_bound(k, 0, &Population::homogeneous(p, r as u64));
        let mut m = IndependentLoss::new(r, p, 3);
        let r1 = integrated_1(&cfg, k, &mut m);
        assert!(
            (r1.mean_transmissions - analytic).abs() < 5.0 * r1.stderr.max(0.01),
            "int1 {} vs analytic {analytic}",
            r1.mean_transmissions
        );
        let mut m = IndependentLoss::new(r, p, 4);
        let r2 = integrated_2(&cfg, k, &mut m);
        assert!(
            (r2.mean_transmissions - analytic).abs() < 5.0 * r2.stderr.max(0.01),
            "int2 {} vs analytic {analytic}",
            r2.mean_transmissions
        );
    }

    #[test]
    fn rounds_match_appendix_bound() {
        // E[T] from the simulation should not exceed the Eq. (17) upper
        // bound (which assumes per-receiver parity counts) by more than
        // noise, and should be at least 1.
        let (k, p, r) = (20usize, 0.05, 8usize);
        let cfg = SimConfig::paper_timing(4000);
        let mut m = IndependentLoss::new(r, p, 9);
        let res = integrated_2(&cfg, k, &mut m);
        let bound = rounds::expected_rounds(k, &Population::homogeneous(p, r as u64));
        assert!(res.mean_rounds >= 1.0);
        assert!(
            res.mean_rounds <= bound + 0.05,
            "sim rounds {} exceed bound {bound}",
            res.mean_rounds
        );
    }

    #[test]
    fn burst_loss_favours_interleaved_variant_at_small_k() {
        // Fig. 16: at k = 7 under bursty loss, integrated FEC 2 (rounds
        // spaced by T) beats integrated FEC 1 (parities back-to-back inside
        // the burst).
        let cfg = SimConfig::paper_timing(4000);
        let r = 16;
        let mut m1 = GilbertLoss::new(r, 0.03, 2.5, cfg.delta, 21);
        let v1 = integrated_1(&cfg, 7, &mut m1).mean_transmissions;
        let mut m2 = GilbertLoss::new(r, 0.03, 2.5, cfg.delta, 21);
        let v2 = integrated_2(&cfg, 7, &mut m2).mean_transmissions;
        assert!(v2 < v1, "int2 {v2} should beat int1 {v1} under burst loss");
    }

    #[test]
    fn large_k_is_burst_resistant() {
        // Fig. 16's other message: k = 100 needs no interleaving — both
        // variants land close together and close to 1.
        let cfg = SimConfig::paper_timing(800);
        let r = 16;
        let mut m1 = GilbertLoss::new(r, 0.01, 2.0, cfg.delta, 31);
        let v1 = integrated_1(&cfg, 100, &mut m1).mean_transmissions;
        let mut m2 = GilbertLoss::new(r, 0.01, 2.0, cfg.delta, 31);
        let v2 = integrated_2(&cfg, 100, &mut m2).mean_transmissions;
        assert!(v1 < 1.2 && v2 < 1.2, "int1={v1} int2={v2}");
        assert!(
            (v1 - v2).abs() < 0.05,
            "variants should nearly coincide: {v1} vs {v2}"
        );
    }

    #[test]
    fn int1_trial_reports_no_unneeded() {
        let mut m = IndependentLoss::new(4, 0.0, 1);
        let mut now = 0.0;
        let out = integrated_1_trial(&SimConfig::paper_timing(1), 7, &mut m, &mut now);
        assert_eq!(out.m_values, vec![1.0]);
        assert_eq!(out.unneeded, None, "int1 cannot waste receptions");
    }
}
