//! Layered FEC simulation.
//!
//! The FEC layer always ships `h` parities with every block of `k` data
//! packets (cost factor `n/k` per round), and a receiver recovers a data
//! packet from a block iff it received the packet itself or at least `k`
//! of the block's `n` packets. Unrecovered packets are retransmitted in a
//! later block *at the same block position* (the paper's assumption), with
//! the next block starting `delta + T` after the previous block's last
//! packet.

use pm_loss::LossModel;

use crate::config::SimConfig;
use crate::metrics::{SchemeStats, SimResult, TrialOut};

/// One layered-FEC trial: one transmission group of `k` data packets
/// (tracked jointly so burst loss correlates them exactly as on the
/// wire), driven to completion. Contributes `k` per-slot `E[M]` samples.
pub(crate) fn layered_trial<M: LossModel>(
    cfg: &SimConfig,
    k: usize,
    h: usize,
    model: &mut M,
    now: &mut f64,
) -> TrialOut {
    let n = k + h;
    let r = model.receivers();
    let mut lost = vec![false; r];
    // pending[slot] = receivers still missing the data packet in
    // `slot`. Parity slots need no tracking: they are regenerated for
    // whatever group they ride in.
    let mut pending: Vec<Vec<usize>> = (0..k).map(|_| (0..r).collect()).collect();
    // Per-slot count of rounds the slot participated in.
    let mut slot_rounds = vec![0u64; k];
    let mut group_rounds = 0u64;
    let mut unneeded = 0u64;
    while pending.iter().any(|p| !p.is_empty()) {
        group_rounds += 1;
        // Any data slot already complete that rides in this block is a
        // potential unnecessary reception for receivers that hold it.
        let complete_slots: Vec<usize> = (0..k)
            .filter(|&s| group_rounds > 1 && pending[s].is_empty())
            .collect();
        // One block: n packets at delta spacing. Sample the loss
        // pattern of every receiver at every packet slot.
        // received[rc][slot] for slots 0..n.
        let mut receive_counts = vec![0usize; r];
        let mut got: Vec<Vec<bool>> = vec![vec![false; n]; r];
        #[allow(clippy::needless_range_loop)] // slot is also the semantic block index
        for slot in 0..n {
            model.sample(*now, &mut lost);
            for rc in 0..r {
                if !lost[rc] {
                    receive_counts[rc] += 1;
                    got[rc][slot] = true;
                }
            }
            *now += cfg.delta;
        }
        for &slot in &complete_slots {
            // Every receiver already holds a complete slot; receiving
            // its retransmission again is waste.
            unneeded += got.iter().filter(|g| g[slot]).count() as u64;
        }
        for (slot, pend) in pending.iter_mut().enumerate() {
            if pend.is_empty() {
                continue;
            }
            slot_rounds[slot] += 1;
            // Receivers NOT pending on this slot that still received it
            // were already served earlier: unnecessary reception.
            if group_rounds > 1 {
                // pm-audit: allow(determinism-hash-iter): membership probe only, never iterated
                let pend_set: std::collections::HashSet<usize> = pend.iter().copied().collect();
                unneeded += got
                    .iter()
                    .enumerate()
                    .filter(|(rc, g)| !pend_set.contains(rc) && g[slot])
                    .count() as u64;
            }
            pend.retain(|&rc| !(got[rc][slot] || receive_counts[rc] >= k));
        }
        *now += cfg.feedback_delay; // gap to the next block is delta + T
    }
    TrialOut {
        // Each round the packet rides in costs n/k transmissions in
        // the per-packet accounting (Eq. (3)'s n/k factor).
        m_values: slot_rounds
            .iter()
            .map(|&sr| sr as f64 * n as f64 / k as f64)
            .collect(),
        rounds: group_rounds as f64,
        unneeded: Some(unneeded as f64 / r as f64),
    }
}

/// Simulate layered FEC with TG size `k` and `h` parities per block over
/// `cfg.trials` consecutive groups drawn from `model`'s single loss
/// stream. Prefer [`crate::runner::run_env`], which reseeds the model per
/// trial and therefore parallelizes.
///
/// # Panics
/// Panics unless `k >= 1`.
pub fn layered<M: LossModel>(cfg: &SimConfig, k: usize, h: usize, model: &mut M) -> SimResult {
    assert!(k >= 1, "k must be at least 1");
    let mut stats = SchemeStats::new();
    let mut now = 0.0f64;
    for _ in 0..cfg.trials {
        stats.push_trial(&layered_trial(cfg, k, h, model, &mut now));
    }
    stats.result()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pm_loss::IndependentLoss;

    #[test]
    fn lossless_costs_expansion_factor() {
        let mut model = IndependentLoss::new(8, 0.0, 1);
        let res = layered(&SimConfig::paper_timing(50), 7, 2, &mut model);
        assert!((res.mean_transmissions - 9.0 / 7.0).abs() < 1e-12);
        assert_eq!(res.mean_rounds, 1.0);
    }

    #[test]
    fn h0_matches_nofec_statistics() {
        // With no parities the scheme is ARQ in blocks; per-packet E[M]
        // must match the no-FEC analysis.
        let p = 0.1;
        let mut model = IndependentLoss::new(4, p, 11);
        let res = layered(&SimConfig::paper_timing(5000), 5, 0, &mut model);
        let analytic =
            pm_analysis::nofec::expected_transmissions(&pm_analysis::Population::homogeneous(p, 4));
        assert!(
            (res.mean_transmissions - analytic).abs() < 5.0 * res.stderr.max(0.01),
            "sim {} vs analytic {analytic} (se {})",
            res.mean_transmissions,
            res.stderr
        );
    }

    #[test]
    fn matches_layered_analysis_independent_loss() {
        let (k, h, p, r) = (7usize, 1usize, 0.05, 16usize);
        let mut model = IndependentLoss::new(r, p, 5);
        let res = layered(&SimConfig::paper_timing(4000), k, h, &mut model);
        let analytic = pm_analysis::layered::expected_transmissions(
            k,
            h,
            &pm_analysis::Population::homogeneous(p, r as u64),
        );
        assert!(
            (res.mean_transmissions - analytic).abs() < 5.0 * res.stderr.max(0.01),
            "sim {} vs analytic {analytic} (se {})",
            res.mean_transmissions,
            res.stderr
        );
    }

    #[test]
    fn parity_reduces_rounds() {
        let cfg = SimConfig::paper_timing(2000);
        let mut m1 = IndependentLoss::new(32, 0.05, 9);
        let mut m2 = IndependentLoss::new(32, 0.05, 9);
        let without = layered(&cfg, 7, 0, &mut m1);
        let with = layered(&cfg, 7, 3, &mut m2);
        assert!(
            with.mean_rounds < without.mean_rounds,
            "rounds with parity {} !< without {}",
            with.mean_rounds,
            without.mean_rounds
        );
    }

    #[test]
    fn trial_contributes_k_samples() {
        let mut model = IndependentLoss::new(8, 0.0, 1);
        let mut now = 0.0;
        let out = layered_trial(&SimConfig::paper_timing(1), 7, 2, &mut model, &mut now);
        assert_eq!(out.m_values.len(), 7, "one E[M] sample per data slot");
        assert!(out.m_values.iter().all(|&m| (m - 9.0 / 7.0).abs() < 1e-12));
        assert_eq!(out.rounds, 1.0);
    }
}
