//! Serial ↔ parallel bit-equivalence: the determinism contract of the
//! parallel Monte Carlo engine.
//!
//! `run_env_par` (and the sweep / traced variants) must return results
//! **bit-identical** — not merely statistically close — to the serial
//! drivers, for every scheme × loss-environment pair and any worker
//! count. The contract rests on per-trial seeding (`mix_seed(seed, i)`)
//! plus a fixed chunk layout merged in chunk order; this suite is the
//! tripwire for anything that reintroduces schedule dependence.

use pm_obs::{Obs, RingRecorder};
use pm_par::Pool;
use pm_sim::runner::{
    run_env, run_env_par, run_env_par_traced, run_env_traced, sweep_receivers, sweep_receivers_par,
    LossEnv, Scheme,
};
use pm_sim::{SimConfig, SimResult};
use std::sync::Arc;

/// All four recovery schemes with paper-typical coding parameters.
fn schemes() -> [Scheme; 4] {
    [
        Scheme::NoFec,
        Scheme::Layered { k: 7, h: 1 },
        Scheme::Integrated1 { k: 7 },
        Scheme::Integrated2 { k: 7 },
    ]
}

/// All five loss environments. Receiver counts stay powers of two so the
/// tree-shaped environments are valid everywhere.
fn environments() -> [LossEnv; 5] {
    [
        LossEnv::Independent { p: 0.05 },
        LossEnv::FullBinaryTree { p: 0.05 },
        LossEnv::Burst {
            p: 0.05,
            mean_burst: 2.0,
        },
        LossEnv::TwoClass {
            alpha: 0.25,
            p_low: 0.01,
            p_high: 0.25,
        },
        LossEnv::TreeBurst {
            p: 0.05,
            mean_burst: 2.0,
        },
    ]
}

/// Field-by-field exact equality (f64 bit patterns via `==`; NaN-free
/// because every run here has ≥ 2 trials).
fn assert_bit_identical(a: &SimResult, b: &SimResult, what: &str) {
    assert_eq!(
        a.mean_transmissions.to_bits(),
        b.mean_transmissions.to_bits(),
        "{what}: mean_transmissions {} vs {}",
        a.mean_transmissions,
        b.mean_transmissions
    );
    assert_eq!(a.stderr.to_bits(), b.stderr.to_bits(), "{what}: stderr");
    assert_eq!(a.ci95.to_bits(), b.ci95.to_bits(), "{what}: ci95");
    assert_eq!(
        a.mean_rounds.to_bits(),
        b.mean_rounds.to_bits(),
        "{what}: mean_rounds"
    );
    assert_eq!(
        a.mean_unneeded.to_bits(),
        b.mean_unneeded.to_bits(),
        "{what}: mean_unneeded"
    );
    assert_eq!(a.trials, b.trials, "{what}: trials");
}

#[test]
fn parallel_matches_serial_all_schemes_all_envs() {
    // 37 trials: not a multiple of the internal chunk size, so the final
    // ragged chunk is exercised too.
    let cfg = SimConfig::paper_timing(37);
    let pools = [Pool::new(2), Pool::new(3)];
    for scheme in schemes() {
        for env in environments() {
            let serial = run_env(&cfg, scheme, env, 8, 0xFEED_F00D);
            for pool in &pools {
                let par = run_env_par(&cfg, scheme, env, 8, 0xFEED_F00D, pool);
                assert_bit_identical(
                    &serial,
                    &par,
                    &format!("{scheme:?} / {env:?} @ {} workers", pool.workers()),
                );
            }
        }
    }
}

#[test]
fn parallel_matches_serial_many_worker_counts() {
    // One scheme/env pair across a spread of worker counts, including
    // more workers than chunks.
    let cfg = SimConfig::paper_timing(50);
    let env = LossEnv::Burst {
        p: 0.05,
        mean_burst: 2.0,
    };
    let scheme = Scheme::Integrated2 { k: 7 };
    let serial = run_env(&cfg, scheme, env, 16, 42);
    for workers in [1, 2, 3, 4, 7, 16] {
        let par = run_env_par(&cfg, scheme, env, 16, 42, &Pool::new(workers));
        assert_bit_identical(&serial, &par, &format!("{workers} workers"));
    }
}

#[test]
fn sweep_parallel_matches_serial() {
    let cfg = SimConfig::paper_timing(25);
    for scheme in [Scheme::NoFec, Scheme::Layered { k: 7, h: 1 }] {
        let serial = sweep_receivers(&cfg, scheme, LossEnv::FullBinaryTree { p: 0.05 }, 5, 7);
        for workers in [2, 3] {
            let par = sweep_receivers_par(
                &cfg,
                scheme,
                LossEnv::FullBinaryTree { p: 0.05 },
                5,
                7,
                &Pool::new(workers),
            );
            assert_eq!(serial.len(), par.len());
            for ((r_s, res_s), (r_p, res_p)) in serial.iter().zip(par.iter()) {
                assert_eq!(r_s, r_p);
                assert_bit_identical(
                    res_s,
                    res_p,
                    &format!("{scheme:?} sweep R={r_s} @ {workers} workers"),
                );
            }
        }
    }
}

#[test]
fn traced_parallel_matches_serial_stats_and_event_count() {
    // Tracing batches events thread-locally and flushes at trial
    // boundaries: the statistics stay bit-identical and every trial's
    // event arrives exactly once (order across threads is unspecified).
    let cfg = SimConfig::paper_timing(24);
    let env = LossEnv::Independent { p: 0.1 };
    let scheme = Scheme::Integrated2 { k: 3 };

    let ring_s = Arc::new(RingRecorder::new(256));
    let obs_s = Obs::new(ring_s.clone());
    let serial = run_env_traced(&cfg, scheme, env, 8, 5, &obs_s, 1.0);

    let ring_p = Arc::new(RingRecorder::new(256));
    let obs_p = Obs::new(ring_p.clone());
    let par = run_env_par_traced(&cfg, scheme, env, 8, 5, &Pool::new(3), &obs_p, 1.0);

    assert_bit_identical(&serial, &par, "traced run");
    let events_s = ring_s.events();
    let events_p = ring_p.events();
    assert_eq!(events_s.len(), events_p.len(), "same event count");
    // Same multiset of trial indices regardless of arrival order.
    let mut trials_s: Vec<u64> = events_s
        .iter()
        .filter_map(|(_, e)| match e {
            pm_obs::Event::SimTrial { trial, .. } => Some(*trial),
            _ => None,
        })
        .collect();
    let mut trials_p: Vec<u64> = events_p
        .iter()
        .filter_map(|(_, e)| match e {
            pm_obs::Event::SimTrial { trial, .. } => Some(*trial),
            _ => None,
        })
        .collect();
    trials_s.sort_unstable();
    trials_p.sort_unstable();
    assert_eq!(trials_s, trials_p, "every trial traced exactly once");
}

#[test]
fn auto_pool_matches_serial() {
    // Whatever the host's core count, the contract holds.
    let cfg = SimConfig::paper_timing(40);
    let env = LossEnv::TwoClass {
        alpha: 0.25,
        p_low: 0.01,
        p_high: 0.25,
    };
    let serial = run_env(&cfg, Scheme::Layered { k: 7, h: 1 }, env, 8, 123);
    let par = run_env_par(
        &cfg,
        Scheme::Layered { k: 7, h: 1 },
        env,
        8,
        123,
        &Pool::auto(),
    );
    assert_bit_identical(&serial, &par, "auto pool");
}
