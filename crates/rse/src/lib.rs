#![forbid(unsafe_code)]
//! Reed–Solomon erasure (RSE) coding over packets.
//!
//! This crate implements the packet-level erasure codec of Section 2 of
//! *Parity-Based Loss Recovery for Reliable Multicast Transmission*
//! (Nonnenmacher, Biersack, Towsley, SIGCOMM '97), in the style of McAuley's
//! burst-erasure coder and Rizzo's software `fec.c`:
//!
//! * A **transmission group (TG)** is `k` equal-size data packets
//!   `d_1 .. d_k`. The encoder derives up to `h = n - k` **parity packets**
//!   `p_1 .. p_h`; the `n` packets together form an **FEC block**.
//! * The code is *systematic*: data packets are sent unmodified, so when
//!   nothing is lost no decoding happens at all, and decode cost is
//!   proportional to the number of lost data packets.
//! * A receiver can reconstruct the TG from **any** `k` of the `n` packets
//!   (MDS property).
//! * Packets longer than one symbol are handled by running the code
//!   independently over every byte position (`m = 8` bit symbols), which is
//!   Figure 2 of McAuley \[12\] and Section 2.2 of the paper.
//!
//! Two encoders are provided:
//!
//! * [`RseEncoder`]/[`RseDecoder`] — the production systematic
//!   Vandermonde-matrix codec (Rizzo-style), used by the `pm-core` protocol.
//! * [`poly_codec`] — the paper's literal Eq. (1) construction
//!   (`p_j = F(alpha^(j-1))` with Lagrange-interpolation decoding), kept as
//!   an executable specification and cross-checked against the matrix codec
//!   in tests.
//!
//! [`GroupDecoder`] is the receiver-side accumulator used by the protocol:
//! it tracks which packets of a block have arrived and reconstructs the TG
//! as soon as any `k` have been received.
//!
//! ```
//! use pm_rse::{CodeSpec, RseDecoder, RseEncoder};
//! let spec = CodeSpec::new(4, 2)?;                 // k=4 data, h=2 parities
//! let enc = RseEncoder::new(spec)?;
//! let dec = RseDecoder::from_encoder(&enc);
//! let data: Vec<Vec<u8>> = (0..4).map(|i| vec![i as u8; 8]).collect();
//! let parities = enc.encode_all(&data)?;
//! // Lose data packets 1 and 3; decode from the rest + both parities.
//! let shares: Vec<(usize, &[u8])> = vec![
//!     (0, &data[0][..]), (2, &data[2][..]),
//!     (4, &parities[0][..]), (5, &parities[1][..]),
//! ];
//! assert_eq!(dec.decode(&shares)?, data);
//! # Ok::<(), pm_rse::RseError>(())
//! ```

pub mod block;
pub mod code;
pub mod decoder;
pub mod encoder;
pub mod error;
pub mod incremental;
pub mod interleave;
pub mod poly_codec;
pub mod wide;

pub use block::{GroupDecoder, InsertOutcome};
pub use code::CodeSpec;
pub use decoder::{CacheStats, RseDecoder};
pub use encoder::RseEncoder;
pub use error::RseError;
pub use incremental::{AddOutcome, IncrementalDecoder};
pub use interleave::Interleaver;
pub use wide::{WideCodeSpec, WideCodec};

#[cfg(test)]
mod proptests;
