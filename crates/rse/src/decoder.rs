//! Erasure decoder: reconstruct a transmission group from any `k` packets.
//!
//! Decoding follows Rizzo's scheme: collect the generator rows of the `k`
//! packets that survived, invert that `k x k` matrix, and multiply it with
//! the received payloads. Because the code is systematic, received *data*
//! packets are passed through untouched and only the rows of *missing* data
//! packets are actually computed — so decode cost is proportional to the
//! number of losses (`l`), matching Section 2.1 of the paper ("the decoding
//! overhead is proportional to `l`").
//!
//! Loss patterns repeat: a receiver behind one lossy link tends to lose the
//! same packet positions group after group (and the all-parity carousel
//! case always selects the same rows). The decoder therefore memoises
//! inverted matrices in a small LRU cache keyed by the *selection bitmask*
//! (which block indices supplied the `k` equations); a repeat pattern skips
//! the O(k^3) inversion entirely.

use pm_gf::{Gf256, Matrix};
use pm_obs::{Counter, Histogram, SpanTimer};
use pm_simd::Kernels;

use std::sync::{Arc, Mutex};

use crate::code::CodeSpec;
use crate::encoder::RseEncoder;
use crate::error::RseError;

/// Bitmask over the `n <= 255` block indices of the `k` selected shares —
/// the loss-pattern cache key.
type PatternKey = [u64; 4];

/// Retained inverse matrices. Each entry is at most `k^2` bytes (≤ 64 KB at
/// the GF(2^8) block limit); 16 entries cover far more distinct loss
/// patterns than one receiver sees in practice.
const INVERSE_CACHE_CAP: usize = 16;

/// Point-in-time view of the inverse-cache effectiveness counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Decodes served by a memoised inverse.
    pub hits: u64,
    /// Decodes that had to invert a fresh matrix.
    pub misses: u64,
}

/// A reusable decoder for one [`CodeSpec`].
#[derive(Debug)]
pub struct RseDecoder {
    spec: CodeSpec,
    /// Backend-dispatched slice kernels, inherited from the encoder.
    kernels: &'static Kernels,
    /// Parity rows of the systematic generator, `h x k` (dummy 1 x k if h=0).
    parity_rows: Matrix,
    /// MRU-first LRU of `(selection bitmask, inverted matrix)`.
    inverse_cache: Mutex<Vec<(PatternKey, Arc<Matrix>)>>,
    /// Lifetime cache-hit count, shared across clones.
    cache_hits: Counter,
    /// Lifetime cache-miss (fresh inversion) count, shared across clones.
    cache_misses: Counter,
    /// Optional decode-latency histogram (nanoseconds per decode call).
    timer: Option<Histogram>,
}

impl Clone for RseDecoder {
    fn clone(&self) -> Self {
        // Share the cached inverses (they are immutable behind Arc).
        let entries = self.inverse_cache.lock().expect("cache lock").clone();
        RseDecoder {
            spec: self.spec,
            kernels: self.kernels,
            parity_rows: self.parity_rows.clone(),
            inverse_cache: Mutex::new(entries),
            cache_hits: self.cache_hits.clone(),
            cache_misses: self.cache_misses.clone(),
            timer: self.timer.clone(),
        }
    }
}

impl RseDecoder {
    /// Build a decoder for the given code (same generator as
    /// [`RseEncoder::new`] for the spec).
    pub fn new(spec: CodeSpec) -> Result<Self, RseError> {
        let enc = RseEncoder::new(spec)?;
        Ok(Self::from_encoder(&enc))
    }

    /// Build a decoder sharing the encoder's generator (avoids recomputing
    /// the systematisation).
    pub fn from_encoder(enc: &RseEncoder) -> Self {
        let spec = *enc.spec();
        let k = spec.k();
        let rows = if spec.h() == 0 {
            Matrix::zero(1, k)
        } else {
            Matrix::from_fn(spec.h(), k, |j, i| enc.parity_coeff(j, i))
        };
        RseDecoder {
            spec,
            kernels: enc.kernels(),
            parity_rows: rows,
            inverse_cache: Mutex::new(Vec::new()),
            cache_hits: Counter::new(),
            cache_misses: Counter::new(),
            timer: None,
        }
    }

    /// Number of loss patterns whose inverse is currently memoised.
    pub fn cached_inverses(&self) -> usize {
        self.inverse_cache.lock().expect("cache lock").len()
    }

    /// Lifetime inverse-cache hit/miss counts (shared across clones; the
    /// systematic no-loss fast path touches neither).
    pub fn cache_stats(&self) -> CacheStats {
        CacheStats {
            hits: self.cache_hits.get(),
            misses: self.cache_misses.get(),
        }
    }

    /// Record per-call decode latency (nanoseconds) into `hist`. Off by
    /// default so the uninstrumented hot path pays nothing.
    pub fn set_timer(&mut self, hist: Histogram) {
        self.timer = Some(hist);
    }

    /// The inverse of the selection's generator-row matrix, from the LRU
    /// cache when this loss pattern has been decoded before.
    ///
    /// `selected` must be canonical (sorted), so the same share *set* always
    /// produces the same row order and the bitmask is a faithful key.
    fn inverse_for(&self, selected: &[usize]) -> Result<Arc<Matrix>, RseError> {
        let mut key: PatternKey = [0; 4];
        for &i in selected {
            key[i / 64] |= 1 << (i % 64);
        }

        if let Ok(mut cache) = self.inverse_cache.lock() {
            if let Some(pos) = cache.iter().position(|(k2, _)| *k2 == key) {
                let hit = cache.remove(pos);
                let inv = Arc::clone(&hit.1);
                cache.insert(0, hit);
                self.cache_hits.inc();
                return Ok(inv);
            }
        }
        self.cache_misses.inc();

        // Invert outside the lock: O(k^3) work must not serialize decoders
        // racing on different patterns.
        let k = self.spec.k();
        let rows: Vec<Vec<Gf256>> = selected.iter().map(|&i| self.generator_row(i)).collect();
        let m = Matrix::from_fn(k, k, |r, c| rows[r][c]);
        let inv = Arc::new(m.invert()?);
        if let Ok(mut cache) = self.inverse_cache.lock() {
            if !cache.iter().any(|(k2, _)| *k2 == key) {
                cache.insert(0, (key, Arc::clone(&inv)));
                cache.truncate(INVERSE_CACHE_CAP);
            }
        }
        Ok(inv)
    }

    /// The code parameters this decoder was built for.
    pub fn spec(&self) -> &CodeSpec {
        &self.spec
    }

    /// Generator row for FEC-block index `index` (`0 <= index < n`).
    fn generator_row(&self, index: usize) -> Vec<Gf256> {
        let k = self.spec.k();
        if index < k {
            let mut row = vec![Gf256::ZERO; k];
            row[index] = Gf256::ONE;
            row
        } else {
            self.parity_rows.row(index - k).to_vec()
        }
    }

    /// Reconstruct all `k` data packets from `shares` — `(block_index,
    /// payload)` pairs, where indices `0..k` are data and `k..n` parities.
    ///
    /// Exact duplicates are tolerated and ignored; conflicting duplicates
    /// are an error. Extra shares beyond `k` are ignored (data shares are
    /// preferred, then parities in the order supplied).
    ///
    /// # Errors
    /// [`RseError::NotEnoughShares`] with fewer than `k` distinct shares,
    /// plus the usual validation errors.
    pub fn decode<P: AsRef<[u8]>>(&self, shares: &[(usize, P)]) -> Result<Vec<Vec<u8>>, RseError> {
        let _span = self.timer.as_ref().map(SpanTimer::start);
        let k = self.spec.k();
        let n = self.spec.n();

        // Deduplicate into per-index slots, validating sizes.
        let mut slots: Vec<Option<&[u8]>> = vec![None; n];
        let mut payload_len: Option<usize> = None;
        let mut parity_order: Vec<usize> = Vec::new();
        for (index, payload) in shares {
            let index = *index;
            let payload = payload.as_ref();
            if index >= n {
                return Err(RseError::IndexOutOfRange { index, n });
            }
            match payload_len {
                None => payload_len = Some(payload.len()),
                Some(expected) if expected != payload.len() => {
                    return Err(RseError::PacketSizeMismatch {
                        expected,
                        got: payload.len(),
                    })
                }
                _ => {}
            }
            match slots[index] {
                None => {
                    slots[index] = Some(payload);
                    if index >= k {
                        parity_order.push(index);
                    }
                }
                Some(existing) if existing == payload => {} // exact duplicate
                Some(_) => return Err(RseError::DuplicateShare { index }),
            }
        }

        let have = slots.iter().filter(|s| s.is_some()).count();
        if have < k {
            return Err(RseError::NotEnoughShares { have, need: k });
        }
        let len = payload_len.unwrap_or(0);

        let missing: Vec<usize> = (0..k).filter(|&i| slots[i].is_none()).collect();
        let mut out: Vec<Vec<u8>> = (0..k)
            .map(|i| {
                slots[i]
                    .map(|p| p.to_vec())
                    .unwrap_or_else(|| vec![0u8; len])
            })
            .collect();
        if missing.is_empty() {
            return Ok(out);
        }

        // Selected shares: the received data packets plus just enough
        // parities to reach k. The chosen parities keep first-supplied
        // priority but are sorted afterwards so that the same share *set*
        // always yields the same canonical selection (and cache key).
        let mut selected: Vec<usize> = (0..k).filter(|&i| slots[i].is_some()).collect();
        let mut chosen: Vec<usize> = parity_order.iter().take(missing.len()).copied().collect();
        chosen.sort_unstable();
        selected.extend(chosen);
        debug_assert_eq!(
            selected.len(),
            k,
            "share accounting above guarantees k selections"
        );

        // Invert the k x k matrix of their generator rows (LRU-cached per
        // loss pattern).
        let inv = self.inverse_for(&selected)?;

        // d_i = sum_j inv[i][j] * y_j, computed only for missing rows, each
        // as one batched multi-source pass (up to four shares per read-
        // modify-write of the output row). One source buffer is reused
        // across rows so the loop itself never allocates.
        let mut sources: Vec<(Gf256, &[u8])> = Vec::with_capacity(k);
        for &i in &missing {
            sources.clear();
            sources.extend(
                selected
                    .iter()
                    .enumerate()
                    .filter(|(j, _)| !inv[(i, *j)].is_zero())
                    .map(|(j, &share_idx)| {
                        let payload = slots[share_idx].expect("selected shares are present");
                        (inv[(i, j)], payload)
                    }),
            );
            // `out[i]` is already zeroed.
            self.kernels.mul_add_multi(&sources, &mut out[i]);
        }
        Ok(out)
    }

    /// Convenience: reconstruct and return only the packets that were
    /// missing, as `(data_index, payload)` pairs.
    ///
    /// # Errors
    /// As for [`RseDecoder::decode`].
    pub fn decode_missing<P: AsRef<[u8]>>(
        &self,
        shares: &[(usize, P)],
    ) -> Result<Vec<(usize, Vec<u8>)>, RseError> {
        let k = self.spec.k();
        let mut present = vec![false; k];
        for (index, _) in shares {
            if *index < k {
                present[*index] = true;
            }
        }
        let all = self.decode(shares)?;
        Ok(all
            .into_iter()
            .enumerate()
            .filter(|(i, _)| !present[*i])
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn group(k: usize, len: usize) -> Vec<Vec<u8>> {
        (0..k)
            .map(|i| {
                (0..len)
                    .map(|b| ((i * 97 + b * 31 + 5) % 256) as u8)
                    .collect()
            })
            .collect()
    }

    fn codec(k: usize, h: usize) -> (RseEncoder, RseDecoder, Vec<Vec<u8>>, Vec<Vec<u8>>) {
        let spec = CodeSpec::new(k, h).unwrap();
        let enc = RseEncoder::new(spec).unwrap();
        let dec = RseDecoder::from_encoder(&enc);
        let data = group(k, 48);
        let parities = enc.encode_all(&data).unwrap();
        (enc, dec, data, parities)
    }

    #[test]
    fn all_data_received_fast_path() {
        let (_, dec, data, _) = codec(7, 3);
        let shares: Vec<(usize, &[u8])> =
            data.iter().enumerate().map(|(i, d)| (i, &d[..])).collect();
        assert_eq!(dec.decode(&shares).unwrap(), data);
        assert!(dec.decode_missing(&shares).unwrap().is_empty());
    }

    #[test]
    fn recover_from_each_single_loss() {
        let (_, dec, data, parities) = codec(7, 3);
        for lost in 0..7 {
            let mut shares: Vec<(usize, &[u8])> = data
                .iter()
                .enumerate()
                .filter(|(i, _)| *i != lost)
                .map(|(i, d)| (i, &d[..]))
                .collect();
            shares.push((7, &parities[0][..]));
            let decoded = dec.decode(&shares).unwrap();
            assert_eq!(decoded, data, "lost packet {lost}");
            let missing = dec.decode_missing(&shares).unwrap();
            assert_eq!(missing, vec![(lost, data[lost].clone())]);
        }
    }

    #[test]
    fn recover_from_maximum_loss() {
        // Lose all h = 3 data packets; recover from k-3 data + 3 parities.
        let (_, dec, data, parities) = codec(7, 3);
        let mut shares: Vec<(usize, &[u8])> = (3..7).map(|i| (i, &data[i][..])).collect();
        for (j, p) in parities.iter().enumerate() {
            shares.push((7 + j, &p[..]));
        }
        assert_eq!(dec.decode(&shares).unwrap(), data);
    }

    #[test]
    fn parity_only_decoding() {
        // k parities, zero data packets: still reconstructs (pure Vandermonde
        // inversion, no systematic fast path at all).
        let (_, dec, data, parities) = codec(4, 4);
        let shares: Vec<(usize, &[u8])> = parities
            .iter()
            .enumerate()
            .map(|(j, p)| (4 + j, &p[..]))
            .collect();
        assert_eq!(dec.decode(&shares).unwrap(), data);
    }

    #[test]
    fn arbitrary_parity_subset_works() {
        // Any k of the n packets suffice — try scattered combinations.
        let (_, dec, data, parities) = codec(5, 5);
        let combos: [&[usize]; 4] = [
            &[0, 2, 4, 6, 8],
            &[1, 3, 5, 7, 9],
            &[0, 1, 7, 8, 9],
            &[4, 5, 6, 7, 8],
        ];
        for idxs in combos {
            let shares: Vec<(usize, &[u8])> = idxs
                .iter()
                .map(|&i| {
                    if i < 5 {
                        (i, &data[i][..])
                    } else {
                        (i, &parities[i - 5][..])
                    }
                })
                .collect();
            assert_eq!(dec.decode(&shares).unwrap(), data, "indices {idxs:?}");
        }
    }

    #[test]
    fn not_enough_shares_error() {
        let (_, dec, data, _) = codec(7, 3);
        let shares: Vec<(usize, &[u8])> = (0..6).map(|i| (i, &data[i][..])).collect();
        assert_eq!(
            dec.decode(&shares).unwrap_err(),
            RseError::NotEnoughShares { have: 6, need: 7 }
        );
    }

    #[test]
    fn exact_duplicates_ignored_conflicts_rejected() {
        let (_, dec, data, parities) = codec(3, 2);
        let mut shares: Vec<(usize, &[u8])> = vec![
            (0, &data[0][..]),
            (0, &data[0][..]), // exact duplicate: fine
            (1, &data[1][..]),
            (3, &parities[0][..]),
        ];
        assert_eq!(dec.decode(&shares).unwrap(), data);
        let conflicting = parities[1].clone();
        shares.push((0, &conflicting[..]));
        assert_eq!(
            dec.decode(&shares).unwrap_err(),
            RseError::DuplicateShare { index: 0 }
        );
    }

    #[test]
    fn index_and_size_validation() {
        let (_, dec, data, _) = codec(3, 2);
        let bad = vec![(9usize, &data[0][..])];
        assert_eq!(
            dec.decode(&bad).unwrap_err(),
            RseError::IndexOutOfRange { index: 9, n: 5 }
        );
        let short = [0u8; 5];
        let ragged: Vec<(usize, &[u8])> = vec![(0, &data[0][..]), (1, &short[..])];
        assert!(matches!(
            dec.decode(&ragged),
            Err(RseError::PacketSizeMismatch { .. })
        ));
    }

    #[test]
    fn extra_shares_beyond_k_are_ignored() {
        let (_, dec, data, parities) = codec(4, 3);
        // Send everything: 4 data + 3 parities = 7 shares for k = 4.
        let mut shares: Vec<(usize, &[u8])> =
            data.iter().enumerate().map(|(i, d)| (i, &d[..])).collect();
        for (j, p) in parities.iter().enumerate() {
            shares.push((4 + j, &p[..]));
        }
        assert_eq!(dec.decode(&shares).unwrap(), data);
    }

    #[test]
    fn large_group_roundtrip() {
        // Paper-size group: k = 100 with a burst of 7 losses.
        let (_, dec, data, parities) = codec(100, 7);
        let mut shares: Vec<(usize, &[u8])> = data
            .iter()
            .enumerate()
            .filter(|(i, _)| !(40..47).contains(i))
            .map(|(i, d)| (i, &d[..]))
            .collect();
        for (j, p) in parities.iter().enumerate() {
            shares.push((100 + j, &p[..]));
        }
        assert_eq!(dec.decode(&shares).unwrap(), data);
    }

    #[test]
    fn zero_length_packets_decode() {
        // Degenerate payloads: losses are "recovered" as empty packets
        // without arithmetic; no panic, correct shape.
        let (_, dec, _, _) = codec(4, 2);
        let empty: Vec<u8> = vec![];
        let shares: Vec<(usize, &[u8])> = vec![
            (0, &empty[..]),
            (1, &empty[..]),
            (4, &empty[..]),
            (5, &empty[..]),
        ];
        let out = dec.decode(&shares).unwrap();
        assert_eq!(out, vec![Vec::<u8>::new(); 4]);
        let missing = dec.decode_missing(&shares).unwrap();
        assert_eq!(missing, vec![(2, vec![]), (3, vec![])]);
    }

    #[test]
    fn inverse_cache_reused_across_parity_order() {
        // Same share *set*, different parity arrival order: the canonical
        // selection must map both onto one cache entry.
        let (_, dec, data, parities) = codec(5, 3);
        let fwd: Vec<(usize, &[u8])> = vec![
            (2, &data[2][..]),
            (3, &data[3][..]),
            (4, &data[4][..]),
            (5, &parities[0][..]),
            (6, &parities[1][..]),
        ];
        let mut rev = fwd.clone();
        rev.reverse();
        assert_eq!(dec.decode(&fwd).unwrap(), data);
        assert_eq!(dec.cached_inverses(), 1);
        assert_eq!(dec.decode(&rev).unwrap(), data);
        assert_eq!(dec.cached_inverses(), 1, "reordered shares reuse the entry");
        assert_eq!(dec.cache_stats(), CacheStats { hits: 1, misses: 1 });
    }

    #[test]
    fn inverse_cache_capacity_bounded() {
        // More distinct single-loss patterns than the cache holds: evicts,
        // never grows past the cap, and every decode is still correct.
        let (_, dec, data, parities) = codec(20, 1);
        for lost in 0..20usize {
            let mut shares: Vec<(usize, &[u8])> = data
                .iter()
                .enumerate()
                .filter(|(i, _)| *i != lost)
                .map(|(i, d)| (i, &d[..]))
                .collect();
            shares.push((20, &parities[0][..]));
            assert_eq!(dec.decode(&shares).unwrap(), data, "lost {lost}");
        }
        assert!(dec.cached_inverses() <= 16, "LRU respects its capacity");
        assert!(dec.cached_inverses() > 0);
    }

    #[test]
    fn all_data_fast_path_skips_cache() {
        let (_, dec, data, _) = codec(6, 2);
        let shares: Vec<(usize, &[u8])> =
            data.iter().enumerate().map(|(i, d)| (i, &d[..])).collect();
        assert_eq!(dec.decode(&shares).unwrap(), data);
        assert_eq!(dec.cached_inverses(), 0, "no inversion, no cache entry");
        assert_eq!(dec.cache_stats(), CacheStats::default());
    }

    #[test]
    fn clone_shares_cached_inverses() {
        let (_, dec, data, parities) = codec(3, 1);
        let shares: Vec<(usize, &[u8])> =
            vec![(0, &data[0][..]), (1, &data[1][..]), (3, &parities[0][..])];
        dec.decode(&shares).unwrap();
        let cloned = dec.clone();
        assert_eq!(cloned.cached_inverses(), 1);
        assert_eq!(cloned.decode(&shares).unwrap(), data);
        // Hit/miss counters are one shared cell across clones.
        assert_eq!(dec.cache_stats(), CacheStats { hits: 1, misses: 1 });
        assert_eq!(cloned.cache_stats(), dec.cache_stats());
    }

    #[test]
    fn new_equals_from_encoder() {
        let spec = CodeSpec::new(6, 4).unwrap();
        let enc = RseEncoder::new(spec).unwrap();
        let d1 = RseDecoder::new(spec).unwrap();
        let d2 = RseDecoder::from_encoder(&enc);
        let data = group(6, 16);
        let parities = enc.encode_all(&data).unwrap();
        let shares: Vec<(usize, &[u8])> = vec![
            (2, &data[2][..]),
            (3, &data[3][..]),
            (6, &parities[0][..]),
            (7, &parities[1][..]),
            (8, &parities[2][..]),
            (9, &parities[3][..]),
        ];
        assert_eq!(d1.decode(&shares).unwrap(), d2.decode(&shares).unwrap());
    }
}
