//! Error type for the RSE codec.

use std::fmt;

use pm_gf::GfError;
use pm_simd::DispatchError;

/// Errors raised by encoding, decoding and block accumulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RseError {
    /// `(k, n)` outside the valid range: need `1 <= k <= n <= 256` over
    /// GF(2^8) (n evaluation points: k data identities + up to 256-k
    /// distinct parity points; the paper notes `n < 2^m` suffices).
    InvalidSpec {
        k: usize,
        n: usize,
        reason: &'static str,
    },
    /// All packets in one FEC block must have the same length.
    PacketSizeMismatch { expected: usize, got: usize },
    /// Fewer than `k` distinct packets of the block are available.
    NotEnoughShares { have: usize, need: usize },
    /// A packet index `>= n` was supplied.
    IndexOutOfRange { index: usize, n: usize },
    /// The same packet index was supplied twice with different content.
    DuplicateShare { index: usize },
    /// Wrong number of data packets passed to the encoder.
    WrongDataCount { expected: usize, got: usize },
    /// Underlying field/matrix failure (not reachable with validated specs;
    /// surfaced rather than panicking).
    Gf(GfError),
    /// `PM_SIMD`-driven kernel dispatch failed (unknown value, or a forced
    /// backend this host cannot run). Surfaces at codec construction, so a
    /// misconfigured environment fails loudly before any data moves.
    Dispatch(DispatchError),
    /// An internal invariant of this crate was violated — a bug, surfaced
    /// as a typed error instead of a panic so the public decode APIs stay
    /// total even when the impossible happens.
    Internal(&'static str),
}

impl fmt::Display for RseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RseError::InvalidSpec { k, n, reason } => {
                write!(f, "invalid code spec k={k}, n={n}: {reason}")
            }
            RseError::PacketSizeMismatch { expected, got } => {
                write!(
                    f,
                    "packet size mismatch: block uses {expected} bytes, got {got}"
                )
            }
            RseError::NotEnoughShares { have, need } => {
                write!(f, "cannot decode: have {have} packets, need {need}")
            }
            RseError::IndexOutOfRange { index, n } => {
                write!(
                    f,
                    "packet index {index} out of range for FEC block of n={n}"
                )
            }
            RseError::DuplicateShare { index } => {
                write!(f, "conflicting duplicate for packet index {index}")
            }
            RseError::WrongDataCount { expected, got } => {
                write!(f, "encoder expects {expected} data packets, got {got}")
            }
            RseError::Gf(e) => write!(f, "field arithmetic error: {e}"),
            RseError::Dispatch(e) => write!(f, "codec kernel dispatch failed: {e}"),
            RseError::Internal(what) => {
                write!(f, "internal invariant violated (bug in pm-rse): {what}")
            }
        }
    }
}

impl std::error::Error for RseError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RseError::Gf(e) => Some(e),
            RseError::Dispatch(e) => Some(e),
            _ => None,
        }
    }
}

impl From<GfError> for RseError {
    fn from(e: GfError) -> Self {
        RseError::Gf(e)
    }
}

impl From<DispatchError> for RseError {
    fn from(e: DispatchError) -> Self {
        RseError::Dispatch(e)
    }
}
