//! Incremental (online) erasure decoding.
//!
//! The batch [`crate::RseDecoder`] inverts a `k x k` matrix once all `k`
//! shares are present — an O(k^3 + l·k·P) burst of work at the worst
//! moment (the instant the group completes, often right before the
//! application wants the data). [`IncrementalDecoder`] instead performs
//! Gauss–Jordan elimination *as shares arrive*: each
//! [`IncrementalDecoder::add_share`] costs O(k^2 + k·P) and the final
//! share finishes with only back-substitution left. Total work matches the
//! batch decoder; its distribution follows the packet arrivals — the
//! online-decoding concern the paper raises in Section 5 ("even when
//! receivers decode online").
//!
//! A second benefit: linearly *redundant* shares are detected on arrival
//! (they reduce to a zero row) and reported as
//! [`AddOutcome::Redundant`] instead of silently wasting buffer space.

use pm_gf::Gf256;
use pm_simd::Kernels;

use crate::code::CodeSpec;
use crate::encoder::RseEncoder;
use crate::error::RseError;

/// Result of absorbing one share.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AddOutcome {
    /// Share absorbed; `k - rank` more independent shares are needed.
    Absorbed {
        /// Independent shares still required.
        remaining: usize,
    },
    /// Share absorbed and the group is now decodable — call
    /// [`IncrementalDecoder::finish`].
    Complete,
    /// The share was a linear combination of those already absorbed
    /// (e.g. a duplicate); it contributes nothing and was dropped.
    Redundant,
}

/// Online Gauss–Jordan decoder for one transmission group.
pub struct IncrementalDecoder {
    spec: CodeSpec,
    /// Backend-dispatched slice kernels, inherited from the encoder.
    kernels: &'static Kernels,
    /// Generator parity rows (shared orientation with the encoder).
    parity_rows: Vec<Vec<Gf256>>,
    /// Pivot rows by leading column: `(coefficients, payload)`. Rows are
    /// normalized to a leading 1 and fully reduced against earlier pivots.
    pivots: Vec<Option<(Vec<Gf256>, Vec<u8>)>>,
    rank: usize,
    payload_len: Option<usize>,
}

impl IncrementalDecoder {
    /// Build from the code spec (constructs the generator; reuse across
    /// groups via [`IncrementalDecoder::reset`]).
    ///
    /// # Errors
    /// Spec/generator construction failures.
    pub fn new(spec: CodeSpec) -> Result<Self, RseError> {
        let enc = RseEncoder::new(spec)?;
        Ok(Self::from_encoder(&enc))
    }

    /// Build sharing an existing encoder's generator.
    pub fn from_encoder(enc: &RseEncoder) -> Self {
        let spec = *enc.spec();
        let parity_rows = (0..spec.h())
            .map(|j| (0..spec.k()).map(|i| enc.parity_coeff(j, i)).collect())
            .collect();
        IncrementalDecoder {
            spec,
            kernels: enc.kernels(),
            parity_rows,
            pivots: vec![None; spec.k()],
            rank: 0,
            payload_len: None,
        }
    }

    /// Code parameters.
    pub fn spec(&self) -> &CodeSpec {
        &self.spec
    }

    /// Independent shares absorbed so far.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// True once `k` independent shares have been absorbed.
    pub fn is_complete(&self) -> bool {
        self.rank == self.spec.k()
    }

    /// Clear all state for the next group (keeps the generator).
    pub fn reset(&mut self) {
        for p in self.pivots.iter_mut() {
            *p = None;
        }
        self.rank = 0;
        self.payload_len = None;
    }

    fn generator_row(&self, index: usize) -> Result<Vec<Gf256>, RseError> {
        let k = self.spec.k();
        if index < k {
            Ok((0..k)
                .map(|i| if i == index { Gf256::ONE } else { Gf256::ZERO })
                .collect())
        } else {
            self.parity_rows
                .get(index - k)
                .cloned()
                .ok_or(RseError::Internal("index < n implies a parity row"))
        }
    }

    /// Absorb one share of the FEC block.
    ///
    /// # Errors
    /// Index/size validation, or absorbing into an already-complete group
    /// ([`RseError::DuplicateShare`] is *not* used here — duplicates are
    /// simply [`AddOutcome::Redundant`]).
    pub fn add_share(&mut self, index: usize, payload: &[u8]) -> Result<AddOutcome, RseError> {
        let (k, n) = (self.spec.k(), self.spec.n());
        if index >= n {
            return Err(RseError::IndexOutOfRange { index, n });
        }
        match self.payload_len {
            None => self.payload_len = Some(payload.len()),
            Some(expected) if expected != payload.len() => {
                return Err(RseError::PacketSizeMismatch {
                    expected,
                    got: payload.len(),
                })
            }
            _ => {}
        }
        if self.is_complete() {
            return Ok(AddOutcome::Redundant);
        }

        let mut row = self.generator_row(index)?;
        let mut data = payload.to_vec();
        // Forward-reduce against existing pivots.
        for col in 0..k {
            let factor = *row
                .get(col)
                .ok_or(RseError::Internal("generator rows have k columns"))?;
            if factor.is_zero() {
                continue;
            }
            match self.pivots.get(col) {
                Some(Some((prow, ppayload))) => {
                    for (rc, &pv) in row.iter_mut().zip(prow.iter()).skip(col) {
                        *rc += factor * pv;
                    }
                    self.kernels.mul_add_slice(factor, ppayload, &mut data);
                }
                Some(None) => {
                    // New pivot: normalize to a leading 1 and store.
                    let inv = factor
                        .checked_inv()
                        .ok_or(RseError::Internal("leading entry is non-zero"))?;
                    for c in row.iter_mut().skip(col) {
                        *c *= inv;
                    }
                    self.kernels.scale_slice(inv, &mut data);
                    *self
                        .pivots
                        .get_mut(col)
                        .ok_or(RseError::Internal("pivot column within k"))? = Some((row, data));
                    self.rank += 1;
                    return Ok(if self.is_complete() {
                        AddOutcome::Complete
                    } else {
                        AddOutcome::Absorbed {
                            remaining: k - self.rank,
                        }
                    });
                }
                None => return Err(RseError::Internal("pivot column within k")),
            }
        }
        // Reduced to zero: linearly dependent on what we already have.
        debug_assert!(row.iter().all(|c| c.is_zero()));
        Ok(AddOutcome::Redundant)
    }

    /// Back-substitute and return the `k` data packets.
    ///
    /// # Errors
    /// [`RseError::NotEnoughShares`] before completion.
    pub fn finish(mut self) -> Result<Vec<Vec<u8>>, RseError> {
        let k = self.spec.k();
        if !self.is_complete() {
            return Err(RseError::NotEnoughShares {
                have: self.rank,
                need: k,
            });
        }
        // Eliminate above-diagonal entries from the bottom up, row at a
        // time: once rows `i+1..k` are fully reduced, row `i` clears all its
        // trailing coefficients in one batched multi-source pass (the
        // `mul_add_multi` kernel touches `payload_i` once per group of four
        // pivot payloads instead of once per pivot).
        for i in (0..k.saturating_sub(1)).rev() {
            let (head, tail) = self.pivots.split_at_mut(i + 1);
            let (row_i, payload_i) = head
                .last_mut()
                .and_then(Option::as_mut)
                .ok_or(RseError::Internal("rank k implies every pivot present"))?;
            let mut sources: Vec<(Gf256, &[u8])> = Vec::new();
            for (&coeff, pivot) in row_i.iter().skip(i + 1).zip(tail.iter()) {
                if coeff.is_zero() {
                    continue;
                }
                let (_, p) = pivot
                    .as_ref()
                    .ok_or(RseError::Internal("rank k implies every pivot present"))?;
                sources.push((coeff, p.as_slice()));
            }
            self.kernels.mul_add_multi(&sources, payload_i);
            for c in row_i.iter_mut().skip(i + 1) {
                *c = Gf256::ZERO;
            }
        }
        self.pivots
            .into_iter()
            .map(|p| {
                p.map(|(_, payload)| payload)
                    .ok_or(RseError::Internal("rank k implies every pivot present"))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decoder::RseDecoder;

    fn group(k: usize, len: usize) -> Vec<Vec<u8>> {
        (0..k)
            .map(|i| {
                (0..len)
                    .map(|b| ((i * 89 + b * 13 + 7) % 256) as u8)
                    .collect()
            })
            .collect()
    }

    fn setup(k: usize, h: usize) -> (RseEncoder, Vec<Vec<u8>>, Vec<Vec<u8>>) {
        let enc = RseEncoder::new(CodeSpec::new(k, h).unwrap()).unwrap();
        let data = group(k, 40);
        let parities = enc.encode_all(&data).unwrap();
        (enc, data, parities)
    }

    #[test]
    fn all_data_shares_complete_without_arithmetic() {
        let (enc, data, _) = setup(5, 2);
        let mut dec = IncrementalDecoder::from_encoder(&enc);
        for (i, d) in data.iter().enumerate() {
            let out = dec.add_share(i, d).unwrap();
            if i < 4 {
                assert_eq!(out, AddOutcome::Absorbed { remaining: 4 - i });
            } else {
                assert_eq!(out, AddOutcome::Complete);
            }
        }
        assert_eq!(dec.finish().unwrap(), data);
    }

    #[test]
    fn mixed_share_patterns_match_batch_decoder() {
        let (enc, data, parities) = setup(6, 4);
        let batch = RseDecoder::from_encoder(&enc);
        let patterns: [&[usize]; 4] = [
            &[0, 6, 2, 7, 4, 8],
            &[9, 8, 7, 6, 5, 4],
            &[0, 1, 2, 3, 4, 9],
            &[6, 7, 8, 9, 0, 3],
        ];
        for pat in patterns {
            let mut dec = IncrementalDecoder::from_encoder(&enc);
            for &i in pat {
                let payload = if i < 6 { &data[i] } else { &parities[i - 6] };
                dec.add_share(i, payload).unwrap();
            }
            assert!(dec.is_complete());
            let incremental = dec.finish().unwrap();
            let shares: Vec<(usize, &[u8])> = pat
                .iter()
                .map(|&i| {
                    (
                        i,
                        if i < 6 {
                            data[i].as_slice()
                        } else {
                            parities[i - 6].as_slice()
                        },
                    )
                })
                .collect();
            assert_eq!(
                incremental,
                batch.decode(&shares).unwrap(),
                "pattern {pat:?}"
            );
            assert_eq!(incremental, data);
        }
    }

    #[test]
    fn duplicates_and_excess_are_redundant() {
        let (enc, data, parities) = setup(3, 3);
        let mut dec = IncrementalDecoder::from_encoder(&enc);
        dec.add_share(0, &data[0]).unwrap();
        assert_eq!(dec.add_share(0, &data[0]).unwrap(), AddOutcome::Redundant);
        dec.add_share(3, &parities[0]).unwrap();
        assert_eq!(
            dec.add_share(4, &parities[1]).unwrap(),
            AddOutcome::Complete
        );
        // Anything after completion is redundant by definition.
        assert_eq!(
            dec.add_share(5, &parities[2]).unwrap(),
            AddOutcome::Redundant
        );
        assert_eq!(dec.finish().unwrap(), data);
    }

    #[test]
    fn premature_finish_errors() {
        let (enc, data, _) = setup(4, 1);
        let mut dec = IncrementalDecoder::from_encoder(&enc);
        dec.add_share(1, &data[1]).unwrap();
        assert_eq!(dec.rank(), 1);
        assert!(matches!(
            dec.finish(),
            Err(RseError::NotEnoughShares { have: 1, need: 4 })
        ));
    }

    #[test]
    fn validation() {
        let (enc, data, _) = setup(3, 2);
        let mut dec = IncrementalDecoder::from_encoder(&enc);
        assert!(matches!(
            dec.add_share(9, &data[0]),
            Err(RseError::IndexOutOfRange { .. })
        ));
        dec.add_share(0, &data[0]).unwrap();
        assert!(matches!(
            dec.add_share(1, &data[1][..10]),
            Err(RseError::PacketSizeMismatch { .. })
        ));
    }

    #[test]
    fn reset_reuses_generator() {
        let (enc, data, parities) = setup(3, 2);
        let mut dec = IncrementalDecoder::from_encoder(&enc);
        dec.add_share(3, &parities[0]).unwrap();
        dec.reset();
        assert_eq!(dec.rank(), 0);
        for (i, d) in data.iter().enumerate() {
            dec.add_share(i, d).unwrap();
        }
        assert_eq!(dec.finish().unwrap(), data);
    }

    #[test]
    fn zero_length_payloads_complete() {
        // Degenerate packets: rank accounting still works on the generator
        // rows alone; finish returns k empty packets.
        let (enc, _, _) = setup(3, 2);
        let mut dec = IncrementalDecoder::from_encoder(&enc);
        for i in [0usize, 3, 4] {
            dec.add_share(i, &[]).unwrap();
        }
        assert!(dec.is_complete());
        assert_eq!(dec.finish().unwrap(), vec![Vec::<u8>::new(); 3]);
    }

    #[test]
    fn parity_only_completion() {
        let (enc, data, parities) = setup(3, 3);
        let mut dec = IncrementalDecoder::from_encoder(&enc);
        for (j, p) in parities.iter().enumerate() {
            dec.add_share(3 + j, p).unwrap();
        }
        assert!(dec.is_complete());
        assert_eq!(dec.finish().unwrap(), data);
    }
}
