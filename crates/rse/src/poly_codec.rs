//! The paper's Eq. (1) codec, kept as an executable specification.
//!
//! Section 2.1 defines the code directly: treat the `k` data symbols as
//! coefficients of `F(X) = d_1 + d_2 X + … + d_k X^(k-1)` and compute parity
//! `p_j = F(alpha^(j-1))`. Decoding recovers `F` from any `k` known values
//! of it: received data packet `i` fixes the *coefficient* of `X^(i-1)`,
//! received parity `j` fixes the *evaluation* at `alpha^(j-1)`.
//!
//! **Caveat (and why production coders differ):** this literal construction
//! is *not* MDS over GF(2^m). Recovering `l` missing coefficients from `l`
//! parity evaluations requires inverting a *generalized* Vandermonde minor
//! (rows = evaluation points, columns = the missing coefficient powers), and
//! over a field of characteristic 2 such minors can vanish for specific
//! loss patterns, leaving a group unrecoverable even though exactly `k`
//! packets survive. This is precisely why Rizzo's `fec.c` (and
//! our [`crate::RseEncoder`]) instead *systematize an `n x k` Vandermonde
//! generator*, which restores the any-`k`-of-`n` guarantee. [`decode`]
//! returns [`RseError::Gf`]`(SingularMatrix)` on such patterns rather than
//! ever producing wrong data; the property tests pin down both behaviours.
//!
//! Use [`crate::RseEncoder`]/[`crate::RseDecoder`] in protocols; this module
//! is an executable specification of the paper's Section 2.1 math.

use pm_gf::{Gf256, Poly};

use crate::code::CodeSpec;
use crate::error::RseError;

/// Encode parity `j` (`0 <= j < h`) literally per Eq. (1):
/// `p_j[s] = F_s(alpha^j)` where `F_s` has the `s`-th byte of each data
/// packet as coefficients. (The paper writes `p_j = F(alpha^(j-1))` with
/// 1-based `j`; this function takes 0-based `j`.)
///
/// # Errors
/// Standard validation errors (wrong count, ragged sizes, bad index).
pub fn encode_parity<P: AsRef<[u8]>>(
    spec: &CodeSpec,
    j: usize,
    data: &[P],
) -> Result<Vec<u8>, RseError> {
    if j >= spec.h() {
        return Err(RseError::IndexOutOfRange {
            index: spec.k() + j,
            n: spec.n(),
        });
    }
    if data.len() != spec.k() {
        return Err(RseError::WrongDataCount {
            expected: spec.k(),
            got: data.len(),
        });
    }
    let len = data[0].as_ref().len();
    for d in data {
        if d.as_ref().len() != len {
            return Err(RseError::PacketSizeMismatch {
                expected: len,
                got: d.as_ref().len(),
            });
        }
    }
    let x = Gf256::alpha_pow(j);
    let mut out = vec![0u8; len];
    for (s, o) in out.iter_mut().enumerate() {
        // Horner over the s-th byte column.
        let mut acc = Gf256::ZERO;
        for d in data.iter().rev() {
            acc = acc * x + Gf256(d.as_ref()[s]);
        }
        *o = acc.0;
    }
    Ok(out)
}

/// Encode all `h` parities per Eq. (1).
///
/// # Errors
/// As for [`encode_parity`].
pub fn encode_all<P: AsRef<[u8]>>(spec: &CodeSpec, data: &[P]) -> Result<Vec<Vec<u8>>, RseError> {
    (0..spec.h())
        .map(|j| encode_parity(spec, j, data))
        .collect()
}

/// Decode the `k` data packets from any `k` shares `(block_index, payload)`.
///
/// For each byte position, build the unique polynomial of degree `< k`
/// consistent with the received coefficients and evaluations, then read the
/// data bytes off its coefficients.
///
/// # Errors
/// Standard validation errors; [`RseError::NotEnoughShares`] below `k`.
pub fn decode<P: AsRef<[u8]>>(
    spec: &CodeSpec,
    shares: &[(usize, P)],
) -> Result<Vec<Vec<u8>>, RseError> {
    let k = spec.k();
    let n = spec.n();
    let mut slots: Vec<Option<&[u8]>> = vec![None; n];
    let mut len: Option<usize> = None;
    for (idx, p) in shares {
        if *idx >= n {
            return Err(RseError::IndexOutOfRange { index: *idx, n });
        }
        let p = p.as_ref();
        match len {
            None => len = Some(p.len()),
            Some(l) if l != p.len() => {
                return Err(RseError::PacketSizeMismatch {
                    expected: l,
                    got: p.len(),
                })
            }
            _ => {}
        }
        match slots[*idx] {
            None => slots[*idx] = Some(p),
            Some(existing) if existing == p => {}
            Some(_) => return Err(RseError::DuplicateShare { index: *idx }),
        }
    }
    let have = slots.iter().flatten().count();
    if have < k {
        return Err(RseError::NotEnoughShares { have, need: k });
    }
    let len = len.unwrap_or(0);

    let known_coeffs: Vec<usize> = (0..k).filter(|&i| slots[i].is_some()).collect();
    if known_coeffs.len() == k {
        return Ok((0..k).map(|i| slots[i].unwrap().to_vec()).collect());
    }
    // Parity evaluations to use, in index order, just enough to reach k.
    let evals: Vec<usize> = (k..n)
        .filter(|&i| slots[i].is_some())
        .take(k - known_coeffs.len())
        .collect();

    let mut out: Vec<Vec<u8>> = (0..k)
        .map(|i| {
            slots[i]
                .map(|p| p.to_vec())
                .unwrap_or_else(|| vec![0u8; len])
        })
        .collect();
    #[allow(clippy::needless_range_loop)] // s indexes every share column in lockstep
    for s in 0..len {
        // Subtract the known coefficients' contribution from each parity
        // evaluation, then interpolate the residual polynomial whose
        // non-zero coefficients sit exactly at the missing positions.
        //
        // Simpler equivalent (used here): interpolate on a "virtual" point
        // set. A coefficient constraint is not an evaluation, so instead we
        // solve directly: write F_s(X) = K(X) + M(X) where K collects known
        // coefficients. For each parity evaluation x_e with value y_e:
        // M(x_e) = y_e - K(x_e). M has one unknown coefficient per missing
        // index; with |missing| equations this is a Vandermonde system on
        // the missing powers, solved by Lagrange-style elimination.
        let missing: Vec<usize> = (0..k).filter(|&i| slots[i].is_none()).collect();
        let m = missing.len();
        // Build the m x m system: sum_t M_t * x_e^missing[t] = rhs_e.
        let mut a = vec![vec![Gf256::ZERO; m]; m];
        let mut rhs = vec![Gf256::ZERO; m];
        for (row, &e) in evals.iter().enumerate() {
            let x = Gf256::alpha_pow(e - k);
            for (col, &mi) in missing.iter().enumerate() {
                a[row][col] = x.pow(mi as u64);
            }
            let mut kx = Gf256::ZERO;
            for &ci in &known_coeffs {
                kx += Gf256(slots[ci].unwrap()[s]) * x.pow(ci as u64);
            }
            rhs[row] = Gf256(slots[e].unwrap()[s]) + kx; // y - K(x) (char 2)
        }
        // Gaussian elimination on the tiny system.
        for col in 0..m {
            let piv = (col..m)
                .find(|&r| !a[r][col].is_zero())
                .ok_or(pm_gf::GfError::SingularMatrix)?;
            a.swap(col, piv);
            rhs.swap(col, piv);
            let inv = a[col][col].checked_inv().expect("pivot non-zero");
            for c in 0..m {
                a[col][c] *= inv;
            }
            rhs[col] *= inv;
            for r in 0..m {
                if r == col || a[r][col].is_zero() {
                    continue;
                }
                let f = a[r][col];
                for c in 0..m {
                    let v = a[col][c];
                    a[r][c] += f * v;
                }
                let v = rhs[col];
                rhs[r] += f * v;
            }
        }
        for (t, &mi) in missing.iter().enumerate() {
            out[mi][s] = rhs[t].0;
        }
    }
    Ok(out)
}

/// Recover the full polynomial for one byte column from `(x, y)` pairs —
/// exposed for tests and teaching; production decoding uses [`decode`].
pub fn interpolate_column(points: &[(Gf256, Gf256)]) -> Option<Poly> {
    Poly::interpolate(points)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn group(k: usize, len: usize) -> Vec<Vec<u8>> {
        (0..k)
            .map(|i| {
                (0..len)
                    .map(|b| ((i * 53 + b * 11 + 3) % 256) as u8)
                    .collect()
            })
            .collect()
    }

    #[test]
    fn roundtrip_with_parity_losses() {
        let spec = CodeSpec::new(7, 3).unwrap();
        let data = group(7, 24);
        let parities = encode_all(&spec, &data).unwrap();
        // Lose data 0, 4 and 6; use parities 0..3.
        let mut shares: Vec<(usize, &[u8])> = data
            .iter()
            .enumerate()
            .filter(|(i, _)| ![0usize, 4, 6].contains(i))
            .map(|(i, d)| (i, &d[..]))
            .collect();
        for (j, p) in parities.iter().enumerate() {
            shares.push((7 + j, &p[..]));
        }
        assert_eq!(decode(&spec, &shares).unwrap(), data);
    }

    #[test]
    fn all_data_fast_path() {
        let spec = CodeSpec::new(4, 2).unwrap();
        let data = group(4, 10);
        let shares: Vec<(usize, &[u8])> =
            data.iter().enumerate().map(|(i, d)| (i, &d[..])).collect();
        assert_eq!(decode(&spec, &shares).unwrap(), data);
    }

    #[test]
    fn parity_matches_direct_polynomial_evaluation() {
        let spec = CodeSpec::new(5, 4).unwrap();
        let data = group(5, 8);
        for j in 0..4usize {
            let p = encode_parity(&spec, j, &data).unwrap();
            for s in 0..8 {
                let col: Vec<u8> = data.iter().map(|d| d[s]).collect();
                let f = Poly::from_bytes(&col);
                assert_eq!(Gf256(p[s]), f.eval(Gf256::alpha_pow(j)), "j={j} s={s}");
            }
        }
    }

    #[test]
    fn not_enough_shares() {
        let spec = CodeSpec::new(5, 2).unwrap();
        let data = group(5, 4);
        let shares: Vec<(usize, &[u8])> = (0..4).map(|i| (i, &data[i][..])).collect();
        assert_eq!(
            decode(&spec, &shares).unwrap_err(),
            RseError::NotEnoughShares { have: 4, need: 5 }
        );
    }

    #[test]
    fn parity_only_reconstruction() {
        let spec = CodeSpec::new(3, 3).unwrap();
        let data = group(3, 12);
        let parities = encode_all(&spec, &data).unwrap();
        let shares: Vec<(usize, &[u8])> = parities
            .iter()
            .enumerate()
            .map(|(j, p)| (3 + j, &p[..]))
            .collect();
        assert_eq!(decode(&spec, &shares).unwrap(), data);
    }

    #[test]
    fn validation_errors() {
        let spec = CodeSpec::new(3, 2).unwrap();
        let data = group(3, 4);
        assert!(matches!(
            encode_parity(&spec, 2, &data),
            Err(RseError::IndexOutOfRange { .. })
        ));
        assert!(matches!(
            encode_parity(&spec, 0, &data[..2]),
            Err(RseError::WrongDataCount { .. })
        ));
        let shares: Vec<(usize, &[u8])> = vec![(7, &data[0][..])];
        assert!(matches!(
            decode(&spec, &shares),
            Err(RseError::IndexOutOfRange { .. })
        ));
    }
}
