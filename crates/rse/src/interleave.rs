//! Block interleaving for burst-loss resistance.
//!
//! Section 4.2 of the paper: "Under interleaving the sender spreads the
//! transmission of a FEC block over an interval that is longer than the loss
//! burst length … packets from different transmission groups can be sent
//! simultaneously in an interleaved manner."
//!
//! An [`Interleaver`] of depth `D` round-robins packets of `D` consecutive
//! FEC blocks: transmission order `b0p0, b1p0, …, b(D-1)p0, b0p1, …`. A loss
//! burst of length `L` then touches at most `ceil(L / D)` packets of any
//! single block.

/// Round-robin interleaver over `depth` blocks of `block_len` packets each.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interleaver {
    depth: usize,
    block_len: usize,
}

impl Interleaver {
    /// Create an interleaver. `depth == 1` is the identity (no interleaving).
    ///
    /// # Panics
    /// Panics if `depth` or `block_len` is zero.
    pub fn new(depth: usize, block_len: usize) -> Self {
        assert!(depth > 0, "interleaver depth must be at least 1");
        assert!(block_len > 0, "block length must be at least 1");
        Interleaver { depth, block_len }
    }

    /// Number of blocks interleaved together.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Packets per block.
    pub fn block_len(&self) -> usize {
        self.block_len
    }

    /// Total packets in one interleaving window.
    pub fn window(&self) -> usize {
        self.depth * self.block_len
    }

    /// Map `(block, packet)` to its position in the transmission order.
    ///
    /// # Panics
    /// Panics on out-of-range coordinates.
    pub fn tx_position(&self, block: usize, packet: usize) -> usize {
        assert!(block < self.depth, "block {block} out of range");
        assert!(packet < self.block_len, "packet {packet} out of range");
        packet * self.depth + block
    }

    /// Inverse of [`Interleaver::tx_position`]: which `(block, packet)` is
    /// sent at transmission slot `pos`.
    ///
    /// # Panics
    /// Panics if `pos >= window()`.
    pub fn source_of(&self, pos: usize) -> (usize, usize) {
        assert!(pos < self.window(), "position {pos} out of range");
        (pos % self.depth, pos / self.depth)
    }

    /// The worst-case number of packets a contiguous loss burst of
    /// `burst_len` transmissions can remove from any one block.
    pub fn max_block_damage(&self, burst_len: usize) -> usize {
        burst_len.div_ceil(self.depth).min(self.block_len)
    }

    /// Interleave a window of blocks into transmission order.
    ///
    /// # Panics
    /// Panics unless exactly `depth` blocks of `block_len` items are given.
    pub fn interleave<T: Clone>(&self, blocks: &[Vec<T>]) -> Vec<T> {
        assert_eq!(blocks.len(), self.depth, "expected {} blocks", self.depth);
        for b in blocks {
            assert_eq!(
                b.len(),
                self.block_len,
                "expected {} packets per block",
                self.block_len
            );
        }
        let mut out = Vec::with_capacity(self.window());
        for packet in 0..self.block_len {
            for block in blocks {
                out.push(block[packet].clone());
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_at_depth_one() {
        let il = Interleaver::new(1, 5);
        for p in 0..5 {
            assert_eq!(il.tx_position(0, p), p);
            assert_eq!(il.source_of(p), (0, p));
        }
    }

    #[test]
    fn position_roundtrip() {
        let il = Interleaver::new(3, 4);
        for b in 0..3 {
            for p in 0..4 {
                let pos = il.tx_position(b, p);
                assert_eq!(il.source_of(pos), (b, p));
            }
        }
        // All positions distinct and covering the window.
        let mut seen = vec![false; il.window()];
        for b in 0..3 {
            for p in 0..4 {
                let pos = il.tx_position(b, p);
                assert!(!seen[pos]);
                seen[pos] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn burst_damage_bounded() {
        let il = Interleaver::new(4, 10);
        assert_eq!(il.max_block_damage(1), 1);
        assert_eq!(il.max_block_damage(4), 1);
        assert_eq!(il.max_block_damage(5), 2);
        assert_eq!(il.max_block_damage(8), 2);
        assert_eq!(il.max_block_damage(1000), 10); // capped at block length
    }

    #[test]
    fn burst_damage_matches_brute_force() {
        // Simulate every burst start and measure actual per-block damage.
        let il = Interleaver::new(3, 5);
        for burst in 1..=il.window() {
            let mut worst = 0;
            for start in 0..il.window() {
                let mut damage = [0usize; 3];
                for off in 0..burst {
                    let pos = start + off;
                    if pos >= il.window() {
                        break;
                    }
                    let (b, _) = il.source_of(pos);
                    damage[b] += 1;
                }
                worst = worst.max(*damage.iter().max().unwrap());
            }
            assert!(
                worst <= il.max_block_damage(burst),
                "burst {burst}: actual {worst} > bound {}",
                il.max_block_damage(burst)
            );
        }
    }

    #[test]
    fn interleave_round_robins() {
        let il = Interleaver::new(2, 3);
        let out = il.interleave(&[vec!["a0", "a1", "a2"], vec!["b0", "b1", "b2"]]);
        assert_eq!(out, vec!["a0", "b0", "a1", "b1", "a2", "b2"]);
    }

    #[test]
    #[should_panic(expected = "depth must be at least 1")]
    fn zero_depth_panics() {
        let _ = Interleaver::new(0, 3);
    }
}
