//! Property-based tests: the MDS guarantee under random loss patterns, and
//! cross-checks between the matrix codec and the paper's Eq. (1) codec.

use proptest::prelude::*;

use crate::block::GroupDecoder;
use crate::code::CodeSpec;
use crate::decoder::RseDecoder;
use crate::encoder::RseEncoder;
use crate::poly_codec;

/// Random (k, h) spec with modest sizes plus a random payload length.
fn spec_strategy() -> impl Strategy<Value = (usize, usize, usize)> {
    (1usize..12, 0usize..8, 1usize..64)
}

fn make_group(k: usize, len: usize, seed: u64) -> Vec<Vec<u8>> {
    let mut s = seed.wrapping_add(0x9e3779b97f4a7c15);
    (0..k)
        .map(|_| {
            (0..len)
                .map(|_| {
                    s ^= s << 13;
                    s ^= s >> 7;
                    s ^= s << 17;
                    (s >> 24) as u8
                })
                .collect()
        })
        .collect()
}

/// Pick `keep` distinct indices from `0..n` using a seed.
fn choose(n: usize, keep: usize, seed: u64) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..n).collect();
    let mut s = seed | 1;
    for i in (1..n).rev() {
        s = s
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let j = (s >> 33) as usize % (i + 1);
        idx.swap(i, j);
    }
    idx.truncate(keep);
    idx
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any k survivors out of n reconstruct the group exactly.
    #[test]
    fn mds_any_k_of_n((k, h, len) in spec_strategy(), seed in any::<u64>()) {
        let spec = CodeSpec::new(k, h).unwrap();
        let enc = RseEncoder::new(spec).unwrap();
        let dec = RseDecoder::from_encoder(&enc);
        let data = make_group(k, len, seed);
        let parities = enc.encode_all(&data).unwrap();
        let survivors = choose(spec.n(), k, seed ^ 0xabcdef);
        let shares: Vec<(usize, &[u8])> = survivors
            .iter()
            .map(|&i| if i < k { (i, &data[i][..]) } else { (i, &parities[i - k][..]) })
            .collect();
        prop_assert_eq!(dec.decode(&shares).unwrap(), data);
    }

    /// Fewer than k survivors must fail loudly, never return wrong data.
    #[test]
    fn under_k_shares_always_error((k, h, len) in spec_strategy(), seed in any::<u64>()) {
        prop_assume!(k >= 2);
        let spec = CodeSpec::new(k, h).unwrap();
        let enc = RseEncoder::new(spec).unwrap();
        let dec = RseDecoder::from_encoder(&enc);
        let data = make_group(k, len, seed);
        let parities = enc.encode_all(&data).unwrap();
        let survivors = choose(spec.n(), k - 1, seed);
        let shares: Vec<(usize, &[u8])> = survivors
            .iter()
            .map(|&i| if i < k { (i, &data[i][..]) } else { (i, &parities[i - k][..]) })
            .collect();
        let is_not_enough =
            matches!(dec.decode(&shares), Err(crate::RseError::NotEnoughShares { .. }));
        prop_assert!(is_not_enough);
    }

    /// The Eq. (1) polynomial codec either decodes exactly or reports a
    /// singular system — never silently wrong data. (It is not MDS over
    /// GF(2^8): generalized Vandermonde minors can vanish in characteristic
    /// 2; see the module docs. The production matrix codec, tested in
    /// `mds_any_k_of_n` above, does not have this failure mode.)
    #[test]
    fn poly_codec_roundtrip_or_explicit_singular(
        (k, h, len) in spec_strategy(),
        seed in any::<u64>(),
    ) {
        let spec = CodeSpec::new(k, h).unwrap();
        let data = make_group(k, len, seed);
        let parities = poly_codec::encode_all(&spec, &data).unwrap();
        let survivors = choose(spec.n(), k, seed ^ 0x1234);
        let shares: Vec<(usize, &[u8])> = survivors
            .iter()
            .map(|&i| if i < k { (i, &data[i][..]) } else { (i, &parities[i - k][..]) })
            .collect();
        match poly_codec::decode(&spec, &shares) {
            Ok(decoded) => prop_assert_eq!(decoded, data),
            Err(crate::RseError::Gf(pm_gf::GfError::SingularMatrix)) => {}
            Err(other) => prop_assert!(false, "unexpected error {other:?}"),
        }
    }

    /// When only *parity* packets are lost (all data arrives), the poly
    /// codec always succeeds — the systematic fast path has no singular
    /// minors.
    #[test]
    fn poly_codec_data_complete_always_decodes(
        (k, h, len) in spec_strategy(),
        seed in any::<u64>(),
    ) {
        let spec = CodeSpec::new(k, h).unwrap();
        let data = make_group(k, len, seed);
        let shares: Vec<(usize, &[u8])> =
            data.iter().enumerate().map(|(i, d)| (i, &d[..])).collect();
        prop_assert_eq!(poly_codec::decode(&spec, &shares).unwrap(), data);
    }

    /// Cross-check: the matrix decoder reconstructs data encoded with the
    /// *polynomial* generator when given the data shares plus poly parities
    /// re-described in matrix terms — both are MDS codes over the same
    /// points, so each codec must at least round-trip its own parities and
    /// agree on pure-data reconstruction.
    #[test]
    fn codecs_agree_on_pure_data((k, _h, len) in spec_strategy(), seed in any::<u64>()) {
        let spec = CodeSpec::new(k, 0).unwrap();
        let dec = RseDecoder::new(spec).unwrap();
        let data = make_group(k, len, seed);
        let shares: Vec<(usize, &[u8])> =
            data.iter().enumerate().map(|(i, d)| (i, &d[..])).collect();
        prop_assert_eq!(dec.decode(&shares).unwrap(), data.clone());
        prop_assert_eq!(poly_codec::decode(&spec, &shares).unwrap(), data);
    }

    /// The incremental decoder agrees with the batch decoder for every
    /// loss pattern and share arrival order.
    #[test]
    fn incremental_matches_batch((k, h, len) in spec_strategy(), seed in any::<u64>()) {
        let spec = CodeSpec::new(k, h).unwrap();
        let enc = RseEncoder::new(spec).unwrap();
        let dec = RseDecoder::from_encoder(&enc);
        let data = make_group(k, len, seed);
        let parities = enc.encode_all(&data).unwrap();
        // Random arrival order over a random k-subset.
        let order = choose(spec.n(), k, seed ^ 0xFEED);
        let mut inc = crate::incremental::IncrementalDecoder::from_encoder(&enc);
        for &i in &order {
            let payload = if i < k { &data[i] } else { &parities[i - k] };
            inc.add_share(i, payload).unwrap();
        }
        prop_assert!(inc.is_complete());
        let shares: Vec<(usize, &[u8])> = order
            .iter()
            .map(|&i| (i, if i < k { data[i].as_slice() } else { parities[i - k].as_slice() }))
            .collect();
        prop_assert_eq!(inc.finish().unwrap(), dec.decode(&shares).unwrap());
    }

    /// Differential: the cached-row batched encoder produces byte-identical
    /// parities to a scalar-reference accumulation over the same generator
    /// coefficients.
    #[test]
    fn encoder_matches_scalar_reference((k, h, len) in spec_strategy(), seed in any::<u64>()) {
        let spec = CodeSpec::new(k, h).unwrap();
        let enc = RseEncoder::new(spec).unwrap();
        let data = make_group(k, len, seed);
        for j in 0..h {
            let fast = enc.parity(j, &data).unwrap();
            let mut scalar = vec![0u8; len];
            for (i, d) in data.iter().enumerate() {
                pm_gf::slice::reference::mul_add_slice(enc.parity_coeff(j, i), d, &mut scalar);
            }
            prop_assert_eq!(&fast, &scalar, "parity {}", j);
        }
    }

    /// Decoding the same loss pattern twice returns identical data and
    /// reuses the memoised inverse (the cache does not grow on a repeat).
    #[test]
    fn decoder_inverse_cache_repeat((k, h, len) in spec_strategy(), seed in any::<u64>()) {
        prop_assume!(h >= 1);
        let spec = CodeSpec::new(k, h).unwrap();
        let enc = RseEncoder::new(spec).unwrap();
        let dec = RseDecoder::from_encoder(&enc);
        let data = make_group(k, len, seed);
        let parities = enc.encode_all(&data).unwrap();
        let survivors = choose(spec.n(), k, seed ^ 0xCACE);
        let shares: Vec<(usize, &[u8])> = survivors
            .iter()
            .map(|&i| if i < k { (i, &data[i][..]) } else { (i, &parities[i - k][..]) })
            .collect();
        let first = dec.decode(&shares).unwrap();
        let cached_after_first = dec.cached_inverses();
        let second = dec.decode(&shares).unwrap();
        prop_assert_eq!(&first, &second);
        prop_assert_eq!(first, data);
        prop_assert_eq!(dec.cached_inverses(), cached_after_first);
        // A cache entry exists iff a data packet actually had to be rebuilt.
        let missing_data = (0..k).filter(|i| !survivors.contains(i)).count();
        prop_assert_eq!(cached_after_first, usize::from(missing_data > 0));
    }

    /// GroupDecoder invariants: `needed() + received() == k` until
    /// decodable, insertion order never matters for the reconstruction.
    #[test]
    fn group_decoder_order_invariant((k, h, len) in spec_strategy(), seed in any::<u64>()) {
        prop_assume!(h >= 1);
        let spec = CodeSpec::new(k, h).unwrap();
        let enc = RseEncoder::new(spec).unwrap();
        let dec = RseDecoder::from_encoder(&enc);
        let data = make_group(k, len, seed);
        let parities = enc.encode_all(&data).unwrap();
        let order = choose(spec.n(), spec.n().min(k + 1), seed ^ 0x77);
        let mut g = GroupDecoder::new(spec);
        for &i in &order {
            if g.is_decodable() {
                break;
            }
            prop_assert_eq!(g.needed(), k - g.received());
            let payload = if i < k { data[i].clone() } else { parities[i - k].clone() };
            g.insert(i, payload.into()).unwrap();
        }
        if g.is_decodable() {
            let rec = g.reconstruct(&dec).unwrap();
            for (i, d) in data.iter().enumerate() {
                prop_assert_eq!(rec[i].as_ref(), &d[..]);
            }
        }
    }
}
