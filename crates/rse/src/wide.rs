//! Wide-symbol RSE codec over GF(2^16) — FEC blocks beyond 255 packets.
//!
//! Section 2.2 of the paper: "the symbol size `m` must be picked
//! sufficiently large such that `n < 2^m`; for our purposes, `m = 8` will
//! be sufficiently large". This module is the escape hatch for when it is
//! not: with 16-bit symbols the block may span up to `n = 65535` packets
//! (bulk pre-encoded distribution, satellite carousels, very large `k`
//! experiments).
//!
//! The construction mirrors [`crate::RseEncoder`] exactly — systematised
//! Vandermonde generator, any `k` of `n` reconstruct — but packets are
//! treated as sequences of big-endian `u16` symbols (payload length must
//! be even) and the arithmetic runs through the table-driven
//! [`pm_gf::GfField`] rather than the byte-specialised fast path, so it is
//! roughly 3–5x slower per byte. Prefer the GF(2^8) codec whenever
//! `n <= 255`.

use pm_gf::{GfError, GfField};
use pm_simd::{try_kernels, Kernels, WideCoeff};

use crate::error::RseError;

/// Code parameters for the wide codec: `k` data packets, `h` parities,
/// `n = k + h <= 65535`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct WideCodeSpec {
    k: usize,
    h: usize,
}

/// Block limit over GF(2^16): the multiplicative group has 65535 distinct
/// evaluation points.
pub const MAX_WIDE_BLOCK: usize = 65_535;

impl WideCodeSpec {
    /// Create a spec.
    ///
    /// # Errors
    /// [`RseError::InvalidSpec`] unless `1 <= k` and `k + h <= 65535`.
    pub fn new(k: usize, h: usize) -> Result<Self, RseError> {
        let n = k + h;
        if k == 0 {
            return Err(RseError::InvalidSpec {
                k,
                n,
                reason: "k must be at least 1",
            });
        }
        if n > MAX_WIDE_BLOCK {
            return Err(RseError::InvalidSpec {
                k,
                n,
                reason: "n = k + h exceeds 65535 (GF(2^16) block limit)",
            });
        }
        Ok(WideCodeSpec { k, h })
    }

    /// Data packets per group.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Parity budget.
    pub fn h(&self) -> usize {
        self.h
    }

    /// Block size `n = k + h`.
    pub fn n(&self) -> usize {
        self.k + self.h
    }
}

/// Row-major matrix over GF(2^16), internal to this module.
struct WideMatrix {
    rows: usize,
    cols: usize,
    data: Vec<u16>,
}

impl WideMatrix {
    fn zero(rows: usize, cols: usize) -> Self {
        WideMatrix {
            rows,
            cols,
            data: vec![0; rows * cols],
        }
    }

    #[inline]
    fn at(&self, r: usize, c: usize) -> u16 {
        self.data[r * self.cols + c]
    }

    #[inline]
    fn set(&mut self, r: usize, c: usize, v: u16) {
        self.data[r * self.cols + c] = v;
    }

    fn identity(n: usize) -> Self {
        let mut m = WideMatrix::zero(n, n);
        for i in 0..n {
            m.set(i, i, 1);
        }
        m
    }

    fn mul(&self, field: &GfField, rhs: &WideMatrix) -> WideMatrix {
        debug_assert_eq!(self.cols, rhs.rows);
        let mut out = WideMatrix::zero(self.rows, rhs.cols);
        for r in 0..self.rows {
            for i in 0..self.cols {
                let a = self.at(r, i);
                if a == 0 {
                    continue;
                }
                for c in 0..rhs.cols {
                    let prod = field.mul(a, rhs.at(i, c));
                    let cur = out.at(r, c);
                    out.set(r, c, cur ^ prod);
                }
            }
        }
        out
    }

    fn invert(&self, field: &GfField) -> Result<WideMatrix, GfError> {
        debug_assert_eq!(self.rows, self.cols);
        let n = self.rows;
        let mut a = WideMatrix {
            rows: n,
            cols: n,
            data: self.data.clone(),
        };
        let mut inv = WideMatrix::identity(n);
        for col in 0..n {
            let pivot = (col..n)
                .find(|&r| a.at(r, col) != 0)
                .ok_or(GfError::SingularMatrix)?;
            if pivot != col {
                for c in 0..n {
                    let (x, y) = (a.at(pivot, c), a.at(col, c));
                    a.set(pivot, c, y);
                    a.set(col, c, x);
                    let (x, y) = (inv.at(pivot, c), inv.at(col, c));
                    inv.set(pivot, c, y);
                    inv.set(col, c, x);
                }
            }
            let p_inv = field.inv(a.at(col, col))?;
            for c in 0..n {
                a.set(col, c, field.mul(a.at(col, c), p_inv));
                inv.set(col, c, field.mul(inv.at(col, c), p_inv));
            }
            for r in 0..n {
                if r == col || a.at(r, col) == 0 {
                    continue;
                }
                let f = a.at(r, col);
                for c in 0..n {
                    let av = field.mul(f, a.at(col, c));
                    let iv = field.mul(f, inv.at(col, c));
                    a.set(r, c, a.at(r, c) ^ av);
                    inv.set(r, c, inv.at(r, c) ^ iv);
                }
            }
        }
        Ok(inv)
    }
}

/// Building a [`WideCoeff`] costs 576 field multiplications (512 split-table
/// entries plus 64 SIMD nibble-table entries); below this many symbols per
/// packet the decoder multiplies directly through exp/log.
const WIDE_ROW_MIN_SYMBOLS: usize = 64;

/// Shared generator state for the wide encoder/decoder.
pub struct WideCodec {
    spec: WideCodeSpec,
    field: GfField,
    /// Parity rows of the systematic generator: `h x k`.
    parity_rows: WideMatrix,
    /// Per-coefficient split tables for the fixed parity rows, row-major
    /// `h x k` (empty when h = 0). ~1 KB per coefficient.
    coeff_rows: Vec<WideCoeff>,
    /// Backend-dispatched slice kernels (the GF(2^16) vectorized path exists
    /// on AVX2; other backends fall back to split-table scalar code).
    kernels: &'static Kernels,
}

impl WideCodec {
    /// Build the codec (generator construction is O(n·k + k^3) field ops —
    /// noticeable for `k` in the thousands; build once, reuse).
    ///
    /// # Errors
    /// Spec validation or [`RseError::Dispatch`] when `PM_SIMD` names an
    /// unknown or unavailable backend; field construction cannot fail for
    /// m = 16.
    pub fn new(spec: WideCodeSpec) -> Result<Self, RseError> {
        let kernels = try_kernels()?;
        let field = GfField::new(16)?;
        let (k, n) = (spec.k(), spec.n());
        // Vandermonde over alpha^0 .. alpha^(n-1), systematised.
        let mut v = WideMatrix::zero(n, k);
        for (r, row) in (0..n).enumerate() {
            let x = field.exp(row);
            let mut acc: u16 = 1;
            for c in 0..k {
                v.set(r, c, acc);
                acc = field.mul(acc, x);
            }
        }
        let top = WideMatrix {
            rows: k,
            cols: k,
            data: v.data[..k * k].to_vec(),
        };
        let top_inv = top.invert(&field)?;
        let g = v.mul(&field, &top_inv);
        let parity_rows = WideMatrix {
            rows: spec.h().max(1),
            cols: k,
            data: if spec.h() == 0 {
                vec![0; k]
            } else {
                g.data[k * k..].to_vec()
            },
        };
        // Cache split tables for every fixed parity coefficient, unless the
        // matrix is so large that the cache would dwarf the win (~1 KB per
        // coefficient; cap at 8 MB). Beyond the cap, parity() builds rows
        // on the fly for long packets.
        const WIDE_COEFF_CACHE_MAX: usize = 8192;
        let coeff_rows = if spec.h() > 0 && spec.h() * k <= WIDE_COEFF_CACHE_MAX {
            (0..spec.h() * k)
                .map(|idx| WideCoeff::new(&field, parity_rows.data[idx]))
                .collect()
        } else {
            Vec::new()
        };
        Ok(WideCodec {
            spec,
            field,
            parity_rows,
            coeff_rows,
            kernels,
        })
    }

    /// The code parameters.
    pub fn spec(&self) -> &WideCodeSpec {
        &self.spec
    }

    fn check_data<P: AsRef<[u8]>>(&self, data: &[P]) -> Result<usize, RseError> {
        if data.len() != self.spec.k() {
            return Err(RseError::WrongDataCount {
                expected: self.spec.k(),
                got: data.len(),
            });
        }
        let len = data[0].as_ref().len();
        if !len.is_multiple_of(2) {
            return Err(RseError::InvalidSpec {
                k: self.spec.k(),
                n: self.spec.n(),
                reason: "wide codec payloads must have even length (u16 symbols)",
            });
        }
        for d in data {
            if d.as_ref().len() != len {
                return Err(RseError::PacketSizeMismatch {
                    expected: len,
                    got: d.as_ref().len(),
                });
            }
        }
        Ok(len)
    }

    /// Compute parity `j` (`0 <= j < h`).
    ///
    /// # Errors
    /// Validation errors as for the GF(2^8) encoder, plus odd payload
    /// lengths.
    pub fn parity<P: AsRef<[u8]>>(&self, j: usize, data: &[P]) -> Result<Vec<u8>, RseError> {
        if j >= self.spec.h() {
            return Err(RseError::IndexOutOfRange {
                index: self.spec.k() + j,
                n: self.spec.n(),
            });
        }
        let len = self.check_data(data)?;
        let symbols = len / 2;
        let k = self.spec.k();
        let mut out = vec![0u16; symbols];
        for (i, d) in data.iter().enumerate() {
            let coeff = self.parity_rows.at(j, i);
            if coeff == 0 {
                continue;
            }
            let bytes = d.as_ref();
            if !self.coeff_rows.is_empty() {
                self.kernels
                    .wide_mul_add(&self.coeff_rows[j * k + i], bytes, &mut out);
            } else if symbols >= WIDE_ROW_MIN_SYMBOLS {
                let tab = WideCoeff::new(&self.field, coeff);
                self.kernels.wide_mul_add(&tab, bytes, &mut out);
            } else {
                for (s, o) in out.iter_mut().enumerate() {
                    let sym = u16::from_be_bytes([bytes[2 * s], bytes[2 * s + 1]]);
                    *o ^= self.field.mul(coeff, sym);
                }
            }
        }
        Ok(out.iter().flat_map(|s| s.to_be_bytes()).collect())
    }

    /// All `h` parities.
    ///
    /// # Errors
    /// As for [`WideCodec::parity`].
    pub fn encode_all<P: AsRef<[u8]>>(&self, data: &[P]) -> Result<Vec<Vec<u8>>, RseError> {
        (0..self.spec.h()).map(|j| self.parity(j, data)).collect()
    }

    fn generator_row(&self, index: usize) -> Vec<u16> {
        let k = self.spec.k();
        if index < k {
            let mut row = vec![0u16; k];
            row[index] = 1;
            row
        } else {
            let j = index - k;
            (0..k).map(|c| self.parity_rows.at(j, c)).collect()
        }
    }

    /// Reconstruct all `k` data packets from any `k` shares
    /// `(block_index, payload)`.
    ///
    /// # Errors
    /// As for [`crate::RseDecoder::decode`].
    pub fn decode<P: AsRef<[u8]>>(&self, shares: &[(usize, P)]) -> Result<Vec<Vec<u8>>, RseError> {
        let k = self.spec.k();
        let n = self.spec.n();
        let mut slots: Vec<Option<&[u8]>> = vec![None; n];
        let mut payload_len: Option<usize> = None;
        let mut parity_order = Vec::new();
        for (index, payload) in shares {
            let (index, payload) = (*index, payload.as_ref());
            if index >= n {
                return Err(RseError::IndexOutOfRange { index, n });
            }
            match payload_len {
                None => payload_len = Some(payload.len()),
                Some(l) if l != payload.len() => {
                    return Err(RseError::PacketSizeMismatch {
                        expected: l,
                        got: payload.len(),
                    })
                }
                _ => {}
            }
            match slots[index] {
                None => {
                    slots[index] = Some(payload);
                    if index >= k {
                        parity_order.push(index);
                    }
                }
                Some(existing) if existing == payload => {}
                Some(_) => return Err(RseError::DuplicateShare { index }),
            }
        }
        let have = slots.iter().flatten().count();
        if have < k {
            return Err(RseError::NotEnoughShares { have, need: k });
        }
        let len = payload_len.unwrap_or(0);
        if !len.is_multiple_of(2) {
            return Err(RseError::InvalidSpec {
                k,
                n,
                reason: "wide codec payloads must have even length (u16 symbols)",
            });
        }

        let missing: Vec<usize> = (0..k).filter(|&i| slots[i].is_none()).collect();
        let mut out: Vec<Vec<u8>> = (0..k)
            .map(|i| {
                slots[i]
                    .map(|p| p.to_vec())
                    .unwrap_or_else(|| vec![0u8; len])
            })
            .collect();
        if missing.is_empty() {
            return Ok(out);
        }
        let mut selected: Vec<usize> = (0..k).filter(|&i| slots[i].is_some()).collect();
        selected.extend(parity_order.iter().take(missing.len()).copied());

        let mut m = WideMatrix::zero(k, k);
        for (r, &idx) in selected.iter().enumerate() {
            for (c, v) in self.generator_row(idx).into_iter().enumerate() {
                m.set(r, c, v);
            }
        }
        let inv = m.invert(&self.field)?;
        let symbols = len / 2;
        for &i in &missing {
            let mut acc = vec![0u16; symbols];
            for (j, &share_idx) in selected.iter().enumerate() {
                let coeff = inv.at(i, j);
                if coeff == 0 {
                    continue;
                }
                let bytes = slots[share_idx].expect("selected shares present");
                if symbols >= WIDE_ROW_MIN_SYMBOLS {
                    // Amortise: 576 mults to build the split tables beat
                    // one exp/log mult per symbol on long packets.
                    let tab = WideCoeff::new(&self.field, coeff);
                    self.kernels.wide_mul_add(&tab, bytes, &mut acc);
                } else {
                    for (s, a) in acc.iter_mut().enumerate() {
                        let sym = u16::from_be_bytes([bytes[2 * s], bytes[2 * s + 1]]);
                        *a ^= self.field.mul(coeff, sym);
                    }
                }
            }
            out[i] = acc.iter().flat_map(|s| s.to_be_bytes()).collect();
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn group(k: usize, len: usize) -> Vec<Vec<u8>> {
        (0..k)
            .map(|i| {
                (0..len)
                    .map(|b| ((i * 131 + b * 17 + 3) % 256) as u8)
                    .collect()
            })
            .collect()
    }

    #[test]
    fn spec_validation() {
        assert!(WideCodeSpec::new(0, 1).is_err());
        assert!(WideCodeSpec::new(60_000, 10_000).is_err());
        let s = WideCodeSpec::new(300, 100).unwrap();
        assert_eq!((s.k(), s.h(), s.n()), (300, 100, 400));
    }

    #[test]
    fn roundtrip_beyond_gf256_limit() {
        // n = 300 packets: impossible over GF(2^8), routine here.
        let codec = WideCodec::new(WideCodeSpec::new(280, 20).unwrap()).unwrap();
        let data = group(280, 16);
        let parities = codec.encode_all(&data).unwrap();
        assert_eq!(parities.len(), 20);
        // Lose 20 data packets scattered through the group.
        let mut shares: Vec<(usize, &[u8])> = data
            .iter()
            .enumerate()
            .filter(|(i, _)| i % 14 != 0)
            .map(|(i, d)| (i, d.as_slice()))
            .collect();
        for (j, p) in parities.iter().enumerate() {
            shares.push((280 + j, p.as_slice()));
        }
        assert_eq!(codec.decode(&shares).unwrap(), data);
    }

    #[test]
    fn small_block_agrees_with_systematic_property() {
        let codec = WideCodec::new(WideCodeSpec::new(4, 3).unwrap()).unwrap();
        let data = group(4, 8);
        // All-data fast path.
        let shares: Vec<(usize, &[u8])> = data
            .iter()
            .enumerate()
            .map(|(i, d)| (i, d.as_slice()))
            .collect();
        assert_eq!(codec.decode(&shares).unwrap(), data);
        // Parity-only reconstruction (k of them... here k=4 > h=3, so mix).
        let parities = codec.encode_all(&data).unwrap();
        let mixed: Vec<(usize, &[u8])> = vec![
            (1, data[1].as_slice()),
            (4, parities[0].as_slice()),
            (5, parities[1].as_slice()),
            (6, parities[2].as_slice()),
        ];
        assert_eq!(codec.decode(&mixed).unwrap(), data);
    }

    #[test]
    fn parity_linear_in_data() {
        let codec = WideCodec::new(WideCodeSpec::new(3, 2).unwrap()).unwrap();
        let a = group(3, 10);
        let b: Vec<Vec<u8>> = (0..3)
            .map(|i| (0..10).map(|x| ((i * 7 + x * 3 + 1) % 256) as u8).collect())
            .collect();
        let sum: Vec<Vec<u8>> = a
            .iter()
            .zip(&b)
            .map(|(x, y)| x.iter().zip(y).map(|(p, q)| p ^ q).collect())
            .collect();
        for j in 0..2 {
            let pa = codec.parity(j, &a).unwrap();
            let pb = codec.parity(j, &b).unwrap();
            let ps = codec.parity(j, &sum).unwrap();
            let xored: Vec<u8> = pa.iter().zip(&pb).map(|(x, y)| x ^ y).collect();
            assert_eq!(ps, xored);
        }
    }

    #[test]
    fn zero_length_packets_roundtrip() {
        // Zero bytes = zero u16 symbols: valid (even) degenerate input.
        let codec = WideCodec::new(WideCodeSpec::new(2, 2).unwrap()).unwrap();
        let data = vec![vec![], vec![]];
        let parities = codec.encode_all(&data).unwrap();
        assert_eq!(parities, vec![Vec::<u8>::new(); 2]);
        let shares: Vec<(usize, &[u8])> = vec![(2, &parities[0][..]), (3, &parities[1][..])];
        assert_eq!(codec.decode(&shares).unwrap(), data);
    }

    #[test]
    fn parity_only_decode_all_data_lost() {
        // k parities, zero data shares — the pure-inversion worst case.
        let codec = WideCodec::new(WideCodeSpec::new(3, 3).unwrap()).unwrap();
        let data = group(3, 96);
        let parities = codec.encode_all(&data).unwrap();
        let shares: Vec<(usize, &[u8])> = parities
            .iter()
            .enumerate()
            .map(|(j, p)| (3 + j, p.as_slice()))
            .collect();
        assert_eq!(codec.decode(&shares).unwrap(), data);
    }

    #[test]
    fn long_packets_use_split_tables() {
        // symbols >= WIDE_ROW_MIN_SYMBOLS exercises the WideRow path in
        // decode; cross-check against a short-packet (direct mul) decode of
        // the same prefix bytes by checking full roundtrip equality.
        let codec = WideCodec::new(WideCodeSpec::new(4, 2).unwrap()).unwrap();
        let data = group(4, 2 * WIDE_ROW_MIN_SYMBOLS);
        let parities = codec.encode_all(&data).unwrap();
        let shares: Vec<(usize, &[u8])> = vec![
            (1, data[1].as_slice()),
            (2, data[2].as_slice()),
            (4, parities[0].as_slice()),
            (5, parities[1].as_slice()),
        ];
        assert_eq!(codec.decode(&shares).unwrap(), data);
    }

    #[test]
    fn odd_length_rejected() {
        let codec = WideCodec::new(WideCodeSpec::new(2, 1).unwrap()).unwrap();
        let data = vec![vec![0u8; 7], vec![0u8; 7]];
        assert!(matches!(
            codec.parity(0, &data),
            Err(RseError::InvalidSpec { .. })
        ));
    }

    #[test]
    fn validation_mirrors_narrow_codec() {
        let codec = WideCodec::new(WideCodeSpec::new(3, 2).unwrap()).unwrap();
        let data = group(3, 8);
        assert!(matches!(
            codec.parity(2, &data),
            Err(RseError::IndexOutOfRange { .. })
        ));
        assert!(matches!(
            codec.parity(0, &data[..2]),
            Err(RseError::WrongDataCount { .. })
        ));
        let shares: Vec<(usize, &[u8])> = vec![(0, data[0].as_slice())];
        assert!(matches!(
            codec.decode(&shares),
            Err(RseError::NotEnoughShares { .. })
        ));
        let bad: Vec<(usize, &[u8])> = vec![(9, data[0].as_slice())];
        assert!(matches!(
            codec.decode(&bad),
            Err(RseError::IndexOutOfRange { .. })
        ));
    }

    #[test]
    fn agrees_with_gf256_codec_on_shared_range() {
        // Both codecs are systematic MDS; they differ in generator but both
        // must reconstruct identical data from the same data-share subsets.
        let (k, h, len) = (5usize, 3usize, 12usize);
        let data = group(k, len);
        let wide = WideCodec::new(WideCodeSpec::new(k, h).unwrap()).unwrap();
        let narrow = crate::RseEncoder::new(crate::CodeSpec::new(k, h).unwrap()).unwrap();
        let ndec = crate::RseDecoder::from_encoder(&narrow);
        let wp = wide.encode_all(&data).unwrap();
        let np = narrow.encode_all(&data).unwrap();
        // Same loss pattern, each decoded with its own parities.
        let mk = |par: &[Vec<u8>]| -> Vec<(usize, Vec<u8>)> {
            let mut v: Vec<(usize, Vec<u8>)> = data
                .iter()
                .enumerate()
                .filter(|(i, _)| *i != 0 && *i != 3)
                .map(|(i, d)| (i, d.clone()))
                .collect();
            v.push((k, par[0].clone()));
            v.push((k + 1, par[1].clone()));
            v
        };
        assert_eq!(wide.decode(&mk(&wp)).unwrap(), data);
        assert_eq!(ndec.decode(&mk(&np)).unwrap(), data);
    }
}
