//! Code-parameter specification.

use crate::error::RseError;

/// Parameters of one erasure code instance: `k` data packets per
/// transmission group and up to `h` parity packets, `n = k + h` packets in
/// the FEC block.
///
/// Over GF(2^8) the block is limited to `n <= 255` packets (the paper,
/// Section 2.2: the symbol size `m` must satisfy `n < 2^m`; `m = 8` is
/// "sufficiently large for our purposes").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CodeSpec {
    k: usize,
    h: usize,
}

/// Largest supported FEC block size over GF(2^8).
pub const MAX_BLOCK: usize = 255;

impl CodeSpec {
    /// Create a spec with `k` data packets and `h` parities.
    ///
    /// # Errors
    /// [`RseError::InvalidSpec`] unless `1 <= k` and `k + h <= 255`.
    pub fn new(k: usize, h: usize) -> Result<Self, RseError> {
        let n = k + h;
        if k == 0 {
            return Err(RseError::InvalidSpec {
                k,
                n,
                reason: "k must be at least 1",
            });
        }
        if n > MAX_BLOCK {
            return Err(RseError::InvalidSpec {
                k,
                n,
                reason: "n = k + h exceeds 255 (GF(2^8) block limit)",
            });
        }
        Ok(CodeSpec { k, h })
    }

    /// Spec with the maximum number of parities for this `k`
    /// (`h = 255 - k`). Useful for senders such as protocol NP that generate
    /// parities on demand and want never to run out.
    pub fn with_max_parity(k: usize) -> Result<Self, RseError> {
        if k == 0 || k > MAX_BLOCK {
            return Err(RseError::InvalidSpec {
                k,
                n: k,
                reason: "k out of range 1..=255",
            });
        }
        CodeSpec::new(k, MAX_BLOCK - k)
    }

    /// Number of data packets per transmission group.
    #[inline]
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of parity packets in the block.
    #[inline]
    pub fn h(&self) -> usize {
        self.h
    }

    /// Total FEC block size `n = k + h`.
    #[inline]
    pub fn n(&self) -> usize {
        self.k + self.h
    }

    /// Redundancy ratio `h / k` (the paper's x-axis in Fig. 1).
    #[inline]
    pub fn redundancy(&self) -> f64 {
        self.h as f64 / self.k as f64
    }

    /// True if `index` names a data packet (`0 <= index < k`).
    #[inline]
    pub fn is_data(&self, index: usize) -> bool {
        index < self.k
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_specs() {
        let s = CodeSpec::new(7, 3).unwrap();
        assert_eq!((s.k(), s.h(), s.n()), (7, 3, 10));
        assert!(s.is_data(6));
        assert!(!s.is_data(7));
        assert!((s.redundancy() - 3.0 / 7.0).abs() < 1e-12);
        // Degenerate but legal: no parities at all (pure ARQ).
        assert!(CodeSpec::new(20, 0).is_ok());
        // Full-size block.
        assert!(CodeSpec::new(100, 155).is_ok());
    }

    #[test]
    fn invalid_specs() {
        assert!(matches!(
            CodeSpec::new(0, 3),
            Err(RseError::InvalidSpec { .. })
        ));
        assert!(matches!(
            CodeSpec::new(100, 156),
            Err(RseError::InvalidSpec { .. })
        ));
        assert!(matches!(
            CodeSpec::with_max_parity(0),
            Err(RseError::InvalidSpec { .. })
        ));
        assert!(matches!(
            CodeSpec::with_max_parity(256),
            Err(RseError::InvalidSpec { .. })
        ));
    }

    #[test]
    fn max_parity_fills_block() {
        let s = CodeSpec::with_max_parity(7).unwrap();
        assert_eq!(s.n(), 255);
        assert_eq!(s.h(), 248);
        let s = CodeSpec::with_max_parity(255).unwrap();
        assert_eq!(s.h(), 0);
    }
}
