//! Receiver-side FEC-block accumulator.
//!
//! [`GroupDecoder`] is the per-transmission-group state a protocol receiver
//! keeps: which of the `n` block packets have arrived, how many more are
//! needed (`l`, the number a NAK reports in protocol NP), and — once any `k`
//! have been received — the reconstructed data packets.

use bytes::Bytes;

use crate::code::CodeSpec;
use crate::decoder::RseDecoder;
use crate::error::RseError;

/// Result of inserting one packet into a [`GroupDecoder`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InsertOutcome {
    /// Packet stored; the group still needs more packets.
    Stored,
    /// Packet stored and the group now has `k` packets — call
    /// [`GroupDecoder::reconstruct`].
    Decodable,
    /// Exact duplicate of an already-received packet; ignored.
    Duplicate,
    /// The group already has `k` packets; the extra packet was discarded
    /// (an "unnecessary reception" in the paper's terminology).
    Unneeded,
}

/// Accumulates packets of one FEC block until the transmission group can be
/// reconstructed.
#[derive(Debug, Clone)]
pub struct GroupDecoder {
    spec: CodeSpec,
    slots: Vec<Option<Bytes>>,
    received: usize,
    /// Count of discarded packets that arrived after the group was complete.
    unneeded: u64,
}

impl GroupDecoder {
    /// New empty accumulator for one transmission group.
    pub fn new(spec: CodeSpec) -> Self {
        GroupDecoder {
            spec,
            slots: vec![None; spec.n()],
            received: 0,
            unneeded: 0,
        }
    }

    /// Code parameters.
    pub fn spec(&self) -> &CodeSpec {
        &self.spec
    }

    /// Number of distinct packets received so far.
    pub fn received(&self) -> usize {
        self.received
    }

    /// Number of *additional* packets needed to decode: `max(0, k - received)`.
    /// This is the `l` a protocol-NP receiver reports in `NAK(i, l)`.
    pub fn needed(&self) -> usize {
        self.spec.k().saturating_sub(self.received)
    }

    /// True once any `k` distinct packets of the block have been received.
    pub fn is_decodable(&self) -> bool {
        self.received >= self.spec.k()
    }

    /// True if all `k` *data* packets arrived (no decoding work required).
    pub fn all_data_received(&self) -> bool {
        self.slots.iter().take(self.spec.k()).all(Option::is_some)
    }

    /// Indices of data packets that have not arrived.
    pub fn missing_data(&self) -> Vec<usize> {
        self.slots
            .iter()
            .take(self.spec.k())
            .enumerate()
            .filter_map(|(i, s)| s.is_none().then_some(i))
            .collect()
    }

    /// Packets that arrived after the group was already decodable
    /// (duplicate/unnecessary receptions — a metric the paper tracks).
    pub fn unneeded_receptions(&self) -> u64 {
        self.unneeded
    }

    /// Insert a packet with FEC-block index `index` (`0..n`).
    ///
    /// # Errors
    /// [`RseError::IndexOutOfRange`] for a bad index,
    /// [`RseError::PacketSizeMismatch`] if the size differs from earlier
    /// packets of this block, [`RseError::DuplicateShare`] on a conflicting
    /// duplicate.
    pub fn insert(&mut self, index: usize, payload: Bytes) -> Result<InsertOutcome, RseError> {
        let n = self.spec.n();
        if index >= n {
            return Err(RseError::IndexOutOfRange { index, n });
        }
        if let Some(first) = self.slots.iter().flatten().next() {
            if first.len() != payload.len() {
                return Err(RseError::PacketSizeMismatch {
                    expected: first.len(),
                    got: payload.len(),
                });
            }
        }
        match self.slots.get(index) {
            Some(Some(existing)) if existing == &payload => return Ok(InsertOutcome::Duplicate),
            Some(Some(_)) => return Err(RseError::DuplicateShare { index }),
            Some(None) => {}
            None => return Err(RseError::Internal("index < n implies a slot exists")),
        }
        if self.is_decodable() {
            self.unneeded += 1;
            return Ok(InsertOutcome::Unneeded);
        }
        *self
            .slots
            .get_mut(index)
            .ok_or(RseError::Internal("index < n implies a slot exists"))? = Some(payload);
        self.received += 1;
        Ok(if self.is_decodable() {
            InsertOutcome::Decodable
        } else {
            InsertOutcome::Stored
        })
    }

    /// Reconstruct the `k` data packets.
    ///
    /// # Errors
    /// [`RseError::NotEnoughShares`] if fewer than `k` packets have arrived.
    pub fn reconstruct(&self, decoder: &RseDecoder) -> Result<Vec<Bytes>, RseError> {
        if !self.is_decodable() {
            return Err(RseError::NotEnoughShares {
                have: self.received,
                need: self.spec.k(),
            });
        }
        if self.all_data_received() {
            // Systematic fast path: no field arithmetic at all.
            return self
                .slots
                .iter()
                .take(self.spec.k())
                .map(|s| {
                    s.clone()
                        .ok_or(RseError::Internal("all_data_received implies k data slots"))
                })
                .collect();
        }
        let shares: Vec<(usize, &[u8])> = self
            .slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_ref().map(|b| (i, b.as_ref())))
            .collect();
        Ok(decoder
            .decode(&shares)?
            .into_iter()
            .map(Bytes::from)
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoder::RseEncoder;

    fn setup(k: usize, h: usize) -> (RseEncoder, RseDecoder, Vec<Bytes>, Vec<Bytes>) {
        let spec = CodeSpec::new(k, h).unwrap();
        let enc = RseEncoder::new(spec).unwrap();
        let dec = RseDecoder::from_encoder(&enc);
        let data: Vec<Bytes> = (0..k)
            .map(|i| {
                Bytes::from(
                    (0..32)
                        .map(|b| ((i * 41 + b * 3) % 256) as u8)
                        .collect::<Vec<_>>(),
                )
            })
            .collect();
        let parities: Vec<Bytes> = enc
            .encode_all(&data)
            .unwrap()
            .into_iter()
            .map(Bytes::from)
            .collect();
        (enc, dec, data, parities)
    }

    #[test]
    fn happy_path_all_data() {
        let (_, dec, data, _) = setup(4, 2);
        let mut g = GroupDecoder::new(*dec.spec());
        for (i, d) in data.iter().enumerate() {
            let out = g.insert(i, d.clone()).unwrap();
            if i < 3 {
                assert_eq!(out, InsertOutcome::Stored);
                assert_eq!(g.needed(), 4 - i - 1);
            } else {
                assert_eq!(out, InsertOutcome::Decodable);
            }
        }
        assert!(g.all_data_received());
        assert_eq!(g.reconstruct(&dec).unwrap(), data);
    }

    #[test]
    fn parity_fills_loss() {
        let (_, dec, data, parities) = setup(5, 3);
        let mut g = GroupDecoder::new(*dec.spec());
        // Lose data packets 1 and 3.
        for i in [0usize, 2, 4] {
            g.insert(i, data[i].clone()).unwrap();
        }
        assert_eq!(g.missing_data(), vec![1, 3]);
        assert_eq!(g.needed(), 2);
        g.insert(5, parities[0].clone()).unwrap();
        let out = g.insert(6, parities[1].clone()).unwrap();
        assert_eq!(out, InsertOutcome::Decodable);
        assert_eq!(g.reconstruct(&dec).unwrap(), data);
    }

    #[test]
    fn duplicates_and_unneeded_are_counted() {
        let (_, dec, data, parities) = setup(3, 2);
        let mut g = GroupDecoder::new(*dec.spec());
        g.insert(0, data[0].clone()).unwrap();
        assert_eq!(
            g.insert(0, data[0].clone()).unwrap(),
            InsertOutcome::Duplicate
        );
        g.insert(1, data[1].clone()).unwrap();
        g.insert(2, data[2].clone()).unwrap();
        assert_eq!(
            g.insert(3, parities[0].clone()).unwrap(),
            InsertOutcome::Unneeded
        );
        assert_eq!(g.unneeded_receptions(), 1);
        assert_eq!(g.received(), 3);
    }

    #[test]
    fn conflicting_duplicate_rejected() {
        let (_, dec, data, parities) = setup(3, 2);
        let mut g = GroupDecoder::new(*dec.spec());
        g.insert(0, data[0].clone()).unwrap();
        assert_eq!(
            g.insert(0, parities[0].clone()).unwrap_err(),
            RseError::DuplicateShare { index: 0 }
        );
    }

    #[test]
    fn premature_reconstruct_errors() {
        let (_, dec, data, _) = setup(4, 1);
        let mut g = GroupDecoder::new(*dec.spec());
        g.insert(0, data[0].clone()).unwrap();
        assert_eq!(
            g.reconstruct(&dec).unwrap_err(),
            RseError::NotEnoughShares { have: 1, need: 4 }
        );
    }

    #[test]
    fn size_mismatch_rejected() {
        let (_, dec, data, _) = setup(3, 1);
        let mut g = GroupDecoder::new(*dec.spec());
        g.insert(0, data[0].clone()).unwrap();
        let bad = Bytes::from(vec![0u8; 7]);
        assert!(matches!(
            g.insert(1, bad),
            Err(RseError::PacketSizeMismatch { .. })
        ));
    }

    #[test]
    fn index_out_of_range_rejected() {
        let (_, dec, _, _) = setup(3, 1);
        let mut g = GroupDecoder::new(*dec.spec());
        assert!(matches!(
            g.insert(4, Bytes::new()),
            Err(RseError::IndexOutOfRange { .. })
        ));
    }
}
