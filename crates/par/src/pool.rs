//! The scoped, chunked thread pool.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Environment variable overriding the auto-detected worker count (useful
/// for CI determinism checks and for benchmarking at fixed widths).
pub const WORKERS_ENV: &str = "PM_PAR_WORKERS";

/// Worker count to use when the caller does not pin one: the value of the
/// `PM_PAR_WORKERS` environment variable when set to a positive integer,
/// otherwise [`std::thread::available_parallelism`] (falling back to 1 if
/// even that is unavailable).
#[must_use]
pub fn available_workers() -> usize {
    if let Ok(v) = std::env::var(WORKERS_ENV) {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// A fixed-width pool of scoped workers over which index ranges are
/// fanned out in chunks.
///
/// The pool holds no threads between calls: each [`Pool::par_map`] /
/// [`Pool::par_map_reduce`] spawns its workers inside a
/// [`std::thread::scope`], so borrowed data (configs, models, recorders)
/// can be captured by the work closures without `'static` bounds, and a
/// worker panic propagates to the caller instead of poisoning shared
/// state.
///
/// **Determinism contract.** Work on `0..n` is split into fixed chunks
/// `[0, c), [c, 2c), …` of the caller-chosen size `c`; workers claim
/// chunks dynamically (one atomic fetch-add each), and per-chunk results
/// are combined *in chunk order* after all workers join. The outcome is a
/// pure function of `(n, c)` and the item closures — never of the worker
/// count or the OS schedule — so `Pool::new(1)` and `Pool::new(64)`
/// produce bit-identical floating-point reductions.
#[derive(Debug, Clone)]
pub struct Pool {
    workers: usize,
}

impl Pool {
    /// A pool of exactly `workers` threads.
    ///
    /// # Panics
    /// Panics if `workers == 0`.
    #[must_use]
    pub fn new(workers: usize) -> Self {
        assert!(workers > 0, "a pool needs at least one worker");
        Pool { workers }
    }

    /// A pool sized by [`available_workers`] (env override, else core
    /// count).
    #[must_use]
    pub fn auto() -> Self {
        Pool::new(available_workers())
    }

    /// A single-worker pool: runs every chunk inline on the calling
    /// thread, in chunk order, spawning nothing. The reference
    /// configuration for equivalence tests.
    #[must_use]
    pub fn serial() -> Self {
        Pool::new(1)
    }

    /// Worker threads this pool fans work across.
    #[must_use]
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Map `0..n` through `map`, returning results in index order.
    ///
    /// Indices are claimed one at a time (chunk size 1) — right for
    /// coarse, heterogeneous items such as whole sweep points. For
    /// fine-grained items prefer [`Pool::par_map_reduce`] with a larger
    /// chunk.
    pub fn par_map<T, F>(&self, n: usize, map: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        let pairs = self.par_map_reduce(
            n,
            1,
            Vec::new,
            |acc: &mut Vec<(usize, T)>, i| acc.push((i, map(i))),
            |acc, mut part| acc.append(&mut part),
        );
        debug_assert!(pairs.windows(2).all(|w| w[0].0 < w[1].0));
        pairs.into_iter().map(|(_, v)| v).collect()
    }

    /// Chunked parallel map-reduce over `0..n` with an order-fixed
    /// combine.
    ///
    /// For each chunk of `chunk` consecutive indices a fresh accumulator
    /// is built with `init`, every index of the chunk is folded into it in
    /// ascending order with `fold`, and the finished chunk accumulators
    /// are combined with `merge` in ascending chunk order on the calling
    /// thread. Returns `init()` unchanged when `n == 0`.
    ///
    /// The chunk size trades scheduling overhead (one atomic op per
    /// chunk) against load balance; anything that keeps a chunk in the
    /// tens of microseconds or more is effectively free.
    ///
    /// # Panics
    /// Panics if `chunk == 0`, and re-raises panics from worker closures.
    pub fn par_map_reduce<A, I, F, M>(
        &self,
        n: usize,
        chunk: usize,
        init: I,
        fold: F,
        merge: M,
    ) -> A
    where
        A: Send,
        I: Fn() -> A + Sync,
        F: Fn(&mut A, usize) + Sync,
        M: Fn(&mut A, A),
    {
        assert!(chunk > 0, "chunk size must be positive");
        let mut out = init();
        if n == 0 {
            return out;
        }
        let chunks = n.div_ceil(chunk);
        let run_chunk = |c: usize| {
            let mut acc = init();
            for i in c * chunk..(((c + 1) * chunk).min(n)) {
                fold(&mut acc, i);
            }
            acc
        };
        if self.workers == 1 || chunks == 1 {
            // Inline path — same chunk layout and merge order as the
            // parallel path, so the reduction is bit-identical.
            for c in 0..chunks {
                let acc = run_chunk(c);
                merge(&mut out, acc);
            }
            return out;
        }
        let next = AtomicUsize::new(0);
        let spawn = self.workers.min(chunks);
        let mut parts: Vec<Option<A>> = Vec::with_capacity(chunks);
        parts.resize_with(chunks, || None);
        let finished = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..spawn)
                .map(|_| {
                    scope.spawn(|| {
                        let mut local: Vec<(usize, A)> = Vec::new();
                        loop {
                            let c = next.fetch_add(1, Ordering::Relaxed);
                            if c >= chunks {
                                break;
                            }
                            local.push((c, run_chunk(c)));
                        }
                        local
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("pm-par worker panicked"))
                .collect::<Vec<_>>()
        });
        for (c, acc) in finished {
            debug_assert!(parts[c].is_none(), "chunk {c} claimed twice");
            parts[c] = Some(acc);
        }
        for part in parts.into_iter() {
            merge(&mut out, part.expect("every chunk must be processed"));
        }
        out
    }
}

impl Default for Pool {
    fn default() -> Self {
        Pool::auto()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn par_map_preserves_index_order() {
        let pool = Pool::new(4);
        let out = pool.par_map(100, |i| i * 3);
        assert_eq!(out, (0..100).map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn par_map_empty_and_single() {
        let pool = Pool::new(3);
        assert!(pool.par_map(0, |i| i).is_empty());
        assert_eq!(pool.par_map(1, |i| i + 7), vec![7]);
    }

    #[test]
    fn reduce_matches_serial_for_every_width() {
        // Non-associative floating-point reduction: the outcome depends on
        // grouping, so this is a real determinism check, not a sum of
        // integers.
        let reference = Pool::serial().par_map_reduce(
            997,
            16,
            || 0.0f64,
            |acc, i| *acc += 1.0 / (1.0 + i as f64),
            |acc, part| *acc = (*acc + part) * (1.0 + 1e-16),
        );
        for workers in [2, 3, 4, 7, 16] {
            let got = Pool::new(workers).par_map_reduce(
                997,
                16,
                || 0.0f64,
                |acc, i| *acc += 1.0 / (1.0 + i as f64),
                |acc, part| *acc = (*acc + part) * (1.0 + 1e-16),
            );
            assert_eq!(
                reference.to_bits(),
                got.to_bits(),
                "width {workers} diverged"
            );
        }
    }

    #[test]
    fn every_index_folded_exactly_once() {
        let pool = Pool::new(8);
        let hits = (0..257).map(|_| AtomicU64::new(0)).collect::<Vec<_>>();
        pool.par_map_reduce(
            257,
            10,
            || (),
            |(), i| {
                hits[i].fetch_add(1, Ordering::Relaxed);
            },
            |(), ()| {},
        );
        for (i, h) in hits.iter().enumerate() {
            assert_eq!(h.load(Ordering::Relaxed), 1, "index {i}");
        }
    }

    #[test]
    fn chunk_boundaries_do_change_grouping() {
        // Sanity check that the test above is meaningful: different chunk
        // sizes are allowed to (and here do) give different groupings.
        let sum = |chunk: usize| {
            Pool::serial().par_map_reduce(
                100,
                chunk,
                || 0.0f64,
                |acc, i| *acc += 0.1 + i as f64 * 1e-3,
                |acc, part| *acc = (*acc + part) * (1.0 + 1e-14),
            )
        };
        assert_ne!(sum(7).to_bits(), sum(64).to_bits());
    }

    #[test]
    fn borrows_non_static_data() {
        let data: Vec<u64> = (0..50).collect();
        let pool = Pool::new(2);
        let total = pool.par_map_reduce(
            data.len(),
            8,
            || 0u64,
            |acc, i| *acc += data[i],
            |acc, part| *acc += part,
        );
        assert_eq!(total, data.iter().sum::<u64>());
    }

    #[test]
    fn zero_items_returns_init() {
        let pool = Pool::new(4);
        let out = pool.par_map_reduce(0, 5, || 41, |acc, _| *acc += 1, |acc, p| *acc += p);
        assert_eq!(out, 41);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_rejected() {
        let _ = Pool::new(0);
    }

    #[test]
    #[should_panic(expected = "chunk size must be positive")]
    fn zero_chunk_rejected() {
        Pool::new(2).par_map_reduce(10, 0, || (), |(), _| {}, |(), ()| {});
    }

    #[test]
    fn available_workers_is_positive() {
        assert!(available_workers() >= 1);
    }
}
