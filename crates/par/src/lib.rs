#![forbid(unsafe_code)]
//! # pm-par — zero-dependency data parallelism for simulation sweeps
//!
//! The Monte Carlo workloads in this workspace (`pm-sim` scheme runs,
//! `pm-analysis` cross-checks) are embarrassingly parallel: thousands of
//! independent seeded trials whose statistics are merged at the end. This
//! crate supplies the two ingredients that make such runs *fast and
//! reproducible at the same time*:
//!
//! - [`splitmix64`] / [`mix_seed`]: a statistically strong, constant-time
//!   mixer that derives one independent RNG seed per trial index. Seeding
//!   per trial (instead of advancing one shared stream) makes trial order
//!   irrelevant, so work can be scheduled across any number of threads
//!   without changing a single sampled bit.
//! - [`Pool`]: a scoped, chunked thread pool with [`Pool::par_map`] and
//!   [`Pool::par_map_reduce`] over index ranges. Work is split into
//!   *fixed-size chunks claimed dynamically* by workers; per-chunk
//!   accumulators are merged **in chunk order** on the calling thread.
//!   Because the chunk layout and merge order depend only on `(n, chunk)`
//!   — never on the worker count or on which thread ran which chunk — a
//!   reduction over floating-point accumulators returns bit-identical
//!   results for 1, 2, or 64 workers.
//!
//! The pool is deliberately minimal: threads live for one call (scoped),
//! there is no work stealing beyond the shared chunk counter, and the only
//! synchronization is one `AtomicUsize` fetch-add per chunk. For the
//! coarse-grained trials this workspace runs (microseconds to milliseconds
//! each) that overhead is noise.
//!
//! ```
//! use pm_par::Pool;
//! let pool = Pool::new(4);
//! // Deterministic parallel sum of squares: same answer at any width.
//! let total = pool.par_map_reduce(
//!     1000,
//!     16,
//!     || 0u64,
//!     |acc, i| *acc += (i as u64) * (i as u64),
//!     |acc, part| *acc += part,
//! );
//! assert_eq!(total, (0..1000u64).map(|i| i * i).sum());
//! ```

mod pool;
mod seed;

pub use pool::{available_workers, Pool};
pub use seed::{mix_seed, splitmix64};
