//! Splitmix64 seed derivation.
//!
//! Independent trials must draw from *independent* random streams, and the
//! mapping from trial index to stream must not depend on execution order.
//! The splitmix64 finalizer (Steele, Lea & Flood, OOPSLA '14 — the same
//! mixer `java.util.SplittableRandom` and many PRNG seeders use) gives
//! every `(seed, index)` pair a well-avalanched 64-bit value: flipping any
//! input bit flips each output bit with probability ~1/2. In particular the
//! low 32 bits differ between consecutive indices, which the previous
//! `seed ^ (index << 32)` scheme in `pm-sim` failed to guarantee.

/// Odd constant `2^64 / φ`, the "golden gamma" increment of the splitmix64
/// sequence. Odd ⇒ `index ↦ index·γ (mod 2^64)` is a bijection, so
/// distinct indices can never collide before mixing.
const GOLDEN_GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

/// The splitmix64 step: advance by the golden gamma, then finalize with
/// two xor-shift-multiply rounds. A full-period bijection on `u64` with
/// strong avalanche behaviour; zero is not a fixed point.
#[inline]
#[must_use]
pub fn splitmix64(state: u64) -> u64 {
    let mut z = state.wrapping_add(GOLDEN_GAMMA);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derive the RNG seed for the `index`-th independent unit of work (trial,
/// sweep point, Monte Carlo sample) from a run-level `seed`.
///
/// Equivalent to the `index`-th output of a splitmix64 generator seeded at
/// `seed`: the base advances by `index` gammas before the finalizer runs.
/// Distinct indices always enter the mixer at distinct states, and the
/// finalizer spreads a change in either argument across all 64 output
/// bits.
#[inline]
#[must_use]
pub fn mix_seed(seed: u64, index: u64) -> u64 {
    splitmix64(seed.wrapping_add(index.wrapping_mul(GOLDEN_GAMMA)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn matches_reference_vectors() {
        // Reference outputs of the canonical splitmix64 next() from state 0
        // (as published with xoshiro/xoroshiro seeding code).
        assert_eq!(splitmix64(0), 0xE220_A839_7B1D_CDAF);
        let s1 = 0u64.wrapping_add(super::GOLDEN_GAMMA);
        assert_eq!(splitmix64(s1), 0x6E78_9E6A_A1B9_65F4);
        let s2 = s1.wrapping_add(super::GOLDEN_GAMMA);
        assert_eq!(splitmix64(s2), 0x06C4_5D18_8009_454F);
    }

    #[test]
    fn mix_seed_is_the_splitmix_stream() {
        // mix_seed(seed, i) must equal the i-th output of a splitmix64
        // generator started at `seed`.
        let seed = 0xDEAD_BEEF_u64;
        let mut state = seed;
        for i in 0..64 {
            let out = splitmix64(state);
            assert_eq!(mix_seed(seed, i), out, "index {i}");
            state = state.wrapping_add(super::GOLDEN_GAMMA);
        }
    }

    #[test]
    fn low_bits_differ_across_indices() {
        // The regression the old `seed ^ (d << 32)` mixer had: identical
        // low 32 bits for every index. Every pair of the first 256 derived
        // seeds must differ in their low word.
        let lows: HashSet<u32> = (0..256).map(|i| mix_seed(42, i) as u32).collect();
        assert_eq!(lows.len(), 256, "low 32 bits must not collide");
    }

    #[test]
    fn no_collisions_in_a_large_window() {
        let mut seen = HashSet::new();
        for i in 0..10_000u64 {
            assert!(seen.insert(mix_seed(7, i)), "collision at index {i}");
        }
    }

    #[test]
    fn avalanche_on_seed_bit_flips() {
        // Flipping one seed bit should flip roughly half the output bits.
        for bit in [0u32, 17, 33, 63] {
            let a = mix_seed(0x1234_5678, 5);
            let b = mix_seed(0x1234_5678 ^ (1u64 << bit), 5);
            let flipped = (a ^ b).count_ones();
            assert!(
                (16..=48).contains(&flipped),
                "bit {bit}: only {flipped} output bits flipped"
            );
        }
    }
}
