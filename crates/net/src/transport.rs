//! The transport abstraction.

use std::fmt;
use std::time::Duration;

use crate::wire::Message;

/// Transport errors.
#[derive(Debug)]
pub enum NetError {
    /// Socket/channel level failure.
    Io(std::io::Error),
    /// Malformed datagram.
    Decode(String),
    /// A datagram that carried our magic but failed its integrity
    /// checksum: bytes were damaged in flight. Always recoverable — drop
    /// the datagram and keep receiving.
    Corrupt(String),
    /// The hub/socket behind this endpoint has shut down.
    Closed,
}

impl NetError {
    /// Whether a driver may safely drop the offending datagram and keep
    /// the session alive. Decode failures and checksum mismatches damage
    /// one datagram, not the transport; I/O errors and closure are fatal.
    pub fn is_recoverable(&self) -> bool {
        matches!(self, NetError::Decode(_) | NetError::Corrupt(_))
    }
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::Io(e) => write!(f, "transport I/O error: {e}"),
            NetError::Decode(msg) => write!(f, "malformed datagram: {msg}"),
            NetError::Corrupt(msg) => write!(f, "corrupt datagram: {msg}"),
            NetError::Closed => write!(f, "transport closed"),
        }
    }
}

impl std::error::Error for NetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NetError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for NetError {
    fn from(e: std::io::Error) -> Self {
        NetError::Io(e)
    }
}

impl PartialEq for NetError {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (NetError::Io(a), NetError::Io(b)) => a.kind() == b.kind(),
            (NetError::Decode(a), NetError::Decode(b)) => a == b,
            (NetError::Corrupt(a), NetError::Corrupt(b)) => a == b,
            (NetError::Closed, NetError::Closed) => true,
            _ => false,
        }
    }
}

/// What a UDP `recv` error means for the loop that hit it. One total
/// classification shared by every real-socket receive path — the
/// [`crate::udp::UdpHub`] reader thread and the farm's poll-side drain —
/// so the two can never drift on which errors retry and which abort.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvClass {
    /// Nothing to read right now (`WouldBlock` / `TimedOut`): yield and
    /// come back.
    WouldBlock,
    /// A per-datagram hiccup that does not damage the socket — signal
    /// interruption, or an ICMP-unreachable surfaced from an earlier
    /// send (connection reset/refused/aborted): drop and keep reading.
    Transient,
    /// The socket itself is broken (bad descriptor, out of memory, …):
    /// stop reading and surface the error.
    Fatal,
}

/// Classify a `recv`/`recv_from` error. Total: every [`std::io::Error`]
/// maps to exactly one [`RecvClass`]; unknown kinds are conservatively
/// [`RecvClass::Fatal`] so a broken socket can never spin a hot loop.
pub fn classify_recv_err(e: &std::io::Error) -> RecvClass {
    use std::io::ErrorKind;
    match e.kind() {
        ErrorKind::WouldBlock | ErrorKind::TimedOut => RecvClass::WouldBlock,
        ErrorKind::Interrupted
        | ErrorKind::ConnectionReset
        | ErrorKind::ConnectionRefused
        | ErrorKind::ConnectionAborted => RecvClass::Transient,
        _ => RecvClass::Fatal,
    }
}

/// A multicast endpoint: everything sent is delivered to every *other*
/// endpoint of the group (standard multicast loopback semantics: a sender
/// does not receive its own datagrams).
pub trait Transport: Send {
    /// Multicast one message to the group.
    ///
    /// # Errors
    /// Transport-level failures; encoding cannot fail.
    fn send(&mut self, msg: &Message) -> Result<(), NetError>;

    /// Receive the next message, waiting up to `timeout`. Returns
    /// `Ok(None)` on timeout.
    ///
    /// Malformed *foreign* datagrams (wrong magic, short header) are
    /// skipped silently (they consume budget from `timeout` but never
    /// surface as errors). Datagrams carrying our magic that fail the
    /// integrity checksum or structural validation surface as a
    /// *recoverable* [`NetError::Corrupt`] / [`NetError::Decode`] so the
    /// caller can count and drop them (see
    /// [`NetError::is_recoverable`]).
    ///
    /// # Errors
    /// [`NetError::Closed`] when the group is gone.
    fn recv_timeout(&mut self, timeout: Duration) -> Result<Option<Message>, NetError>;
}

/// Blanket impl so boxed transports compose with the fault decorator.
impl Transport for Box<dyn Transport> {
    fn send(&mut self, msg: &Message) -> Result<(), NetError> {
        (**self).send(msg)
    }
    fn recv_timeout(&mut self, timeout: Duration) -> Result<Option<Message>, NetError> {
        (**self).recv_timeout(timeout)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display() {
        let e = NetError::Decode("bad magic".into());
        assert!(e.to_string().contains("bad magic"));
        assert_eq!(NetError::Closed.to_string(), "transport closed");
        let io = NetError::from(std::io::Error::new(std::io::ErrorKind::TimedOut, "t"));
        assert!(io.to_string().contains("I/O"));
    }

    #[test]
    fn error_equality() {
        assert_eq!(NetError::Closed, NetError::Closed);
        assert_ne!(NetError::Closed, NetError::Decode("x".into()));
        assert_eq!(NetError::Corrupt("c".into()), NetError::Corrupt("c".into()));
        assert_ne!(NetError::Corrupt("c".into()), NetError::Decode("c".into()));
    }

    #[test]
    fn recoverability_classification() {
        assert!(NetError::Decode("bad".into()).is_recoverable());
        assert!(NetError::Corrupt("flip".into()).is_recoverable());
        assert!(!NetError::Closed.is_recoverable());
        let io = NetError::from(std::io::Error::new(std::io::ErrorKind::TimedOut, "t"));
        assert!(!io.is_recoverable());
    }

    fn err(kind: std::io::ErrorKind) -> std::io::Error {
        std::io::Error::new(kind, "test")
    }

    #[test]
    fn recv_class_would_block() {
        use std::io::ErrorKind;
        assert_eq!(
            classify_recv_err(&err(ErrorKind::WouldBlock)),
            RecvClass::WouldBlock
        );
        assert_eq!(
            classify_recv_err(&err(ErrorKind::TimedOut)),
            RecvClass::WouldBlock
        );
    }

    #[test]
    fn recv_class_transient() {
        use std::io::ErrorKind;
        for kind in [
            ErrorKind::Interrupted,
            ErrorKind::ConnectionReset,
            ErrorKind::ConnectionRefused,
            ErrorKind::ConnectionAborted,
        ] {
            assert_eq!(
                classify_recv_err(&err(kind)),
                RecvClass::Transient,
                "{kind:?}"
            );
        }
    }

    #[test]
    fn recv_class_fatal_is_the_conservative_default() {
        use std::io::ErrorKind;
        for kind in [
            ErrorKind::NotFound,
            ErrorKind::PermissionDenied,
            ErrorKind::BrokenPipe,
            ErrorKind::InvalidInput,
            ErrorKind::OutOfMemory,
            ErrorKind::Other,
        ] {
            assert_eq!(classify_recv_err(&err(kind)), RecvClass::Fatal, "{kind:?}");
        }
    }
}
