//! Deterministic chaos harness: named fault presets and a seeded
//! scenario grid for hostile-network testing.
//!
//! A [`ChaosPreset`] is a curated [`FaultConfig`] (light damage, heavy
//! damage, or a partition window) usable from tests and the
//! `file_multicast` example's `--chaos` flag. [`scenario_grid`] expands
//! the cross product {corruption} × {blackout} × {dup/reorder} ×
//! {receiver death} into named [`ChaosScenario`]s, each with a
//! splitmix64-derived seed, so a single base seed reproduces the whole
//! grid bit-for-bit.

use crate::fault::FaultConfig;

/// Named fault profiles for chaos runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosPreset {
    /// Mild hostility: a few percent loss, corruption, and garbage.
    Light,
    /// Sustained abuse: heavy loss plus every byte-level fault at once.
    Heavy,
    /// A scheduled partition: nothing crosses the network for a while,
    /// with light loss outside the window.
    Blackout,
}

impl ChaosPreset {
    /// Every preset, for grids and help texts.
    pub const ALL: [ChaosPreset; 3] = [
        ChaosPreset::Light,
        ChaosPreset::Heavy,
        ChaosPreset::Blackout,
    ];

    /// Stable lowercase name (the `--chaos` argument).
    pub fn name(&self) -> &'static str {
        match self {
            ChaosPreset::Light => "light",
            ChaosPreset::Heavy => "heavy",
            ChaosPreset::Blackout => "blackout",
        }
    }

    /// Parse a `--chaos` argument.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "light" => Some(ChaosPreset::Light),
            "heavy" => Some(ChaosPreset::Heavy),
            "blackout" => Some(ChaosPreset::Blackout),
            _ => None,
        }
    }

    /// The fault profile this preset stands for.
    pub fn fault_config(&self) -> FaultConfig {
        match self {
            ChaosPreset::Light => FaultConfig {
                drop: 0.05,
                corrupt: 0.02,
                garbage: 0.01,
                ..FaultConfig::none()
            },
            ChaosPreset::Heavy => FaultConfig {
                drop: 0.15,
                duplicate: 0.05,
                reorder: 0.05,
                corrupt: 0.08,
                truncate: 0.04,
                garbage: 0.04,
                send_drop: 0.05,
                blackout: None,
            },
            ChaosPreset::Blackout => FaultConfig {
                drop: 0.02,
                corrupt: 0.01,
                blackout: Some((0.05, 0.25)),
                ..FaultConfig::none()
            },
        }
    }
}

/// One cell of the chaos grid: a fault profile for the receivers, a
/// (milder) profile for the sender's feedback path, a number of
/// permanently-dead receivers, and a derived seed.
#[derive(Debug, Clone)]
pub struct ChaosScenario {
    /// Human-readable cell label, e.g. `corrupt+blackout+reorder+dead1`.
    pub name: String,
    /// Fault profile wrapped around every live receiver's transport.
    pub receiver_fault: FaultConfig,
    /// Fault profile wrapped around the sender's transport (its receive
    /// path carries NAK/Done feedback).
    pub sender_fault: FaultConfig,
    /// Receivers that are announced but never join (silent stragglers).
    pub dead_receivers: u32,
    /// Scenario seed, splitmix64-derived from the grid's base seed.
    pub seed: u64,
}

/// splitmix64: the standard 64-bit seed mixer.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Expand the full {corruption} × {blackout} × {dup/reorder} ×
/// {receiver death} grid (16 scenarios) from one base seed.
///
/// Every scenario's seed is `splitmix64(base_seed + cell_index)`: the
/// grid is reproducible from `base_seed` alone, and scenarios stay
/// decorrelated.
pub fn scenario_grid(base_seed: u64) -> Vec<ChaosScenario> {
    let corruption = [("clean", 0.0), ("corrupt", 0.05)];
    let blackout = [("steady", None), ("blackout", Some((0.05, 0.20)))];
    let churn = [("ordered", 0.0), ("churn", 0.05)];
    let death = [("alive", 0u32), ("dead1", 1u32)];

    let mut grid = Vec::new();
    for (c_name, corrupt) in corruption {
        for (b_name, window) in blackout {
            for (r_name, churn_p) in churn {
                for (d_name, dead) in death {
                    let cell = grid.len() as u64;
                    let receiver_fault = FaultConfig {
                        drop: 0.02,
                        duplicate: churn_p,
                        reorder: churn_p,
                        corrupt,
                        truncate: corrupt / 2.0,
                        garbage: corrupt / 2.0,
                        send_drop: 0.0,
                        blackout: window,
                    };
                    // The sender's feedback path sees corruption but no
                    // loss: lost Done reports are indistinguishable from
                    // dead receivers, which the `dead` axis owns.
                    let sender_fault = FaultConfig {
                        corrupt,
                        ..FaultConfig::none()
                    };
                    grid.push(ChaosScenario {
                        name: format!("{c_name}+{b_name}+{r_name}+{d_name}"),
                        receiver_fault,
                        sender_fault,
                        dead_receivers: dead,
                        seed: splitmix64(base_seed.wrapping_add(cell)),
                    });
                }
            }
        }
    }
    grid
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_parse_and_validate() {
        for preset in ChaosPreset::ALL {
            assert_eq!(ChaosPreset::parse(preset.name()), Some(preset));
            // FaultConfig::validate (via FaultyTransport::new) would
            // panic on a bad profile; constructing one proves validity.
            let hub = crate::mem::MemHub::new();
            let _ = crate::fault::FaultyTransport::new(hub.join(), preset.fault_config(), 1);
        }
        assert_eq!(ChaosPreset::parse("nonsense"), None);
    }

    #[test]
    fn grid_is_deterministic_and_complete() {
        let a = scenario_grid(42);
        let b = scenario_grid(42);
        assert_eq!(a.len(), 16, "full 2^4 cross product");
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.name, y.name);
            assert_eq!(x.seed, y.seed);
            assert_eq!(x.receiver_fault, y.receiver_fault);
        }
        // Distinct base seeds decorrelate every cell.
        let c = scenario_grid(43);
        assert!(a.iter().zip(&c).all(|(x, y)| x.seed != y.seed));
        // Names are unique.
        let names: std::collections::HashSet<_> = a.iter().map(|s| s.name.clone()).collect();
        assert_eq!(names.len(), 16);
        // The death axis is present.
        assert_eq!(a.iter().filter(|s| s.dead_receivers > 0).count(), 8);
    }
}
