//! Layered FEC as a transparent transport — the paper's Figure 2(a).
//!
//! "The simplest approach is to add a layer responsible for FEC between
//! the network layer and the reliable multicast layer": [`FecTransport`]
//! wraps any [`Transport`] and does exactly that, with the semantics of
//! Section 3.1:
//!
//! * **Send path** — outgoing datagrams are buffered into groups of `k`;
//!   each goes out immediately as a data-slot [`Message::FecFrame`]
//!   (length-prefixed and zero-padded to the block's common size), and
//!   once the block is full `h` parity frames follow. A configurable
//!   `max_delay` pads out and flushes a part-filled block so trailing
//!   traffic is never stranded.
//! * **Receive path** — data slots are unwrapped and delivered at once (no
//!   added latency when nothing is lost); frames are also retained per
//!   block, and as soon as any `k` of the `n` arrive the missing data
//!   slots are reconstructed and delivered late. "Whenever the FEC layer
//!   receives at least `k` out of `k + h` packets, all of the lost
//!   original packets are reconstructed and delivered to the RM layer."
//! * If fewer than `k` arrive, the block is eventually garbage-collected
//!   and the RM layer above recovers by its own ARQ — exactly the layered
//!   division of labour whose cost the paper's Figures 3–5 analyse.
//!
//! The layer is protocol-agnostic: running N2 over `FecTransport` yields
//! the paper's layered architecture live, which
//! `tests/layered_transport.rs` demonstrates against plain N2.

use std::collections::{HashMap, VecDeque};
use std::time::{Duration, Instant};

use bytes::{BufMut, Bytes, BytesMut};

use pm_rse::{CodeSpec, RseDecoder, RseEncoder};

use crate::transport::{NetError, Transport};
use crate::wire::Message;

/// Blocks retained while waiting for repair before being given up on.
const BLOCK_RETENTION: usize = 64;

/// Configuration of the FEC layer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FecLayerConfig {
    /// Data datagrams per FEC block (`k`).
    pub k: usize,
    /// Parity frames per block (`h`).
    pub h: usize,
    /// Flush a part-filled block (padding it with empty datagrams) once
    /// its oldest datagram has waited this long.
    pub max_delay: Duration,
    /// Distinguishes concurrent senders on one group; their blocks must
    /// not mix. Pick any value unique per sender (e.g. from a PID or RNG).
    pub sender_tag: u32,
}

impl FecLayerConfig {
    /// The paper's layered configuration `k = 7, h = 1` with a 20 ms
    /// flush.
    pub fn paper_default(sender_tag: u32) -> Self {
        FecLayerConfig {
            k: 7,
            h: 1,
            max_delay: Duration::from_millis(20),
            sender_tag,
        }
    }
}

/// Per-block receive state.
struct RxBlock {
    k: usize,
    /// Slot payloads (padded form), `n` entries.
    slots: Vec<Option<Bytes>>,
    received: usize,
    /// Data slots already delivered upward (so late repair skips them).
    delivered: Vec<bool>,
    done: bool,
}

/// Counters exposed for tests and reporting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FecLayerStats {
    /// Data frames sent.
    pub data_frames_sent: u64,
    /// Parity frames sent.
    pub parity_frames_sent: u64,
    /// Padding (empty) datagrams used to flush part-filled blocks.
    pub pad_frames_sent: u64,
    /// Inner datagrams delivered straight through.
    pub delivered_direct: u64,
    /// Inner datagrams recovered by decoding.
    pub delivered_recovered: u64,
    /// Blocks dropped with fewer than `k` frames (RM layer must recover).
    pub blocks_abandoned: u64,
}

/// A [`Transport`] decorator adding a transparent layered-FEC sublayer.
pub struct FecTransport<T> {
    inner: T,
    cfg: FecLayerConfig,
    encoder: RseEncoder,
    decoder: RseDecoder,
    // --- send state ---
    pending: Vec<Bytes>,
    pending_since: Option<Instant>,
    next_block: u32,
    // --- receive state ---
    rx_blocks: HashMap<(u32, u32), RxBlock>,
    rx_order: VecDeque<(u32, u32)>,
    deliver_queue: VecDeque<Message>,
    stats: FecLayerStats,
}

impl<T: Transport> FecTransport<T> {
    /// Wrap `inner` with an FEC sublayer.
    ///
    /// # Errors
    /// Invalid `(k, h)` geometry.
    pub fn new(inner: T, cfg: FecLayerConfig) -> Result<Self, NetError> {
        if cfg.k == 0 || cfg.k + cfg.h > 255 {
            return Err(NetError::Decode(format!(
                "invalid FEC layer geometry k={} h={}",
                cfg.k, cfg.h
            )));
        }
        let spec = CodeSpec::new(cfg.k, cfg.h).expect("validated above");
        let encoder = RseEncoder::new(spec).expect("valid spec");
        let decoder = RseDecoder::from_encoder(&encoder);
        Ok(FecTransport {
            inner,
            cfg,
            encoder,
            decoder,
            pending: Vec::new(),
            pending_since: None,
            next_block: 0,
            rx_blocks: HashMap::new(),
            rx_order: VecDeque::new(),
            deliver_queue: VecDeque::new(),
            stats: FecLayerStats::default(),
        })
    }

    /// Layer counters.
    pub fn stats(&self) -> FecLayerStats {
        self.stats
    }

    /// Access the wrapped transport.
    pub fn inner_mut(&mut self) -> &mut T {
        &mut self.inner
    }

    /// Flush a part-filled block immediately (pads with empty datagrams).
    ///
    /// # Errors
    /// Transport send failures.
    pub fn flush(&mut self) -> Result<(), NetError> {
        if !self.pending.is_empty() {
            self.emit_block()?;
        }
        Ok(())
    }

    fn emit_block(&mut self) -> Result<(), NetError> {
        let k = self.cfg.k;
        while self.pending.len() < k {
            self.stats.pad_frames_sent += 1;
            self.pending.push(Bytes::new());
        }
        // Common padded size: 2-byte length prefix + longest datagram.
        let longest = self.pending.iter().map(Bytes::len).max().unwrap_or(0);
        let padded_len = 2 + longest;
        let padded: Vec<Bytes> = self
            .pending
            .drain(..)
            .map(|d| {
                let mut b = BytesMut::with_capacity(padded_len);
                b.put_u16(u16::try_from(d.len()).expect("datagram fits u16 length prefix"));
                b.extend_from_slice(&d);
                b.resize(padded_len, 0);
                b.freeze()
            })
            .collect();
        self.pending_since = None;
        let block = self.next_block;
        self.next_block = self.next_block.wrapping_add(1);
        // pm-audit: allow(lossy-cast): CodeSpec validates k + h <= u16::MAX
        let (k16, n16) = (k as u16, (k + self.cfg.h) as u16);
        for (i, payload) in padded.iter().enumerate() {
            self.stats.data_frames_sent += 1;
            self.inner.send(&Message::FecFrame {
                session: self.cfg.sender_tag,
                block,
                // pm-audit: allow(lossy-cast): i < k which fits u16
                index: i as u16,
                k: k16,
                n: n16,
                payload: payload.clone(),
            })?;
        }
        let parities = self
            .encoder
            .encode_all(&padded)
            .expect("equal-size padded packets");
        for (j, parity) in parities.into_iter().enumerate() {
            self.stats.parity_frames_sent += 1;
            self.inner.send(&Message::FecFrame {
                session: self.cfg.sender_tag,
                block,
                // pm-audit: allow(lossy-cast): k + j < n which fits u16
                index: (k + j) as u16,
                k: k16,
                n: n16,
                payload: Bytes::from(parity),
            })?;
        }
        Ok(())
    }

    /// Strip the length prefix from a padded slot; `None` for padding
    /// datagrams or garbage.
    fn unwrap_inner(padded: &[u8]) -> Option<Message> {
        if padded.len() < 2 {
            return None;
        }
        let len = u16::from_be_bytes([padded[0], padded[1]]) as usize;
        if len == 0 || padded.len() < 2 + len {
            return None;
        }
        Message::decode(Bytes::copy_from_slice(&padded[2..2 + len])).ok()
    }

    fn on_fec_frame(
        &mut self,
        sender: u32,
        block: u32,
        index: u16,
        k: u16,
        n: u16,
        payload: Bytes,
    ) {
        let key = (sender, block);
        let (k, n, index) = (k as usize, n as usize, index as usize);
        if let std::collections::hash_map::Entry::Vacant(e) = self.rx_blocks.entry(key) {
            e.insert(RxBlock {
                k,
                slots: vec![None; n],
                received: 0,
                delivered: vec![false; k],
                done: false,
            });
            self.rx_order.push_back(key);
            // Bounded memory: abandon the oldest blocks.
            while self.rx_order.len() > BLOCK_RETENTION {
                if let Some(old) = self.rx_order.pop_front() {
                    if let Some(b) = self.rx_blocks.remove(&old) {
                        if !b.done && b.received < b.k {
                            self.stats.blocks_abandoned += 1;
                        }
                    }
                }
            }
        }
        let st = self.rx_blocks.get_mut(&key).expect("inserted above");
        if st.k != k || st.slots.len() != n || index >= n || st.slots[index].is_some() {
            return; // geometry conflict or duplicate: ignore the frame
        }
        // Immediate pass-through for fresh data slots.
        if index < k && !st.delivered[index] {
            st.delivered[index] = true;
            if let Some(msg) = Self::unwrap_inner(&payload) {
                self.stats.delivered_direct += 1;
                self.deliver_queue.push_back(msg);
            }
        }
        st.slots[index] = Some(payload);
        st.received += 1;
        // Late repair once k frames are in and data slots are missing.
        if !st.done && st.received >= st.k {
            st.done = true;
            let missing: Vec<usize> = (0..st.k).filter(|&i| st.slots[i].is_none()).collect();
            if !missing.is_empty() {
                let shares: Vec<(usize, &[u8])> = st
                    .slots
                    .iter()
                    .enumerate()
                    .filter_map(|(i, s)| s.as_ref().map(|b| (i, b.as_ref())))
                    .collect();
                if let Ok(recovered) = self.decoder.decode_missing(&shares) {
                    for (i, padded) in recovered {
                        st.delivered[i] = true;
                        if let Some(msg) = Self::unwrap_inner(&padded) {
                            self.stats.delivered_recovered += 1;
                            self.deliver_queue.push_back(msg);
                        }
                    }
                }
            }
        }
    }
}

impl<T: Transport> Transport for FecTransport<T> {
    fn send(&mut self, msg: &Message) -> Result<(), NetError> {
        self.pending.push(msg.encode());
        if self.pending_since.is_none() {
            // pm-audit: allow(determinism-time): repair-timer deadline over a real transport, wall-clock by design
            self.pending_since = Some(Instant::now());
        }
        if self.pending.len() >= self.cfg.k {
            self.emit_block()?;
        }
        Ok(())
    }

    fn recv_timeout(&mut self, timeout: Duration) -> Result<Option<Message>, NetError> {
        // pm-audit: allow(determinism-time): repair-timer deadline over a real transport, wall-clock by design
        let deadline = Instant::now() + timeout;
        loop {
            if let Some(ready) = self.deliver_queue.pop_front() {
                return Ok(Some(ready));
            }
            // Age-based flush keeps trailing sends from stalling forever.
            if let Some(since) = self.pending_since {
                if since.elapsed() >= self.cfg.max_delay {
                    self.flush()?;
                }
            }
            let budget = deadline
                // pm-audit: allow(determinism-time): repair-timer deadline over a real transport, wall-clock by design
                .saturating_duration_since(Instant::now())
                .min(self.cfg.max_delay);
            match self.inner.recv_timeout(budget)? {
                Some(Message::FecFrame {
                    session,
                    block,
                    index,
                    k,
                    n,
                    payload,
                }) => {
                    self.on_fec_frame(session, block, index, k, n, payload);
                    // Loop: the frame may have queued deliverables.
                }
                Some(other) => return Ok(Some(other)), // un-layered traffic passes through
                None => {
                    // pm-audit: allow(determinism-time): repair-timer deadline over a real transport, wall-clock by design
                    if Instant::now() >= deadline {
                        return Ok(None);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem::MemHub;

    const TICK: Duration = Duration::from_millis(300);

    fn cfg(k: usize, h: usize, tag: u32) -> FecLayerConfig {
        FecLayerConfig {
            k,
            h,
            max_delay: Duration::from_millis(5),
            sender_tag: tag,
        }
    }

    fn fins(n: u32) -> Vec<Message> {
        (0..n).map(|s| Message::Fin { session: s }).collect()
    }

    #[test]
    fn passthrough_when_nothing_lost() {
        let hub = MemHub::new();
        let mut tx = FecTransport::new(hub.join(), cfg(3, 1, 1)).unwrap();
        let mut rx = FecTransport::new(hub.join(), cfg(3, 1, 2)).unwrap();
        for m in fins(3) {
            tx.send(&m).unwrap();
        }
        for m in fins(3) {
            assert_eq!(rx.recv_timeout(TICK).unwrap(), Some(m));
        }
        assert_eq!(rx.stats().delivered_direct, 3);
        assert_eq!(rx.stats().delivered_recovered, 0);
        assert_eq!(tx.stats().data_frames_sent, 3);
        assert_eq!(tx.stats().parity_frames_sent, 1);
    }

    #[test]
    fn parity_recovers_one_lost_datagram() {
        // Raw hub endpoints let the test drop a specific frame.
        let hub = MemHub::new();
        let mut tx = FecTransport::new(hub.join(), cfg(3, 1, 7)).unwrap();
        let mut tap = hub.join(); // sees the raw frames
        let rx_ep = hub.join();
        let mut rx = FecTransport::new(rx_ep, cfg(3, 1, 8)).unwrap();
        for m in fins(3) {
            tx.send(&m).unwrap();
        }
        // Sanity via the tap: 3 data + 1 parity frames on the wire.
        let mut frames = 0;
        while let Some(Message::FecFrame { .. }) = tap.recv_timeout(TICK).unwrap() {
            frames += 1;
            if frames == 4 {
                break;
            }
        }
        assert_eq!(frames, 4);
        // rx's endpoint received everything; simulate loss by wrapping a
        // fresh scenario below instead. Here everything arrives, so the
        // three inner datagrams + recovery path are exercised in
        // `recovery_with_faulty_transport`.
        for m in fins(3) {
            assert_eq!(rx.recv_timeout(TICK).unwrap(), Some(m));
        }
    }

    #[test]
    fn recovery_with_faulty_transport() {
        use crate::fault::{FaultConfig, FaultyTransport};
        let hub = MemHub::new();
        let mut tx = FecTransport::new(hub.join(), cfg(4, 2, 11)).unwrap();
        // 20% receive loss under the FEC layer.
        let lossy = FaultyTransport::new(hub.join(), FaultConfig::drop_only(0.2), 99);
        let mut rx = FecTransport::new(lossy, cfg(4, 2, 12)).unwrap();
        let n = 400u32;
        for m in fins(n) {
            tx.send(&m).unwrap();
        }
        tx.flush().unwrap();
        let mut got = Vec::new();
        while let Some(m) = rx.recv_timeout(Duration::from_millis(50)).unwrap() {
            if let Message::Fin { session } = m {
                got.push(session);
            }
        }
        // h = 2 of 6 tolerates 1/3 loss per block; at 20% most blocks
        // recover fully. Require clearly-better-than-no-FEC delivery and
        // actual use of the decode path.
        let direct_rate = 0.8f64;
        let delivered = got.len() as f64 / n as f64;
        assert!(
            delivered > direct_rate + 0.05,
            "delivery {delivered} should beat the no-FEC rate {direct_rate}"
        );
        assert!(rx.stats().delivered_recovered > 0, "decode path must fire");
        // Everything delivered exactly once.
        let mut sorted = got.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), got.len(), "no duplicates");
    }

    #[test]
    fn partial_block_flushes_by_age() {
        let hub = MemHub::new();
        let mut tx = FecTransport::new(hub.join(), cfg(5, 1, 21)).unwrap();
        let mut rx = FecTransport::new(hub.join(), cfg(5, 1, 22)).unwrap();
        // Send 2 of 5 — not enough to fill a block.
        tx.send(&Message::Fin { session: 1 }).unwrap();
        tx.send(&Message::Fin { session: 2 }).unwrap();
        // The sender's own recv pump performs the age flush.
        std::thread::sleep(Duration::from_millis(10));
        let _ = tx.recv_timeout(Duration::from_millis(1)).unwrap();
        assert_eq!(tx.stats().pad_frames_sent, 3);
        assert_eq!(
            rx.recv_timeout(TICK).unwrap(),
            Some(Message::Fin { session: 1 })
        );
        assert_eq!(
            rx.recv_timeout(TICK).unwrap(),
            Some(Message::Fin { session: 2 })
        );
        // Padding never surfaces.
        assert_eq!(rx.recv_timeout(Duration::from_millis(20)).unwrap(), None);
    }

    #[test]
    fn explicit_flush() {
        let hub = MemHub::new();
        let mut tx = FecTransport::new(hub.join(), cfg(4, 1, 31)).unwrap();
        let mut rx = FecTransport::new(hub.join(), cfg(4, 1, 32)).unwrap();
        tx.send(&Message::Fin { session: 9 }).unwrap();
        tx.flush().unwrap();
        assert_eq!(
            rx.recv_timeout(TICK).unwrap(),
            Some(Message::Fin { session: 9 })
        );
    }

    #[test]
    fn two_senders_do_not_mix_blocks() {
        let hub = MemHub::new();
        let mut tx_a = FecTransport::new(hub.join(), cfg(2, 1, 100)).unwrap();
        let mut tx_b = FecTransport::new(hub.join(), cfg(2, 1, 200)).unwrap();
        let mut rx = FecTransport::new(hub.join(), cfg(2, 1, 300)).unwrap();
        tx_a.send(&Message::Fin { session: 1 }).unwrap();
        tx_b.send(&Message::Fin { session: 101 }).unwrap();
        tx_a.send(&Message::Fin { session: 2 }).unwrap();
        tx_b.send(&Message::Fin { session: 102 }).unwrap();
        let mut got = Vec::new();
        while let Some(Message::Fin { session }) =
            rx.recv_timeout(Duration::from_millis(50)).unwrap()
        {
            got.push(session);
        }
        got.sort_unstable();
        assert_eq!(got, vec![1, 2, 101, 102]);
    }

    #[test]
    fn non_fec_traffic_passes_through() {
        let hub = MemHub::new();
        let mut plain = hub.join();
        let mut rx = FecTransport::new(hub.join(), cfg(3, 1, 41)).unwrap();
        plain.send(&Message::Fin { session: 77 }).unwrap();
        assert_eq!(
            rx.recv_timeout(TICK).unwrap(),
            Some(Message::Fin { session: 77 })
        );
    }

    #[test]
    fn invalid_geometry_rejected() {
        let hub = MemHub::new();
        assert!(FecTransport::new(hub.join(), cfg(0, 1, 1)).is_err());
        assert!(FecTransport::new(hub.join(), cfg(200, 100, 1)).is_err());
    }
}
