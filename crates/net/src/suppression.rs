//! NAK slotting and damping — Section 5.1's feedback discipline.
//!
//! After a transmission round for group `i` in which `s` packets were
//! sent, the sender polls. A receiver still needing `l` packets schedules
//! `NAK(i, l)` at a uniformly random time inside slot
//! `[(s - l) Ts, (s - l + 1) Ts]` after the poll: the *worse off* a
//! receiver is (larger `l`), the *earlier* its slot, so the maximum demand
//! surfaces first. Hearing another receiver's `NAK(i, m)` with `m >= l`
//! makes the own NAK redundant — the timer is cancelled (damping).
//! Ideally the sender receives exactly one NAK per round carrying the
//! population maximum.
//!
//! Time is a caller-supplied monotonic clock in seconds, so the state
//! machine is fully deterministic under test and wall-clock driven in the
//! runtime.

use std::collections::HashMap;

use pm_obs::{Event, Obs};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// A NAK scheduled but not yet sent.
#[derive(Debug, Clone, Copy, PartialEq)]
struct PendingNak {
    needed: u16,
    round: u16,
    deadline: f64,
}

/// A NAK that became due and must be multicast now.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DueNak {
    /// Transmission group.
    pub group: u32,
    /// Packets still needed.
    pub needed: u16,
    /// Round being answered.
    pub round: u16,
}

/// Per-receiver NAK suppression state across all groups.
#[derive(Debug)]
pub struct NakSuppressor {
    slot: f64,
    rng: ChaCha8Rng,
    pending: HashMap<u32, PendingNak>,
    obs: Obs,
    /// High-water mark of the caller-supplied clock, used to timestamp
    /// `nak_suppressed` events (overhearing has no `now` of its own).
    last_seen: f64,
}

impl NakSuppressor {
    /// `slot` is the slot width `Ts` in seconds ("chosen appropriately
    /// taking the requirements of the application into account").
    ///
    /// # Panics
    /// Panics unless `slot > 0`.
    pub fn new(slot: f64, seed: u64) -> Self {
        assert!(slot > 0.0, "slot width must be positive");
        NakSuppressor {
            slot,
            rng: ChaCha8Rng::seed_from_u64(seed),
            pending: HashMap::new(),
            obs: Obs::null(),
            last_seen: 0.0,
        }
    }

    /// Emit `nak_scheduled`/`nak_suppressed` events to `obs`.
    pub fn set_obs(&mut self, obs: Obs) {
        self.obs = obs;
    }

    /// Handle `POLL(group, sent)` for a group where this receiver still
    /// needs `needed` packets. `needed == 0` clears any pending NAK (we
    /// decoded since the last poll). Re-polling a group replaces its
    /// schedule (the paper's "timer is reset" footnote).
    pub fn on_poll(&mut self, group: u32, round: u16, sent: u16, needed: u16, now: f64) {
        self.last_seen = self.last_seen.max(now);
        if needed == 0 {
            self.pending.remove(&group);
            return;
        }
        let slot_index = sent.saturating_sub(needed) as f64;
        let offset = (slot_index + self.rng.random::<f64>()) * self.slot;
        let deadline = now + offset;
        self.obs.emit(now, || Event::NakScheduled {
            group,
            needed,
            round,
            deadline,
        });
        self.pending.insert(
            group,
            PendingNak {
                needed,
                round,
                deadline,
            },
        );
    }

    /// Handle an overheard `NAK(group, m)` from another receiver: damp the
    /// own NAK if `m` covers our demand.
    pub fn on_nak_heard(&mut self, group: u32, m: u16) {
        if let Some(p) = self.pending.get(&group) {
            if m >= p.needed {
                let needed = p.needed;
                self.obs.emit(self.last_seen, || Event::NakSuppressed {
                    group,
                    needed,
                    covered_by: m,
                });
                self.pending.remove(&group);
            }
        }
    }

    /// The group decoded — no more feedback needed.
    pub fn cancel(&mut self, group: u32) {
        self.pending.remove(&group);
    }

    /// Earliest pending deadline, if any (for event-loop timeouts).
    pub fn next_deadline(&self) -> Option<f64> {
        self.pending
            .values()
            .map(|p| p.deadline)
            .min_by(|a, b| a.total_cmp(b))
    }

    /// Pop every NAK whose deadline has passed; each is returned once
    /// (send it now). Deterministic order (by group id).
    pub fn take_due(&mut self, now: f64) -> Vec<DueNak> {
        self.last_seen = self.last_seen.max(now);
        let mut due: Vec<DueNak> = self
            .pending
            .iter()
            .filter(|(_, p)| p.deadline <= now)
            .map(|(&group, p)| DueNak {
                group,
                needed: p.needed,
                round: p.round,
            })
            .collect();
        due.sort_by_key(|d| d.group);
        for d in &due {
            self.pending.remove(&d.group);
        }
        due
    }

    /// Number of NAKs currently scheduled.
    pub fn pending_count(&self) -> usize {
        self.pending.len()
    }

    /// True if a NAK is scheduled for `group`.
    pub fn is_pending(&self, group: u32) -> bool {
        self.pending.contains_key(&group)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn worse_receivers_fire_earlier() {
        // Receiver needing all s packets lands in slot 0; one needing a
        // single packet in slot s-1. Deadlines must reflect that ordering
        // regardless of the intra-slot jitter.
        let mut desperate = NakSuppressor::new(0.01, 1);
        let mut relaxed = NakSuppressor::new(0.01, 2);
        desperate.on_poll(0, 1, 20, 20, 0.0);
        relaxed.on_poll(0, 1, 20, 1, 0.0);
        let d = desperate.next_deadline().unwrap();
        let r = relaxed.next_deadline().unwrap();
        assert!(d < 0.01, "slot 0 deadline {d}");
        assert!((0.19..0.20).contains(&r), "slot 19 deadline {r}");
        assert!(d < r);
    }

    #[test]
    fn damping_cancels_covered_naks() {
        let mut s = NakSuppressor::new(0.01, 3);
        s.on_poll(5, 1, 7, 3, 0.0);
        assert_eq!(s.pending_count(), 1);
        s.on_nak_heard(5, 2); // smaller demand: keep ours
        assert_eq!(s.pending_count(), 1);
        s.on_nak_heard(5, 3); // equal: ours is redundant
        assert_eq!(s.pending_count(), 0);
    }

    #[test]
    fn due_naks_fire_once() {
        let mut s = NakSuppressor::new(0.01, 4);
        s.on_poll(1, 2, 7, 2, 0.0); // slot 5: deadline in [0.05, 0.06)
        s.on_poll(2, 1, 7, 7, 0.0); // slot 0: deadline in [0.00, 0.01)
        let early = s.take_due(0.02);
        assert_eq!(
            early,
            vec![DueNak {
                group: 2,
                needed: 7,
                round: 1
            }]
        );
        let late = s.take_due(0.06);
        assert_eq!(
            late,
            vec![DueNak {
                group: 1,
                needed: 2,
                round: 2
            }]
        );
        assert!(s.take_due(10.0).is_empty(), "already fired");
    }

    #[test]
    fn zero_need_clears() {
        let mut s = NakSuppressor::new(0.01, 5);
        s.on_poll(1, 1, 7, 3, 0.0);
        assert_eq!(s.pending_count(), 1);
        s.on_poll(1, 2, 7, 0, 0.1); // decoded by the next poll
        assert_eq!(s.pending_count(), 0);
    }

    #[test]
    fn repoll_replaces_schedule() {
        let mut s = NakSuppressor::new(0.01, 6);
        s.on_poll(1, 1, 7, 3, 0.0);
        let first = s.next_deadline().unwrap();
        s.on_poll(1, 2, 3, 1, 5.0);
        let second = s.next_deadline().unwrap();
        assert!(second >= 5.0 && second != first);
        assert_eq!(s.pending_count(), 1);
    }

    #[test]
    fn cancel_removes() {
        let mut s = NakSuppressor::new(0.01, 7);
        s.on_poll(9, 1, 7, 2, 0.0);
        s.cancel(9);
        assert_eq!(s.pending_count(), 0);
        assert_eq!(s.next_deadline(), None);
    }

    #[test]
    fn ideal_single_nak_emerges() {
        // Simulate a population: the receiver with max demand fires first;
        // once everyone hears it, all others suppress. Exactly one NAK.
        let slot = 0.01;
        let mut pop: Vec<NakSuppressor> =
            (0..20).map(|i| NakSuppressor::new(slot, 100 + i)).collect();
        let needs: Vec<u16> = (0..20).map(|i| 1 + (i % 5) as u16).collect();
        for (s, &l) in pop.iter_mut().zip(&needs) {
            s.on_poll(0, 1, 7, l, 0.0);
        }
        // Advance time in fine steps; deliver each fired NAK to everyone.
        let mut fired: Vec<DueNak> = Vec::new();
        let mut t = 0.0;
        while t < 0.2 {
            for s in pop.iter_mut() {
                for nak in s.take_due(t) {
                    fired.push(nak);
                }
            }
            // Overhearing is immediate (same step) — like a LAN.
            for &nak in &fired {
                for s in pop.iter_mut() {
                    s.on_nak_heard(nak.group, nak.needed);
                }
            }
            t += slot / 10.0;
        }
        let max_need = *needs.iter().max().unwrap();
        assert!(!fired.is_empty());
        assert_eq!(
            fired[0].needed, max_need,
            "worst receiver must answer first"
        );
        // Damping keeps the count tiny: everyone in later slots suppressed.
        assert!(
            fired.len() <= 4,
            "expected near-single NAK, got {}: {fired:?}",
            fired.len()
        );
        assert!(
            fired.iter().all(|f| f.needed == max_need),
            "only max-demand slots fire"
        );
    }

    #[test]
    #[should_panic(expected = "slot width")]
    fn zero_slot_rejected() {
        let _ = NakSuppressor::new(0.0, 0);
    }

    #[test]
    fn schedule_and_suppress_events_emitted() {
        use std::sync::Arc;
        let ring = Arc::new(pm_obs::RingRecorder::new(16));
        let mut s = NakSuppressor::new(0.01, 8);
        s.set_obs(Obs::new(ring.clone()));
        s.on_poll(3, 1, 7, 2, 1.0);
        s.on_nak_heard(3, 5);
        let events = ring.events();
        assert_eq!(events.len(), 2);
        assert!(matches!(
            events[0].1,
            Event::NakScheduled {
                group: 3,
                needed: 2,
                round: 1,
                ..
            }
        ));
        assert_eq!(
            events[1].1,
            Event::NakSuppressed {
                group: 3,
                needed: 2,
                covered_by: 5
            }
        );
        assert_eq!(events[1].0, 1.0, "suppression stamped with last seen now");
    }
}
