//! Byte-exact session transcripts: a transport decorator that records
//! every datagram it sends and receives, in order.
//!
//! The equivalence tests pin a strong claim — the event-driven
//! multiplexer (`pm-mux`) produces *byte-identical* per-session traffic to
//! the blocking drivers — and a claim that strong needs a witness. Wrap
//! each endpoint in a [`TranscriptTransport`], run the session, and
//! compare [`Transcript`]s: two runs are equivalent iff their ordered
//! `(sent, received)` byte sequences match exactly.

use std::sync::Arc;

use bytes::Bytes;
use parking_lot::Mutex;

use crate::poll::PollTransport;
use crate::transport::{NetError, Transport};
use crate::wire::Message;

/// The ordered wire history of one endpoint: canonical encodings of every
/// datagram sent and every datagram successfully received.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct Transcript {
    /// Encodings of sent datagrams, in send order.
    pub sent: Vec<Bytes>,
    /// Encodings of received datagrams, in delivery order.
    pub received: Vec<Bytes>,
}

impl Transcript {
    /// Total datagrams on both sides.
    pub fn len(&self) -> usize {
        self.sent.len() + self.received.len()
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.sent.is_empty() && self.received.is_empty()
    }
}

/// Transport decorator recording a [`Transcript`] of all traffic.
///
/// Recording happens at the decorator's position in the stack: wrap the
/// innermost transport to see post-fault-injection bytes, or the outermost
/// to see what the driver itself sent and absorbed.
pub struct TranscriptTransport<T: Transport> {
    inner: T,
    log: Arc<Mutex<Transcript>>,
}

impl<T: Transport> TranscriptTransport<T> {
    /// Wrap `inner`, recording into a fresh transcript.
    pub fn new(inner: T) -> Self {
        TranscriptTransport {
            inner,
            log: Arc::new(Mutex::new(Transcript::default())),
        }
    }

    /// Shared handle to the transcript (readable while the transport is
    /// owned by a driver, and after it is dropped).
    pub fn transcript(&self) -> Arc<Mutex<Transcript>> {
        self.log.clone()
    }
}

impl<T: Transport> Transport for TranscriptTransport<T> {
    fn send(&mut self, msg: &Message) -> Result<(), NetError> {
        self.inner.send(msg)?;
        self.log.lock().sent.push(msg.encode());
        Ok(())
    }

    fn recv_timeout(&mut self, timeout: std::time::Duration) -> Result<Option<Message>, NetError> {
        let got = self.inner.recv_timeout(timeout)?;
        if let Some(msg) = &got {
            self.log.lock().received.push(msg.encode());
        }
        Ok(got)
    }
}

impl<T: PollTransport> PollTransport for TranscriptTransport<T> {
    fn poll_recv(&mut self) -> Result<Option<Message>, NetError> {
        let got = self.inner.poll_recv()?;
        if let Some(msg) = &got {
            self.log.lock().received.push(msg.encode());
        }
        Ok(got)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem::MemHub;
    use std::time::Duration;

    #[test]
    fn records_both_directions_in_order() {
        let hub = MemHub::new();
        let mut peer = hub.join();
        let mut tp = TranscriptTransport::new(hub.join());
        let log = tp.transcript();
        tp.send(&Message::Fin { session: 1 }).unwrap();
        peer.send(&Message::Done {
            session: 1,
            receiver: 2,
        })
        .unwrap();
        assert!(tp
            .recv_timeout(Duration::from_millis(200))
            .unwrap()
            .is_some());
        peer.send(&Message::Fin { session: 1 }).unwrap();
        assert!(tp.poll_recv().unwrap().is_some());
        let t = log.lock();
        assert_eq!(t.sent.len(), 1);
        assert_eq!(t.received.len(), 2);
        assert_eq!(t.sent[0], Message::Fin { session: 1 }.encode());
        assert_eq!(t.len(), 3);
        assert!(!t.is_empty());
    }

    #[test]
    fn identical_sessions_produce_identical_transcripts() {
        let run = || {
            let hub = MemHub::new();
            let mut peer = hub.join();
            let mut tp = TranscriptTransport::new(hub.join());
            for s in 0..5u32 {
                tp.send(&Message::Fin { session: s }).unwrap();
                peer.send(&Message::Done {
                    session: s,
                    receiver: s,
                })
                .unwrap();
                tp.poll_recv().unwrap();
            }
            tp.transcript().lock().clone()
        };
        assert_eq!(run(), run());
    }
}
