//! Wire format (version 2).
//!
//! Every datagram carries one [`Message`]. Layout (all integers
//! big-endian):
//!
//! ```text
//!     0      2      3      4          8          12
//!     +------+------+------+----------+----------+------ ... ----+
//!     | MAGIC| VER  | TYPE | CKSUM    | SESSION  |  type body    |
//!     +------+------+------+----------+----------+------ ... ----+
//! ```
//!
//! `Packet` unifies data and parity: an FEC-block index `< k` is a data
//! packet, `>= k` a parity — receivers treat both uniformly, which is the
//! whole point of parity repair. Block geometry `(k, n)` rides in every
//! packet so receivers are stateless per group.
//!
//! ## Integrity (new in wire v2)
//!
//! `CKSUM` is an FNV-1a 32-bit digest of the *entire* datagram with the
//! checksum field itself zeroed. UDP's 16-bit ones-complement checksum is
//! optional (and absent on many paths); relying on it left bit-flipped
//! datagrams free to mis-parse into valid-looking `Message`s. FNV-1a's
//! per-byte step `h = (h ^ b) * PRIME` is invertible in `h`, so two
//! buffers that differ only within a single byte can never collide — any
//! corruption confined to one byte (including flips inside the checksum
//! field) is detected with certainty, and wider damage is caught with
//! probability `1 - 2^-32`. A checksum mismatch surfaces as the
//! *recoverable* [`NetError::Corrupt`]; the header magic guards against
//! foreign datagrams on the group, which stay a silent skip.
//!
//! Version 1 (no checksum; `SESSION` at offset 4) is not accepted:
//! corruption detection is load-bearing for the hostile-network
//! guarantees, so the version byte was bumped rather than negotiated.

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::transport::NetError;

/// Wire magic: "PM".
pub const MAGIC: u16 = 0x504D;
/// Current protocol version. Bumped 1 → 2 when the integrity checksum
/// was inserted at offset 4 (v1 peers would mis-read every field after
/// the type byte, so the formats are deliberately incompatible).
pub const VERSION: u8 = 2;
/// Fixed header bytes before the type-specific body:
/// magic(2) + version(1) + type(1) + checksum(4) + session(4).
pub const HEADER_LEN: usize = 12;
/// Maximum payload bytes carried by one packet (fits a UDP datagram with
/// ample headroom).
pub const MAX_PAYLOAD: usize = 60_000;

/// FNV-1a 32-bit over a sequence of byte slices (one logical buffer).
fn fnv1a(chunks: &[&[u8]]) -> u32 {
    let mut h: u32 = 0x811C_9DC5;
    for chunk in chunks {
        for &b in *chunk {
            h = (h ^ u32::from(b)).wrapping_mul(0x0100_0193);
        }
    }
    h
}

/// Integrity digest of a full datagram: FNV-1a 32 with the checksum
/// field (bytes `4..8`) treated as zero. Returns `None` for buffers too
/// short to carry the fixed header.
pub fn checksum_of(datagram: &[u8]) -> Option<u32> {
    if datagram.len() < HEADER_LEN {
        return None;
    }
    let (head, rest) = datagram.split_at(4);
    let (_, tail) = rest.split_at(4);
    Some(fnv1a(&[head, &[0u8; 4], tail]))
}

/// Recompute and install the checksum of a raw datagram in place.
///
/// A test/chaos utility: after hand-patching bytes of an encoded
/// datagram (to probe structural validation *past* the integrity layer),
/// call this to re-seal it. Buffers shorter than the fixed header are
/// left untouched.
pub fn reseal(datagram: &mut [u8]) {
    if let Some(sum) = checksum_of(datagram) {
        datagram[4..8].copy_from_slice(&sum.to_be_bytes());
    }
}

const TYPE_PACKET: u8 = 1;
const TYPE_POLL: u8 = 2;
const TYPE_NAK: u8 = 3;
const TYPE_NAK_PACKET: u8 = 4;
const TYPE_ANNOUNCE: u8 = 5;
const TYPE_DONE: u8 = 6;
const TYPE_FIN: u8 = 7;
const TYPE_FEC_FRAME: u8 = 8;

/// One protocol message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Message {
    /// A data (`index < k`) or parity (`index >= k`) packet of a
    /// transmission group.
    Packet {
        /// Session this packet belongs to.
        session: u32,
        /// Transmission-group number.
        group: u32,
        /// FEC-block index within the group (`0..n`).
        index: u16,
        /// Data packets per group.
        k: u16,
        /// FEC block size (data + maximum parities).
        n: u16,
        /// Payload bytes (equal length across one group).
        payload: Bytes,
    },
    /// Sender poll `POLL(group, sent)`: asks receivers for the number of
    /// packets they still need to decode `group`; `sent` is the number of
    /// packets transmitted in the just-finished round (the NAK slotting
    /// parameter `s`), `round` the round number.
    Poll {
        session: u32,
        group: u32,
        sent: u16,
        round: u16,
    },
    /// Receiver NAK `NAK(group, needed)` — protocol NP's per-group
    /// feedback: "I need `needed` more packets to decode `group`".
    Nak {
        session: u32,
        group: u32,
        needed: u16,
        round: u16,
    },
    /// Per-packet NAK — protocol N2's feedback: "retransmit packet `index`
    /// of `group`".
    NakPacket {
        session: u32,
        group: u32,
        index: u16,
    },
    /// Session announcement: geometry of the transfer.
    Announce {
        session: u32,
        /// Number of transmission groups.
        groups: u32,
        /// Data packets per full group.
        k: u16,
        /// FEC block size per group.
        n: u16,
        /// Data packets in the final (possibly short) group.
        last_k: u16,
        /// Payload size of every packet.
        payload_len: u32,
        /// Exact byte length of the transfer (strips final-packet padding).
        total_bytes: u64,
    },
    /// A receiver reports the whole session decoded.
    Done { session: u32, receiver: u32 },
    /// Sender closes the session.
    Fin { session: u32 },
    /// A frame of the transparent layered-FEC transport
    /// ([`crate::fec_layer::FecTransport`]): one slot of an FEC block whose
    /// payloads are *opaque inner datagrams* (length-prefixed and padded
    /// for data slots, raw parity bytes otherwise). `session` carries the
    /// sender tag that keeps concurrent senders' blocks apart.
    FecFrame {
        session: u32,
        /// Block sequence number of this sender.
        block: u32,
        /// Slot within the FEC block (`< k` data, `>= k` parity).
        index: u16,
        /// Data slots per block.
        k: u16,
        /// Block size (data + parities).
        n: u16,
        /// Padded inner datagram or parity bytes.
        payload: Bytes,
    },
}

impl Message {
    /// Session id of any message.
    pub fn session(&self) -> u32 {
        match *self {
            Message::Packet { session, .. }
            | Message::Poll { session, .. }
            | Message::Nak { session, .. }
            | Message::NakPacket { session, .. }
            | Message::Announce { session, .. }
            | Message::Done { session, .. }
            | Message::Fin { session }
            | Message::FecFrame { session, .. } => session,
        }
    }

    /// Observability classification of this message. `Packet` splits into
    /// data vs parity by FEC-block index, like the protocol does.
    pub fn obs_kind(&self) -> pm_obs::MsgKind {
        use pm_obs::MsgKind;
        match self {
            Message::Packet { index, k, .. } => {
                if index < k {
                    MsgKind::Data
                } else {
                    MsgKind::Parity
                }
            }
            Message::Poll { .. } => MsgKind::Poll,
            Message::Nak { .. } => MsgKind::Nak,
            Message::NakPacket { .. } => MsgKind::NakPacket,
            Message::Announce { .. } => MsgKind::Announce,
            Message::Done { .. } => MsgKind::Done,
            Message::Fin { .. } => MsgKind::Fin,
            Message::FecFrame { .. } => MsgKind::FecFrame,
        }
    }

    fn type_byte(&self) -> u8 {
        match self {
            Message::Packet { .. } => TYPE_PACKET,
            Message::Poll { .. } => TYPE_POLL,
            Message::Nak { .. } => TYPE_NAK,
            Message::NakPacket { .. } => TYPE_NAK_PACKET,
            Message::Announce { .. } => TYPE_ANNOUNCE,
            Message::Done { .. } => TYPE_DONE,
            Message::Fin { .. } => TYPE_FIN,
            Message::FecFrame { .. } => TYPE_FEC_FRAME,
        }
    }

    /// Encode into a fresh buffer, sealed with the integrity checksum.
    pub fn encode(&self) -> Bytes {
        let mut b = BytesMut::with_capacity(64);
        b.put_u16(MAGIC);
        b.put_u8(VERSION);
        b.put_u8(self.type_byte());
        b.put_u32(0); // checksum placeholder, sealed below
        b.put_u32(self.session());
        match self {
            Message::Packet {
                group,
                index,
                k,
                n,
                payload,
                ..
            } => {
                b.put_u32(*group);
                b.put_u16(*index);
                b.put_u16(*k);
                b.put_u16(*n);
                // pm-audit: allow(lossy-cast): payload bounded far below 4 GiB
                b.put_u32(payload.len() as u32);
                b.extend_from_slice(payload);
            }
            Message::Poll {
                group, sent, round, ..
            } => {
                b.put_u32(*group);
                b.put_u16(*sent);
                b.put_u16(*round);
            }
            Message::Nak {
                group,
                needed,
                round,
                ..
            } => {
                b.put_u32(*group);
                b.put_u16(*needed);
                b.put_u16(*round);
            }
            Message::NakPacket { group, index, .. } => {
                b.put_u32(*group);
                b.put_u16(*index);
            }
            Message::Announce {
                groups,
                k,
                n,
                last_k,
                payload_len,
                total_bytes,
                ..
            } => {
                b.put_u32(*groups);
                b.put_u16(*k);
                b.put_u16(*n);
                b.put_u16(*last_k);
                b.put_u32(*payload_len);
                b.put_u64(*total_bytes);
            }
            Message::Done { receiver, .. } => {
                b.put_u32(*receiver);
            }
            Message::Fin { .. } => {}
            Message::FecFrame {
                block,
                index,
                k,
                n,
                payload,
                ..
            } => {
                b.put_u32(*block);
                b.put_u16(*index);
                b.put_u16(*k);
                b.put_u16(*n);
                // pm-audit: allow(lossy-cast): payload bounded far below 4 GiB
                b.put_u32(payload.len() as u32);
                b.extend_from_slice(payload);
            }
        }
        reseal(&mut b);
        b.freeze()
    }

    /// Decode one datagram. Total: never panics on arbitrary bytes.
    ///
    /// # Errors
    /// [`NetError::Decode`] on bad magic/version/type, truncation, or an
    /// over-size payload; [`NetError::Corrupt`] when the header carries
    /// our magic but the integrity checksum does not match (damaged in
    /// flight). Both are recoverable
    /// ([`NetError::is_recoverable`]).
    pub fn decode(mut buf: Bytes) -> Result<Message, NetError> {
        fn need(buf: &Bytes, n: usize, what: &'static str) -> Result<(), NetError> {
            if buf.remaining() < n {
                Err(NetError::Decode(format!("truncated {what}")))
            } else {
                Ok(())
            }
        }
        need(&buf, HEADER_LEN, "header")?;
        let magic = buf.get_u16();
        if magic != MAGIC {
            return Err(NetError::Decode(format!("bad magic {magic:#06x}")));
        }
        // Integrity comes before any other field: a flipped version/type
        // byte must read as corruption, not as a foreign datagram.
        let version = buf.get_u8();
        let ty = buf.get_u8();
        let stored = buf.get_u32();
        let session = buf.get_u32();
        let computed = fnv1a(&[
            &MAGIC.to_be_bytes(),
            &[version, ty, 0, 0, 0, 0],
            &session.to_be_bytes(),
            &buf,
        ]);
        if stored != computed {
            return Err(NetError::Corrupt(format!(
                "checksum mismatch: stored {stored:#010x}, computed {computed:#010x}"
            )));
        }
        if version != VERSION {
            return Err(NetError::Decode(format!("unsupported version {version}")));
        }
        match ty {
            TYPE_PACKET => {
                need(&buf, 14, "packet header")?;
                let group = buf.get_u32();
                let index = buf.get_u16();
                let k = buf.get_u16();
                let n = buf.get_u16();
                let len = buf.get_u32() as usize;
                if len > MAX_PAYLOAD {
                    return Err(NetError::Decode(format!("payload {len} exceeds max")));
                }
                need(&buf, len, "payload")?;
                let payload = buf.split_to(len);
                if index >= n {
                    return Err(NetError::Decode(format!("index {index} >= n {n}")));
                }
                if k == 0 || k > n {
                    return Err(NetError::Decode(format!("bad geometry k={k} n={n}")));
                }
                Ok(Message::Packet {
                    session,
                    group,
                    index,
                    k,
                    n,
                    payload,
                })
            }
            TYPE_POLL => {
                need(&buf, 8, "poll")?;
                Ok(Message::Poll {
                    session,
                    group: buf.get_u32(),
                    sent: buf.get_u16(),
                    round: buf.get_u16(),
                })
            }
            TYPE_NAK => {
                need(&buf, 8, "nak")?;
                Ok(Message::Nak {
                    session,
                    group: buf.get_u32(),
                    needed: buf.get_u16(),
                    round: buf.get_u16(),
                })
            }
            TYPE_NAK_PACKET => {
                need(&buf, 6, "nak-packet")?;
                Ok(Message::NakPacket {
                    session,
                    group: buf.get_u32(),
                    index: buf.get_u16(),
                })
            }
            TYPE_ANNOUNCE => {
                need(&buf, 22, "announce")?;
                let groups = buf.get_u32();
                let k = buf.get_u16();
                let n = buf.get_u16();
                let last_k = buf.get_u16();
                let payload_len = buf.get_u32();
                let total_bytes = buf.get_u64();
                if k == 0 || k > n || last_k == 0 || last_k > k {
                    return Err(NetError::Decode(format!(
                        "bad announce geometry k={k} n={n} last_k={last_k}"
                    )));
                }
                Ok(Message::Announce {
                    session,
                    groups,
                    k,
                    n,
                    last_k,
                    payload_len,
                    total_bytes,
                })
            }
            TYPE_DONE => {
                need(&buf, 4, "done")?;
                Ok(Message::Done {
                    session,
                    receiver: buf.get_u32(),
                })
            }
            TYPE_FIN => Ok(Message::Fin { session }),
            TYPE_FEC_FRAME => {
                need(&buf, 14, "fec frame header")?;
                let block = buf.get_u32();
                let index = buf.get_u16();
                let k = buf.get_u16();
                let n = buf.get_u16();
                let len = buf.get_u32() as usize;
                if len > MAX_PAYLOAD {
                    return Err(NetError::Decode(format!("fec payload {len} exceeds max")));
                }
                need(&buf, len, "fec payload")?;
                let payload = buf.split_to(len);
                if index >= n || k == 0 || k > n {
                    return Err(NetError::Decode(format!(
                        "bad fec geometry index={index} k={k} n={n}"
                    )));
                }
                Ok(Message::FecFrame {
                    session,
                    block,
                    index,
                    k,
                    n,
                    payload,
                })
            }
            other => Err(NetError::Decode(format!("unknown message type {other}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(m: Message) {
        let encoded = m.encode();
        let decoded = Message::decode(encoded).unwrap();
        assert_eq!(decoded, m);
    }

    #[test]
    fn roundtrip_all_variants() {
        roundtrip(Message::Packet {
            session: 42,
            group: 7,
            index: 3,
            k: 5,
            n: 9,
            payload: Bytes::from_static(b"hello world"),
        });
        roundtrip(Message::Poll {
            session: 1,
            group: 2,
            sent: 20,
            round: 1,
        });
        roundtrip(Message::Nak {
            session: 1,
            group: 2,
            needed: 3,
            round: 2,
        });
        roundtrip(Message::NakPacket {
            session: 9,
            group: 0,
            index: 11,
        });
        roundtrip(Message::Announce {
            session: 5,
            groups: 100,
            k: 20,
            n: 60,
            last_k: 13,
            payload_len: 1024,
            total_bytes: 2_036_481,
        });
        roundtrip(Message::Done {
            session: 5,
            receiver: 17,
        });
        roundtrip(Message::Fin { session: 5 });
    }

    #[test]
    fn fec_frame_roundtrips() {
        roundtrip(Message::FecFrame {
            session: 0xBEEF,
            block: 42,
            index: 8,
            k: 7,
            n: 10,
            payload: Bytes::from_static(b"opaque inner datagram bytes"),
        });
    }

    #[test]
    fn fec_frame_rejects_bad_geometry() {
        let good = Message::FecFrame {
            session: 1,
            block: 1,
            index: 9,
            k: 7,
            n: 10,
            payload: Bytes::new(),
        }
        .encode();
        // Patch index beyond n (index lives right after block), then
        // re-seal so the structural check is what rejects it.
        let mut raw = good.to_vec();
        // header(12) + block(4) => index at offset 16.
        raw[16] = 0xFF;
        raw[17] = 0xFF;
        reseal(&mut raw);
        assert!(matches!(
            Message::decode(Bytes::from(raw)),
            Err(NetError::Decode(_))
        ));
    }

    #[test]
    fn empty_payload_roundtrips() {
        roundtrip(Message::Packet {
            session: 0,
            group: 0,
            index: 0,
            k: 1,
            n: 1,
            payload: Bytes::new(),
        });
    }

    #[test]
    fn rejects_foreign_datagrams() {
        assert!(matches!(
            Message::decode(Bytes::from_static(b"")),
            Err(NetError::Decode(_))
        ));
        assert!(matches!(
            Message::decode(Bytes::from_static(b"\x00\x00\x01\x01\x00\x00\x00\x00")),
            Err(NetError::Decode(_))
        ));
        // Right magic, wrong version, valid checksum: rejected as a
        // foreign (incompatible) datagram, not corruption.
        let mut bad = BytesMut::new();
        bad.put_u16(MAGIC);
        bad.put_u8(99);
        bad.put_u8(TYPE_FIN);
        bad.put_u32(0); // checksum placeholder
        bad.put_u32(0); // session
        reseal(&mut bad);
        assert!(matches!(
            Message::decode(bad.freeze()),
            Err(NetError::Decode(_))
        ));
    }

    #[test]
    fn single_byte_damage_is_always_caught() {
        let full = Message::Packet {
            session: 7,
            group: 3,
            index: 2,
            k: 4,
            n: 6,
            payload: Bytes::from_static(b"integrity matters"),
        }
        .encode();
        for pos in 0..full.len() {
            for mask in [0x01u8, 0x80, 0xFF] {
                let mut raw = full.to_vec();
                raw[pos] ^= mask;
                let got = Message::decode(Bytes::from(raw));
                match got {
                    Err(e) => assert!(e.is_recoverable(), "flip at {pos}: {e}"),
                    Ok(m) => panic!("flip at {pos} mask {mask:#04x} mis-parsed as {m:?}"),
                }
            }
        }
    }

    #[test]
    fn damage_outside_magic_reads_as_corrupt() {
        let full = Message::Fin { session: 9 }.encode();
        // Any flip past the magic bytes must surface as Corrupt, so the
        // drivers can tell damaged own-traffic from foreign datagrams.
        for pos in 2..full.len() {
            let mut raw = full.to_vec();
            raw[pos] ^= 0x10;
            assert!(
                matches!(Message::decode(Bytes::from(raw)), Err(NetError::Corrupt(_))),
                "flip at {pos} should be Corrupt"
            );
        }
    }

    #[test]
    fn reseal_restores_decodability() {
        let full = Message::Done {
            session: 11,
            receiver: 4,
        }
        .encode();
        let mut raw = full.to_vec();
        let last = raw.len() - 1;
        raw[last] ^= 0xAA; // damage the receiver id
        assert!(Message::decode(Bytes::from(raw.clone())).is_err());
        reseal(&mut raw);
        let reparsed = Message::decode(Bytes::from(raw)).unwrap();
        assert!(matches!(reparsed, Message::Done { .. }));
    }

    #[test]
    fn rejects_truncation_everywhere() {
        let full = Message::Packet {
            session: 1,
            group: 2,
            index: 0,
            k: 3,
            n: 5,
            payload: Bytes::from_static(b"abcdef"),
        }
        .encode();
        for cut in 0..full.len() {
            let sliced = full.slice(0..cut);
            assert!(
                Message::decode(sliced).is_err(),
                "cut at {cut} of {} should fail",
                full.len()
            );
        }
    }

    #[test]
    fn rejects_bad_geometry() {
        // index >= n
        let mut b = BytesMut::new();
        b.put_u16(MAGIC);
        b.put_u8(VERSION);
        b.put_u8(TYPE_PACKET);
        b.put_u32(0); // checksum placeholder
        b.put_u32(0); // session
        b.put_u32(0); // group
        b.put_u16(9); // index
        b.put_u16(3); // k
        b.put_u16(5); // n
        b.put_u32(0); // payload len
        reseal(&mut b);
        assert!(Message::decode(b.freeze()).is_err());
        // k > n in announce
        let mut b = BytesMut::new();
        b.put_u16(MAGIC);
        b.put_u8(VERSION);
        b.put_u8(TYPE_ANNOUNCE);
        b.put_u32(0); // checksum placeholder
        b.put_u32(0); // session
        b.put_u32(1); // groups
        b.put_u16(9); // k
        b.put_u16(5); // n
        b.put_u16(1); // last_k
        b.put_u32(16);
        b.put_u64(16);
        reseal(&mut b);
        assert!(Message::decode(b.freeze()).is_err());
    }

    #[test]
    fn checksum_helpers() {
        assert_eq!(checksum_of(&[0u8; 4]), None);
        let enc = Message::Fin { session: 1 }.encode();
        let stored = u32::from_be_bytes([enc[4], enc[5], enc[6], enc[7]]);
        assert_eq!(checksum_of(&enc), Some(stored));
        // Resealing an already-sealed datagram is a no-op.
        let mut raw = enc.to_vec();
        reseal(&mut raw);
        assert_eq!(&raw[..], &enc[..]);
    }

    #[test]
    fn session_accessor() {
        assert_eq!(Message::Fin { session: 77 }.session(), 77);
        assert_eq!(
            Message::Done {
                session: 3,
                receiver: 1
            }
            .session(),
            3
        );
    }
}
