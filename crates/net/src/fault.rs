//! Fault injection: a transport decorator that perturbs the *receive*
//! path (multicast loss happens per receiver, so injecting at the receiver
//! models independent loss; wrap several endpoints of one `MemHub` with
//! different seeds for a whole lossy population) and, for the
//! datagram-level faults, the *send* path too — a receiver's NAK/Done
//! feedback crosses the same hostile network as the data.
//!
//! Message-level faults (`drop`/`duplicate`/`reorder`) perturb delivery
//! order and count. Datagram-level faults (`corrupt`/`truncate`/`garbage`)
//! damage the *bytes*: the message is re-encoded, mutilated, and pushed
//! through the real [`Message::decode`] so the caller sees exactly the
//! recoverable [`NetError::Corrupt`]/[`NetError::Decode`] a damaged UDP
//! datagram would produce. A [`FaultConfig::blackout`] window models a
//! network partition: everything in the interval vanishes, both
//! directions.

use std::time::Duration;

use bytes::Bytes;
use pm_obs::{Event, Obs, Stopwatch};
use rand::{Rng, RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;

use crate::transport::{NetError, Transport};
use crate::wire::Message;

/// Probabilities of each fault, applied per received datagram.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FaultConfig {
    /// Drop the datagram.
    pub drop: f64,
    /// Deliver the datagram twice.
    pub duplicate: f64,
    /// Hold the datagram back and deliver it after the next one (a
    /// one-packet reorder).
    pub reorder: f64,
    /// Flip bits within one byte of the encoded datagram; the caller
    /// sees the recoverable decode error the damage produces.
    pub corrupt: f64,
    /// Truncate the encoded datagram at a random length; the caller sees
    /// the recoverable decode error.
    pub truncate: f64,
    /// Deliver a random garbage datagram ahead of the real message (the
    /// real one follows on the next receive).
    pub garbage: f64,
    /// Drop the datagram on the *send* path (lost NAK/Done feedback).
    pub send_drop: f64,
    /// Scheduled partition: during `[start, end)` seconds (measured from
    /// transport creation), every datagram vanishes in both directions.
    pub blackout: Option<(f64, f64)>,
}

impl FaultConfig {
    /// No faults.
    pub fn none() -> Self {
        FaultConfig::default()
    }

    /// Drop-only faults with probability `p` — the paper's loss model.
    ///
    /// # Panics
    /// Panics unless `p` is a probability.
    pub fn drop_only(p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "p must be a probability");
        FaultConfig {
            drop: p,
            ..FaultConfig::none()
        }
    }

    fn validate(&self) {
        for (name, v) in [
            ("drop", self.drop),
            ("duplicate", self.duplicate),
            ("reorder", self.reorder),
            ("corrupt", self.corrupt),
            ("truncate", self.truncate),
            ("garbage", self.garbage),
            ("send_drop", self.send_drop),
        ] {
            assert!(
                (0.0..=1.0).contains(&v),
                "{name} probability {v} out of range"
            );
        }
        if let Some((start, end)) = self.blackout {
            assert!(
                start >= 0.0 && end >= start,
                "blackout window [{start}, {end}) is malformed"
            );
        }
    }
}

/// Counters of injected faults (for assertions and reporting).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Datagrams dropped (receive path).
    pub dropped: u64,
    /// Datagrams duplicated.
    pub duplicated: u64,
    /// Datagrams reordered.
    pub reordered: u64,
    /// Datagrams damaged by bit flips.
    pub corrupted: u64,
    /// Datagrams truncated.
    pub truncated: u64,
    /// Garbage datagrams injected.
    pub garbage_injected: u64,
    /// Datagrams swallowed by the blackout window on the receive path.
    pub blackout_recv: u64,
    /// Datagrams swallowed by the blackout window on the send path.
    pub blackout_send: u64,
    /// Datagrams dropped on the send path.
    pub send_dropped: u64,
    /// Datagrams delivered to the caller.
    pub delivered: u64,
}

impl FaultStats {
    /// Total datagrams the injector damaged at the byte level (each one
    /// surfaced to the caller as a recoverable decode error).
    pub fn byte_faults(&self) -> u64 {
        self.corrupted + self.truncated + self.garbage_injected
    }

    /// Total datagrams the blackout window swallowed (both directions).
    pub fn blackout_total(&self) -> u64 {
        self.blackout_recv + self.blackout_send
    }
}

/// A [`Transport`] decorator injecting faults.
pub struct FaultyTransport<T> {
    inner: T,
    cfg: FaultConfig,
    rng: ChaCha8Rng,
    /// Duplicate copy awaiting delivery.
    pending_dup: Option<Message>,
    /// Reordered message awaiting the one that overtakes it.
    held: Option<Message>,
    /// Real message queued behind an injected garbage datagram.
    stash: Option<Message>,
    stats: FaultStats,
    obs: Obs,
    clock: Stopwatch,
}

impl<T: Transport> FaultyTransport<T> {
    /// Wrap `inner` with the given fault profile.
    ///
    /// # Panics
    /// Panics on out-of-range probabilities.
    pub fn new(inner: T, cfg: FaultConfig, seed: u64) -> Self {
        cfg.validate();
        FaultyTransport {
            inner,
            cfg,
            rng: ChaCha8Rng::seed_from_u64(seed),
            pending_dup: None,
            held: None,
            stash: None,
            stats: FaultStats::default(),
            obs: Obs::null(),
            clock: Stopwatch::start(),
        }
    }

    /// Emit `net_dropped`/`net_duplicated`/`net_reordered` events
    /// (timestamped from transport creation) to `obs`.
    pub fn with_obs(mut self, obs: Obs) -> Self {
        self.obs = obs;
        self
    }

    /// Fault counters so far.
    pub fn stats(&self) -> FaultStats {
        self.stats
    }

    /// Access the wrapped transport.
    pub fn inner_mut(&mut self) -> &mut T {
        &mut self.inner
    }

    /// Whether the session clock currently sits inside the blackout
    /// window.
    fn in_blackout(&self) -> bool {
        match self.cfg.blackout {
            Some((start, end)) => {
                let t = self.clock.now();
                t >= start && t < end
            }
            None => false,
        }
    }

    /// Re-encode `msg`, flip 1–8 bits within one random byte, and decode
    /// the damaged datagram — returning the same recoverable error a
    /// bit-flipped UDP datagram would produce. Damage confined to one
    /// byte is *guaranteed* caught by the wire checksum, so this never
    /// mis-parses.
    fn corruption_error(&mut self, msg: &Message) -> NetError {
        let mut raw = msg.encode().to_vec();
        let pos = (self.rng.random::<u64>() % raw.len() as u64) as usize;
        let mask = (self.rng.random::<u64>() % 255 + 1) as u8; // nonzero
        raw[pos] ^= mask;
        match Message::decode(Bytes::from(raw)) {
            Err(e) => e,
            // Unreachable by the checksum's single-byte guarantee; stay
            // total rather than trust it.
            Ok(_) => NetError::Corrupt("injected bit flips".into()),
        }
    }

    /// Re-encode `msg`, cut it short, and decode the stump.
    fn truncation_error(&mut self, msg: &Message) -> NetError {
        let raw = msg.encode();
        let cut = (self.rng.random::<u64>() % raw.len() as u64) as usize;
        match Message::decode(raw.slice(0..cut)) {
            Err(e) => e,
            Ok(_) => NetError::Corrupt("injected truncation".into()),
        }
    }

    /// Build a random garbage datagram and decode it.
    fn garbage_error(&mut self) -> (u64, NetError) {
        let len = (self.rng.random::<u64>() % 64) as usize;
        let mut junk = vec![0u8; len];
        self.rng.fill_bytes(&mut junk);
        let err = match Message::decode(Bytes::from(junk)) {
            Err(e) => e,
            // A 2^-48 fluke (valid magic + checksum); report it as
            // corruption all the same.
            Ok(_) => NetError::Corrupt("injected garbage".into()),
        };
        (len as u64, err)
    }
}

impl<T: Transport> Transport for FaultyTransport<T> {
    fn send(&mut self, msg: &Message) -> Result<(), NetError> {
        // Feedback crosses the same hostile network: the blackout window
        // and send_drop swallow outbound datagrams silently (the network
        // never reports a lost UDP datagram either).
        if self.in_blackout() {
            self.stats.blackout_send += 1;
            self.obs.emit(self.clock.now(), || Event::NetBlackout {
                kind: msg.obs_kind(),
                tx: true,
            });
            return Ok(());
        }
        if self.rng.random::<f64>() < self.cfg.send_drop {
            self.stats.send_dropped += 1;
            self.obs.emit(self.clock.now(), || Event::NetDropped {
                kind: msg.obs_kind(),
            });
            return Ok(());
        }
        self.inner.send(msg)
    }

    fn recv_timeout(&mut self, timeout: Duration) -> Result<Option<Message>, NetError> {
        if let Some(dup) = self.pending_dup.take() {
            self.stats.delivered += 1;
            return Ok(Some(dup));
        }
        if let Some(real) = self.stash.take() {
            // The message that was queued behind an injected garbage
            // datagram; it already passed the byte-level stage.
            self.stats.delivered += 1;
            return Ok(Some(real));
        }
        // pm-audit: allow(determinism-time): blocking-IO recv deadline on a real transport, wall-clock by design
        let deadline = std::time::Instant::now() + timeout;
        loop {
            // pm-audit: allow(determinism-time): blocking-IO recv deadline on a real transport, wall-clock by design
            let remaining = deadline.saturating_duration_since(std::time::Instant::now());
            let msg = match self.inner.recv_timeout(remaining)? {
                Some(m) => m,
                None => {
                    // Timed out: flush a held (reordered) message if any
                    // rather than losing it forever.
                    if let Some(h) = self.held.take() {
                        self.stats.delivered += 1;
                        return Ok(Some(h));
                    }
                    return Ok(None);
                }
            };
            if self.in_blackout() {
                self.stats.blackout_recv += 1;
                self.obs.emit(self.clock.now(), || Event::NetBlackout {
                    kind: msg.obs_kind(),
                    tx: false,
                });
                continue;
            }
            if self.rng.random::<f64>() < self.cfg.corrupt {
                self.stats.corrupted += 1;
                self.obs.emit(self.clock.now(), || Event::NetCorrupted {
                    kind: msg.obs_kind(),
                });
                return Err(self.corruption_error(&msg));
            }
            if self.rng.random::<f64>() < self.cfg.truncate {
                self.stats.truncated += 1;
                self.obs.emit(self.clock.now(), || Event::NetTruncated {
                    kind: msg.obs_kind(),
                });
                return Err(self.truncation_error(&msg));
            }
            if self.rng.random::<f64>() < self.cfg.garbage {
                self.stats.garbage_injected += 1;
                let (bytes, err) = self.garbage_error();
                self.obs
                    .emit(self.clock.now(), || Event::NetGarbage { bytes });
                self.stash = Some(msg);
                return Err(err);
            }
            if self.rng.random::<f64>() < self.cfg.drop {
                self.stats.dropped += 1;
                self.obs.emit(self.clock.now(), || Event::NetDropped {
                    kind: msg.obs_kind(),
                });
                continue;
            }
            if self.rng.random::<f64>() < self.cfg.reorder && self.held.is_none() {
                self.stats.reordered += 1;
                self.obs.emit(self.clock.now(), || Event::NetReordered {
                    kind: msg.obs_kind(),
                });
                self.held = Some(msg);
                continue;
            }
            if self.rng.random::<f64>() < self.cfg.duplicate {
                self.stats.duplicated += 1;
                self.obs.emit(self.clock.now(), || Event::NetDuplicated {
                    kind: msg.obs_kind(),
                });
                self.pending_dup = Some(msg.clone());
            }
            // A message passing through releases any held one right after.
            if let Some(h) = self.held.take() {
                // Deliver current now, held next (that's the swap).
                self.pending_dup = match self.pending_dup.take() {
                    // Extremely unlikely both: chain them, dup after held.
                    Some(d) => {
                        self.stats.delivered += 1;
                        self.held = Some(d);
                        Some(h)
                    }
                    None => Some(h),
                };
            }
            self.stats.delivered += 1;
            return Ok(Some(msg));
        }
    }
}

/// The default `recv_timeout(ZERO)` path runs the whole fault pipeline
/// without parking (a zero deadline drains only ready datagrams and
/// flushes any held/reordered message on exhaustion), so chaos decorators
/// compose transparently under the multiplexer's poll loop.
impl<T: Transport> crate::poll::PollTransport for FaultyTransport<T> {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem::MemHub;

    const TICK: Duration = Duration::from_millis(200);

    fn fins(n: u32) -> Vec<Message> {
        (0..n).map(|s| Message::Fin { session: s }).collect()
    }

    #[test]
    fn no_faults_is_transparent() {
        let hub = MemHub::new();
        let mut tx = hub.join();
        let mut rx = FaultyTransport::new(hub.join(), FaultConfig::none(), 1);
        for m in fins(10) {
            tx.send(&m).unwrap();
        }
        for m in fins(10) {
            assert_eq!(rx.recv_timeout(TICK).unwrap(), Some(m));
        }
        assert_eq!(rx.stats().dropped, 0);
        assert_eq!(rx.stats().delivered, 10);
    }

    #[test]
    fn drop_rate_approximates_p() {
        let hub = MemHub::new();
        let mut tx = hub.join();
        let mut rx = FaultyTransport::new(hub.join(), FaultConfig::drop_only(0.3), 42);
        let n = 5000;
        for m in fins(n) {
            tx.send(&m).unwrap();
        }
        let mut received = 0;
        while rx
            .recv_timeout(Duration::from_millis(20))
            .unwrap()
            .is_some()
        {
            received += 1;
        }
        let rate = 1.0 - received as f64 / n as f64;
        assert!((rate - 0.3).abs() < 0.03, "drop rate {rate}");
        assert_eq!(rx.stats().dropped + rx.stats().delivered, n as u64);
    }

    #[test]
    fn duplicates_delivered_back_to_back() {
        let hub = MemHub::new();
        let mut tx = hub.join();
        let cfg = FaultConfig {
            duplicate: 1.0,
            ..FaultConfig::none()
        };
        let mut rx = FaultyTransport::new(hub.join(), cfg, 7);
        tx.send(&Message::Fin { session: 9 }).unwrap();
        assert_eq!(
            rx.recv_timeout(TICK).unwrap(),
            Some(Message::Fin { session: 9 })
        );
        assert_eq!(
            rx.recv_timeout(TICK).unwrap(),
            Some(Message::Fin { session: 9 })
        );
        assert_eq!(rx.stats().duplicated, 1);
    }

    #[test]
    fn reorder_swaps_adjacent() {
        let hub = MemHub::new();
        let mut tx = hub.join();
        // Reorder deterministically: first message always held.
        let cfg = FaultConfig {
            reorder: 1.0,
            ..FaultConfig::none()
        };
        let mut rx = FaultyTransport::new(hub.join(), cfg, 3);
        tx.send(&Message::Fin { session: 0 }).unwrap();
        tx.send(&Message::Fin { session: 1 }).unwrap();
        // With reorder=1.0, message 0 is held; message 1 cannot be held
        // (slot occupied) so it is delivered, then 0 follows.
        assert_eq!(
            rx.recv_timeout(TICK).unwrap(),
            Some(Message::Fin { session: 1 })
        );
        assert_eq!(
            rx.recv_timeout(TICK).unwrap(),
            Some(Message::Fin { session: 0 })
        );
    }

    #[test]
    fn held_message_flushed_on_timeout() {
        let hub = MemHub::new();
        let mut tx = hub.join();
        let cfg = FaultConfig {
            reorder: 1.0,
            ..FaultConfig::none()
        };
        let mut rx = FaultyTransport::new(hub.join(), cfg, 3);
        tx.send(&Message::Fin { session: 5 }).unwrap();
        // Held on first recv attempt... flushed by the timeout path.
        let got = rx.recv_timeout(Duration::from_millis(30)).unwrap();
        assert_eq!(got, Some(Message::Fin { session: 5 }));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn invalid_probability_rejected() {
        let hub = MemHub::new();
        let cfg = FaultConfig {
            drop: 1.2,
            ..FaultConfig::none()
        };
        let _ = FaultyTransport::new(hub.join(), cfg, 0);
    }

    #[test]
    #[should_panic(expected = "malformed")]
    fn inverted_blackout_window_rejected() {
        let hub = MemHub::new();
        let cfg = FaultConfig {
            blackout: Some((2.0, 1.0)),
            ..FaultConfig::none()
        };
        let _ = FaultyTransport::new(hub.join(), cfg, 0);
    }

    #[test]
    fn corruption_surfaces_recoverable_error() {
        let hub = MemHub::new();
        let mut tx = hub.join();
        let cfg = FaultConfig {
            corrupt: 1.0,
            ..FaultConfig::none()
        };
        let mut rx = FaultyTransport::new(hub.join(), cfg, 11);
        for _ in 0..50 {
            tx.send(&Message::Done {
                session: 1,
                receiver: 2,
            })
            .unwrap();
            match rx.recv_timeout(TICK) {
                Err(e) => assert!(e.is_recoverable(), "corruption must be recoverable: {e}"),
                other => panic!("expected corruption error, got {other:?}"),
            }
        }
        assert_eq!(rx.stats().corrupted, 50);
        assert_eq!(rx.stats().delivered, 0);
    }

    #[test]
    fn truncation_surfaces_recoverable_error() {
        let hub = MemHub::new();
        let mut tx = hub.join();
        let cfg = FaultConfig {
            truncate: 1.0,
            ..FaultConfig::none()
        };
        let mut rx = FaultyTransport::new(hub.join(), cfg, 13);
        for _ in 0..50 {
            tx.send(&Message::Poll {
                session: 1,
                group: 0,
                sent: 8,
                round: 1,
            })
            .unwrap();
            match rx.recv_timeout(TICK) {
                Err(e) => assert!(e.is_recoverable(), "truncation must be recoverable: {e}"),
                other => panic!("expected truncation error, got {other:?}"),
            }
        }
        assert_eq!(rx.stats().truncated, 50);
    }

    #[test]
    fn garbage_precedes_real_message() {
        let hub = MemHub::new();
        let mut tx = hub.join();
        let cfg = FaultConfig {
            garbage: 1.0,
            ..FaultConfig::none()
        };
        let mut rx = FaultyTransport::new(hub.join(), cfg, 17);
        tx.send(&Message::Fin { session: 8 }).unwrap();
        // First receive: the garbage datagram's decode error.
        match rx.recv_timeout(TICK) {
            Err(e) => assert!(e.is_recoverable(), "garbage must be recoverable: {e}"),
            other => panic!("expected garbage error, got {other:?}"),
        }
        // Second receive: the real message, unharmed.
        assert_eq!(
            rx.recv_timeout(TICK).unwrap(),
            Some(Message::Fin { session: 8 })
        );
        assert_eq!(rx.stats().garbage_injected, 1);
        assert_eq!(rx.stats().delivered, 1);
    }

    #[test]
    fn blackout_swallows_both_directions() {
        let hub = MemHub::new();
        let mut tx = hub.join();
        let mut other = hub.join();
        // Window comfortably covering the whole test run.
        let cfg = FaultConfig {
            blackout: Some((0.0, 30.0)),
            ..FaultConfig::none()
        };
        let mut rx = FaultyTransport::new(hub.join(), cfg, 19);
        // Receive path: everything from tx vanishes at the faulty
        // endpoint (the unwrapped endpoint still sees it).
        tx.send(&Message::Fin { session: 1 }).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_millis(50)).unwrap(), None);
        assert_eq!(
            other.recv_timeout(TICK).unwrap(),
            Some(Message::Fin { session: 1 })
        );
        // Send path: nothing reaches the other endpoint.
        rx.send(&Message::Fin { session: 2 }).unwrap();
        assert_eq!(other.recv_timeout(Duration::from_millis(50)).unwrap(), None);
        assert_eq!(rx.stats().blackout_recv, 1);
        assert_eq!(rx.stats().blackout_send, 1);
        assert_eq!(rx.stats().blackout_total(), 2);
    }

    #[test]
    fn blackout_window_expires() {
        let hub = MemHub::new();
        let mut tx = hub.join();
        // A window entirely in the past by the time we receive.
        let cfg = FaultConfig {
            blackout: Some((0.0, 0.05)),
            ..FaultConfig::none()
        };
        let mut rx = FaultyTransport::new(hub.join(), cfg, 23);
        std::thread::sleep(Duration::from_millis(80));
        tx.send(&Message::Fin { session: 3 }).unwrap();
        assert_eq!(
            rx.recv_timeout(TICK).unwrap(),
            Some(Message::Fin { session: 3 })
        );
        assert_eq!(rx.stats().blackout_recv, 0);
    }

    #[test]
    fn send_drop_swallows_feedback() {
        let hub = MemHub::new();
        let mut other = hub.join();
        let cfg = FaultConfig {
            send_drop: 1.0,
            ..FaultConfig::none()
        };
        let mut rx = FaultyTransport::new(hub.join(), cfg, 29);
        rx.send(&Message::Nak {
            session: 1,
            group: 0,
            needed: 2,
            round: 1,
        })
        .unwrap();
        assert_eq!(other.recv_timeout(Duration::from_millis(50)).unwrap(), None);
        assert_eq!(rx.stats().send_dropped, 1);
    }

    #[test]
    fn byte_faults_never_misparse() {
        // Across many seeds, a corrupted/truncated datagram must never
        // decode into a valid Message: the error path is the only path.
        let hub = MemHub::new();
        let mut tx = hub.join();
        let cfg = FaultConfig {
            corrupt: 0.5,
            truncate: 0.5,
            ..FaultConfig::none()
        };
        let mut rx = FaultyTransport::new(hub.join(), cfg, 31);
        let payload: Vec<u8> = (0..256).map(|i| (i % 251) as u8).collect();
        let sent = Message::Packet {
            session: 1,
            group: 0,
            index: 1,
            k: 4,
            n: 8,
            payload: payload.into(),
        };
        for _ in 0..200 {
            tx.send(&sent).unwrap();
            match rx.recv_timeout(TICK) {
                Ok(Some(m)) => assert_eq!(m, sent, "delivered message must be intact"),
                Ok(None) => panic!("message lost without a counted fault"),
                Err(e) => assert!(e.is_recoverable()),
            }
        }
        let s = rx.stats();
        assert_eq!(s.byte_faults() + s.delivered, 200);
    }
}
