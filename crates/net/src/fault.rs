//! Fault injection: a transport decorator that perturbs the *receive*
//! path (multicast loss happens per receiver, so injecting at the receiver
//! models independent loss; wrap several endpoints of one `MemHub` with
//! different seeds for a whole lossy population).

use std::time::Duration;

use pm_obs::{Event, Obs, Stopwatch};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use crate::transport::{NetError, Transport};
use crate::wire::Message;

/// Probabilities of each fault, applied per received datagram.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultConfig {
    /// Drop the datagram.
    pub drop: f64,
    /// Deliver the datagram twice.
    pub duplicate: f64,
    /// Hold the datagram back and deliver it after the next one (a
    /// one-packet reorder).
    pub reorder: f64,
}

impl FaultConfig {
    /// No faults.
    pub fn none() -> Self {
        FaultConfig {
            drop: 0.0,
            duplicate: 0.0,
            reorder: 0.0,
        }
    }

    /// Drop-only faults with probability `p` — the paper's loss model.
    ///
    /// # Panics
    /// Panics unless `p` is a probability.
    pub fn drop_only(p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "p must be a probability");
        FaultConfig {
            drop: p,
            duplicate: 0.0,
            reorder: 0.0,
        }
    }

    fn validate(&self) {
        for (name, v) in [
            ("drop", self.drop),
            ("duplicate", self.duplicate),
            ("reorder", self.reorder),
        ] {
            assert!(
                (0.0..=1.0).contains(&v),
                "{name} probability {v} out of range"
            );
        }
    }
}

/// Counters of injected faults (for assertions and reporting).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Datagrams dropped.
    pub dropped: u64,
    /// Datagrams duplicated.
    pub duplicated: u64,
    /// Datagrams reordered.
    pub reordered: u64,
    /// Datagrams delivered to the caller.
    pub delivered: u64,
}

/// A [`Transport`] decorator injecting receive-side faults.
pub struct FaultyTransport<T> {
    inner: T,
    cfg: FaultConfig,
    rng: ChaCha8Rng,
    /// Duplicate copy awaiting delivery.
    pending_dup: Option<Message>,
    /// Reordered message awaiting the one that overtakes it.
    held: Option<Message>,
    stats: FaultStats,
    obs: Obs,
    clock: Stopwatch,
}

impl<T: Transport> FaultyTransport<T> {
    /// Wrap `inner` with the given fault profile.
    ///
    /// # Panics
    /// Panics on out-of-range probabilities.
    pub fn new(inner: T, cfg: FaultConfig, seed: u64) -> Self {
        cfg.validate();
        FaultyTransport {
            inner,
            cfg,
            rng: ChaCha8Rng::seed_from_u64(seed),
            pending_dup: None,
            held: None,
            stats: FaultStats::default(),
            obs: Obs::null(),
            clock: Stopwatch::start(),
        }
    }

    /// Emit `net_dropped`/`net_duplicated`/`net_reordered` events
    /// (timestamped from transport creation) to `obs`.
    pub fn with_obs(mut self, obs: Obs) -> Self {
        self.obs = obs;
        self
    }

    /// Fault counters so far.
    pub fn stats(&self) -> FaultStats {
        self.stats
    }

    /// Access the wrapped transport.
    pub fn inner_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: Transport> Transport for FaultyTransport<T> {
    fn send(&mut self, msg: &Message) -> Result<(), NetError> {
        // Faults are receive-side only; sends pass through untouched.
        self.inner.send(msg)
    }

    fn recv_timeout(&mut self, timeout: Duration) -> Result<Option<Message>, NetError> {
        if let Some(dup) = self.pending_dup.take() {
            self.stats.delivered += 1;
            return Ok(Some(dup));
        }
        // pm-audit: allow(determinism-time): blocking-IO recv deadline on a real transport, wall-clock by design
        let deadline = std::time::Instant::now() + timeout;
        loop {
            // pm-audit: allow(determinism-time): blocking-IO recv deadline on a real transport, wall-clock by design
            let remaining = deadline.saturating_duration_since(std::time::Instant::now());
            let msg = match self.inner.recv_timeout(remaining)? {
                Some(m) => m,
                None => {
                    // Timed out: flush a held (reordered) message if any
                    // rather than losing it forever.
                    if let Some(h) = self.held.take() {
                        self.stats.delivered += 1;
                        return Ok(Some(h));
                    }
                    return Ok(None);
                }
            };
            if self.rng.random::<f64>() < self.cfg.drop {
                self.stats.dropped += 1;
                self.obs.emit(self.clock.now(), || Event::NetDropped {
                    kind: msg.obs_kind(),
                });
                continue;
            }
            if self.rng.random::<f64>() < self.cfg.reorder && self.held.is_none() {
                self.stats.reordered += 1;
                self.obs.emit(self.clock.now(), || Event::NetReordered {
                    kind: msg.obs_kind(),
                });
                self.held = Some(msg);
                continue;
            }
            if self.rng.random::<f64>() < self.cfg.duplicate {
                self.stats.duplicated += 1;
                self.obs.emit(self.clock.now(), || Event::NetDuplicated {
                    kind: msg.obs_kind(),
                });
                self.pending_dup = Some(msg.clone());
            }
            // A message passing through releases any held one right after.
            if let Some(h) = self.held.take() {
                // Deliver current now, held next (that's the swap).
                self.pending_dup = match self.pending_dup.take() {
                    // Extremely unlikely both: chain them, dup after held.
                    Some(d) => {
                        self.stats.delivered += 1;
                        self.held = Some(d);
                        Some(h)
                    }
                    None => Some(h),
                };
            }
            self.stats.delivered += 1;
            return Ok(Some(msg));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem::MemHub;

    const TICK: Duration = Duration::from_millis(200);

    fn fins(n: u32) -> Vec<Message> {
        (0..n).map(|s| Message::Fin { session: s }).collect()
    }

    #[test]
    fn no_faults_is_transparent() {
        let hub = MemHub::new();
        let mut tx = hub.join();
        let mut rx = FaultyTransport::new(hub.join(), FaultConfig::none(), 1);
        for m in fins(10) {
            tx.send(&m).unwrap();
        }
        for m in fins(10) {
            assert_eq!(rx.recv_timeout(TICK).unwrap(), Some(m));
        }
        assert_eq!(rx.stats().dropped, 0);
        assert_eq!(rx.stats().delivered, 10);
    }

    #[test]
    fn drop_rate_approximates_p() {
        let hub = MemHub::new();
        let mut tx = hub.join();
        let mut rx = FaultyTransport::new(hub.join(), FaultConfig::drop_only(0.3), 42);
        let n = 5000;
        for m in fins(n) {
            tx.send(&m).unwrap();
        }
        let mut received = 0;
        while rx
            .recv_timeout(Duration::from_millis(20))
            .unwrap()
            .is_some()
        {
            received += 1;
        }
        let rate = 1.0 - received as f64 / n as f64;
        assert!((rate - 0.3).abs() < 0.03, "drop rate {rate}");
        assert_eq!(rx.stats().dropped + rx.stats().delivered, n as u64);
    }

    #[test]
    fn duplicates_delivered_back_to_back() {
        let hub = MemHub::new();
        let mut tx = hub.join();
        let cfg = FaultConfig {
            drop: 0.0,
            duplicate: 1.0,
            reorder: 0.0,
        };
        let mut rx = FaultyTransport::new(hub.join(), cfg, 7);
        tx.send(&Message::Fin { session: 9 }).unwrap();
        assert_eq!(
            rx.recv_timeout(TICK).unwrap(),
            Some(Message::Fin { session: 9 })
        );
        assert_eq!(
            rx.recv_timeout(TICK).unwrap(),
            Some(Message::Fin { session: 9 })
        );
        assert_eq!(rx.stats().duplicated, 1);
    }

    #[test]
    fn reorder_swaps_adjacent() {
        let hub = MemHub::new();
        let mut tx = hub.join();
        // Reorder deterministically: first message always held.
        let cfg = FaultConfig {
            drop: 0.0,
            duplicate: 0.0,
            reorder: 1.0,
        };
        let mut rx = FaultyTransport::new(hub.join(), cfg, 3);
        tx.send(&Message::Fin { session: 0 }).unwrap();
        tx.send(&Message::Fin { session: 1 }).unwrap();
        // With reorder=1.0, message 0 is held; message 1 cannot be held
        // (slot occupied) so it is delivered, then 0 follows.
        assert_eq!(
            rx.recv_timeout(TICK).unwrap(),
            Some(Message::Fin { session: 1 })
        );
        assert_eq!(
            rx.recv_timeout(TICK).unwrap(),
            Some(Message::Fin { session: 0 })
        );
    }

    #[test]
    fn held_message_flushed_on_timeout() {
        let hub = MemHub::new();
        let mut tx = hub.join();
        let cfg = FaultConfig {
            drop: 0.0,
            duplicate: 0.0,
            reorder: 1.0,
        };
        let mut rx = FaultyTransport::new(hub.join(), cfg, 3);
        tx.send(&Message::Fin { session: 5 }).unwrap();
        // Held on first recv attempt... flushed by the timeout path.
        let got = rx.recv_timeout(Duration::from_millis(30)).unwrap();
        assert_eq!(got, Some(Message::Fin { session: 5 }));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn invalid_probability_rejected() {
        let hub = MemHub::new();
        let cfg = FaultConfig {
            drop: 1.2,
            duplicate: 0.0,
            reorder: 0.0,
        };
        let _ = FaultyTransport::new(hub.join(), cfg, 0);
    }
}
