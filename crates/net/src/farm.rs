//! Shared-socket UDP farm transport: one descriptor, N sessions.
//!
//! The [`crate::udp::UdpHub`] gives every endpoint the whole multicast
//! feed and lets the protocol machines discard what is not theirs — fine
//! for a handful of sessions, quadratic in traffic for a farm. A
//! [`FarmHub`] instead owns **one non-blocking UDP socket** and
//! demultiplexes arriving datagrams by the wire-v2 session id (plus the
//! message's direction: data-plane kinds go to the session's receiver
//! half, feedback kinds to its sender half). One `Mux` can therefore
//! drive hundreds of sessions over a single descriptor, which is the
//! farm mode ROADMAP item 3 asks for.
//!
//! Datagrams that demux to **no registered session** — late packets from
//! a finished or shed session, strangers on the port — are counted and
//! dropped, never buffered: a shed session's state cannot be resurrected
//! by its own stragglers. Per-session queues are bounded
//! ([`FARM_QUEUE_CAP`]); overflow behaves like any other UDP loss (drop
//! newest, count), so farm memory stays proportional to the number of
//! *live* sessions no matter how hostile the port is.
//!
//! There is no reader thread: whichever endpoint polls first drains the
//! socket (budget-bounded) into everyone's queues, which is exactly the
//! event-driven mux's sweep pattern.

use std::collections::{BTreeMap, VecDeque};
use std::net::{Ipv4Addr, SocketAddr, SocketAddrV4, UdpSocket};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;
use pm_obs::{Event, Obs, Stopwatch};

use crate::poll::PollTransport;
use crate::transport::{classify_recv_err, NetError, RecvClass, Transport};
use crate::wire::Message;

/// Maximum datagram we ever read (mirrors [`crate::udp`]).
const RECV_BUF: usize = 65_536;
/// Socket drains per `poll_recv` call: bounds the work one endpoint's
/// poll can do on everyone's behalf before returning to the sweep.
const DRAIN_BUDGET: usize = 256;
/// Bound on one session half's pending-datagram queue. Overflow is
/// dropped-and-counted exactly like kernel-buffer loss would be.
pub const FARM_QUEUE_CAP: usize = 8_192;

/// Which half of a session an endpoint serves. The demux routes
/// data-plane kinds (packets, polls, announce, FIN, FEC frames) to the
/// `Receiver` half and feedback kinds (NAKs, DONE) to the `Sender` half,
/// so the two halves of one session can share the socket without
/// stealing each other's traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum FarmRole {
    /// The session's sending half (receives feedback).
    Sender,
    /// A session's receiving half (receives the data plane).
    Receiver,
}

/// Which half of session `s` a message belongs to.
fn dest_role(msg: &Message) -> FarmRole {
    match msg {
        Message::Nak { .. } | Message::NakPacket { .. } | Message::Done { .. } => FarmRole::Sender,
        Message::Packet { .. }
        | Message::Poll { .. }
        | Message::Announce { .. }
        | Message::Fin { .. }
        | Message::FecFrame { .. } => FarmRole::Receiver,
    }
}

/// `dest_role` from a raw wire type byte (used to route datagrams whose
/// checksum failed but whose header is intact).
fn dest_role_of_type(ty: u8) -> FarmRole {
    // TYPE_NAK = 3, TYPE_NAK_PACKET = 4, TYPE_DONE = 6 (see wire.rs).
    match ty {
        3 | 4 | 6 => FarmRole::Sender,
        _ => FarmRole::Receiver,
    }
}

/// Counters a farm maintains about traffic it refused to deliver.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FarmStats {
    /// Datagrams that demuxed to no registered `(session, role)` —
    /// strangers, or stragglers of finished/shed sessions.
    pub unknown_session: u64,
    /// Datagrams dropped because a session half's queue was full.
    pub queue_overflow: u64,
    /// Datagrams that were not ours at all (bad magic / truncated
    /// header); skipped silently, tallied here for diagnostics.
    pub foreign: u64,
}

struct FarmCore {
    socket: UdpSocket,
    peer: SocketAddr,
    queues: BTreeMap<(u32, FarmRole), VecDeque<Result<Message, NetError>>>,
    stats: FarmStats,
    /// First fatal socket error; once set, every endpoint's poll fails.
    fatal: Option<std::io::ErrorKind>,
    buf: Vec<u8>,
    obs: Obs,
    clock: Stopwatch,
}

impl FarmCore {
    /// Drain up to `DRAIN_BUDGET` datagrams from the socket into the
    /// per-session queues. Returns the first fatal error, if any.
    fn drain_socket(&mut self) -> Result<(), NetError> {
        if let Some(kind) = self.fatal {
            return Err(NetError::Io(kind.into()));
        }
        for _ in 0..DRAIN_BUDGET {
            match self.socket.recv_from(&mut self.buf) {
                Ok((len, _src)) => {
                    let raw = bytes::Bytes::copy_from_slice(&self.buf[..len]);
                    self.route(raw);
                }
                Err(e) => match classify_recv_err(&e) {
                    RecvClass::WouldBlock => break,
                    RecvClass::Transient => continue,
                    RecvClass::Fatal => {
                        self.fatal = Some(e.kind());
                        return Err(NetError::Io(e));
                    }
                },
            }
        }
        Ok(())
    }

    /// Demultiplex one raw datagram into a session queue, the unknown
    /// counter, or the foreign tally.
    fn route(&mut self, raw: bytes::Bytes) {
        // Header: magic u16 | version u8 | type u8 | cksum u32 | session u32.
        let header = |raw: &bytes::Bytes| -> Option<(u32, FarmRole)> {
            if raw.len() < 12 {
                return None;
            }
            let session = u32::from_be_bytes([raw[8], raw[9], raw[10], raw[11]]);
            Some((session, dest_role_of_type(raw[3])))
        };
        match Message::decode(raw.clone()) {
            Ok(msg) => {
                let key = (msg.session(), dest_role(&msg));
                self.deliver(key, Ok(msg));
            }
            // Ours but damaged in flight: the header's session claim is
            // the best routing information there is. The owning session's
            // resilience policy counts it; with no owner it is an unknown
            // drop like any other stray.
            Err(e @ NetError::Corrupt(_)) => match header(&raw) {
                Some(key) => self.deliver(key, Err(e)),
                None => self.count_unknown(0),
            },
            // Not our wire format at all.
            Err(_) => self.stats.foreign += 1,
        }
    }

    fn deliver(&mut self, key: (u32, FarmRole), item: Result<Message, NetError>) {
        match self.queues.get_mut(&key) {
            Some(q) => {
                if q.len() >= FARM_QUEUE_CAP {
                    self.stats.queue_overflow += 1;
                } else {
                    q.push_back(item);
                }
            }
            None => self.count_unknown(key.0),
        }
    }

    fn count_unknown(&mut self, session: u32) {
        self.stats.unknown_session += 1;
        self.obs
            .emit(self.clock.now(), || Event::FarmUnknownDrop { session });
    }
}

/// One non-blocking UDP socket shared by every session of a farm, with
/// wire-session-id demultiplexing. See the module docs.
pub struct FarmHub {
    core: Arc<Mutex<FarmCore>>,
}

impl FarmHub {
    /// Bind a non-blocking socket on `addr` (port 0 for ephemeral). Until
    /// [`FarmHub::set_peer`] is called, endpoints send to the socket's
    /// own address — the loopback-farm topology where every session's
    /// both halves share the descriptor.
    ///
    /// # Errors
    /// Propagates socket errors (bind, local-address lookup).
    pub fn bind(addr: SocketAddrV4) -> Result<Self, NetError> {
        let socket = UdpSocket::bind(addr)?;
        socket.set_nonblocking(true)?;
        let peer = socket.local_addr()?;
        // An unspecified bind address is not a routable destination;
        // steer self-sends through loopback instead.
        let peer = match peer {
            SocketAddr::V4(v4) if v4.ip().is_unspecified() => {
                SocketAddr::V4(SocketAddrV4::new(Ipv4Addr::LOCALHOST, v4.port()))
            }
            other => other,
        };
        Ok(FarmHub {
            core: Arc::new(Mutex::new(FarmCore {
                socket,
                peer,
                queues: BTreeMap::new(),
                stats: FarmStats::default(),
                fatal: None,
                buf: vec![0u8; RECV_BUF],
                obs: Obs::null(),
                clock: Stopwatch::start(),
            })),
        })
    }

    /// A loopback farm on an ephemeral port.
    ///
    /// # Errors
    /// Propagates socket errors.
    pub fn loopback() -> Result<Self, NetError> {
        Self::bind(SocketAddrV4::new(Ipv4Addr::LOCALHOST, 0))
    }

    /// Where endpoint sends go (defaults to the socket's own address).
    pub fn set_peer(&self, peer: SocketAddr) {
        self.core.lock().peer = peer;
    }

    /// The socket's local address.
    ///
    /// # Errors
    /// Propagates the socket's local-address lookup failure.
    pub fn local_addr(&self) -> Result<SocketAddr, NetError> {
        Ok(self.core.lock().socket.local_addr()?)
    }

    /// Emit `farm_unknown_drop` events to `obs`.
    pub fn with_obs(self, obs: Obs) -> Self {
        self.core.lock().obs = obs;
        self
    }

    /// Register the `role` half of `session` and return its endpoint.
    /// Datagrams for the pair demux to it until the endpoint is dropped;
    /// after that they fall into the unknown-session counter.
    ///
    /// # Errors
    /// `NetError::Io(AlreadyExists)` if that half is already registered —
    /// two live transports demuxing the same key would split its traffic
    /// unpredictably.
    pub fn endpoint(&self, session: u32, role: FarmRole) -> Result<FarmEndpoint, NetError> {
        let mut core = self.core.lock();
        let key = (session, role);
        if core.queues.contains_key(&key) {
            return Err(NetError::Io(std::io::Error::new(
                std::io::ErrorKind::AlreadyExists,
                format!("farm session {session} {role:?} half already registered"),
            )));
        }
        core.queues.insert(key, VecDeque::new());
        Ok(FarmEndpoint {
            core: self.core.clone(),
            key,
        })
    }

    /// Refused-traffic counters (unknown-session, overflow, foreign).
    pub fn stats(&self) -> FarmStats {
        self.core.lock().stats
    }

    /// Session halves currently registered.
    pub fn len(&self) -> usize {
        self.core.lock().queues.len()
    }

    /// True when no session half is registered.
    pub fn is_empty(&self) -> bool {
        self.core.lock().queues.is_empty()
    }

    /// Raw send of `bytes` to the hub's peer, bypassing encode — lets
    /// tests and drills inject damaged or foreign datagrams on the wire.
    ///
    /// # Errors
    /// Propagates socket send errors.
    pub fn inject_raw(&self, bytes: &[u8]) -> Result<(), NetError> {
        let core = self.core.lock();
        core.socket.send_to(bytes, core.peer)?;
        Ok(())
    }
}

/// One `(session, role)` half of a [`FarmHub`]. Sends go out the shared
/// socket to the hub's peer address; receives are the datagrams the hub
/// demultiplexed to this half. Dropping the endpoint deregisters the
/// half: later datagrams for it are counted-and-dropped.
pub struct FarmEndpoint {
    core: Arc<Mutex<FarmCore>>,
    key: (u32, FarmRole),
}

impl FarmEndpoint {
    /// The session id this endpoint demuxes.
    pub fn session(&self) -> u32 {
        self.key.0
    }

    /// The session half this endpoint serves.
    pub fn role(&self) -> FarmRole {
        self.key.1
    }
}

impl Drop for FarmEndpoint {
    fn drop(&mut self) {
        self.core.lock().queues.remove(&self.key);
    }
}

impl Transport for FarmEndpoint {
    fn send(&mut self, msg: &Message) -> Result<(), NetError> {
        let core = self.core.lock();
        let encoded = msg.encode();
        match core.socket.send_to(&encoded, core.peer) {
            Ok(_) => Ok(()),
            // Transient pushback (full socket buffer) surfaces as an I/O
            // error; the drivers' retry-with-backoff machinery owns it.
            Err(e) => Err(NetError::Io(e)),
        }
    }

    fn recv_timeout(&mut self, timeout: Duration) -> Result<Option<Message>, NetError> {
        // pm-audit: allow(determinism-time): blocking recv deadline on a real transport, wall-clock by design
        let deadline = std::time::Instant::now() + timeout;
        loop {
            match self.poll_recv()? {
                Some(msg) => return Ok(Some(msg)),
                None => {
                    // pm-audit: allow(determinism-time): blocking recv deadline on a real transport, wall-clock by design
                    if std::time::Instant::now() >= deadline {
                        return Ok(None);
                    }
                    std::thread::sleep(Duration::from_micros(200));
                }
            }
        }
    }
}

impl PollTransport for FarmEndpoint {
    fn poll_recv(&mut self) -> Result<Option<Message>, NetError> {
        let mut core = self.core.lock();
        // Serve from the queue first: the socket drain below may park a
        // fatal error that must not eat already-demuxed datagrams.
        if let Some(item) = core.queues.get_mut(&self.key).and_then(VecDeque::pop_front) {
            return item.map(Some);
        }
        core.drain_socket()?;
        match core.queues.get_mut(&self.key).and_then(VecDeque::pop_front) {
            Some(item) => item.map(Some),
            None => Ok(None),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hub() -> FarmHub {
        FarmHub::loopback().expect("loopback farm socket")
    }

    fn wait_recv(ep: &mut FarmEndpoint) -> Option<Message> {
        ep.recv_timeout(Duration::from_secs(2)).expect("recv ok")
    }

    /// Poll `ep` (expecting nothing for it) until `pred` holds or ~2s.
    fn drain_until(ep: &mut FarmEndpoint, mut pred: impl FnMut() -> bool) -> bool {
        // pm-audit: allow(determinism-time): test polls a real socket
        let deadline = std::time::Instant::now() + Duration::from_secs(2);
        while !pred() {
            assert_eq!(ep.poll_recv().expect("poll ok"), None);
            if std::time::Instant::now() >= deadline {
                return false;
            }
            std::thread::sleep(Duration::from_micros(200));
        }
        true
    }

    #[test]
    fn demuxes_by_session_and_direction() {
        let hub = hub();
        let mut s1 = hub.endpoint(1, FarmRole::Sender).unwrap();
        let mut r1 = hub.endpoint(1, FarmRole::Receiver).unwrap();
        let mut r2 = hub.endpoint(2, FarmRole::Receiver).unwrap();

        // Session 1's sender transmits a control message: only session
        // 1's receiver half sees it.
        s1.send(&Message::Fin { session: 1 }).unwrap();
        assert_eq!(wait_recv(&mut r1), Some(Message::Fin { session: 1 }));
        assert_eq!(r2.poll_recv().unwrap(), None);

        // Session 1's receiver NAKs: it routes to the sender half, not
        // back to the receiver.
        let nak = Message::Nak {
            session: 1,
            group: 0,
            needed: 2,
            round: 1,
        };
        r1.send(&nak).unwrap();
        assert_eq!(wait_recv(&mut s1), Some(nak));
        assert_eq!(r1.poll_recv().unwrap(), None);
        assert_eq!(hub.stats().unknown_session, 0);
    }

    #[test]
    fn unknown_session_datagrams_are_counted_and_dropped() {
        let hub = hub();
        let mut r1 = hub.endpoint(1, FarmRole::Receiver).unwrap();
        r1.send(&Message::Fin { session: 99 }).unwrap();
        assert!(
            drain_until(&mut r1, || hub.stats().unknown_session == 1),
            "stray for unregistered session 99 must be counted"
        );
    }

    #[test]
    fn dropped_endpoint_turns_its_traffic_into_unknown_drops() {
        let hub = hub();
        let mut r1 = hub.endpoint(1, FarmRole::Receiver).unwrap();
        let mut s1 = hub.endpoint(1, FarmRole::Sender).unwrap();
        s1.send(&Message::Fin { session: 1 }).unwrap();
        assert_eq!(wait_recv(&mut r1), Some(Message::Fin { session: 1 }));
        drop(r1);
        // Late traffic for the retired half must not resurrect it.
        s1.send(&Message::Fin { session: 1 }).unwrap();
        assert!(
            drain_until(&mut s1, || hub.stats().unknown_session == 1),
            "late datagram for retired half must be counted"
        );
        // Re-registering the half starts clean.
        let mut r1b = hub.endpoint(1, FarmRole::Receiver).unwrap();
        assert_eq!(r1b.poll_recv().unwrap(), None, "no resurrected backlog");
    }

    #[test]
    fn corrupt_datagrams_route_to_their_claimed_session() {
        let hub = hub();
        let mut r1 = hub.endpoint(1, FarmRole::Receiver).unwrap();
        let mut raw = Message::Fin { session: 1 }.encode().to_vec();
        raw[5] ^= 0xFF; // damage the stored checksum; session claim stays 1
        hub.inject_raw(&raw).unwrap();
        // pm-audit: allow(determinism-time): test polls a real socket
        let deadline = std::time::Instant::now() + Duration::from_secs(2);
        loop {
            match r1.poll_recv() {
                Err(e) => {
                    assert!(e.is_recoverable(), "corrupt is recoverable, got {e}");
                    break;
                }
                Ok(None) if std::time::Instant::now() < deadline => {
                    std::thread::sleep(Duration::from_micros(200));
                }
                other => panic!("expected Corrupt error, got {other:?}"),
            }
        }
        assert_eq!(hub.stats().unknown_session, 0);
    }

    #[test]
    fn duplicate_registration_is_rejected() {
        let hub = hub();
        let _r = hub.endpoint(4, FarmRole::Receiver).unwrap();
        match hub.endpoint(4, FarmRole::Receiver) {
            Err(NetError::Io(e)) => assert_eq!(e.kind(), std::io::ErrorKind::AlreadyExists),
            Err(other) => panic!("expected AlreadyExists, got {other:?}"),
            Ok(_) => panic!("duplicate registration must be rejected"),
        }
        // The other half is free.
        assert!(hub.endpoint(4, FarmRole::Sender).is_ok());
    }

    #[test]
    fn foreign_datagrams_are_skipped_silently() {
        let hub = hub();
        let mut r1 = hub.endpoint(1, FarmRole::Receiver).unwrap();
        hub.inject_raw(b"\x00\x00not ours").unwrap();
        assert!(
            drain_until(&mut r1, || hub.stats().foreign == 1),
            "foreign datagram must be tallied"
        );
        assert_eq!(hub.stats().unknown_session, 0);
    }
}
