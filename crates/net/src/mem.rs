//! In-process multicast hub — the deterministic test substrate.
//!
//! A [`MemHub`] models one multicast group: every endpoint's `send` is
//! fanned out to every *other* endpoint's queue (no self-delivery, like IP
//! multicast with loopback disabled). Messages are serialized through the
//! real wire codec so the full encode/decode path is exercised.

use std::sync::Arc;
use std::time::Duration;

use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender, TryRecvError};
use parking_lot::Mutex;
use pm_obs::{Event, Obs, Stopwatch};

use crate::transport::{NetError, Transport};
use crate::wire::Message;

/// Shared state: the outbound queues of every endpoint.
#[derive(Default)]
struct HubState {
    sinks: Vec<(usize, Sender<bytes::Bytes>)>,
}

/// An in-process multicast group.
#[derive(Clone, Default)]
pub struct MemHub {
    state: Arc<Mutex<HubState>>,
}

impl MemHub {
    /// New empty group.
    pub fn new() -> Self {
        Self::default()
    }

    /// Join the group, returning a new endpoint.
    pub fn join(&self) -> MemEndpoint {
        static NEXT_ID: std::sync::atomic::AtomicUsize = std::sync::atomic::AtomicUsize::new(0);
        let id = NEXT_ID.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let (tx, rx) = unbounded();
        self.state.lock().sinks.push((id, tx));
        MemEndpoint {
            id,
            hub: self.state.clone(),
            rx,
            obs: Obs::null(),
            clock: Stopwatch::start(),
        }
    }

    /// Number of endpoints currently joined.
    pub fn endpoints(&self) -> usize {
        self.state.lock().sinks.len()
    }
}

/// One endpoint of a [`MemHub`] group.
pub struct MemEndpoint {
    id: usize,
    hub: Arc<Mutex<HubState>>,
    rx: Receiver<bytes::Bytes>,
    obs: Obs,
    clock: Stopwatch,
}

impl MemEndpoint {
    /// Emit `net_sent`/`net_recv` events (timestamped from endpoint
    /// creation) to `obs`.
    pub fn with_obs(mut self, obs: Obs) -> Self {
        self.obs = obs;
        self
    }

    /// Leave the group (subsequent sends by others skip this endpoint).
    /// Dropping the endpoint leaves implicitly.
    pub fn leave(&self) {
        self.hub.lock().sinks.retain(|(id, _)| *id != self.id);
    }

    /// Inject raw datagram bytes into every *other* endpoint's queue,
    /// bypassing the encoder. A chaos/test hook: lets a saboteur place
    /// corrupted or garbage bytes on the wire exactly as a damaged UDP
    /// datagram would arrive.
    pub fn send_raw(&self, raw: bytes::Bytes) {
        let state = self.hub.lock();
        for (id, sink) in &state.sinks {
            if *id == self.id {
                continue; // no self-delivery
            }
            let _ = sink.send(raw.clone());
        }
    }
}

impl Drop for MemEndpoint {
    fn drop(&mut self) {
        self.leave();
    }
}

impl Transport for MemEndpoint {
    fn send(&mut self, msg: &Message) -> Result<(), NetError> {
        self.obs.emit(self.clock.now(), || Event::NetSent {
            kind: msg.obs_kind(),
        });
        let encoded = msg.encode();
        let state = self.hub.lock();
        for (id, sink) in &state.sinks {
            if *id == self.id {
                continue; // no self-delivery
            }
            // A disconnected sink means that endpoint dropped; ignore.
            let _ = sink.send(encoded.clone());
        }
        Ok(())
    }

    fn recv_timeout(&mut self, timeout: Duration) -> Result<Option<Message>, NetError> {
        // pm-audit: allow(determinism-time): blocking-IO recv deadline on a real transport, wall-clock by design
        let deadline = std::time::Instant::now() + timeout;
        loop {
            // pm-audit: allow(determinism-time): blocking-IO recv deadline on a real transport, wall-clock by design
            let remaining = deadline.saturating_duration_since(std::time::Instant::now());
            match self.rx.recv_timeout(remaining) {
                Ok(raw) => match Message::decode(raw) {
                    Ok(msg) => {
                        self.obs.emit(self.clock.now(), || Event::NetRecv {
                            kind: msg.obs_kind(),
                        });
                        return Ok(Some(msg));
                    }
                    // Damaged own-traffic surfaces (recoverable) so the
                    // driver can count and drop it; foreign datagrams
                    // (bad magic/short header) stay a silent skip.
                    Err(e @ NetError::Corrupt(_)) => return Err(e),
                    Err(_) => continue,
                },
                Err(RecvTimeoutError::Timeout) => return Ok(None),
                Err(RecvTimeoutError::Disconnected) => return Err(NetError::Closed),
            }
        }
    }
}

impl crate::poll::PollTransport for MemEndpoint {
    /// Native non-blocking drain: a pure `try_recv`, no wall-clock reads
    /// at all — under the event-driven multiplexer's virtual clock the
    /// in-memory substrate stays fully deterministic.
    fn poll_recv(&mut self) -> Result<Option<Message>, NetError> {
        loop {
            match self.rx.try_recv() {
                Ok(raw) => match Message::decode(raw) {
                    Ok(msg) => {
                        self.obs.emit(self.clock.now(), || Event::NetRecv {
                            kind: msg.obs_kind(),
                        });
                        return Ok(Some(msg));
                    }
                    // Same surface as `recv_timeout`: damaged own-traffic
                    // is recoverable, foreign bytes a silent skip.
                    Err(e @ NetError::Corrupt(_)) => return Err(e),
                    Err(_) => continue,
                },
                Err(TryRecvError::Empty) => return Ok(None),
                Err(TryRecvError::Disconnected) => return Err(NetError::Closed),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    const TICK: Duration = Duration::from_millis(200);

    #[test]
    fn fanout_excludes_sender() {
        let hub = MemHub::new();
        let mut a = hub.join();
        let mut b = hub.join();
        let mut c = hub.join();
        assert_eq!(hub.endpoints(), 3);
        a.send(&Message::Fin { session: 1 }).unwrap();
        assert_eq!(
            b.recv_timeout(TICK).unwrap(),
            Some(Message::Fin { session: 1 })
        );
        assert_eq!(
            c.recv_timeout(TICK).unwrap(),
            Some(Message::Fin { session: 1 })
        );
        assert_eq!(
            a.recv_timeout(Duration::from_millis(10)).unwrap(),
            None,
            "no self-delivery"
        );
    }

    #[test]
    fn timeout_returns_none() {
        let hub = MemHub::new();
        let mut a = hub.join();
        assert_eq!(a.recv_timeout(Duration::from_millis(5)).unwrap(), None);
    }

    #[test]
    fn leave_stops_delivery() {
        let hub = MemHub::new();
        let mut a = hub.join();
        let b = hub.join();
        b.leave();
        assert_eq!(hub.endpoints(), 1);
        a.send(&Message::Fin { session: 2 }).unwrap();
        // a still has nobody to hear from; send worked without error.
        assert_eq!(a.recv_timeout(Duration::from_millis(5)).unwrap(), None);
    }

    #[test]
    fn drop_leaves_implicitly() {
        let hub = MemHub::new();
        {
            let _tmp = hub.join();
            assert_eq!(hub.endpoints(), 1);
        }
        assert_eq!(hub.endpoints(), 0);
    }

    #[test]
    fn messages_preserve_order_per_sender() {
        let hub = MemHub::new();
        let mut a = hub.join();
        let mut b = hub.join();
        for s in 0..20u32 {
            a.send(&Message::Fin { session: s }).unwrap();
        }
        for s in 0..20u32 {
            assert_eq!(
                b.recv_timeout(TICK).unwrap(),
                Some(Message::Fin { session: s })
            );
        }
    }

    #[test]
    fn corrupt_datagram_surfaces_foreign_skipped() {
        let hub = MemHub::new();
        let a = hub.join();
        let mut b = hub.join();
        // Foreign garbage (wrong magic): silently skipped.
        a.send_raw(bytes::Bytes::from_static(b"\x00\x00not ours at all"));
        assert_eq!(b.recv_timeout(Duration::from_millis(10)).unwrap(), None);
        // Our traffic, damaged in flight: surfaces as recoverable Corrupt.
        let mut raw = Message::Fin { session: 3 }.encode().to_vec();
        raw[10] ^= 0x40;
        a.send_raw(bytes::Bytes::from(raw));
        match b.recv_timeout(TICK) {
            Err(e) => assert!(e.is_recoverable(), "expected recoverable, got {e}"),
            other => panic!("expected Corrupt error, got {other:?}"),
        }
        // The endpoint keeps working afterwards.
        a.send_raw(Message::Fin { session: 4 }.encode());
        assert_eq!(
            b.recv_timeout(TICK).unwrap(),
            Some(Message::Fin { session: 4 })
        );
    }

    #[test]
    fn cross_thread_delivery() {
        let hub = MemHub::new();
        let mut tx = hub.join();
        let mut rx = hub.join();
        let handle = std::thread::spawn(move || {
            let mut got = Vec::new();
            while got.len() < 5 {
                if let Some(Message::Fin { session }) = rx.recv_timeout(TICK).unwrap() {
                    got.push(session);
                }
            }
            got
        });
        for s in 0..5u32 {
            tx.send(&Message::Fin { session: s }).unwrap();
        }
        assert_eq!(handle.join().unwrap(), vec![0, 1, 2, 3, 4]);
    }
}
