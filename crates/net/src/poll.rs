//! Non-blocking readiness layer: [`PollTransport`] and the [`PollSet`]
//! registry.
//!
//! The blocking [`Transport`] contract parks the calling thread in
//! `recv_timeout` — one thread per endpoint. An event-driven runtime
//! (`pm-mux`) needs the opposite: ask *many* endpoints "anything ready?"
//! from one thread and never park on any single session's behalf.
//! [`PollTransport::poll_recv`] is that question, and [`PollSet`] is the
//! socket-registration + readiness-polling surface the multiplexer drives:
//! register endpoints, then sweep them round-robin with a per-endpoint
//! budget so one firehose session cannot starve its neighbors.

use crate::transport::{NetError, Transport};
use crate::wire::Message;

/// A [`Transport`] that can also answer "is a datagram ready?" without
/// blocking.
///
/// `poll_recv` must return immediately: `Ok(Some)` with a decoded
/// datagram, `Ok(None)` when the queue is empty, or an error exactly as
/// `recv_timeout` would surface it (recoverable corruption included). The
/// default implementation delegates to `recv_timeout(Duration::ZERO)`,
/// which every bundled transport honors as a non-blocking drain; endpoints
/// with a cheaper native path (e.g. [`crate::mem::MemEndpoint`]) override
/// it.
pub trait PollTransport: Transport {
    /// Non-blocking receive.
    ///
    /// # Errors
    /// Same surface as [`Transport::recv_timeout`]: recoverable damage
    /// (count-and-drop) or fatal transport failure.
    fn poll_recv(&mut self) -> Result<Option<Message>, NetError> {
        self.recv_timeout(std::time::Duration::ZERO)
    }
}

impl Transport for Box<dyn PollTransport> {
    fn send(&mut self, msg: &Message) -> Result<(), NetError> {
        (**self).send(msg)
    }
    fn recv_timeout(&mut self, timeout: std::time::Duration) -> Result<Option<Message>, NetError> {
        (**self).recv_timeout(timeout)
    }
}

impl PollTransport for Box<dyn PollTransport> {
    fn poll_recv(&mut self) -> Result<Option<Message>, NetError> {
        (**self).poll_recv()
    }
}

impl Transport for Box<dyn PollTransport + Send> {
    fn send(&mut self, msg: &Message) -> Result<(), NetError> {
        (**self).send(msg)
    }
    fn recv_timeout(&mut self, timeout: std::time::Duration) -> Result<Option<Message>, NetError> {
        (**self).recv_timeout(timeout)
    }
}

impl PollTransport for Box<dyn PollTransport + Send> {
    fn poll_recv(&mut self) -> Result<Option<Message>, NetError> {
        (**self).poll_recv()
    }
}

/// Stable handle to a transport registered in a [`PollSet`].
///
/// Tokens are slot indices; a deregistered slot's token is retired and the
/// slot recycled, so holding a stale token yields `None` from accessors
/// rather than touching a stranger's transport.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Token {
    slot: usize,
    generation: u32,
}

impl Token {
    /// Slot index (useful as a dense array key while the token is live).
    pub fn slot(&self) -> usize {
        self.slot
    }
}

struct Slot<T> {
    transport: Option<T>,
    generation: u32,
}

/// Registration + readiness polling over a set of non-blocking endpoints:
/// the "shared socket set" an event-driven driver sweeps.
///
/// Determinism contract: `poll_round` visits live slots in ascending slot
/// order starting from a cursor that advances by one each round. For a
/// fixed registration history the visit schedule — and therefore the
/// interleaving of drained datagrams — is a pure function of the call
/// sequence, never of wall time.
pub struct PollSet<T: PollTransport> {
    slots: Vec<Slot<T>>,
    free: Vec<usize>,
    cursor: usize,
    live: usize,
}

impl<T: PollTransport> Default for PollSet<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: PollTransport> PollSet<T> {
    /// Empty set.
    pub fn new() -> Self {
        PollSet {
            slots: Vec::new(),
            free: Vec::new(),
            cursor: 0,
            live: 0,
        }
    }

    /// Register an endpoint; the returned token addresses it until
    /// [`PollSet::deregister`].
    pub fn register(&mut self, transport: T) -> Token {
        self.live += 1;
        match self.free.pop() {
            Some(slot) => {
                let s = &mut self.slots[slot];
                s.transport = Some(transport);
                Token {
                    slot,
                    generation: s.generation,
                }
            }
            None => {
                let slot = self.slots.len();
                self.slots.push(Slot {
                    transport: Some(transport),
                    generation: 0,
                });
                Token {
                    slot,
                    generation: 0,
                }
            }
        }
    }

    /// Remove an endpoint, returning it. Stale or already-freed tokens
    /// yield `None`.
    pub fn deregister(&mut self, token: Token) -> Option<T> {
        let s = self.slots.get_mut(token.slot)?;
        if s.generation != token.generation {
            return None;
        }
        let t = s.transport.take()?;
        s.generation = s.generation.wrapping_add(1);
        self.free.push(token.slot);
        self.live -= 1;
        Some(t)
    }

    /// Mutable access to a registered endpoint (e.g. to send on it).
    pub fn get_mut(&mut self, token: Token) -> Option<&mut T> {
        let s = self.slots.get_mut(token.slot)?;
        if s.generation != token.generation {
            return None;
        }
        s.transport.as_mut()
    }

    /// Number of registered endpoints.
    pub fn len(&self) -> usize {
        self.live
    }

    /// True when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// One fairness-bounded readiness sweep: visit every live endpoint
    /// once (round-robin, the starting endpoint rotating each call) and
    /// drain up to `budget` outcomes from each. Ready datagrams *and*
    /// per-endpoint receive errors land in `sink` as `(token, outcome)` —
    /// errors are data here, because each session's resilience policy owns
    /// the decision to absorb or abort. Returns how many outcomes were
    /// collected.
    pub fn poll_round(
        &mut self,
        budget: usize,
        sink: &mut Vec<(Token, Result<Message, NetError>)>,
    ) -> usize {
        let n = self.slots.len();
        if n == 0 || budget == 0 {
            return 0;
        }
        let start = self.cursor % n;
        self.cursor = self.cursor.wrapping_add(1);
        let mut collected = 0;
        for off in 0..n {
            let slot = (start + off) % n;
            let generation = self.slots[slot].generation;
            let Some(t) = self.slots[slot].transport.as_mut() else {
                continue;
            };
            for _ in 0..budget {
                match t.poll_recv() {
                    Ok(Some(msg)) => {
                        sink.push((Token { slot, generation }, Ok(msg)));
                        collected += 1;
                    }
                    Ok(None) => break,
                    Err(e) => {
                        sink.push((Token { slot, generation }, Err(e)));
                        collected += 1;
                        // An error consumed this poll slot; keep draining
                        // up to the budget so recoverable damage doesn't
                        // stall the queue behind it.
                    }
                }
            }
        }
        collected
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem::MemHub;

    #[test]
    fn poll_recv_is_nonblocking_and_ordered() {
        let hub = MemHub::new();
        let mut a = hub.join();
        let mut b = hub.join();
        assert_eq!(b.poll_recv().unwrap(), None, "empty queue, no blocking");
        for s in 0..4u32 {
            a.send(&Message::Fin { session: s }).unwrap();
        }
        for s in 0..4u32 {
            assert_eq!(b.poll_recv().unwrap(), Some(Message::Fin { session: s }));
        }
        assert_eq!(b.poll_recv().unwrap(), None);
    }

    #[test]
    fn poll_recv_surfaces_corruption_skips_foreign() {
        let hub = MemHub::new();
        let a = hub.join();
        let mut b = hub.join();
        a.send_raw(bytes::Bytes::from_static(b"\x00\x00foreign junk"));
        assert_eq!(b.poll_recv().unwrap(), None, "foreign bytes skipped");
        let mut raw = Message::Fin { session: 3 }.encode().to_vec();
        raw[10] ^= 0x40;
        a.send_raw(bytes::Bytes::from(raw));
        assert!(b.poll_recv().unwrap_err().is_recoverable());
    }

    #[test]
    fn pollset_registration_lifecycle() {
        let hub = MemHub::new();
        let mut set: PollSet<_> = PollSet::new();
        let t1 = set.register(hub.join());
        let t2 = set.register(hub.join());
        assert_eq!(set.len(), 2);
        assert!(set.get_mut(t1).is_some());
        let ep = set.deregister(t1).expect("live token");
        drop(ep);
        assert_eq!(set.len(), 1);
        assert!(set.get_mut(t1).is_none(), "token retired");
        assert!(set.deregister(t1).is_none(), "double free rejected");
        // The slot is recycled under a fresh generation: the stale token
        // still doesn't resolve.
        let t3 = set.register(hub.join());
        assert_eq!(t3.slot(), t1.slot());
        assert!(set.get_mut(t1).is_none());
        assert!(set.get_mut(t2).is_some());
        assert!(set.get_mut(t3).is_some());
    }

    #[test]
    fn poll_round_is_fair_under_budget() {
        let hub = MemHub::new();
        let mut feeder = hub.join();
        let mut set: PollSet<_> = PollSet::new();
        let t1 = set.register(hub.join());
        let t2 = set.register(hub.join());
        // Both endpoints have 3 queued datagrams; with budget 2 a round
        // collects 2 from each, not 4 from the first.
        for s in 0..3u32 {
            feeder.send(&Message::Fin { session: s }).unwrap();
        }
        let mut sink = Vec::new();
        let got = set.poll_round(2, &mut sink);
        assert_eq!(got, 4);
        let per = |tok: Token| sink.iter().filter(|(t, _)| *t == tok).count();
        assert_eq!(per(t1), 2);
        assert_eq!(per(t2), 2);
        // The leftover drains next round.
        sink.clear();
        assert_eq!(set.poll_round(2, &mut sink), 2);
    }

    #[test]
    fn poll_round_rotates_start() {
        let hub = MemHub::new();
        let mut feeder = hub.join();
        let mut set: PollSet<_> = PollSet::new();
        let t1 = set.register(hub.join());
        let t2 = set.register(hub.join());
        feeder.send(&Message::Fin { session: 1 }).unwrap();
        let mut sink = Vec::new();
        set.poll_round(1, &mut sink);
        assert_eq!(sink[0].0, t1, "round 0 starts at slot 0");
        feeder.send(&Message::Fin { session: 2 }).unwrap();
        sink.clear();
        set.poll_round(1, &mut sink);
        assert_eq!(sink[0].0, t2, "round 1 starts at slot 1");
    }

    #[test]
    fn boxed_poll_transport_objects_work() {
        let hub = MemHub::new();
        let mut a = hub.join();
        let mut boxed: Box<dyn PollTransport + Send> = Box::new(hub.join());
        a.send(&Message::Fin { session: 8 }).unwrap();
        assert_eq!(
            boxed.poll_recv().unwrap(),
            Some(Message::Fin { session: 8 })
        );
        boxed.send(&Message::Fin { session: 9 }).unwrap();
        assert_eq!(a.poll_recv().unwrap(), Some(Message::Fin { session: 9 }));
    }
}
