//! Property-based tests: wire-format totality and suppression invariants.

use bytes::Bytes;
use proptest::prelude::*;

use crate::suppression::NakSuppressor;
use crate::wire::Message;

fn message_strategy() -> impl Strategy<Value = Message> {
    prop_oneof![
        (
            any::<u32>(),
            any::<u32>(),
            0u16..50,
            1u16..50,
            proptest::collection::vec(any::<u8>(), 0..256)
        )
            .prop_filter_map("valid geometry", |(session, group, index, k, payload)| {
                // Build a consistent (index, k, n) triple.
                let n = k + (index % 8) + 1;
                let index = index % n;
                Some(Message::Packet {
                    session,
                    group,
                    index,
                    k: k.min(n),
                    n,
                    payload: Bytes::from(payload),
                })
            }),
        (any::<u32>(), any::<u32>(), any::<u16>(), any::<u16>()).prop_map(
            |(session, group, sent, round)| Message::Poll {
                session,
                group,
                sent,
                round
            }
        ),
        (any::<u32>(), any::<u32>(), any::<u16>(), any::<u16>()).prop_map(
            |(session, group, needed, round)| Message::Nak {
                session,
                group,
                needed,
                round
            }
        ),
        (any::<u32>(), any::<u32>(), any::<u16>()).prop_map(|(session, group, index)| {
            Message::NakPacket {
                session,
                group,
                index,
            }
        }),
        (any::<u32>(), any::<u32>())
            .prop_map(|(session, receiver)| Message::Done { session, receiver }),
        any::<u32>().prop_map(|session| Message::Fin { session }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// encode -> decode is the identity for every valid message.
    #[test]
    fn wire_roundtrip(msg in message_strategy()) {
        let decoded = Message::decode(msg.encode()).unwrap();
        prop_assert_eq!(decoded, msg);
    }

    /// decode never panics on arbitrary bytes — it returns Ok or Err.
    #[test]
    fn decode_total(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let _ = Message::decode(Bytes::from(bytes));
    }

    /// decode of a corrupted valid message never panics (and if it decodes,
    /// the result is again encodable).
    #[test]
    fn decode_corrupted(msg in message_strategy(), flip in any::<(usize, u8)>()) {
        let mut raw = msg.encode().to_vec();
        if !raw.is_empty() {
            let pos = flip.0 % raw.len();
            raw[pos] ^= flip.1;
        }
        if let Ok(decoded) = Message::decode(Bytes::from(raw)) {
            let _ = decoded.encode();
        }
    }

    /// encode → corrupt(0 flips) → decode is the exact identity: an
    /// undamaged datagram always passes the integrity check and
    /// round-trips byte-for-byte.
    #[test]
    fn zero_flip_roundtrip_exact(msg in message_strategy()) {
        let raw = msg.encode();
        let reencoded = Message::decode(raw.clone()).unwrap().encode();
        prop_assert_eq!(&reencoded[..], &raw[..]);
    }

    /// The FNV-1a wire checksum detects every single-bit flip: damage
    /// confined to one byte (any position, including the checksum field
    /// itself) never mis-parses into a valid Message.
    #[test]
    fn checksum_detects_single_bit_flip(
        msg in message_strategy(),
        pos in any::<usize>(),
        bit in 0u8..8,
    ) {
        let mut raw = msg.encode().to_vec();
        let pos = pos % raw.len();
        raw[pos] ^= 1 << bit;
        match Message::decode(Bytes::from(raw)) {
            Ok(m) => prop_assert!(false, "single-bit flip at {} mis-parsed as {:?}", pos, m),
            Err(e) => prop_assert!(e.is_recoverable(), "flip must stay recoverable: {}", e),
        }
    }

    /// Truncating an encoded datagram anywhere short of its full length
    /// never yields a valid Message.
    #[test]
    fn truncation_never_misparses(msg in message_strategy(), cut in any::<usize>()) {
        let raw = msg.encode();
        let cut = cut % raw.len();
        prop_assert!(Message::decode(raw.slice(0..cut)).is_err());
    }

    /// Suppression: deadlines always fall inside the scheduled slot, and a
    /// heard NAK with m >= l always cancels.
    #[test]
    fn suppression_slot_bounds(
        sent in 1u16..200,
        needed in 1u16..200,
        slot in 1u32..1000,
        seed in any::<u64>(),
        now in 0.0f64..1e6,
    ) {
        let slot = slot as f64 * 1e-3;
        let mut s = NakSuppressor::new(slot, seed);
        s.on_poll(0, 1, sent, needed, now);
        let deadline = s.next_deadline().unwrap();
        let slot_index = sent.saturating_sub(needed) as f64;
        prop_assert!(deadline >= now + slot_index * slot - 1e-9);
        prop_assert!(deadline <= now + (slot_index + 1.0) * slot + 1e-9);
        s.on_nak_heard(0, needed); // equal demand cancels
        prop_assert_eq!(s.pending_count(), 0);
    }

    /// Firing consumes: after take_due at a late time, nothing remains.
    #[test]
    fn suppression_fire_consumes(
        polls in proptest::collection::vec((any::<u32>(), 1u16..100, 1u16..100), 1..20),
        seed in any::<u64>(),
    ) {
        let mut s = NakSuppressor::new(0.01, seed);
        for &(group, sent, needed) in &polls {
            s.on_poll(group, 1, sent.max(needed), needed, 0.0);
        }
        let fired = s.take_due(1e9);
        prop_assert_eq!(s.pending_count(), 0);
        // One NAK per distinct group at most.
        let mut groups: Vec<u32> = fired.iter().map(|f| f.group).collect();
        groups.sort_unstable();
        groups.dedup();
        prop_assert_eq!(groups.len(), fired.len());
    }
}
