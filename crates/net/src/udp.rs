//! Real UDP multicast transport.
//!
//! One [`UdpHub`] binds a socket to the group port, joins the multicast
//! group (administratively scoped `239.0.0.0/8` recommended) with loopback
//! enabled, and a reader thread fans every datagram out to the in-process
//! endpoints. Endpoints send through their own unbound-port sockets
//! straight to the group address, so datagrams really traverse the kernel
//! multicast path.
//!
//! Semantics differ from [`crate::mem::MemHub`] in one documented way:
//! because `IP_MULTICAST_LOOP` is on and all endpoints share the hub's
//! receive socket, **every endpoint sees every datagram, including its
//! own**. Protocol state machines in `pm-core` are written to tolerate
//! self-delivery (a sender ignores packet types only receivers handle and
//! vice versa).

use std::net::{Ipv4Addr, SocketAddrV4, UdpSocket};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use parking_lot::Mutex;
use pm_obs::{Event, Obs, Stopwatch};

use crate::transport::{NetError, Transport};
use crate::wire::Message;

/// Maximum datagram we ever read.
const RECV_BUF: usize = 65_536;

struct HubShared {
    sinks: Mutex<Vec<Sender<Bytes>>>,
    shutdown: AtomicBool,
}

/// A joined UDP multicast group with an in-process fan-out.
pub struct UdpHub {
    group: SocketAddrV4,
    shared: Arc<HubShared>,
    reader: Option<std::thread::JoinHandle<()>>,
}

impl UdpHub {
    /// Bind the group socket, join `group` on all interfaces, and start
    /// the reader thread.
    ///
    /// # Errors
    /// Propagates socket errors (bind, join). A host without multicast
    /// support will fail here — callers such as examples degrade to the
    /// in-memory hub.
    pub fn join(group: SocketAddrV4) -> Result<Self, NetError> {
        if !group.ip().is_multicast() {
            return Err(NetError::Io(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                format!("{} is not a multicast address", group.ip()),
            )));
        }
        let socket = UdpSocket::bind(SocketAddrV4::new(Ipv4Addr::UNSPECIFIED, group.port()))?;
        socket.join_multicast_v4(group.ip(), &Ipv4Addr::UNSPECIFIED)?;
        socket.set_multicast_loop_v4(true)?;
        socket.set_read_timeout(Some(Duration::from_millis(50)))?;
        let shared = Arc::new(HubShared {
            sinks: Mutex::new(Vec::new()),
            shutdown: AtomicBool::new(false),
        });
        let reader_shared = shared.clone();
        let reader = std::thread::Builder::new()
            .name("pm-udp-hub".into())
            .spawn(move || {
                let mut buf = vec![0u8; RECV_BUF];
                while !reader_shared.shutdown.load(Ordering::Relaxed) {
                    match socket.recv_from(&mut buf) {
                        Ok((len, _src)) => {
                            let datagram = Bytes::copy_from_slice(&buf[..len]);
                            let sinks = reader_shared.sinks.lock();
                            for sink in sinks.iter() {
                                let _ = sink.send(datagram.clone());
                            }
                        }
                        // Same classification the farm's poll path uses:
                        // only a Fatal socket error stops the reader.
                        Err(e) => match crate::transport::classify_recv_err(&e) {
                            crate::transport::RecvClass::WouldBlock
                            | crate::transport::RecvClass::Transient => continue,
                            crate::transport::RecvClass::Fatal => break,
                        },
                    }
                }
            })?;
        Ok(UdpHub {
            group,
            shared,
            reader: Some(reader),
        })
    }

    /// The group address.
    pub fn group(&self) -> SocketAddrV4 {
        self.group
    }

    /// Create a new endpoint on this group.
    ///
    /// # Errors
    /// Fails if the endpoint's send socket cannot be created.
    pub fn endpoint(&self) -> Result<UdpEndpoint, NetError> {
        let send_socket = UdpSocket::bind(SocketAddrV4::new(Ipv4Addr::UNSPECIFIED, 0))?;
        send_socket.set_multicast_loop_v4(true)?;
        let (tx, rx) = unbounded();
        self.shared.sinks.lock().push(tx);
        Ok(UdpEndpoint {
            group: self.group,
            send_socket,
            rx,
            obs: Obs::null(),
            clock: Stopwatch::start(),
        })
    }
}

impl Drop for UdpHub {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Relaxed);
        if let Some(h) = self.reader.take() {
            let _ = h.join();
        }
    }
}

/// One endpoint of a [`UdpHub`] group.
pub struct UdpEndpoint {
    group: SocketAddrV4,
    send_socket: UdpSocket,
    rx: Receiver<Bytes>,
    obs: Obs,
    clock: Stopwatch,
}

impl UdpEndpoint {
    /// Emit `net_sent`/`net_recv` events (timestamped from endpoint
    /// creation) to `obs`.
    pub fn with_obs(mut self, obs: Obs) -> Self {
        self.obs = obs;
        self
    }
}

impl Transport for UdpEndpoint {
    fn send(&mut self, msg: &Message) -> Result<(), NetError> {
        self.obs.emit(self.clock.now(), || Event::NetSent {
            kind: msg.obs_kind(),
        });
        let encoded = msg.encode();
        self.send_socket.send_to(&encoded, self.group)?;
        Ok(())
    }

    fn recv_timeout(&mut self, timeout: Duration) -> Result<Option<Message>, NetError> {
        // pm-audit: allow(determinism-time): blocking-IO recv deadline on a real transport, wall-clock by design
        let deadline = std::time::Instant::now() + timeout;
        loop {
            // pm-audit: allow(determinism-time): blocking-IO recv deadline on a real transport, wall-clock by design
            let remaining = deadline.saturating_duration_since(std::time::Instant::now());
            match self.rx.recv_timeout(remaining) {
                Ok(raw) => match Message::decode(raw) {
                    Ok(msg) => {
                        self.obs.emit(self.clock.now(), || Event::NetRecv {
                            kind: msg.obs_kind(),
                        });
                        return Ok(Some(msg));
                    }
                    // Our magic but a failed checksum: damaged in
                    // flight, surfaced (recoverable) for the driver to
                    // count and drop. Anything else is a foreign
                    // datagram on the group — silent skip.
                    Err(e @ NetError::Corrupt(_)) => return Err(e),
                    Err(_) => continue,
                },
                Err(RecvTimeoutError::Timeout) => return Ok(None),
                Err(RecvTimeoutError::Disconnected) => return Err(NetError::Closed),
            }
        }
    }
}

/// The default `recv_timeout(ZERO)` path drains the reader thread's
/// channel without parking, which is exactly the readiness semantic the
/// multiplexer needs.
impl crate::poll::PollTransport for UdpEndpoint {}

#[cfg(test)]
mod tests {
    use super::*;

    /// Multicast may be unavailable in constrained environments; tests
    /// skip (with a note) rather than fail when the group can't be joined.
    fn try_hub(port: u16) -> Option<UdpHub> {
        match UdpHub::join(SocketAddrV4::new(Ipv4Addr::new(239, 255, 43, 21), port)) {
            Ok(h) => Some(h),
            Err(e) => {
                eprintln!("skipping UDP multicast test: {e}");
                None
            }
        }
    }

    #[test]
    fn rejects_non_multicast_address() {
        match UdpHub::join(SocketAddrV4::new(Ipv4Addr::LOCALHOST, 9000)) {
            Err(NetError::Io(e)) => {
                assert_eq!(e.kind(), std::io::ErrorKind::InvalidInput);
            }
            Err(other) => panic!("unexpected error kind: {other}"),
            Ok(_) => panic!("unicast address must be rejected"),
        }
    }

    #[test]
    fn loopback_roundtrip() {
        let Some(hub) = try_hub(41877) else { return };
        let mut a = hub.endpoint().unwrap();
        let mut b = hub.endpoint().unwrap();
        let msg = Message::Nak {
            session: 3,
            group: 9,
            needed: 2,
            round: 1,
        };
        a.send(&msg).unwrap();
        // Self-delivery is expected on UDP: both endpoints see it.
        let got_b = b.recv_timeout(Duration::from_secs(2)).unwrap();
        assert_eq!(got_b, Some(msg.clone()));
        let got_a = a.recv_timeout(Duration::from_secs(2)).unwrap();
        assert_eq!(got_a, Some(msg));
    }

    #[test]
    fn payload_packets_roundtrip() {
        let Some(hub) = try_hub(41879) else { return };
        let mut a = hub.endpoint().unwrap();
        let mut b = hub.endpoint().unwrap();
        let payload: Vec<u8> = (0..2048).map(|i| (i % 251) as u8).collect();
        let msg = Message::Packet {
            session: 1,
            group: 0,
            index: 5,
            k: 7,
            n: 10,
            payload: payload.into(),
        };
        a.send(&msg).unwrap();
        assert_eq!(b.recv_timeout(Duration::from_secs(2)).unwrap(), Some(msg));
    }

    #[test]
    fn corrupt_datagram_surfaces_garbage_skipped() {
        let Some(hub) = try_hub(41883) else { return };
        let mut a = hub.endpoint().unwrap();
        let tx = UdpSocket::bind(SocketAddrV4::new(Ipv4Addr::UNSPECIFIED, 0)).unwrap();
        tx.set_multicast_loop_v4(true).unwrap();
        // Pure garbage (wrong magic) is skipped silently.
        tx.send_to(b"\x00\x00definitely not ours", hub.group())
            .unwrap();
        assert_eq!(a.recv_timeout(Duration::from_millis(200)).unwrap(), None);
        // A damaged own-format datagram surfaces as recoverable Corrupt.
        let mut raw = Message::Fin { session: 5 }.encode().to_vec();
        raw[9] ^= 0x08;
        tx.send_to(&raw, hub.group()).unwrap();
        match a.recv_timeout(Duration::from_secs(2)) {
            Err(e) => assert!(e.is_recoverable(), "expected recoverable, got {e}"),
            other => panic!("expected Corrupt error, got {other:?}"),
        }
        // The endpoint keeps working afterwards.
        tx.send_to(&Message::Fin { session: 6 }.encode(), hub.group())
            .unwrap();
        assert_eq!(
            a.recv_timeout(Duration::from_secs(2)).unwrap(),
            Some(Message::Fin { session: 6 })
        );
    }

    #[test]
    fn timeout_when_quiet() {
        let Some(hub) = try_hub(41881) else { return };
        let mut a = hub.endpoint().unwrap();
        assert_eq!(a.recv_timeout(Duration::from_millis(30)).unwrap(), None);
    }
}
