#![forbid(unsafe_code)]
//! Network substrate for the NP reliable-multicast protocol.
//!
//! This crate supplies everything `pm-core` needs to run over a real or
//! simulated network:
//!
//! * [`wire`] — the packet format: one compact binary encoding for data
//!   packets, parities, sender POLLs, receiver NAKs and session control.
//! * [`transport`] — the [`Transport`] trait: multicast send +
//!   timeout-bounded receive.
//! * [`mem`] — an in-process multicast hub over crossbeam channels, with
//!   deterministic per-endpoint fault injection; the workhorse of protocol
//!   tests.
//! * [`udp`] — real UDP multicast (`239.0.0.0/8`) via std sockets: one
//!   socket joins the group and an in-process hub fans packets out to any
//!   number of endpoints (std cannot set `SO_REUSEPORT`, so multiple OS
//!   sockets on one port are out of reach without adding a crate; the hub
//!   preserves multicast semantics for in-process receivers — see
//!   DESIGN.md).
//! * [`fault`] — a transport decorator that drops / duplicates / reorders
//!   received packets with configured probabilities (the smoltcp-style
//!   fault-injection idiom), seedable for reproducibility — plus
//!   datagram-level faults: bit-flip corruption, truncation, garbage
//!   injection, send-path loss, and scheduled blackout windows.
//! * [`chaos`] — named fault presets (light/heavy/blackout) and the
//!   seeded {corruption × blackout × churn × receiver-death} scenario
//!   grid behind the chaos tests.
//! * [`suppression`] — NAK slotting-and-damping: the timer discipline from
//!   the paper's Section 5.1 (receivers needing more packets answer in
//!   earlier slots; hearing an equal-or-better NAK cancels yours).

pub mod chaos;
pub mod farm;
pub mod fault;
pub mod fec_layer;
pub mod mem;
pub mod pcap;
pub mod poll;
pub mod suppression;
pub mod transcript;
pub mod transport;
pub mod udp;
pub mod wire;

pub use chaos::{scenario_grid, ChaosPreset, ChaosScenario};
pub use farm::{FarmEndpoint, FarmHub, FarmRole, FarmStats};
pub use fault::{FaultConfig, FaultStats, FaultyTransport};
pub use fec_layer::{FecLayerConfig, FecTransport};
pub use mem::MemHub;
pub use pcap::{PcapTransport, PcapWriter};
pub use poll::{PollSet, PollTransport, Token};
pub use suppression::NakSuppressor;
pub use transcript::{Transcript, TranscriptTransport};
pub use transport::{classify_recv_err, NetError, RecvClass, Transport};
pub use wire::Message;

#[cfg(test)]
mod proptests;
