//! Packet capture: record every message a transport sends or receives
//! into a standard **libpcap** file, openable in Wireshark/tcpdump.
//!
//! Messages are encapsulated as Ethernet II / IPv4 / UDP datagrams
//! addressed to the session's multicast group, with correct IPv4 header
//! checksums, so any pcap tool decodes the framing down to the UDP payload
//! (the PM wire format) without custom dissectors. Sent and received
//! traffic are distinguished by the source MAC/IP (sender `10.0.0.1`,
//! receiver `10.0.0.2`).
//!
//! This is the fault-finding idiom the smoltcp examples ship as `--pcap`,
//! here as a [`Transport`] decorator: wrap any endpoint in
//! [`PcapTransport`] and every datagram of the session lands in the file.

use std::io::{self, Write};
use std::time::{Duration, Instant};

use crate::transport::{NetError, Transport};
use crate::wire::Message;

/// Classic pcap global header constants.
const PCAP_MAGIC: u32 = 0xA1B2_C3D4; // microsecond timestamps
const PCAP_VERSION_MAJOR: u16 = 2;
const PCAP_VERSION_MINOR: u16 = 4;
const LINKTYPE_ETHERNET: u32 = 1;
/// Snap length: full packets.
const SNAPLEN: u32 = 65_535;

/// Multicast destination used in the synthesized headers.
const GROUP_IP: [u8; 4] = [239, 255, 42, 99];
const GROUP_PORT: u16 = 47_999;

/// Writes pcap records for wire messages.
pub struct PcapWriter<W: Write> {
    out: W,
    start: Instant,
}

impl<W: Write> PcapWriter<W> {
    /// Write the pcap global header and return the writer.
    ///
    /// # Errors
    /// I/O failures on the underlying writer.
    pub fn new(mut out: W) -> io::Result<Self> {
        out.write_all(&PCAP_MAGIC.to_le_bytes())?;
        out.write_all(&PCAP_VERSION_MAJOR.to_le_bytes())?;
        out.write_all(&PCAP_VERSION_MINOR.to_le_bytes())?;
        out.write_all(&0i32.to_le_bytes())?; // thiszone
        out.write_all(&0u32.to_le_bytes())?; // sigfigs
        out.write_all(&SNAPLEN.to_le_bytes())?;
        out.write_all(&LINKTYPE_ETHERNET.to_le_bytes())?;
        Ok(PcapWriter {
            out,
            // pm-audit: allow(determinism-time): capture timestamps are wall-clock by definition
            start: Instant::now(),
        })
    }

    /// Record one message; `outbound` selects the synthesized source
    /// (sender vs receiver side of this endpoint).
    ///
    /// # Errors
    /// I/O failures on the underlying writer.
    pub fn record(&mut self, msg: &Message, outbound: bool) -> io::Result<()> {
        let payload = msg.encode();
        let frame = build_frame(&payload, outbound);
        let ts = self.start.elapsed();
        self.write_record(ts, &frame)
    }

    fn write_record(&mut self, ts: Duration, frame: &[u8]) -> io::Result<()> {
        // pm-audit: allow(lossy-cast): pcap mandates 32-bit seconds; wraps in 2106
        self.out.write_all(&(ts.as_secs() as u32).to_le_bytes())?;
        self.out.write_all(&ts.subsec_micros().to_le_bytes())?;
        let len = u32::try_from(frame.len().min(SNAPLEN as usize)).unwrap_or(SNAPLEN);
        self.out.write_all(&len.to_le_bytes())?; // incl_len
        let orig = u32::try_from(frame.len()).unwrap_or(u32::MAX);
        self.out.write_all(&orig.to_le_bytes())?; // orig_len
        self.out.write_all(&frame[..len as usize])?;
        Ok(())
    }

    /// Flush and return the inner writer.
    ///
    /// # Errors
    /// Flush failures.
    pub fn finish(mut self) -> io::Result<W> {
        self.out.flush()?;
        Ok(self.out)
    }
}

/// Ethernet II + IPv4 + UDP encapsulation of one wire payload.
fn build_frame(payload: &[u8], outbound: bool) -> Vec<u8> {
    let src_ip: [u8; 4] = if outbound {
        [10, 0, 0, 1]
    } else {
        [10, 0, 0, 2]
    };
    let src_mac: [u8; 6] = if outbound {
        [0x02, 0, 0, 0, 0, 0x01]
    } else {
        [0x02, 0, 0, 0, 0, 0x02]
    };
    // Multicast MAC per RFC 1112: 01:00:5e + low 23 bits of the group IP.
    let dst_mac: [u8; 6] = [
        0x01,
        0x00,
        0x5E,
        GROUP_IP[1] & 0x7F,
        GROUP_IP[2],
        GROUP_IP[3],
    ];

    let udp_len = 8 + payload.len();
    let ip_len = 20 + udp_len;
    let mut f = Vec::with_capacity(14 + ip_len);
    // Ethernet II
    f.extend_from_slice(&dst_mac);
    f.extend_from_slice(&src_mac);
    f.extend_from_slice(&0x0800u16.to_be_bytes()); // IPv4

    // IPv4 header (no options)
    let ip_start = f.len();
    f.push(0x45); // version 4, IHL 5
    f.push(0); // DSCP/ECN
    f.extend_from_slice(&u16::try_from(ip_len).unwrap_or(u16::MAX).to_be_bytes());
    f.extend_from_slice(&0u16.to_be_bytes()); // identification
    f.extend_from_slice(&0u16.to_be_bytes()); // flags/fragment
    f.push(1); // TTL (multicast scope)
    f.push(17); // UDP
    f.extend_from_slice(&0u16.to_be_bytes()); // checksum placeholder
    f.extend_from_slice(&src_ip);
    f.extend_from_slice(&GROUP_IP);
    let csum = ipv4_checksum(&f[ip_start..ip_start + 20]);
    f[ip_start + 10..ip_start + 12].copy_from_slice(&csum.to_be_bytes());

    // UDP header (checksum 0 = unset, legal for IPv4)
    f.extend_from_slice(&GROUP_PORT.to_be_bytes()); // src port (cosmetic)
    f.extend_from_slice(&GROUP_PORT.to_be_bytes());
    f.extend_from_slice(&u16::try_from(udp_len).unwrap_or(u16::MAX).to_be_bytes());
    f.extend_from_slice(&0u16.to_be_bytes());
    f.extend_from_slice(payload);
    f
}

/// Ones-complement sum over the IPv4 header.
fn ipv4_checksum(header: &[u8]) -> u16 {
    let mut sum = 0u32;
    for chunk in header.chunks(2) {
        let word = u16::from_be_bytes([chunk[0], *chunk.get(1).unwrap_or(&0)]);
        sum += u32::from(word);
    }
    while sum > 0xFFFF {
        sum = (sum & 0xFFFF) + (sum >> 16);
    }
    !((sum & 0xFFFF) as u16)
}

/// A [`Transport`] decorator that captures all traffic to a pcap stream.
pub struct PcapTransport<T, W: Write> {
    inner: T,
    pcap: PcapWriter<W>,
    /// Records are best-effort: a capture-file error must not take down
    /// the session; the first error is remembered here.
    capture_error: Option<io::Error>,
}

impl<T: Transport, W: Write> PcapTransport<T, W> {
    /// Wrap `inner`, writing captures to `out`.
    ///
    /// # Errors
    /// Failure writing the pcap global header.
    pub fn new(inner: T, out: W) -> io::Result<Self> {
        Ok(PcapTransport {
            inner,
            pcap: PcapWriter::new(out)?,
            capture_error: None,
        })
    }

    /// First capture error, if any occurred (the session kept running).
    pub fn capture_error(&self) -> Option<&io::Error> {
        self.capture_error.as_ref()
    }

    /// Unwrap, flushing the capture.
    ///
    /// # Errors
    /// Flush failures.
    pub fn finish(self) -> io::Result<(T, W)> {
        Ok((self.inner, self.pcap.finish()?))
    }

    fn capture(&mut self, msg: &Message, outbound: bool) {
        if self.capture_error.is_some() {
            return;
        }
        if let Err(e) = self.pcap.record(msg, outbound) {
            self.capture_error = Some(e);
        }
    }
}

impl<T: Transport, W: Write + Send> Transport for PcapTransport<T, W> {
    fn send(&mut self, msg: &Message) -> Result<(), NetError> {
        self.capture(msg, true);
        self.inner.send(msg)
    }

    fn recv_timeout(&mut self, timeout: Duration) -> Result<Option<Message>, NetError> {
        let got = self.inner.recv_timeout(timeout)?;
        if let Some(msg) = &got {
            self.capture(msg, false);
        }
        Ok(got)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem::MemHub;
    use bytes::Bytes;

    fn parse_global_header(buf: &[u8]) {
        assert!(buf.len() >= 24, "global header");
        assert_eq!(
            u32::from_le_bytes(buf[0..4].try_into().unwrap()),
            PCAP_MAGIC
        );
        assert_eq!(u16::from_le_bytes(buf[4..6].try_into().unwrap()), 2);
        assert_eq!(
            u32::from_le_bytes(buf[20..24].try_into().unwrap()),
            LINKTYPE_ETHERNET
        );
    }

    /// Parse records, returning (frame bytes, captured length) pairs.
    fn parse_records(mut buf: &[u8]) -> Vec<Vec<u8>> {
        let mut out = Vec::new();
        while !buf.is_empty() {
            assert!(buf.len() >= 16, "record header");
            let incl = u32::from_le_bytes(buf[8..12].try_into().unwrap()) as usize;
            let orig = u32::from_le_bytes(buf[12..16].try_into().unwrap()) as usize;
            assert_eq!(incl, orig, "no truncation expected");
            out.push(buf[16..16 + incl].to_vec());
            buf = &buf[16 + incl..];
        }
        out
    }

    #[test]
    fn frames_decode_as_ethernet_ipv4_udp() {
        let msg = Message::Packet {
            session: 7,
            group: 1,
            index: 2,
            k: 5,
            n: 8,
            payload: Bytes::from_static(b"hello"),
        };
        let mut w = PcapWriter::new(Vec::new()).unwrap();
        w.record(&msg, true).unwrap();
        let buf = w.finish().unwrap();
        parse_global_header(&buf);
        let frames = parse_records(&buf[24..]);
        assert_eq!(frames.len(), 1);
        let f = &frames[0];
        // Ethernet: multicast destination MAC, IPv4 ethertype.
        assert_eq!(&f[0..3], &[0x01, 0x00, 0x5E]);
        assert_eq!(&f[12..14], &[0x08, 0x00]);
        // IPv4: version/IHL, UDP protocol, valid checksum.
        assert_eq!(f[14], 0x45);
        assert_eq!(f[23], 17);
        assert_eq!(
            ipv4_checksum_zeroed(&f[14..34]),
            0,
            "IPv4 checksum must verify"
        );
        // UDP length covers the encoded message.
        let udp_len = u16::from_be_bytes([f[38], f[39]]) as usize;
        let inner = &f[42..42 - 8 + udp_len];
        assert_eq!(Message::decode(Bytes::copy_from_slice(inner)).unwrap(), msg);
    }

    /// Checksum over a header *including* its checksum field verifies to 0.
    fn ipv4_checksum_zeroed(header: &[u8]) -> u16 {
        let mut sum = 0u32;
        for chunk in header.chunks(2) {
            sum += u16::from_be_bytes([chunk[0], chunk[1]]) as u32;
        }
        while sum > 0xFFFF {
            sum = (sum & 0xFFFF) + (sum >> 16);
        }
        !(sum as u16)
    }

    #[test]
    fn transport_decorator_captures_both_directions() {
        let hub = MemHub::new();
        let mut a = PcapTransport::new(hub.join(), Vec::new()).unwrap();
        let mut b = hub.join();
        a.send(&Message::Fin { session: 1 }).unwrap();
        b.send(&Message::Fin { session: 2 }).unwrap();
        let got = a.recv_timeout(Duration::from_millis(200)).unwrap();
        assert_eq!(got, Some(Message::Fin { session: 2 }));
        assert!(a.capture_error().is_none());
        let (_, buf) = a.finish().unwrap();
        parse_global_header(&buf);
        let frames = parse_records(&buf[24..]);
        assert_eq!(frames.len(), 2, "one sent + one received");
        // Outbound frame carries the sender source IP, inbound the other.
        assert_eq!(&frames[0][26..30], &[10, 0, 0, 1]);
        assert_eq!(&frames[1][26..30], &[10, 0, 0, 2]);
    }

    #[test]
    fn capture_failure_does_not_break_the_session() {
        struct FailingWriter {
            bytes_allowed: usize,
        }
        impl Write for FailingWriter {
            fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
                if self.bytes_allowed < buf.len() {
                    Err(io::Error::other("disk full"))
                } else {
                    self.bytes_allowed -= buf.len();
                    Ok(buf.len())
                }
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let hub = MemHub::new();
        // Exactly the 24-byte global header fits; the first record fails.
        let mut a = PcapTransport::new(hub.join(), FailingWriter { bytes_allowed: 24 }).unwrap();
        let mut b = hub.join();
        a.send(&Message::Fin { session: 1 }).unwrap(); // capture fails inside
        assert!(a.capture_error().is_some());
        // The message still went out on the wire.
        assert_eq!(
            b.recv_timeout(Duration::from_millis(200)).unwrap(),
            Some(Message::Fin { session: 1 })
        );
    }
}
