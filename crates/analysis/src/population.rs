//! Receiver populations, possibly heterogeneous.

/// A receiver population described as classes of identical receivers:
/// `(loss probability, count)`. Spatial/temporal independence is assumed by
/// every formula that consumes this (the paper's Section 3 setting);
/// correlated scenarios are handled by the `pm-sim` simulator instead.
#[derive(Debug, Clone, PartialEq)]
pub struct Population {
    classes: Vec<(f64, u64)>,
}

impl Population {
    /// `r` receivers, all with loss probability `p`.
    ///
    /// # Panics
    /// Panics unless `p` is a probability and `r > 0`.
    pub fn homogeneous(p: f64, r: u64) -> Self {
        Population::from_classes(vec![(p, r)])
    }

    /// The paper's two-class mix (Section 3.3): `round(alpha * r)` high-loss
    /// receivers at `p_high`, the rest at `p_low`.
    ///
    /// # Panics
    /// Panics on non-probability arguments or `r == 0`.
    pub fn two_class(r: u64, alpha: f64, p_low: f64, p_high: f64) -> Self {
        assert!((0.0..=1.0).contains(&alpha), "alpha must be a probability");
        let high = (alpha * r as f64).round() as u64;
        let mut classes = Vec::new();
        if high > 0 {
            classes.push((p_high, high));
        }
        if r - high > 0 {
            classes.push((p_low, r - high));
        }
        Population::from_classes(classes)
    }

    /// Arbitrary classes.
    ///
    /// # Panics
    /// Panics if empty, any count is zero, or any `p` is not in `[0, 1)`
    /// (a receiver losing everything can never be satisfied).
    pub fn from_classes(classes: Vec<(f64, u64)>) -> Self {
        assert!(
            !classes.is_empty(),
            "population must have at least one class"
        );
        for &(p, c) in &classes {
            assert!(
                (0.0..1.0).contains(&p),
                "class loss probability {p} must be in [0, 1)"
            );
            assert!(c > 0, "class counts must be positive");
        }
        Population { classes }
    }

    /// Total receiver count `R`.
    pub fn receivers(&self) -> u64 {
        self.classes.iter().map(|&(_, c)| c).sum()
    }

    /// The `(p, count)` classes.
    pub fn classes(&self) -> &[(f64, u64)] {
        &self.classes
    }

    /// `prod_r f(p_r)` computed per class as `f(p)^count`, with `f`
    /// returning a probability. The workhorse behind Eqs. (7)–(8).
    pub fn product_over_receivers(&self, mut f: impl FnMut(f64) -> f64) -> f64 {
        let mut acc = 1.0f64;
        for &(p, c) in &self.classes {
            let v = f(p);
            debug_assert!(
                (0.0..=1.0).contains(&v),
                "f(p) must be a probability, got {v}"
            );
            if v <= 0.0 {
                return 0.0;
            }
            acc *= (c as f64 * v.ln()).exp();
            if acc == 0.0 {
                return 0.0;
            }
        }
        acc
    }

    /// Expand into one probability per receiver (test/simulation helper;
    /// avoid for `R = 10^6` analytics).
    pub fn expand(&self) -> Vec<f64> {
        let mut v = Vec::with_capacity(self.receivers() as usize);
        for &(p, c) in &self.classes {
            v.extend(std::iter::repeat_n(p, c as usize));
        }
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn homogeneous_counts() {
        let pop = Population::homogeneous(0.01, 1000);
        assert_eq!(pop.receivers(), 1000);
        assert_eq!(pop.classes(), &[(0.01, 1000)]);
    }

    #[test]
    fn two_class_rounding() {
        let pop = Population::two_class(1_000_000, 0.01, 0.01, 0.25);
        assert_eq!(pop.receivers(), 1_000_000);
        assert_eq!(pop.classes()[0], (0.25, 10_000));
        assert_eq!(pop.classes()[1], (0.01, 990_000));
        // alpha = 0 collapses to one class.
        let pop = Population::two_class(100, 0.0, 0.01, 0.25);
        assert_eq!(pop.classes(), &[(0.01, 100)]);
        // alpha = 1 likewise.
        let pop = Population::two_class(100, 1.0, 0.01, 0.25);
        assert_eq!(pop.classes(), &[(0.25, 100)]);
    }

    #[test]
    fn product_matches_expansion() {
        let pop = Population::two_class(50, 0.2, 0.1, 0.5);
        let f = |p: f64| 1.0 - p * p;
        let via_product = pop.product_over_receivers(f);
        let via_expand: f64 = pop.expand().iter().map(|&p| f(p)).product();
        assert!((via_product - via_expand).abs() < 1e-12);
    }

    #[test]
    fn product_handles_huge_counts() {
        let pop = Population::homogeneous(0.01, 1_000_000);
        let v = pop.product_over_receivers(|p| 1.0 - p * 1e-7);
        // (1 - 1e-9)^1e6 ~ exp(-1e-3)
        assert!((v - (-1e-3f64).exp()).abs() < 1e-9, "v={v}");
    }

    #[test]
    fn product_zero_short_circuits() {
        let pop = Population::from_classes(vec![(0.5, 10), (0.1, 5)]);
        assert_eq!(
            pop.product_over_receivers(|p| if p > 0.3 { 0.0 } else { 1.0 }),
            0.0
        );
    }

    #[test]
    #[should_panic(expected = "at least one class")]
    fn empty_population_rejected() {
        let _ = Population::from_classes(vec![]);
    }

    #[test]
    #[should_panic(expected = "must be in [0, 1)")]
    fn p_one_rejected() {
        let _ = Population::homogeneous(1.0, 10);
    }
}
