//! Property-based tests: monotonicity and dominance relations the paper's
//! conclusions rest on must hold over the whole parameter space.

use proptest::prelude::*;

use crate::integrated;
use crate::layered;
use crate::nofec;
use crate::population::Population;
use crate::rounds;

fn p_strategy() -> impl Strategy<Value = f64> {
    // Loss probabilities over the paper's range (1e-3 .. 0.25).
    (0.001f64..0.25).prop_map(|p| p)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Eq. (2): 0 <= q(k,n,p) <= p, decreasing in n.
    #[test]
    fn q_bounded_and_monotone(k in 1usize..30, h in 0usize..10, p in p_strategy()) {
        let q = layered::rm_loss_probability(k, k + h, p);
        prop_assert!(q >= 0.0 && q <= p + 1e-15, "q={q} p={p}");
        if h > 0 {
            let q_less = layered::rm_loss_probability(k, k + h - 1, p);
            prop_assert!(q <= q_less + 1e-15);
        }
    }

    /// E[M] >= 1 always, and is non-decreasing in R for every scheme.
    #[test]
    fn m_monotone_in_receivers(
        k in 1usize..20,
        h in 0usize..6,
        p in p_strategy(),
        r in 1u64..1000,
    ) {
        let small = Population::homogeneous(p, r);
        let big = Population::homogeneous(p, r * 10);
        let l_small = layered::expected_transmissions(k, h, &small);
        let l_big = layered::expected_transmissions(k, h, &big);
        prop_assert!(l_small >= (k + h) as f64 / k as f64 - 1e-12);
        prop_assert!(l_big >= l_small - 1e-9, "layered {l_big} < {l_small}");
        let i_small = integrated::lower_bound(k, 0, &small);
        let i_big = integrated::lower_bound(k, 0, &big);
        prop_assert!(i_small >= 1.0 - 1e-12);
        prop_assert!(i_big >= i_small - 1e-9, "integrated {i_big} < {i_small}");
    }

    /// The integrated lower bound never exceeds the no-FEC expectation
    /// (parities can only help), for any k.
    #[test]
    fn integrated_bound_below_nofec(k in 1usize..40, p in p_strategy(), r in 1u64..100_000) {
        let pop = Population::homogeneous(p, r);
        let ib = integrated::lower_bound(k, 0, &pop);
        let arq = nofec::expected_transmissions(&pop);
        // k = 1 makes them mathematically equal; allow series-truncation
        // noise at the 1e-6 relative level.
        prop_assert!(ib <= arq * (1.0 + 1e-6), "ib={ib} arq={arq}");
    }

    /// finite(h) equals no-FEC at h = 0, never beats the lower bound, and
    /// respects the provable waste ceiling `(E[M_arq] + 1) * n/k` (each of
    /// at most E[M_arq]-ish blocks costs at most n packets per k data).
    /// It is NOT monotone in h and for small k can even sit a few percent
    /// above no-FEC — see `finite_not_monotone_in_h_at_large_r`.
    #[test]
    fn finite_bracketed(k in 2usize..15, p in p_strategy(), r in 1u64..10_000) {
        let pop = Population::homogeneous(p, r);
        let arq = nofec::expected_transmissions(&pop);
        let f0 = integrated::finite(k, 0, 0, &pop);
        prop_assert!((f0 - arq).abs() < 1e-6, "f0={f0} arq={arq}");
        let lb = integrated::lower_bound(k, 0, &pop);
        for h in 1..=6 {
            let f = integrated::finite(k, h, 0, &pop);
            let n_over_k = (k + h) as f64 / k as f64;
            prop_assert!(f <= (arq + 1.0) * n_over_k, "h={h}: {f} > ceiling");
            prop_assert!(f >= lb * (1.0 - 1e-3), "h={h}: {f} < bound {lb}");
        }
    }

    /// Heterogeneous populations are bracketed by their homogeneous
    /// extremes.
    #[test]
    fn hetero_bracketed(
        k in 1usize..15,
        alpha in 0.01f64..0.99,
        r in 10u64..100_000,
    ) {
        let (p_low, p_high) = (0.01, 0.25);
        let mix = Population::two_class(r, alpha, p_low, p_high);
        let low = Population::homogeneous(p_low, r);
        let high = Population::homogeneous(p_high, r);
        let m_mix = integrated::lower_bound(k, 0, &mix);
        let m_low = integrated::lower_bound(k, 0, &low);
        let m_high = integrated::lower_bound(k, 0, &high);
        prop_assert!(m_mix >= m_low - 1e-9 && m_mix <= m_high + 1e-9,
            "{m_low} <= {m_mix} <= {m_high}");
    }

    /// Rounds: E[T] >= 1, non-decreasing in p and in R.
    #[test]
    fn rounds_monotone(k in 1usize..30, p in p_strategy(), r in 1u64..100_000) {
        let e = rounds::expected_rounds(k, &Population::homogeneous(p, r));
        prop_assert!(e >= 1.0 - 1e-12);
        let e_more_loss = rounds::expected_rounds(k, &Population::homogeneous((p * 1.5).min(0.3), r));
        prop_assert!(e_more_loss >= e - 1e-9);
        let e_more_recv = rounds::expected_rounds(k, &Population::homogeneous(p, r * 2));
        prop_assert!(e_more_recv >= e - 1e-9);
    }

    /// Processing rates are positive and throughput equals their min.
    #[test]
    fn endhost_rates_positive(p in p_strategy(), r in 1u64..1_000_000, k in 2usize..50) {
        let cost = crate::endhost::CostModel::paper_defaults();
        let n2 = crate::endhost::n2_rates(p, r, &cost);
        prop_assert!(n2.sender > 0.0 && n2.receiver > 0.0);
        prop_assert_eq!(n2.throughput(), n2.sender.min(n2.receiver));
        let np = crate::endhost::np_rates(k, p, r, &cost, Default::default());
        prop_assert!(np.sender > 0.0 && np.receiver > 0.0);
        // Pre-encoding can only raise the sender rate.
        let pre = crate::endhost::np_rates(
            k, p, r, &cost,
            crate::endhost::NpOptions { preencode: true, ..Default::default() },
        );
        prop_assert!(pre.sender >= np.sender - 1e-12);
    }
}
