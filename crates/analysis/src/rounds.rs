//! Transmission rounds — appendix Eq. (17).
//!
//! Protocol NP transmits a TG in rounds (round 1: the `k` data packets;
//! round `j > 1`: as many parities as the worst receiver still needs). The
//! appendix upper-bounds the rounds a single receiver needs via the
//! Ayanoglu et al. \[19\] expression
//!
//! ```text
//!     P(T_r <= m) = (1 - p^m)^k
//! ```
//!
//! (each of the `k` packet "slots" independently survives within `m` rounds
//! with probability `1 - p^m`), and the population-wide rounds satisfy
//! `P(T <= m) = P(T_r <= m)^R`.

use crate::numerics::{one_minus_pow_one_minus, sum_series};
use crate::population::Population;

const SERIES_CAP: u64 = 100_000;
const SERIES_TOL: f64 = 1e-12;

/// `P(T_r <= m)` for one receiver with loss probability `p` and TG size `k`.
///
/// # Panics
/// Panics unless `k >= 1` and `p` is in `[0, 1)`.
pub fn receiver_rounds_cdf(k: usize, p: f64, m: u64) -> f64 {
    assert!(k >= 1, "k must be at least 1");
    assert!((0.0..1.0).contains(&p), "p must be in [0, 1)");
    if m == 0 {
        return 0.0;
    }
    (k as f64 * (-p.powi(m as i32)).ln_1p()).exp()
}

/// `E[T_r]` — expected rounds for a single receiver.
pub fn receiver_expected_rounds(k: usize, p: f64) -> f64 {
    sum_series(0, SERIES_TOL, SERIES_CAP, |m| {
        1.0 - receiver_rounds_cdf(k, p, m)
    })
}

/// `P(T_r = m)`.
pub fn receiver_rounds_pmf(k: usize, p: f64, m: u64) -> f64 {
    if m == 0 {
        return 0.0;
    }
    receiver_rounds_cdf(k, p, m) - receiver_rounds_cdf(k, p, m - 1)
}

/// `E[T_r | T_r > 2]` — used by the receiver processing-rate formula
/// (timeout overhead is only paid from the third round on).
///
/// Returns 0 when `P(T_r > 2) = 0` (lossless populations never time out).
pub fn receiver_rounds_tail_mean(k: usize, p: f64) -> f64 {
    let p1 = receiver_rounds_pmf(k, p, 1);
    let p2 = receiver_rounds_pmf(k, p, 2);
    let p_gt2 = 1.0 - p1 - p2;
    if p_gt2 <= 0.0 {
        return 0.0;
    }
    (receiver_expected_rounds(k, p) - p1 - 2.0 * p2) / p_gt2
}

/// `P(T_r > 2)`.
pub fn receiver_rounds_gt2(k: usize, p: f64) -> f64 {
    one_minus_pow_one_minus(p * p, k as f64) // 1 - (1 - p^2)^k
}

/// `E[T]` — expected rounds until *every* receiver has the TG,
/// `P(T <= m) = prod_r P(T_r <= m)` over the (possibly heterogeneous)
/// population.
pub fn expected_rounds(k: usize, pop: &Population) -> f64 {
    sum_series(0, SERIES_TOL, SERIES_CAP, |m| {
        let mut ln_prod = 0.0f64;
        for &(p, c) in pop.classes() {
            let cdf = receiver_rounds_cdf(k, p, m);
            if cdf <= 0.0 {
                return 1.0;
            }
            ln_prod += c as f64 * cdf.ln();
        }
        -ln_prod.exp_m1()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cdf_sane() {
        assert_eq!(receiver_rounds_cdf(7, 0.01, 0), 0.0);
        let c1 = receiver_rounds_cdf(7, 0.01, 1);
        assert!((c1 - 0.99f64.powi(7)).abs() < 1e-12);
        let mut prev = 0.0;
        for m in 0..20 {
            let c = receiver_rounds_cdf(7, 0.3, m);
            assert!(c >= prev);
            prev = c;
        }
        assert!(prev > 1.0 - 1e-9);
    }

    #[test]
    fn lossless_one_round() {
        assert!((receiver_expected_rounds(20, 0.0) - 1.0).abs() < 1e-12);
        let pop = Population::homogeneous(0.0, 1_000_000);
        assert!((expected_rounds(20, &pop) - 1.0).abs() < 1e-12);
        assert_eq!(receiver_rounds_tail_mean(20, 0.0), 0.0);
    }

    #[test]
    fn k1_geometric_rounds() {
        // k = 1: P(T_r <= m) = 1 - p^m, so E[T_r] = 1/(1-p).
        let p = 0.25;
        let e = receiver_expected_rounds(1, p);
        assert!((e - 1.0 / (1.0 - p)).abs() < 1e-9, "e={e}");
    }

    #[test]
    fn rounds_grow_slowly_with_population() {
        let e1 = expected_rounds(20, &Population::homogeneous(0.01, 1));
        let e6 = expected_rounds(20, &Population::homogeneous(0.01, 1_000_000));
        assert!(e6 > e1);
        assert!(e6 < e1 + 4.0, "logarithmic growth expected: {e1} -> {e6}");
    }

    #[test]
    fn tail_mean_exceeds_two() {
        let t = receiver_rounds_tail_mean(20, 0.25);
        assert!(
            t > 2.0,
            "conditional mean beyond 2 rounds must exceed 2, got {t}"
        );
    }

    #[test]
    fn gt2_matches_pmf_sum() {
        let k = 20;
        let p = 0.1;
        let direct = receiver_rounds_gt2(k, p);
        let via_pmf = 1.0 - receiver_rounds_pmf(k, p, 1) - receiver_rounds_pmf(k, p, 2);
        assert!((direct - via_pmf).abs() < 1e-12, "{direct} vs {via_pmf}");
    }

    #[test]
    fn pmf_sums_to_one() {
        let total: f64 = (0..200).map(|m| receiver_rounds_pmf(7, 0.3, m)).sum();
        assert!((total - 1.0).abs() < 1e-9, "{total}");
    }
}
