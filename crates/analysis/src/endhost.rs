//! End-host processing rates and throughput — Section 5 (Figs. 17–18).
//!
//! Compares protocol **N2** (receiver-initiated NAK ARQ, Towsley/Kurose/
//! Pingali) with protocol **NP** (NP = N2 + parity retransmission + per-TG
//! feedback). The achievable end-system throughput is the minimum of the
//! sender and receiver per-packet processing rates, Eq. (9)/(12).
//!
//! All times are in **seconds**; rates in packets/second. The default
//! [`CostModel`] carries the paper's measured constants (DECstation
//! 5000/200, 2 KB packets, `m = 8`), so [`n2_rates`]/[`np_rates`] regenerate
//! Figs. 17–18 exactly; substitute your own measurements to model other
//! hardware.

use crate::integrated;
use crate::nofec;
use crate::population::Population;
use crate::rounds;

/// Per-operation processing times (seconds).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// `E[X_p]` — send one data/parity packet.
    pub send_packet: f64,
    /// `E[X_n]` — process one received NAK at the sender.
    pub sender_nak: f64,
    /// `E[X_t]` — sender timer overhead (kept for completeness; the
    /// paper's rate formulas only charge timers at receivers).
    pub sender_timer: f64,
    /// `E[Y_p]` — receive one packet.
    pub recv_packet: f64,
    /// `E[Y_n]` — process *and transmit* a NAK at a receiver.
    pub recv_nak_send: f64,
    /// `E[Y'_n]` — receive and process another receiver's NAK.
    pub recv_nak_other: f64,
    /// `E[Y_t]` — receiver timer overhead.
    pub recv_timer: f64,
    /// `c_e` — encode constant: one parity packet costs `k * c_e`.
    pub encode_const: f64,
    /// `c_d` — decode constant: one reconstructed packet costs `k * c_d`.
    pub decode_const: f64,
}

impl CostModel {
    /// The paper's Section 5 constants: `E[X_p] = E[Y_p] = 1000 us` (2 KB
    /// packets), `E[X_n] = E[Y_n] = E[Y'_n] = 500 us`, timers `24 us`,
    /// `c_e = 700 us`, `c_d = 720 us`.
    pub fn paper_defaults() -> Self {
        CostModel {
            send_packet: 1000e-6,
            sender_nak: 500e-6,
            sender_timer: 24e-6,
            recv_packet: 1000e-6,
            recv_nak_send: 500e-6,
            recv_nak_other: 500e-6,
            recv_timer: 24e-6,
            encode_const: 700e-6,
            decode_const: 720e-6,
        }
    }
}

impl Default for CostModel {
    fn default() -> Self {
        Self::paper_defaults()
    }
}

/// Sender/receiver processing rates (packets per second).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Rates {
    /// `Lambda_s` — sender per-packet processing rate.
    pub sender: f64,
    /// `Lambda_r` — receiver per-packet processing rate.
    pub receiver: f64,
}

impl Rates {
    /// `Lambda_o = min(Lambda_s, Lambda_r)` — Eq. (9)/(12).
    pub fn throughput(&self) -> f64 {
        self.sender.min(self.receiver)
    }
}

/// Options for the NP rate computation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NpOptions {
    /// Parities pre-encoded offline: the `E[X_e]` term drops from the
    /// sender (the paper's "NP pre-encode" curve in Fig. 18).
    pub preencode: bool,
    /// Ablation from Section 5.1: one NAK per *missing packet* instead of
    /// one per transmission round.
    pub nak_per_packet: bool,
}

/// `E[M_r | M_r > 2]` for the geometric per-receiver transmission count of
/// N2 (`P(M_r <= i) = 1 - p^i`).
fn n2_tail_mean(p: f64) -> f64 {
    if p <= 0.0 {
        return 0.0;
    }
    let e = 1.0 / (1.0 - p);
    let p1 = 1.0 - p;
    let p2 = p * (1.0 - p);
    (e - p1 - 2.0 * p2) / (p * p)
}

/// Eqs. (10)–(11): processing rates of protocol N2 for `r` receivers with
/// homogeneous loss `p`.
///
/// # Panics
/// Panics unless `p` is in `[0, 1)` and `r >= 1`.
pub fn n2_rates(p: f64, r: u64, cost: &CostModel) -> Rates {
    assert!((0.0..1.0).contains(&p), "p must be in [0, 1)");
    assert!(r >= 1, "need at least one receiver");
    let m = nofec::expected_transmissions(&Population::homogeneous(p, r));
    let x = m * cost.send_packet + (m - 1.0) * cost.sender_nak;

    let rf = r as f64;
    let p_gt2 = p * p; // P(M_r > 2) = p^2 for the geometric distribution
    let y = m * (1.0 - p) * cost.recv_packet
        + (m - 1.0) * (cost.recv_nak_send / rf + (rf - 1.0) / rf * cost.recv_nak_other)
        + p_gt2 * (n2_tail_mean(p) - 2.0) * cost.recv_timer;
    Rates {
        sender: 1.0 / x,
        receiver: 1.0 / y,
    }
}

/// Eqs. (13)–(16): processing rates of protocol NP with TG size `k`,
/// homogeneous loss `p`, `r` receivers.
///
/// `E[M^NP]` is the integrated lower bound of Eq. (6) (`a = 0`); the paper
/// argues 3 extra parities suffice to sit on it, so the bound is what both
/// Fig. 17 and Fig. 18 plot.
///
/// # Panics
/// Panics unless `k >= 1`, `p` in `[0, 1)` and `r >= 1`.
pub fn np_rates(k: usize, p: f64, r: u64, cost: &CostModel, opts: NpOptions) -> Rates {
    assert!(k >= 1, "k must be at least 1");
    assert!((0.0..1.0).contains(&p), "p must be in [0, 1)");
    assert!(r >= 1, "need at least one receiver");
    let pop = Population::homogeneous(p, r);
    let m = integrated::lower_bound(k, 0, &pop);
    let t = rounds::expected_rounds(k, &pop);

    // Feedback events per data packet: one NAK per round covers the whole
    // TG ((E[T]-1)/k), or one per missing packet (E[M]-1) in the ablation.
    let naks_per_packet = if opts.nak_per_packet {
        m - 1.0
    } else {
        (t - 1.0) / k as f64
    };

    // Eq. (15): per-packet encode share — (E[M]-1) parities, k*c_e each.
    let encode = if opts.preencode {
        0.0
    } else {
        k as f64 * (m - 1.0) * cost.encode_const
    };
    let x = encode + m * cost.send_packet + naks_per_packet * cost.sender_nak;

    // Eq. (16): per-TG decode work is the k*p expected lost packets, k*c_d
    // each — per *packet* share is p * k * c_d.
    let decode = k as f64 * p * cost.decode_const;
    let rf = r as f64;
    let p_gt2 = rounds::receiver_rounds_gt2(k, p);
    let tail = rounds::receiver_rounds_tail_mean(k, p);
    let timer = if p_gt2 > 0.0 {
        p_gt2 * (tail - 2.0) * cost.recv_timer
    } else {
        0.0
    };
    let y = m * (1.0 - p) * cost.recv_packet
        + naks_per_packet * (cost.recv_nak_send / rf + (rf - 1.0) / rf * cost.recv_nak_other)
        + timer
        + decode;
    Rates {
        sender: 1.0 / x,
        receiver: 1.0 / y,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const K: usize = 20;
    const P: f64 = 0.01;

    #[test]
    fn n2_sender_receiver_nearly_identical() {
        // Fig. 17: the N2 curves for sender and receiver almost coincide.
        for &r in &[10u64, 1_000, 1_000_000] {
            let rates = n2_rates(P, r, &CostModel::paper_defaults());
            let rel = (rates.sender - rates.receiver).abs() / rates.sender;
            assert!(
                rel < 0.1,
                "R={r}: sender={} receiver={}",
                rates.sender,
                rates.receiver
            );
        }
    }

    #[test]
    fn np_sender_is_bottleneck() {
        // Fig. 17/18: for NP the sender (which encodes) is the bottleneck.
        for &r in &[100u64, 10_000, 1_000_000] {
            let rates = np_rates(K, P, r, &CostModel::paper_defaults(), NpOptions::default());
            assert!(
                rates.sender < rates.receiver,
                "R={r}: sender={} receiver={}",
                rates.sender,
                rates.receiver
            );
        }
    }

    #[test]
    fn preencode_beats_n2_and_plain_np() {
        // Fig. 18's headline: NP with pre-encoding out-throughputs N2 and
        // NP-without-pre-encoding. At R = 10 the two are within a few
        // percent (the online-decode term k*p*c_d still bites while the
        // retransmission savings are tiny); the gap opens decisively with
        // R and reaches ~3x at R = 1e6.
        let cost = CostModel::paper_defaults();
        for &r in &[100u64, 1_000, 1_000_000] {
            let n2 = n2_rates(P, r, &cost).throughput();
            let np = np_rates(K, P, r, &cost, NpOptions::default()).throughput();
            let np_pre = np_rates(
                K,
                P,
                r,
                &cost,
                NpOptions {
                    preencode: true,
                    ..Default::default()
                },
            )
            .throughput();
            assert!(np_pre > n2, "R={r}: np_pre={np_pre} n2={n2}");
            assert!(np_pre > np, "R={r}: np_pre={np_pre} np={np}");
        }
        let n2_small = n2_rates(P, 10, &cost).throughput();
        let np_pre_small = np_rates(
            K,
            P,
            10,
            &cost,
            NpOptions {
                preencode: true,
                ..Default::default()
            },
        )
        .throughput();
        assert!(
            np_pre_small > 0.9 * n2_small,
            "{np_pre_small} vs {n2_small}"
        );
        let n2_big = n2_rates(P, 1_000_000, &cost).throughput();
        let np_pre_big = np_rates(
            K,
            P,
            1_000_000,
            &cost,
            NpOptions {
                preencode: true,
                ..Default::default()
            },
        )
        .throughput();
        let gain = np_pre_big / n2_big;
        assert!(
            (2.0..4.5).contains(&gain),
            "expected ~3x at R=1e6, got {gain}"
        );
    }

    #[test]
    fn rates_decrease_with_population() {
        let cost = CostModel::paper_defaults();
        let small = n2_rates(P, 10, &cost);
        let big = n2_rates(P, 1_000_000, &cost);
        assert!(big.sender < small.sender);
        assert!(big.receiver < small.receiver);
        let small = np_rates(K, P, 10, &cost, NpOptions::default());
        let big = np_rates(K, P, 1_000_000, &cost, NpOptions::default());
        assert!(big.sender < small.sender);
    }

    #[test]
    fn nak_per_packet_barely_matters() {
        // Paper: "reducing the NAKs to one per transmission round ... has
        // only a minor effect on the processing rates".
        let cost = CostModel::paper_defaults();
        let per_round = np_rates(K, P, 1_000_000, &cost, NpOptions::default());
        let per_packet = np_rates(
            K,
            P,
            1_000_000,
            &cost,
            NpOptions {
                nak_per_packet: true,
                ..Default::default()
            },
        );
        let rel_s = (per_round.sender - per_packet.sender).abs() / per_round.sender;
        let rel_r = (per_round.receiver - per_packet.receiver).abs() / per_round.receiver;
        assert!(rel_s < 0.05, "sender rel diff {rel_s}");
        assert!(rel_r < 0.10, "receiver rel diff {rel_r}");
    }

    #[test]
    fn lossless_limits() {
        // p = 0: every packet sent once, no NAKs, no decode.
        let cost = CostModel::paper_defaults();
        let n2 = n2_rates(0.0, 1000, &cost);
        assert!((n2.sender - 1.0 / cost.send_packet).abs() < 1e-6);
        let np = np_rates(K, 0.0, 1000, &cost, NpOptions::default());
        assert!((np.sender - 1.0 / cost.send_packet).abs() < 1e-6);
        assert!((np.receiver - 1.0 / cost.recv_packet).abs() < 1e-6);
    }

    #[test]
    fn throughput_is_min() {
        let r = Rates {
            sender: 10.0,
            receiver: 7.0,
        };
        assert_eq!(r.throughput(), 7.0);
    }

    #[test]
    fn paper_magnitudes() {
        // Fig. 17 is plotted in pkts/msec with values in roughly [0.1, 1.1].
        let cost = CostModel::paper_defaults();
        let n2 = n2_rates(P, 100, &cost);
        let np = np_rates(K, P, 100, &cost, NpOptions::default());
        for v in [n2.sender, n2.receiver, np.sender, np.receiver] {
            let pkts_per_msec = v / 1000.0;
            assert!(
                (0.05..1.5).contains(&pkts_per_msec),
                "rate {pkts_per_msec} pkts/msec"
            );
        }
    }
}
