//! Layered FEC analysis — Section 3.1 (Figs. 3 and 4).
//!
//! An FEC layer below the reliable-multicast (RM) layer groups every `k`
//! data packets, appends `h = n - k` parities, and reconstructs when at
//! least `k` of the `n` arrive. The RM layer above sees a *reduced* loss
//! probability `q(k, n, p)` and still runs plain ARQ (lost originals are
//! retransmitted in later groups).

use crate::numerics::{binom_cdf, sum_series};
use crate::population::Population;

/// Iteration cap for the `E[M']` series (terms decay like `q^i`, so this is
/// never approached in practice; it bounds runtime under pathological
/// inputs).
const SERIES_CAP: u64 = 100_000;
/// Absolute tail tolerance for series truncation.
const SERIES_TOL: f64 = 1e-12;

/// Eq. (2): probability `q(k, n, p)` that the RM receiver misses a given
/// data packet of a TG — the packet itself is lost *and* more than
/// `n - k - 1` of the other `n - 1` block packets are lost, so FEC cannot
/// repair it:
///
/// ```text
///     q = p * (1 - sum_{j=0}^{n-k-1} C(n-1, j) p^j (1-p)^(n-1-j))
///       = p * (1 - BinCdf(n-k-1; n-1, p))
/// ```
///
/// With `n = k` (no parities) this degenerates to `q = p`, the no-FEC case.
///
/// # Panics
/// Panics unless `1 <= k <= n` and `p` is a probability.
pub fn rm_loss_probability(k: usize, n: usize, p: f64) -> f64 {
    assert!(k >= 1 && k <= n, "need 1 <= k <= n, got k={k} n={n}");
    assert!((0.0..=1.0).contains(&p), "p must be a probability");
    if n == k {
        return p;
    }
    let h = (n - k) as u64;
    p * (1.0 - binom_cdf(n as u64 - 1, h - 1, p))
}

/// `E[M']` — expected transmissions of a given data packet until every
/// receiver has it, under per-receiver residual loss `q_r`:
/// `E[M'] = sum_{i>=0} (1 - prod_r (1 - q_r^i))`.
fn expected_data_transmissions(qs: &[(f64, u64)]) -> f64 {
    sum_series(0, SERIES_TOL, SERIES_CAP, |i| {
        // 1 - prod_c (1 - q_c^i)^{count_c}, in stable complementary form.
        let mut ln_prod = 0.0f64;
        for &(q, c) in qs {
            let qi = q.powi(i as i32);
            if qi >= 1.0 {
                return 1.0;
            }
            ln_prod += c as f64 * (-qi).ln_1p();
        }
        -ln_prod.exp_m1()
    })
}

/// Eq. (3)/(7): expected transmissions per *data* packet for layered FEC
/// with TG size `k` and `h` parity packets, over an arbitrary (possibly
/// heterogeneous) independent-loss population. Parities count toward the
/// transmission budget via the `n/k` expansion factor.
///
/// # Panics
/// As for [`rm_loss_probability`].
pub fn expected_transmissions(k: usize, h: usize, pop: &Population) -> f64 {
    let n = k + h;
    let qs: Vec<(f64, u64)> = pop
        .classes()
        .iter()
        .map(|&(p, c)| (rm_loss_probability(k, n, p), c))
        .collect();
    (n as f64 / k as f64) * expected_data_transmissions(&qs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn q_degenerates_without_parities() {
        assert_eq!(rm_loss_probability(7, 7, 0.01), 0.01);
        assert_eq!(rm_loss_probability(1, 1, 0.3), 0.3);
    }

    #[test]
    fn q_decreases_with_parities() {
        let p = 0.01;
        let mut prev = rm_loss_probability(7, 7, p);
        for h in 1..=5 {
            let q = rm_loss_probability(7, 7 + h, p);
            assert!(q < prev, "h={h}: q={q} !< {prev}");
            prev = q;
        }
        // One parity already cuts q by roughly an order of magnitude at
        // p = 1e-2, k = 7: q = p * P(Bin(7, p) >= 1) ~ p * 7p.
        let q1 = rm_loss_probability(7, 8, p);
        assert!((q1 / (p * 7.0 * p) - 1.0).abs() < 0.1, "q1={q1}");
    }

    #[test]
    fn q_zero_and_extreme_p() {
        assert_eq!(rm_loss_probability(7, 10, 0.0), 0.0);
        // p = 1: everything lost, q = 1 * (1 - 0) = 1.
        assert!((rm_loss_probability(7, 10, 1.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn single_receiver_no_fec_closed_form() {
        // R = 1, h = 0: E[M'] = 1/(1-p) (geometric), E[M] = same.
        let p = 0.25;
        let m = expected_transmissions(1, 0, &Population::homogeneous(p, 1));
        assert!((m - 1.0 / (1.0 - p)).abs() < 1e-9, "m={m}");
    }

    #[test]
    fn no_loss_costs_exactly_expansion_factor() {
        let pop = Population::homogeneous(0.0, 1000);
        let m = expected_transmissions(7, 2, &pop);
        assert!((m - 9.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn grows_with_receivers() {
        let mut prev = 0.0;
        for &r in &[1u64, 10, 100, 10_000, 1_000_000] {
            let m = expected_transmissions(7, 2, &Population::homogeneous(0.01, r));
            assert!(m > prev, "R={r}: {m} !> {prev}");
            prev = m;
        }
    }

    #[test]
    fn paper_fig3_shape() {
        // Fig. 3 (p = 0.01, h = 2): at R = 10^6 layered FEC with k = 7 or
        // 20 beats no FEC, while k = 100 with only 2 parities is worse than
        // k = 7.
        let pop = Population::homogeneous(0.01, 1_000_000);
        let no_fec = crate::nofec::expected_transmissions(&pop);
        let k7 = expected_transmissions(7, 2, &pop);
        let k20 = expected_transmissions(20, 2, &pop);
        let k100 = expected_transmissions(100, 2, &pop);
        assert!(k7 < no_fec, "k7={k7} no_fec={no_fec}");
        assert!(k20 < no_fec);
        assert!(k100 > k7, "k100={k100} should underperform k7={k7} at h=2");
    }

    #[test]
    fn paper_fig4_shape() {
        // Fig. 4 (h = 7): k = 100 now beats k = 7 and k = 20 for mid-size
        // populations (1 .. ~200k receivers).
        let pop = Population::homogeneous(0.01, 10_000);
        let k7 = expected_transmissions(7, 7, &pop);
        let k20 = expected_transmissions(20, 7, &pop);
        let k100 = expected_transmissions(100, 7, &pop);
        assert!(k100 < k20 && k20 < k7, "k100={k100} k20={k20} k7={k7}");
    }

    #[test]
    fn small_receiver_counts_pay_parity_overhead() {
        // For R = 1 and tiny loss, layered FEC costs ~ n/k > no-FEC ~ 1.
        let pop = Population::homogeneous(0.01, 1);
        let layered = expected_transmissions(7, 2, &pop);
        let no_fec = crate::nofec::expected_transmissions(&pop);
        assert!(layered > no_fec);
    }

    #[test]
    fn heterogeneous_dominated_by_high_loss() {
        let r = 100_000;
        let clean = expected_transmissions(7, 2, &Population::homogeneous(0.01, r));
        let one_pct = expected_transmissions(7, 2, &Population::two_class(r, 0.01, 0.01, 0.25));
        assert!(one_pct > clean * 1.2, "one_pct={one_pct} clean={clean}");
    }
}
