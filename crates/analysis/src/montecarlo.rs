//! Parallel Monte Carlo estimators for the paper's stochastic models.
//!
//! Every closed form in this crate describes the expectation of a random
//! variable with a short generative definition (max of geometrics,
//! recover-or-retransmit rounds, worst-receiver parity demand, …). This
//! module simulates those *definitions* directly — not the formulas — so
//! implementation errors in either direction surface when the two
//! disagree; the unit tests at the bottom are exactly those cross-checks.
//!
//! Estimation follows the same deterministic-parallel recipe as the
//! scheme simulator: trial `i` draws from a `ChaCha8Rng` seeded with
//! [`pm_par::mix_seed`]`(seed, i)`, trials fan across a [`Pool`] in fixed
//! chunks, and per-chunk [`RunningStat`] accumulators merge in chunk
//! order — an estimate is a pure function of `(parameters, trials, seed)`
//! and is **bit-identical** at every worker count.

use pm_obs::RunningStat;
use pm_par::{mix_seed, Pool};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use crate::population::Population;

/// Trials per work chunk. Fixed so the chunk layout — and with it the
/// floating-point merge order — never depends on the worker count.
const TRIAL_CHUNK: usize = 256;

/// A Monte Carlo point estimate with its sampling uncertainty.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct McEstimate {
    /// Sample mean of the simulated quantity.
    pub mean: f64,
    /// Standard error of `mean` (`NaN` with fewer than two trials).
    pub stderr: f64,
    /// Trials simulated.
    pub trials: u64,
}

impl McEstimate {
    fn from_stat(stat: &RunningStat) -> Self {
        McEstimate {
            mean: stat.mean(),
            stderr: stat.stderr(),
            trials: stat.count(),
        }
    }

    /// Relative deviation of `mean` from a reference value.
    pub fn rel_error(&self, reference: f64) -> f64 {
        (self.mean - reference).abs() / reference.abs()
    }
}

/// Run `trials` independent trials of `sample` across `pool`, each with
/// its own `mix_seed`-derived ChaCha stream, and reduce deterministically.
fn estimate<F>(trials: usize, seed: u64, pool: &Pool, sample: F) -> McEstimate
where
    F: Fn(&mut ChaCha8Rng) -> f64 + Sync,
{
    let stat = pool.par_map_reduce(
        trials,
        TRIAL_CHUNK,
        RunningStat::new,
        |acc, trial| {
            let mut rng = ChaCha8Rng::seed_from_u64(mix_seed(seed, trial as u64));
            acc.push(sample(&mut rng));
        },
        |acc, part| acc.merge(&part),
    );
    McEstimate::from_stat(&stat)
}

/// Geometric number of Bernoulli(`1-p`) attempts until the first success.
fn geometric_trials(rng: &mut ChaCha8Rng, p: f64) -> u64 {
    let mut n = 1;
    while rng.random::<f64>() < p {
        n += 1;
    }
    n
}

/// Bernoulli(`1-p`) packet stream: transmissions needed for `k` receipts.
fn sends_until_k(rng: &mut ChaCha8Rng, k: usize, p: f64) -> u64 {
    let mut got = 0usize;
    let mut sent = 0u64;
    while got < k {
        sent += 1;
        if rng.random::<f64>() >= p {
            got += 1;
        }
    }
    sent
}

/// The Eq. (2) per-receiver non-recovery event for one block: own copy
/// lost AND more than `h-1` of the other `n-1` block packets lost.
fn block_unrecovered(rng: &mut ChaCha8Rng, n: usize, h: usize, p: f64) -> bool {
    let own_lost = rng.random::<f64>() < p;
    let others_lost = (0..n - 1).filter(|_| rng.random::<f64>() < p).count();
    own_lost && others_lost > h - 1
}

/// No-FEC `E[M]` for `r` receivers at loss `p`: the max over receivers of
/// a geometric transmission count (cross-checks
/// [`crate::nofec::expected_transmissions`]).
pub fn nofec_mean_m(p: f64, r: usize, trials: usize, seed: u64, pool: &Pool) -> McEstimate {
    estimate(trials, seed, pool, |rng| {
        (0..r).map(|_| geometric_trials(rng, p)).max().unwrap_or(1) as f64
    })
}

/// Probability that a data packet stays unrecovered after one `(k, n)`
/// FEC block at loss `p` (cross-checks
/// [`crate::layered::rm_loss_probability`], Eq. (2)).
pub fn rm_loss_probability(
    k: usize,
    n: usize,
    p: f64,
    trials: usize,
    seed: u64,
    pool: &Pool,
) -> McEstimate {
    let h = n - k;
    estimate(trials, seed, pool, |rng| {
        f64::from(block_unrecovered(rng, n, h, p))
    })
}

/// Layered-FEC `E[M]` for one data packet over `r` receivers: rounds until
/// every receiver recovers, costed at `n/k` per round (cross-checks
/// [`crate::layered::expected_transmissions`], Eq. (3)).
pub fn layered_mean_m(
    k: usize,
    h: usize,
    p: f64,
    r: usize,
    trials: usize,
    seed: u64,
    pool: &Pool,
) -> McEstimate {
    let n = k + h;
    estimate(trials, seed, pool, |rng| {
        let mut pending: Vec<usize> = (0..r).collect();
        let mut rounds_needed = 0u64;
        while !pending.is_empty() {
            rounds_needed += 1;
            pending.retain(|_| block_unrecovered(rng, n, h, p));
        }
        rounds_needed as f64 * n as f64 / k as f64
    })
}

/// Idealized integrated-FEC `E[M]` over a (possibly heterogeneous)
/// population: each receiver needs `k` successes from its own
/// Bernoulli stream; the group cost is `(k + a + E[max_r L_r]) / k` with
/// `L_r` the extra demand past the `k + a` proactively sent packets
/// (cross-checks [`crate::integrated::lower_bound`], Eqs. (4)–(8)).
pub fn integrated_lower_bound(
    k: usize,
    a: usize,
    pop: &Population,
    trials: usize,
    seed: u64,
    pool: &Pool,
) -> McEstimate {
    let ps = pop.expand();
    estimate(trials, seed, pool, |rng| {
        let worst = ps
            .iter()
            .map(|&p| sends_until_k(rng, k, p).saturating_sub((k + a) as u64))
            .max()
            .unwrap_or(0);
        (worst as f64 + (k + a) as f64) / k as f64
    })
}

/// Expected transmission rounds `E[T]` for a `k`-packet group over `r`
/// receivers at loss `p`: per slot a geometric round count, maxed over
/// slots and receivers (cross-checks [`crate::rounds::expected_rounds`],
/// Eq. (17)).
pub fn expected_rounds(
    k: usize,
    p: f64,
    r: usize,
    trials: usize,
    seed: u64,
    pool: &Pool,
) -> McEstimate {
    estimate(trials, seed, pool, |rng| {
        (0..r)
            .map(|_| (0..k).map(|_| geometric_trials(rng, p)).max().unwrap_or(1))
            .max()
            .unwrap_or(1) as f64
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::integrated;
    use crate::layered;
    use crate::nofec;
    use crate::rounds;

    /// The cross-check pool: 2 workers exercises the parallel path even
    /// on single-core CI hosts.
    fn pool() -> Pool {
        Pool::new(2)
    }

    #[test]
    fn mc_nofec_expected_transmissions() {
        let (p, r) = (0.1, 40usize);
        let mc = nofec_mean_m(p, r, 30_000, 1, &pool());
        let analytic = nofec::expected_transmissions(&Population::homogeneous(p, r as u64));
        assert!(
            mc.rel_error(analytic) < 0.02,
            "MC {} vs analytic {analytic}",
            mc.mean
        );
    }

    #[test]
    fn mc_rm_loss_probability_eq2() {
        let (k, h, p) = (7usize, 2usize, 0.05);
        let mc = rm_loss_probability(k, k + h, p, 2_000_000, 2, &pool());
        let analytic = layered::rm_loss_probability(k, k + h, p);
        assert!(
            mc.rel_error(analytic) < 0.05,
            "MC {} vs analytic {analytic}",
            mc.mean
        );
    }

    #[test]
    fn mc_layered_expected_transmissions() {
        let (k, h, p, r) = (7usize, 1usize, 0.05, 20usize);
        let mc = layered_mean_m(k, h, p, r, 20_000, 3, &pool());
        let analytic = layered::expected_transmissions(k, h, &Population::homogeneous(p, r as u64));
        assert!(
            mc.rel_error(analytic) < 0.03,
            "MC {} vs analytic {analytic}",
            mc.mean
        );
    }

    #[test]
    fn mc_integrated_lower_bound() {
        let (k, a, p, r) = (7usize, 0usize, 0.1, 25usize);
        let pop = Population::homogeneous(p, r as u64);
        let mc = integrated_lower_bound(k, a, &pop, 30_000, 4, &pool());
        let analytic = integrated::lower_bound(k, a, &pop);
        assert!(
            mc.rel_error(analytic) < 0.02,
            "MC {} vs analytic {analytic}",
            mc.mean
        );
    }

    #[test]
    fn mc_integrated_lower_bound_with_proactive_parities() {
        let (k, a, p, r) = (5usize, 2usize, 0.2, 10usize);
        let pop = Population::homogeneous(p, r as u64);
        let mc = integrated_lower_bound(k, a, &pop, 30_000, 5, &pool());
        let analytic = integrated::lower_bound(k, a, &pop);
        assert!(
            mc.rel_error(analytic) < 0.02,
            "MC {} vs analytic {analytic}",
            mc.mean
        );
    }

    #[test]
    fn mc_hetero_integrated() {
        let (k, r) = (7usize, 20usize);
        let pop = Population::two_class(r as u64, 0.25, 0.01, 0.25);
        let mc = integrated_lower_bound(k, 0, &pop, 30_000, 6, &pool());
        let analytic = integrated::lower_bound(k, 0, &pop);
        assert!(
            mc.rel_error(analytic) < 0.02,
            "MC {} vs analytic {analytic}",
            mc.mean
        );
    }

    #[test]
    fn mc_rounds_model() {
        let (k, p, r) = (20usize, 0.05, 15usize);
        let mc = expected_rounds(k, p, r, 30_000, 7, &pool());
        let analytic = rounds::expected_rounds(k, &Population::homogeneous(p, r as u64));
        assert!(
            mc.rel_error(analytic) < 0.02,
            "MC {} vs analytic {analytic}",
            mc.mean
        );
    }

    #[test]
    fn estimates_are_bit_identical_across_worker_counts() {
        // The determinism contract inherited from pm-par: same
        // (parameters, trials, seed) ⇒ same bits, any pool.
        let pop = Population::homogeneous(0.1, 12);
        let serial = integrated_lower_bound(7, 1, &pop, 4_000, 9, &Pool::serial());
        for workers in [2, 3, 5] {
            let par = integrated_lower_bound(7, 1, &pop, 4_000, 9, &Pool::new(workers));
            assert_eq!(
                serial.mean.to_bits(),
                par.mean.to_bits(),
                "mean @ {workers} workers"
            );
            assert_eq!(
                serial.stderr.to_bits(),
                par.stderr.to_bits(),
                "stderr @ {workers} workers"
            );
            assert_eq!(serial.trials, par.trials);
        }
    }

    #[test]
    fn mc_finite_integrated_components() {
        // The finite-h expression is assembled from two stochastic
        // quantities; validate each against a direct simulation of its
        // definition. The rejection-sampling loop below draws an *a
        // priori unknown* number of samples per kept trial, so it stays
        // on a single sequential stream rather than the per-trial
        // parallel harness.
        //
        // (a) E[B]: per block, a receiver still missing the packet fails
        //     to recover it iff its own copy is lost AND more than h-1 of
        //     the other n-1 block packets are lost (the q(k,n,p) event);
        //     the packet needs a new block while any receiver remains
        //     pending.
        let (k, h, p, r) = (7usize, 2usize, 0.1, 10usize);
        let n = k + h;
        let trials = 40_000;
        let mut g = ChaCha8Rng::seed_from_u64(8);
        let mut total_blocks = 0u64;
        for _ in 0..trials {
            let mut pending = r;
            let mut blocks = 0u64;
            while pending > 0 {
                blocks += 1;
                let mut still = 0usize;
                for _ in 0..pending {
                    if block_unrecovered(&mut g, n, h, p) {
                        still += 1;
                    }
                }
                pending = still;
            }
            total_blocks += blocks;
        }
        let mc_b = total_blocks as f64 / trials as f64;
        let q = layered::rm_loss_probability(k, n, p);
        let analytic_b = crate::numerics::sum_series(0, 1e-12, 100_000, |i| {
            crate::numerics::one_minus_pow_one_minus(q.powi(i as i32), r as f64)
        });
        assert!(
            (mc_b - analytic_b).abs() / analytic_b < 0.02,
            "E[B]: MC {mc_b} vs analytic {analytic_b}"
        );

        // (b) E[L | L <= h]: rejection-sample the max over receivers of
        //     the negative-binomial extra demand, conditioned on <= h.
        let mut kept = 0u64;
        let mut total_l = 0u64;
        let mut attempts = 0u64;
        while kept < 20_000 && attempts < 10_000_000 {
            attempts += 1;
            let worst = (0..r)
                .map(|_| sends_until_k(&mut g, k, p) - k as u64)
                .max()
                .unwrap();
            if worst <= h as u64 {
                kept += 1;
                total_l += worst;
            }
        }
        assert!(
            kept >= 1000,
            "conditioning event too rare for the test setup"
        );
        let mc_l = total_l as f64 / kept as f64;

        // Recover the analytic conditional mean by inverting the
        // published finite() assembly with the analytic E[B].
        let analytic_total = integrated::finite(k, h, 0, &Population::homogeneous(p, r as u64));
        let analytic_l = analytic_total * k as f64 - (analytic_b - 1.0) * n as f64 - k as f64;
        assert!(
            (mc_l - analytic_l).abs() < 0.05 * (1.0 + analytic_l),
            "E[L|L<=h]: MC {mc_l} vs analytic {analytic_l}"
        );
    }
}
