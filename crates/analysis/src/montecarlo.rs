//! Monte-Carlo cross-checks: every analytical expression is validated
//! against a direct stochastic simulation of the *model assumptions* (not
//! of the formulas), so implementation errors in either direction surface.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use crate::integrated;
use crate::layered;
use crate::nofec;
use crate::population::Population;
use crate::rounds;

fn rng(seed: u64) -> ChaCha8Rng {
    ChaCha8Rng::seed_from_u64(seed)
}

/// Geometric number of trials until first success with success prob `1-p`.
fn geometric_trials(rng: &mut ChaCha8Rng, p: f64) -> u64 {
    let mut n = 1;
    while rng.random::<f64>() < p {
        n += 1;
    }
    n
}

#[test]
fn mc_nofec_expected_transmissions() {
    let (p, r, trials) = (0.1, 40usize, 30_000);
    let mut g = rng(1);
    let mut total = 0u64;
    for _ in 0..trials {
        let m = (0..r).map(|_| geometric_trials(&mut g, p)).max().unwrap();
        total += m;
    }
    let mc = total as f64 / trials as f64;
    let analytic = nofec::expected_transmissions(&Population::homogeneous(p, r as u64));
    assert!(
        (mc - analytic).abs() / analytic < 0.02,
        "MC {mc} vs analytic {analytic}"
    );
}

#[test]
fn mc_rm_loss_probability_eq2() {
    // q(k, n, p): packet lost AND more than h-1 of the other n-1 lost.
    let (k, h, p) = (7usize, 2usize, 0.05);
    let n = k + h;
    let trials = 2_000_000;
    let mut g = rng(2);
    let mut unrecovered = 0u64;
    for _ in 0..trials {
        let own_lost = g.random::<f64>() < p;
        let others_lost = (0..n - 1).filter(|_| g.random::<f64>() < p).count();
        if own_lost && others_lost > h - 1 {
            unrecovered += 1;
        }
    }
    let mc = unrecovered as f64 / trials as f64;
    let analytic = layered::rm_loss_probability(k, n, p);
    assert!(
        (mc - analytic).abs() / analytic < 0.05,
        "MC {mc} vs analytic {analytic}"
    );
}

#[test]
fn mc_layered_expected_transmissions() {
    // Simulate the layered model end to end for one data packet: each
    // round the packet rides in a fresh FEC block; receiver r recovers it
    // unless it loses the packet and more than h-1 of the other n-1.
    let (k, h, p, r) = (7usize, 1usize, 0.05, 20usize);
    let n = k + h;
    let trials = 20_000;
    let mut g = rng(3);
    let mut total_rounds = 0u64;
    for _ in 0..trials {
        let mut pending: Vec<usize> = (0..r).collect();
        let mut rounds_needed = 0u64;
        while !pending.is_empty() {
            rounds_needed += 1;
            pending.retain(|_| {
                let own_lost = g.random::<f64>() < p;
                let others = (0..n - 1).filter(|_| g.random::<f64>() < p).count();
                own_lost && others > h - 1
            });
        }
        total_rounds += rounds_needed;
    }
    let mc = (total_rounds as f64 / trials as f64) * n as f64 / k as f64;
    let analytic = layered::expected_transmissions(k, h, &Population::homogeneous(p, r as u64));
    assert!(
        (mc - analytic).abs() / analytic < 0.03,
        "MC {mc} vs analytic {analytic}"
    );
}

#[test]
fn mc_integrated_lower_bound() {
    // Idealized integrated FEC: receiver r needs k successes from an iid
    // Bernoulli(1-p) packet stream; L_r = trials - (k + a).
    let (k, a, p, r) = (7usize, 0usize, 0.1, 25usize);
    let trials = 30_000;
    let mut g = rng(4);
    let mut total_l = 0u64;
    for _ in 0..trials {
        let mut worst = 0u64;
        for _ in 0..r {
            let mut got = 0usize;
            let mut sent = 0u64;
            // The first k+a packets arrive as a batch; then one at a time.
            while got < k {
                sent += 1;
                if g.random::<f64>() >= p {
                    got += 1;
                }
            }
            let l = sent.saturating_sub((k + a) as u64);
            worst = worst.max(l);
        }
        total_l += worst;
    }
    let mc = (total_l as f64 / trials as f64 + (k + a) as f64) / k as f64;
    let analytic = integrated::lower_bound(k, a, &Population::homogeneous(p, r as u64));
    assert!(
        (mc - analytic).abs() / analytic < 0.02,
        "MC {mc} vs analytic {analytic}"
    );
}

#[test]
fn mc_integrated_lower_bound_with_proactive_parities() {
    let (k, a, p, r) = (5usize, 2usize, 0.2, 10usize);
    let trials = 30_000;
    let mut g = rng(5);
    let mut total_l = 0u64;
    for _ in 0..trials {
        let mut worst = 0u64;
        for _ in 0..r {
            let mut got = 0usize;
            let mut sent = 0u64;
            while got < k {
                sent += 1;
                if g.random::<f64>() >= p {
                    got += 1;
                }
            }
            worst = worst.max(sent.saturating_sub((k + a) as u64));
        }
        total_l += worst;
    }
    let mc = (total_l as f64 / trials as f64 + (k + a) as f64) / k as f64;
    let analytic = integrated::lower_bound(k, a, &Population::homogeneous(p, r as u64));
    assert!(
        (mc - analytic).abs() / analytic < 0.02,
        "MC {mc} vs analytic {analytic}"
    );
}

#[test]
fn mc_hetero_integrated() {
    let (k, r) = (7usize, 20usize);
    let pop = Population::two_class(r as u64, 0.25, 0.01, 0.25);
    let ps = pop.expand();
    let trials = 30_000;
    let mut g = rng(6);
    let mut total_l = 0u64;
    for _ in 0..trials {
        let mut worst = 0u64;
        for &p in &ps {
            let mut got = 0usize;
            let mut sent = 0u64;
            while got < k {
                sent += 1;
                if g.random::<f64>() >= p {
                    got += 1;
                }
            }
            worst = worst.max(sent - k as u64);
        }
        total_l += worst;
    }
    let mc = (total_l as f64 / trials as f64 + k as f64) / k as f64;
    let analytic = integrated::lower_bound(k, 0, &pop);
    assert!(
        (mc - analytic).abs() / analytic < 0.02,
        "MC {mc} vs analytic {analytic}"
    );
}

#[test]
fn mc_rounds_model() {
    // Ayanoglu-style rounds: each of the k slots independently takes a
    // geometric number of rounds; T_r is their max, T the max over
    // receivers.
    let (k, p, r) = (20usize, 0.05, 15usize);
    let trials = 30_000;
    let mut g = rng(7);
    let mut total = 0u64;
    for _ in 0..trials {
        let t = (0..r)
            .map(|_| (0..k).map(|_| geometric_trials(&mut g, p)).max().unwrap())
            .max()
            .unwrap();
        total += t;
    }
    let mc = total as f64 / trials as f64;
    let analytic = rounds::expected_rounds(k, &Population::homogeneous(p, r as u64));
    assert!(
        (mc - analytic).abs() / analytic < 0.02,
        "MC {mc} vs analytic {analytic}"
    );
}

#[test]
fn mc_finite_integrated_components() {
    // The finite-h expression is assembled from two stochastic quantities;
    // validate each against a direct simulation of its definition.
    //
    // (a) E[B]: per block, a receiver still missing the packet fails to
    //     recover it iff its own copy is lost AND more than h-1 of the
    //     other n-1 block packets are lost (the q(k,n,p) event); the
    //     packet needs a new block while any receiver remains pending.
    let (k, h, p, r) = (7usize, 2usize, 0.1, 10usize);
    let n = k + h;
    let trials = 40_000;
    let mut g = rng(8);
    let mut total_blocks = 0u64;
    for _ in 0..trials {
        let mut pending = r;
        let mut blocks = 0u64;
        while pending > 0 {
            blocks += 1;
            let mut still = 0usize;
            for _ in 0..pending {
                let own_lost = g.random::<f64>() < p;
                let others = (0..n - 1).filter(|_| g.random::<f64>() < p).count();
                if own_lost && others > h - 1 {
                    still += 1;
                }
            }
            pending = still;
        }
        total_blocks += blocks;
    }
    let mc_b = total_blocks as f64 / trials as f64;
    let q = layered::rm_loss_probability(k, n, p);
    let analytic_b = crate::numerics::sum_series(0, 1e-12, 100_000, |i| {
        crate::numerics::one_minus_pow_one_minus(q.powi(i as i32), r as f64)
    });
    assert!(
        (mc_b - analytic_b).abs() / analytic_b < 0.02,
        "E[B]: MC {mc_b} vs analytic {analytic_b}"
    );

    // (b) E[L | L <= h]: rejection-sample the max over receivers of the
    //     negative-binomial extra demand, conditioned on <= h.
    let mut kept = 0u64;
    let mut total_l = 0u64;
    let mut attempts = 0u64;
    while kept < 20_000 && attempts < 10_000_000 {
        attempts += 1;
        let mut worst = 0u64;
        for _ in 0..r {
            let mut got = 0usize;
            let mut sent = 0u64;
            while got < k {
                sent += 1;
                if g.random::<f64>() >= p {
                    got += 1;
                }
            }
            worst = worst.max(sent - k as u64);
        }
        if worst <= h as u64 {
            kept += 1;
            total_l += worst;
        }
    }
    assert!(
        kept >= 1000,
        "conditioning event too rare for the test setup"
    );
    let mc_l = total_l as f64 / kept as f64;

    // Recover the analytic conditional mean by inverting the published
    // finite() assembly with the analytic E[B].
    let analytic_total = integrated::finite(k, h, 0, &Population::homogeneous(p, r as u64));
    let analytic_l = analytic_total * k as f64 - (analytic_b - 1.0) * n as f64 - k as f64;
    assert!(
        (mc_l - analytic_l).abs() < 0.05 * (1.0 + analytic_l),
        "E[L|L<=h]: MC {mc_l} vs analytic {analytic_l}"
    );
}
