//! Plain ARQ without FEC — the baseline of every figure.
//!
//! Every lost packet is retransmitted (multicast) until all receivers have
//! it. With independent loss `p_r` per receiver, the number of transmissions
//! `M` of a packet satisfies `P(M <= i) = prod_r (1 - p_r^i)` and
//! `E[M] = sum_{i>=0} (1 - P(M <= i))`. This is the `k = n` degenerate case
//! of the layered formula.

use crate::layered;
use crate::population::Population;

/// Expected transmissions per packet for no-FEC reliable multicast over an
/// independent-loss population.
pub fn expected_transmissions(pop: &Population) -> f64 {
    // Layered with h = 0 and k = 1 reduces exactly to the ARQ formula
    // (q = p, expansion factor 1).
    layered::expected_transmissions(1, 0, pop)
}

/// Per-receiver expectation `E[M_r] = 1 / (1 - p)`: the geometric mean
/// number of transmissions until one receiver with loss `p` gets a packet.
/// Used by the end-host throughput model.
///
/// # Panics
/// Panics unless `p` is in `[0, 1)`.
pub fn per_receiver_mean(p: f64) -> f64 {
    assert!((0.0..1.0).contains(&p), "p must be in [0,1)");
    1.0 / (1.0 - p)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lossless_is_one() {
        assert!(
            (expected_transmissions(&Population::homogeneous(0.0, 1_000_000)) - 1.0).abs() < 1e-12
        );
    }

    #[test]
    fn single_receiver_geometric() {
        for p in [0.01, 0.1, 0.25] {
            let m = expected_transmissions(&Population::homogeneous(p, 1));
            assert!((m - 1.0 / (1.0 - p)).abs() < 1e-9, "p={p} m={m}");
        }
    }

    #[test]
    fn two_receivers_closed_form() {
        // E[M] for R=2: sum_i (1 - (1-p^i)^2) = sum_i (2 p^i - p^{2i})
        //             = 1 + 2p/(1-p) - p^2/(1-p^2).
        let p: f64 = 0.2;
        let expect = 1.0 + 2.0 * p / (1.0 - p) - p * p / (1.0 - p * p);
        let m = expected_transmissions(&Population::homogeneous(p, 2));
        assert!((m - expect).abs() < 1e-9, "m={m} expect={expect}");
    }

    #[test]
    fn paper_fig9_shape() {
        // Fig. 9: at R = 10^6, 1% high-loss receivers (p = 0.25) roughly
        // double E[M] relative to the clean population.
        let clean = expected_transmissions(&Population::homogeneous(0.01, 1_000_000));
        let dirty = expected_transmissions(&Population::two_class(1_000_000, 0.01, 0.01, 0.25));
        let ratio = dirty / clean;
        assert!(
            (1.5..=2.6).contains(&ratio),
            "expected ~2x degradation, got {ratio} ({clean} -> {dirty})"
        );
        // ...but one high-loss receiver among 100 barely moves it.
        let small_clean = expected_transmissions(&Population::homogeneous(0.01, 100));
        let small_dirty = expected_transmissions(&Population::two_class(100, 0.01, 0.01, 0.25));
        assert!(
            small_dirty / small_clean < 1.45,
            "{small_dirty} / {small_clean}"
        );
    }

    #[test]
    fn log_growth_in_receivers() {
        // E[M] grows like log(R)/log(1/p): check the increments per decade
        // are roughly constant.
        let m = |r| expected_transmissions(&Population::homogeneous(0.01, r));
        let d1 = m(1_000) - m(100);
        let d2 = m(10_000) - m(1_000);
        let d3 = m(100_000) - m(10_000);
        assert!(
            (d1 - d2).abs() < 0.1 && (d2 - d3).abs() < 0.1,
            "{d1} {d2} {d3}"
        );
        // Per-decade growth should be ~ log10 / log(1/p) = 2.3/4.6 = 0.5.
        assert!((d2 - 0.5).abs() < 0.1, "d2={d2}");
    }
}
