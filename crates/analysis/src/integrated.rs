//! Integrated FEC (hybrid ARQ) analysis — Section 3.2 (Figs. 5–8, 10).
//!
//! The generic integrated protocol: the sender multicasts a TG of `k` data
//! packets plus `a <= h` proactive parities; receivers that miss packets
//! request more parities (one new parity repairs a *different* loss at every
//! receiver), and only when all `h` parities are exhausted do unrecovered
//! packets roll into a new TG.
//!
//! * [`lower_bound`] — Eqs. (4)–(6): the unachievable `n = inf` bound where
//!   the sender never runs out of parities. `L_r` (extra packets needed by
//!   one receiver) is negative-binomial; `L = max_r L_r` over the
//!   population.
//! * [`finite`] — the `n < inf` expression: the packet is transmitted in
//!   `B` blocks (`B - 1` exhausted blocks of `n` packets each, then a
//!   successful block of `k + a + E[L | L <= h - a]` packets).
//!
//! Both accept heterogeneous [`Population`]s (Eq. (8): `P(L <= m) =
//! prod_r P(L_r <= m)`).

use crate::layered::rm_loss_probability;
use crate::numerics::{binom_cdf, ln_choose, sum_series};
use crate::population::Population;

const SERIES_CAP: u64 = 100_000;
const SERIES_TOL: f64 = 1e-12;
/// Build each `L_r` pmf until this much mass is covered (the remaining tail
/// is orders of magnitude below what an `R = 10^6` max statistic can see).
const PMF_MASS: f64 = 1.0 - 1e-18;
const PMF_CAP: usize = 200_000;

/// Distribution of `L_r` — the number of *additional* packet transmissions
/// a single receiver with loss probability `p` needs beyond the initial
/// `k + a`, in the idealized integrated scheme:
///
/// ```text
///     P(L_r = 0) = sum_{j=0}^{a} C(k+a, j) p^j (1-p)^(k+a-j)
///     P(L_r = m) = C(k+a+m-1, k-1) p^(m+a) (1-p)^k     (m >= 1)
/// ```
///
/// (`m >= 1` is the negative-binomial event "the (k+a+m)-th packet is the
/// k-th success".)
#[derive(Debug, Clone)]
pub struct ExtraTransmissions {
    pmf: Vec<f64>,
    /// Suffix sums: `tail[m] = P(L_r > m)`, same length as `pmf`.
    tail: Vec<f64>,
}

impl ExtraTransmissions {
    /// Build the distribution for TG size `k`, `a` proactive parities and
    /// loss probability `p`.
    ///
    /// # Panics
    /// Panics unless `k >= 1` and `p` is in `[0, 1)`.
    pub fn new(k: usize, a: usize, p: f64) -> Self {
        assert!(k >= 1, "k must be at least 1");
        assert!((0.0..1.0).contains(&p), "p must be in [0, 1), got {p}");
        let (k64, a64) = (k as u64, a as u64);
        let mut pmf = vec![binom_cdf(k64 + a64, a64, p)];
        if p > 0.0 {
            let ln_p = p.ln();
            let ln_1p = (-p).ln_1p();
            let mut mass = pmf[0];
            let mut m = 1u64;
            while mass < PMF_MASS && (m as usize) < PMF_CAP {
                let ln_term = ln_choose(k64 + a64 + m - 1, k64 - 1)
                    + (m + a64) as f64 * ln_p
                    + k64 as f64 * ln_1p;
                let t = ln_term.exp();
                pmf.push(t);
                mass += t;
                m += 1;
            }
        }
        // Exact-ish suffix sums (summed smallest-first for accuracy).
        let mut tail = vec![0.0f64; pmf.len()];
        let mut acc = 0.0f64;
        for m in (0..pmf.len()).rev() {
            tail[m] = acc; // P(L_r > m) counts strictly-greater outcomes
            acc += pmf[m];
        }
        // Any truncated mass beyond the built range belongs to every tail.
        let missing = (1.0 - acc).max(0.0);
        for t in tail.iter_mut() {
            *t += missing;
        }
        ExtraTransmissions { pmf, tail }
    }

    /// `P(L_r = m)`.
    pub fn pmf(&self, m: usize) -> f64 {
        self.pmf.get(m).copied().unwrap_or(0.0)
    }

    /// `P(L_r <= m)`.
    pub fn cdf(&self, m: usize) -> f64 {
        1.0 - self.survival(m)
    }

    /// `P(L_r > m)` — kept explicitly because the `R`-receiver maximum
    /// needs the tail to full relative precision.
    pub fn survival(&self, m: usize) -> f64 {
        self.tail.get(m).copied().unwrap_or(0.0)
    }

    /// `E[L_r]` (by tail summation).
    pub fn mean(&self) -> f64 {
        self.tail.iter().sum()
    }
}

/// `E[L]` with `L = max_r L_r` over the population: `E[L] = sum_{m>=0}
/// (1 - prod_r P(L_r <= m))`, each factor grouped per class.
fn expected_max_extra(dists: &[(ExtraTransmissions, u64)]) -> f64 {
    sum_series(0, SERIES_TOL, SERIES_CAP, |m| {
        let mut ln_prod = 0.0f64;
        for (d, count) in dists {
            let s = d.survival(m as usize);
            if s >= 1.0 {
                return 1.0;
            }
            ln_prod += *count as f64 * (-s).ln_1p();
        }
        -ln_prod.exp_m1()
    })
}

fn class_distributions(k: usize, a: usize, pop: &Population) -> Vec<(ExtraTransmissions, u64)> {
    pop.classes()
        .iter()
        .map(|&(p, c)| (ExtraTransmissions::new(k, a, p), c))
        .collect()
}

/// Eqs. (4)–(6): the idealized (`n = inf`) integrated-FEC expected number
/// of transmissions per data packet, `E[M] = (E[L] + k + a) / k`.
///
/// # Panics
/// Panics unless `k >= 1`.
pub fn lower_bound(k: usize, a: usize, pop: &Population) -> f64 {
    let dists = class_distributions(k, a, pop);
    (expected_max_extra(&dists) + (k + a) as f64) / k as f64
}

/// Finite-parity integrated FEC: TG size `k`, `h` total parities of which
/// `a` are sent proactively with the data.
///
/// The packet is carried by `B` blocks: the first `B - 1` exhaust all
/// `n = k + h` packets, the last uses `k + a` plus the conditional mean of
/// on-demand parities `E[L | L <= h - a]`:
///
/// ```text
///     E[M] = ((E[B] - 1) n  +  k + a + E[L | L <= h-a]) / k
/// ```
///
/// where `E[B]` is the per-block ARQ expectation under the residual block
/// failure probability `q(k, n, p)` of Eq. (2). With `h = 0` this
/// degenerates exactly to the no-FEC ARQ expectation.
///
/// # Panics
/// Panics unless `k >= 1` and `a <= h`.
pub fn finite(k: usize, h: usize, a: usize, pop: &Population) -> f64 {
    assert!(a <= h, "proactive parities a={a} cannot exceed total h={h}");
    let n = k + h;

    // E[B]: blocks carrying the packet until everyone decodes it.
    let qs: Vec<(f64, u64)> = pop
        .classes()
        .iter()
        .map(|&(p, c)| (rm_loss_probability(k, n, p), c))
        .collect();
    let expected_blocks = sum_series(0, SERIES_TOL, SERIES_CAP, |i| {
        let mut ln_prod = 0.0f64;
        for &(q, c) in &qs {
            let qi = q.powi(i as i32);
            if qi >= 1.0 {
                return 1.0;
            }
            ln_prod += c as f64 * (-qi).ln_1p();
        }
        -ln_prod.exp_m1()
    });

    // E[L | L <= cap] over the population maximum. The conditioning event
    // P(L <= cap) underflows to zero for large R (every packet's first
    // block fails for someone), so the ratio P(L <= m)/P(L <= cap) is
    // formed in log space where it stays exact.
    let cap = h - a;
    let cond_mean = if cap == 0 {
        0.0
    } else {
        let dists = class_distributions(k, a, pop);
        let ln_p_le = |m: usize| -> f64 {
            let mut ln_prod = 0.0f64;
            for (d, count) in &dists {
                let s = d.survival(m);
                if s >= 1.0 {
                    return f64::NEG_INFINITY;
                }
                ln_prod += *count as f64 * (-s).ln_1p();
            }
            ln_prod
        };
        let ln_cap = ln_p_le(cap);
        if ln_cap == f64::NEG_INFINITY {
            cap as f64 // success literally requires the cap (p -> 1 corner)
        } else {
            (0..cap)
                .map(|m| -(ln_p_le(m) - ln_cap).min(0.0).exp_m1())
                .sum()
        }
    };

    ((expected_blocks - 1.0) * n as f64 + (k + a) as f64 + cond_mean) / k as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nofec;

    #[test]
    fn extra_distribution_sums_to_one() {
        for &(k, a, p) in &[
            (7usize, 0usize, 0.01),
            (7, 2, 0.25),
            (100, 0, 0.1),
            (1, 0, 0.5),
        ] {
            let d = ExtraTransmissions::new(k, a, p);
            let total: f64 = (0..200_000).map(|m| d.pmf(m)).sum();
            assert!((total - 1.0).abs() < 1e-9, "k={k} a={a} p={p}: {total}");
            // cdf/survival consistency.
            for m in 0..10 {
                assert!((d.cdf(m) + d.survival(m) - 1.0).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn k1_is_geometric() {
        // k = 1, a = 0: P(L_r = m) = p^m (1-p); E[L_r] = p/(1-p).
        let p = 0.3;
        let d = ExtraTransmissions::new(1, 0, p);
        for m in 0..10 {
            let expect = p.powi(m as i32) * (1.0 - p);
            assert!((d.pmf(m) - expect).abs() < 1e-12, "m={m}");
        }
        assert!((d.mean() - p / (1.0 - p)).abs() < 1e-10);
    }

    #[test]
    fn lossless_lower_bound() {
        let pop = Population::homogeneous(0.0, 12345);
        assert!((lower_bound(7, 0, &pop) - 1.0).abs() < 1e-12);
        assert!((lower_bound(7, 2, &pop) - 9.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn single_receiver_k1_matches_arq() {
        let pop = Population::homogeneous(0.25, 1);
        let ib = lower_bound(1, 0, &pop);
        let arq = nofec::expected_transmissions(&pop);
        assert!((ib - arq).abs() < 1e-9, "ib={ib} arq={arq}");
    }

    #[test]
    fn finite_h0_is_nofec() {
        for &r in &[1u64, 100, 100_000] {
            let pop = Population::homogeneous(0.01, r);
            let f = finite(7, 0, 0, &pop);
            let arq = nofec::expected_transmissions(&pop);
            assert!((f - arq).abs() < 1e-9, "R={r}: finite={f} arq={arq}");
        }
    }

    #[test]
    fn finite_converges_to_lower_bound() {
        // Fig. 6: at k = 7, p = 0.01, three on-demand parities track the
        // bound closely through R ~ 1e4 and start peeling away visibly only
        // beyond 1e5 ("up to 100,000 to 200,000" in the paper).
        let pop4 = Population::homogeneous(0.01, 10_000);
        let lb4 = lower_bound(7, 0, &pop4);
        let h3_4 = finite(7, 3, 0, &pop4);
        assert!((h3_4 - lb4) / lb4 < 0.01, "R=1e4: h3={h3_4} lb={lb4}");
        let pop5 = Population::homogeneous(0.01, 100_000);
        let lb5 = lower_bound(7, 0, &pop5);
        let h3_5 = finite(7, 3, 0, &pop5);
        assert!((h3_5 - lb5) / lb5 < 0.10, "R=1e5: h3={h3_5} lb={lb5}");
        let h40 = finite(7, 40, 0, &pop5);
        assert!((h40 - lb5).abs() / lb5 < 1e-6, "h40={h40} lb={lb5}");
    }

    #[test]
    fn finite_not_monotone_in_h_at_large_r() {
        // A real (and initially surprising) property of the finite-h model:
        // at R = 1e5 with k = 7, p = 0.01 nearly every packet's first block
        // fails *for someone*, so each extra available parity adds ~1/k to
        // the cost of every exhausted block while barely improving block
        // success — (7,9) transmits MORE than (7,8). Pin this down so a
        // future "fix" doesn't silently change the model.
        let pop = Population::homogeneous(0.01, 100_000);
        let h1 = finite(7, 1, 0, &pop);
        let h2 = finite(7, 2, 0, &pop);
        assert!(h2 > h1, "expected non-monotonicity: h1={h1} h2={h2}");
        // Both still sit between the bound and no-FEC.
        let lb = lower_bound(7, 0, &pop);
        let arq = nofec::expected_transmissions(&pop);
        for v in [h1, h2] {
            assert!(v >= lb - 1e-9 && v <= arq + 1e-9, "{lb} <= {v} <= {arq}");
        }
    }

    #[test]
    fn paper_fig5_integrated_beats_layered() {
        let pop = Population::homogeneous(0.01, 1_000_000);
        let layered = crate::layered::expected_transmissions(7, 2, &pop);
        let integ = lower_bound(7, 0, &pop);
        let no_fec = nofec::expected_transmissions(&pop);
        assert!(
            integ < layered && layered < no_fec,
            "{integ} < {layered} < {no_fec}"
        );
    }

    #[test]
    fn paper_fig7_large_k_near_one() {
        // Fig. 7: k = 100 keeps E[M] near 1 even at R = 1e6.
        let pop = Population::homogeneous(0.01, 1_000_000);
        let k7 = lower_bound(7, 0, &pop);
        let k20 = lower_bound(20, 0, &pop);
        let k100 = lower_bound(100, 0, &pop);
        assert!(k100 < k20 && k20 < k7, "{k100} < {k20} < {k7}");
        assert!(k100 < 1.3, "k100={k100} should be close to 1");
        assert!(k7 > 1.3, "k7={k7} should be visibly above 1");
    }

    #[test]
    fn paper_fig8_insensitive_to_p_at_large_k() {
        // Fig. 8: for k = 100 at R = 1000, E[M] stays low across p in
        // [1e-3, 1e-1].
        let at = |p| lower_bound(100, 0, &Population::homogeneous(p, 1000));
        let lo = at(0.001);
        let hi = at(0.1);
        assert!(hi < 1.6, "k=100 at p=0.1: {hi}");
        assert!(hi - lo < 0.55, "spread {lo}..{hi} too wide");
        // Whereas no-FEC explodes over the same range.
        let arq_hi = nofec::expected_transmissions(&Population::homogeneous(0.1, 1000));
        assert!(arq_hi > 3.0, "{arq_hi}");
    }

    #[test]
    fn paper_fig10_hetero_integrated() {
        // Fig. 10: 1% high-loss receivers at R = 1e6 roughly double the
        // integrated E[M] too.
        let clean = lower_bound(7, 0, &Population::homogeneous(0.01, 1_000_000));
        let dirty = lower_bound(7, 0, &Population::two_class(1_000_000, 0.01, 0.01, 0.25));
        let ratio = dirty / clean;
        assert!((1.4..=2.7).contains(&ratio), "ratio={ratio}");
    }

    #[test]
    fn proactive_parities_trade_bandwidth_for_latency() {
        // More proactive parities cannot reduce E[M] below the a = 0 bound
        // at R = 1 (they are sent whether needed or not) ...
        let pop = Population::homogeneous(0.01, 1);
        let a0 = lower_bound(7, 0, &pop);
        let a2 = lower_bound(7, 2, &pop);
        assert!(a2 > a0, "a2={a2} a0={a0}");
        // ... but at huge R the proactive parities were mostly needed
        // anyway, so the penalty shrinks.
        let pop = Population::homogeneous(0.01, 1_000_000);
        let big_a0 = lower_bound(7, 0, &pop);
        let big_a2 = lower_bound(7, 2, &pop);
        assert!(
            (big_a2 - big_a0) < (a2 - a0),
            "penalty should shrink with R"
        );
    }

    #[test]
    #[should_panic(expected = "cannot exceed")]
    fn finite_validates_a() {
        let _ = finite(7, 2, 3, &Population::homogeneous(0.01, 10));
    }
}
