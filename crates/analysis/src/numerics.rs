//! Numerically careful building blocks: log-domain binomials, stable
//! `x^R` powers, and tail-bounded series summation.
//!
//! The paper's curves run to `R = 10^6` receivers and `p = 10^-3`, so naive
//! `choose(n, k) * p^j * (1-p)^(n-j)` overflows/underflows and
//! `(1 - q^i)^R` loses all precision exactly where the curves bend. Every
//! probability here is assembled in log space.

/// Natural log of the gamma function (Lanczos approximation, g = 7, 9
/// coefficients; absolute error below 1e-13 over the positive axis).
///
/// # Panics
/// Panics on non-positive input (never needed by the formulas here).
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x > 0.0, "ln_gamma requires a positive argument, got {x}");
    const G: f64 = 7.0;
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula keeps accuracy near zero.
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut a = COEF[0];
    let t = x + G + 0.5;
    for (i, &c) in COEF.iter().enumerate().skip(1) {
        a += c / (x + i as f64);
    }
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
}

/// `ln C(n, k)`; `-inf` when `k > n`.
pub fn ln_choose(n: u64, k: u64) -> f64 {
    if k > n {
        return f64::NEG_INFINITY;
    }
    if k == 0 || k == n {
        return 0.0;
    }
    ln_gamma(n as f64 + 1.0) - ln_gamma(k as f64 + 1.0) - ln_gamma((n - k) as f64 + 1.0)
}

/// Binomial pmf `P(X = j)` for `X ~ Bin(n, p)`, evaluated in log space.
pub fn binom_pmf(n: u64, j: u64, p: f64) -> f64 {
    debug_assert!((0.0..=1.0).contains(&p));
    if j > n {
        return 0.0;
    }
    if p == 0.0 {
        return if j == 0 { 1.0 } else { 0.0 };
    }
    if p == 1.0 {
        return if j == n { 1.0 } else { 0.0 };
    }
    let ln = ln_choose(n, j) + j as f64 * p.ln() + (n - j) as f64 * (-p).ln_1p();
    ln.exp()
}

/// Binomial cdf `P(X <= j)`. The sums here have at most a few hundred
/// terms (block sizes), so direct summation of log-space pmfs is both
/// accurate and fast.
pub fn binom_cdf(n: u64, j: u64, p: f64) -> f64 {
    if j >= n {
        return 1.0;
    }
    let mut acc = 0.0;
    for i in 0..=j {
        acc += binom_pmf(n, i, p);
    }
    acc.min(1.0)
}

/// `(1 - x)^r` for probability-like `x`, stable for tiny `x` and huge `r`:
/// `exp(r * ln(1 - x))` with `ln_1p`.
pub fn pow_one_minus(x: f64, r: f64) -> f64 {
    debug_assert!((0.0..=1.0).contains(&x), "x={x}");
    if x >= 1.0 {
        return if r == 0.0 { 1.0 } else { 0.0 };
    }
    (r * (-x).ln_1p()).exp()
}

/// `1 - (1 - x)^r`, stable when the result is tiny: `-expm1(r ln(1-x))`.
pub fn one_minus_pow_one_minus(x: f64, r: f64) -> f64 {
    debug_assert!((0.0..=1.0).contains(&x), "x={x}");
    if x >= 1.0 {
        return if r == 0.0 { 0.0 } else { 1.0 };
    }
    -(r * (-x).ln_1p()).exp_m1()
}

/// Sum `sum_{i = start}^{inf} term(i)` for a non-negative, eventually
/// geometrically decreasing series: stops when `iters >= min_iters` and the
/// current term drops below `tol`, with a hard cap to bound runtime.
///
/// Returns the partial sum; the formulas that use this have terms bounded
/// by `min(1, R q^i)`, so `tol = 1e-12` leaves error far below plot
/// resolution.
pub fn sum_series(start: u64, tol: f64, cap: u64, mut term: impl FnMut(u64) -> f64) -> f64 {
    let mut acc = 0.0;
    let mut i = start;
    let mut below = 0u32;
    while i < start + cap {
        let t = term(i);
        debug_assert!(t >= -1e-12, "series term {t} negative at i={i}");
        acc += t.max(0.0);
        // Two consecutive sub-tolerance terms guard against slow starts
        // (terms can sit at ~1.0 for a long prefix when R is large).
        if t < tol {
            below += 1;
            if below >= 2 {
                break;
            }
        } else {
            below = 0;
        }
        i += 1;
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_gamma_matches_factorials() {
        let mut fact = 1.0f64;
        for n in 1..=20u32 {
            fact *= n as f64;
            let lg = ln_gamma(n as f64 + 1.0);
            assert!((lg - fact.ln()).abs() < 1e-10, "n={n}");
        }
        // Gamma(1/2) = sqrt(pi).
        assert!((ln_gamma(0.5) - 0.5 * std::f64::consts::PI.ln()).abs() < 1e-12);
    }

    #[test]
    fn choose_small_values_exact() {
        assert_eq!(ln_choose(5, 0), 0.0);
        assert_eq!(ln_choose(5, 5), 0.0);
        assert!((ln_choose(5, 2).exp() - 10.0).abs() < 1e-9);
        assert!((ln_choose(52, 5).exp() - 2_598_960.0).abs() < 1e-3);
        assert_eq!(ln_choose(3, 4), f64::NEG_INFINITY);
    }

    #[test]
    fn choose_huge_values_finite() {
        let v = ln_choose(1_000_000, 500_000);
        assert!(v.is_finite() && v > 0.0);
    }

    #[test]
    fn binom_pmf_sums_to_one() {
        for &(n, p) in &[(10u64, 0.3), (100, 0.01), (255, 0.25)] {
            let total: f64 = (0..=n).map(|j| binom_pmf(n, j, p)).sum();
            assert!((total - 1.0).abs() < 1e-10, "n={n} p={p} total={total}");
        }
    }

    #[test]
    fn binom_edge_probabilities() {
        assert_eq!(binom_pmf(5, 0, 0.0), 1.0);
        assert_eq!(binom_pmf(5, 3, 0.0), 0.0);
        assert_eq!(binom_pmf(5, 5, 1.0), 1.0);
        assert_eq!(binom_pmf(5, 6, 0.5), 0.0);
        assert_eq!(binom_cdf(5, 5, 0.7), 1.0);
        assert_eq!(binom_cdf(5, 9, 0.7), 1.0);
    }

    #[test]
    fn binom_cdf_monotone() {
        let mut prev = 0.0;
        for j in 0..=20 {
            let c = binom_cdf(20, j, 0.25);
            assert!(c >= prev);
            prev = c;
        }
        assert!((prev - 1.0).abs() < 1e-12);
    }

    #[test]
    fn stable_powers() {
        // (1 - 1e-12)^(1e6): naive f64 would round 1 - 1e-12 fine, but the
        // complementary form must match expm1 precision.
        let x = 1e-12;
        let r = 1e6;
        let direct = one_minus_pow_one_minus(x, r);
        assert!((direct - 1e-6).abs() / 1e-6 < 1e-6, "got {direct}");
        assert!((pow_one_minus(x, r) + direct - 1.0).abs() < 1e-15);
        // Degenerate x = 1.
        assert_eq!(pow_one_minus(1.0, 3.0), 0.0);
        assert_eq!(one_minus_pow_one_minus(1.0, 3.0), 1.0);
    }

    #[test]
    fn series_sums_geometric() {
        // sum q^i = 1/(1-q)
        let s = sum_series(0, 1e-14, 10_000, |i| 0.5f64.powi(i as i32));
        assert!((s - 2.0).abs() < 1e-12, "s={s}");
    }

    #[test]
    fn series_survives_flat_prefix() {
        // Terms that stay ~1.0 for a while then drop geometrically (the
        // (1 - (1-q^i)^R) shape with large R).
        let r = 1e6;
        let q: f64 = 0.1;
        let s = sum_series(0, 1e-13, 10_000, |i| {
            one_minus_pow_one_minus(q.powi(i as i32), r)
        });
        // First several terms are ~1 (i=0 exactly 1); expect s > 6 because
        // R q^i stays > 1 until q^i < 1e-6, i.e. i = 6.
        assert!(s > 6.0 && s < 9.0, "s={s}");
    }
}
