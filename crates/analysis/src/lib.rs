#![forbid(unsafe_code)]
//! Analytical models from *Parity-Based Loss Recovery for Reliable
//! Multicast Transmission* (Nonnenmacher, Biersack, Towsley, SIGCOMM '97).
//!
//! Everything in Sections 3 and 5 of the paper is a closed-form or
//! numerically evaluated expression; this crate reproduces each one with
//! attention to the numeric ranges involved (receiver populations to
//! `R = 10^6`, loss probabilities to `10^-3`, so all binomials are evaluated
//! in log space and `x^R`-style powers via `exp(R ln x)`):
//!
//! | Paper | Here |
//! |---|---|
//! | Eq. (2) `q(k,n,p)` | [`layered::rm_loss_probability`] |
//! | Eq. (3) layered-FEC `E[M]` | [`layered::expected_transmissions`] |
//! | no-FEC `E[M]` (ARQ baseline) | [`nofec::expected_transmissions`] |
//! | Eqs. (4)–(6) integrated lower bound | [`integrated::lower_bound`] |
//! | finite-parity integrated `E[M]` | [`integrated::finite`] |
//! | Eqs. (7)–(8) heterogeneous populations | the same entry points over a multi-class [`Population`] |
//! | Eq. (17) transmission rounds | [`rounds`] |
//! | Eqs. (10)–(16) N2/NP processing rates | [`endhost`] |
//! | Fig. 1 coding-rate model | [`coding`] |
//!
//! Each stochastic model also has a parallel Monte Carlo estimator in
//! [`montecarlo`] that simulates the model's *definition* (not the
//! formula) across a [`pm_par::Pool`], with results bit-identical at any
//! worker count — the crate's own tests cross-check every closed form
//! against them.
//!
//! Receiver heterogeneity is expressed through [`Population`]: a list of
//! `(loss probability, receiver count)` classes. The homogeneous case is a
//! single class; the paper's Figs. 9–10 use two. Per-class grouping keeps
//! the `R = 10^6` product `prod_r (1 - q_r^i)` exact and cheap.
//!
//! ```
//! use pm_analysis::{integrated, layered, nofec, Population};
//! let pop = Population::homogeneous(0.01, 1_000_000);
//! let arq = nofec::expected_transmissions(&pop);
//! let lay = layered::expected_transmissions(7, 2, &pop);
//! let int = integrated::lower_bound(7, 0, &pop);
//! assert!(int < lay && lay < arq); // the paper's Fig. 5 ordering
//! ```

pub mod coding;
pub mod endhost;
pub mod integrated;
pub mod latency;
pub mod layered;
pub mod montecarlo;
pub mod nofec;
pub mod numerics;
pub mod population;
pub mod rounds;
pub mod tuning;

pub use endhost::CostModel;
pub use population::Population;

#[cfg(test)]
mod proptests;
