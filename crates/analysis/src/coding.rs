//! Coding/decoding rate model — Section 2.2 (Fig. 1).
//!
//! Figure 1 plots the measured throughput of Rizzo's software RSE coder on
//! a Pentium 133: data packets processed per second while producing `h`
//! parities per `k` data packets (encode) or reconstructing `h` lost
//! packets per group (decode). The observation the paper draws from it:
//! **throughput is inversely proportional to `h * k`** — per *data* packet
//! the coder does `h` multiply-accumulate passes of cost proportional to
//! the packet size, so per-TG work is `h * k * c`, i.e. rate `= 1/(h c)`
//! for `h >= 1`, which at fixed redundancy `rho = h/k` is `1/(rho k c)`.
//!
//! The model here regenerates the figure's curves from a per-packet-pass
//! cost constant; `pm-bench` additionally *measures* the real `pm-rse`
//! codec so the reproduction rests on actual numbers.

/// One multiply-accumulate pass over one packet on the paper's Fig. 1
/// hardware (Pentium 133, 1 KB packets): calibrated from the reported
/// "k = 7, h = 1 encodes 8000 packets/s" (=> 1/8000 s per pass).
pub const PENTIUM133_ENCODE_PASS: f64 = 1.25e-4;
/// Decode pass cost on the same hardware (the figure's decode points sit
/// marginally below encode).
pub const PENTIUM133_DECODE_PASS: f64 = 1.30e-4;

/// Encoding throughput in data packets/second: `k` data packets cost
/// `h * k * pass` seconds to protect with `h` parities.
///
/// `h = 0` returns `f64::INFINITY` (nothing to encode).
///
/// # Panics
/// Panics unless `k >= 1` and `pass > 0`.
pub fn encode_rate(k: usize, h: usize, pass: f64) -> f64 {
    assert!(k >= 1, "k must be at least 1");
    assert!(pass > 0.0, "pass cost must be positive");
    if h == 0 {
        return f64::INFINITY;
    }
    1.0 / (h as f64 * pass)
}

/// Decoding throughput in data packets/second given `h` of every `k` data
/// packets are lost and must be reconstructed.
///
/// # Panics
/// As for [`encode_rate`].
pub fn decode_rate(k: usize, h: usize, pass: f64) -> f64 {
    assert!(k >= 1, "k must be at least 1");
    assert!(pass > 0.0, "pass cost must be positive");
    if h == 0 {
        return f64::INFINITY;
    }
    1.0 / (h as f64 * pass)
}

/// Rate at a redundancy ratio `rho = h/k` (Fig. 1's x-axis): `h` is the
/// nearest integer parity count `round(rho * k)`, clamped to at least 1.
///
/// # Panics
/// Panics unless `rho > 0`.
pub fn rate_at_redundancy(k: usize, rho: f64, pass: f64) -> f64 {
    assert!(rho > 0.0, "redundancy must be positive");
    let h = ((rho * k as f64).round() as usize).max(1);
    encode_rate(k, h, pass)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_calibration_point() {
        // k = 7, h = 1 (14.3% redundancy) -> 8000 packets/s.
        let r = encode_rate(7, 1, PENTIUM133_ENCODE_PASS);
        assert!((r - 8000.0).abs() < 1.0, "r={r}");
    }

    #[test]
    fn inverse_in_h_times_k_at_fixed_redundancy() {
        // At the same redundancy, doubling k halves the rate (pick k values
        // where rho * k is integral so rounding does not blur the ratio).
        let r8 = rate_at_redundancy(8, 0.5, PENTIUM133_ENCODE_PASS);
        let r16 = rate_at_redundancy(16, 0.5, PENTIUM133_ENCODE_PASS);
        assert!((r8 / r16 - 2.0).abs() < 1e-9, "r8={r8} r16={r16}");
    }

    #[test]
    fn ordering_of_paper_curves() {
        // Fig. 1: at any redundancy, k = 7 is fastest, k = 100 slowest.
        for rho in [0.1, 0.3, 0.6, 1.0] {
            let r7 = rate_at_redundancy(7, rho, PENTIUM133_ENCODE_PASS);
            let r20 = rate_at_redundancy(20, rho, PENTIUM133_ENCODE_PASS);
            let r100 = rate_at_redundancy(100, rho, PENTIUM133_ENCODE_PASS);
            assert!(r7 >= r20 && r20 >= r100, "rho={rho}: {r7} {r20} {r100}");
        }
    }

    #[test]
    fn zero_parities_cost_nothing() {
        assert_eq!(encode_rate(20, 0, PENTIUM133_ENCODE_PASS), f64::INFINITY);
        assert_eq!(decode_rate(20, 0, PENTIUM133_DECODE_PASS), f64::INFINITY);
    }

    #[test]
    fn figure_range_sane() {
        // The figure's y-range is ~1e2..1e4 packets/s over redundancies
        // up to 100% and k up to 100.
        let lo = rate_at_redundancy(100, 1.0, PENTIUM133_ENCODE_PASS);
        let hi = rate_at_redundancy(7, 0.143, PENTIUM133_ENCODE_PASS);
        assert!((50.0..=200.0).contains(&lo), "lo={lo}");
        assert!((5000.0..=10000.0).contains(&hi), "hi={hi}");
    }
}
