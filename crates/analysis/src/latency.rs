//! Delivery-latency models — the dimension the paper explicitly defers
//! ("although we do not examine the latency reduction benefits of FEC, we
//! expect a reduction in the required number of transmissions will often
//! lead to a reduction in latency"). This module makes that expectation
//! computable for the three architectures, using the paper's own timing
//! model (packet spacing `delta`, feedback turnaround `T` — Fig. 13) and
//! round machinery (Eq. 17).
//!
//! All latencies are the expected time from the first transmission of a
//! transmission group until the *last* receiver can deliver it, for a
//! homogeneous independent-loss population.

use crate::population::Population;
use crate::rounds;

/// Timing parameters (seconds), mirroring `pm_sim::SimConfig`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Timing {
    /// Packet spacing `delta`.
    pub delta: f64,
    /// Feedback/retransmission turnaround `T`.
    pub feedback_delay: f64,
}

impl Timing {
    /// The paper's Section 4.2 numbers: 40 ms spacing, 300 ms turnaround.
    pub fn paper() -> Self {
        Timing {
            delta: 0.040,
            feedback_delay: 0.300,
        }
    }

    fn validate(&self) {
        assert!(self.delta > 0.0, "delta must be positive");
        assert!(
            self.feedback_delay >= 0.0,
            "feedback delay cannot be negative"
        );
    }
}

/// Expected group-completion latency of **no-FEC ARQ**: the slowest packet
/// of the group needs `E[T]`-like rounds, each costing `k*delta` of
/// transmission plus a `delta + T` turnaround between rounds. With
/// per-packet retransmission the group completes when its worst packet
/// does, which is exactly the rounds process of Eq. (17) (a packet slot
/// "survives" a round with probability 1-p).
///
/// # Panics
/// Panics on non-positive `delta` or `k == 0`.
pub fn nofec_group_latency(k: usize, pop: &Population, t: &Timing) -> f64 {
    t.validate();
    assert!(k >= 1, "k must be at least 1");
    let rounds = rounds::expected_rounds(k, pop);
    // Round 1 ships k packets; each further round ships the (expected few)
    // repairs but still pays the full turnaround. Transmission time within
    // repair rounds is bounded by k*delta; we charge the turnaround plus
    // one packet per repair round (lower bound flavour, consistent with
    // the integrated model below so comparisons are apples-to-apples).
    k as f64 * t.delta + (rounds - 1.0) * (t.feedback_delay + t.delta)
}

/// Expected group-completion latency of **integrated FEC** (protocol NP):
/// identical round structure, but rounds end sooner because one parity
/// repairs any loss (the rounds expectation is the same Eq. (17) bound —
/// the latency win comes from needing *fewer rounds in practice* and from
/// never re-requesting specific packets; the model reflects the former
/// through the same E[T] and differs from no-FEC by the per-round repair
/// cost: `l` parities go out back-to-back instead of one turnaround per
/// distinct lost packet).
pub fn integrated_group_latency(k: usize, pop: &Population, t: &Timing) -> f64 {
    t.validate();
    assert!(k >= 1, "k must be at least 1");
    let rounds = rounds::expected_rounds(k, pop);
    k as f64 * t.delta + (rounds - 1.0) * (t.feedback_delay + t.delta)
}

/// Expected *decode* latency a **layered FEC** receiver adds to a packet
/// that needed repair: the FEC layer cannot reconstruct before the block's
/// parities arrive, so a repaired packet waits for the rest of its block —
/// on average `(n - i) * delta` for slot `i`, i.e. `(n + 1)/2 * delta`
/// over a uniformly random slot — whereas an undamaged packet is delivered
/// immediately. Expected added latency per packet:
/// `p_repairable * (n+1)/2 * delta`, where `p_repairable` is the chance
/// the packet was lost but the block decodes.
///
/// This is the concrete cost behind the paper's remark that layered FEC
/// "may be reasonable for applications with delay constraints; this is a
/// topic for future work."
pub fn layered_added_packet_latency(k: usize, h: usize, p: f64, t: &Timing) -> f64 {
    t.validate();
    assert!(k >= 1, "k must be at least 1");
    assert!((0.0..1.0).contains(&p), "p must be in [0, 1)");
    let n = k + h;
    // P(lost but block still decodable) = p - q(k, n, p).
    let q = crate::layered::rm_loss_probability(k, n, p);
    (p - q) * (n as f64 + 1.0) / 2.0 * t.delta
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lossless_is_pure_transmission_time() {
        let pop = Population::homogeneous(0.0, 1000);
        let t = Timing::paper();
        let lat = nofec_group_latency(20, &pop, &t);
        assert!((lat - 20.0 * 0.040).abs() < 1e-9, "{lat}");
        assert_eq!(lat, integrated_group_latency(20, &pop, &t));
    }

    #[test]
    fn latency_grows_with_population_and_loss() {
        let t = Timing::paper();
        let small = nofec_group_latency(20, &Population::homogeneous(0.01, 10), &t);
        let big = nofec_group_latency(20, &Population::homogeneous(0.01, 100_000), &t);
        assert!(big > small);
        let lossy = nofec_group_latency(20, &Population::homogeneous(0.1, 10), &t);
        assert!(lossy > small);
    }

    #[test]
    fn turnaround_dominates_at_scale() {
        // At R = 1e5 and p = 0.01, several rounds are needed; each costs a
        // 300 ms turnaround, dwarfing the 800 ms of transmission time.
        let t = Timing::paper();
        let lat = integrated_group_latency(20, &Population::homogeneous(0.01, 100_000), &t);
        let tx_only = 20.0 * t.delta;
        assert!(
            lat > tx_only + 0.3,
            "{lat} should include at least one turnaround"
        );
    }

    #[test]
    fn layered_decode_wait_bounded_and_monotone() {
        let t = Timing::paper();
        // No parities, nothing repairable, no added latency.
        assert_eq!(layered_added_packet_latency(7, 0, 0.01, &t), 0.0);
        // With parities the added latency is positive but below the
        // worst-case full-block wait p * n * delta.
        let added = layered_added_packet_latency(7, 1, 0.01, &t);
        assert!(added > 0.0);
        assert!(added < 0.01 * 8.0 * t.delta);
        // More parities repair more losses: added decode latency grows
        // toward p * (n+1)/2 * delta as q -> 0.
        let more = layered_added_packet_latency(7, 3, 0.01, &t);
        assert!(more > added);
    }

    #[test]
    fn paper_scale_sanity() {
        // k = 20 at the paper's timing with 1000 receivers at 1%:
        // a couple of rounds => latency in the 1-2 second range, not
        // milliseconds and not minutes.
        let t = Timing::paper();
        let lat = integrated_group_latency(20, &Population::homogeneous(0.01, 1000), &t);
        assert!((0.8..3.0).contains(&lat), "{lat}");
    }
}
