//! Code-parameter tuning — the paper's "the number of parity packets
//! needs to be matched to the TG size" observation (Section 3.1) and its
//! future-work thread, turned into a small planning API.
//!
//! Everything here is a thin search over the Section 3 formulas, so the
//! answers inherit their assumptions (independent loss, idealized
//! integrated protocol).

use crate::integrated;
use crate::layered;
use crate::population::Population;

/// Largest block GF(2^8) supports.
const MAX_BLOCK: usize = 255;

/// Smallest parity budget `h` for which the finite-budget integrated
/// scheme is within `tol` (relative) of the Eq. (6) lower bound — "how
/// many parities until more stop mattering". Returns `None` if no
/// `h <= 255 - k` reaches the tolerance (huge populations: the budgeted
/// scheme re-TGs often no matter what).
///
/// # Panics
/// Panics unless `k >= 1`, `k <= 255` and `tol > 0`.
pub fn min_parity_for_bound(k: usize, pop: &Population, tol: f64) -> Option<usize> {
    assert!((1..=MAX_BLOCK).contains(&k), "k out of range");
    assert!(tol > 0.0, "tolerance must be positive");
    let bound = integrated::lower_bound(k, 0, pop);
    (0..=(MAX_BLOCK - k)).find(|&h| {
        let m = integrated::finite(k, h, 0, pop);
        (m - bound) / bound <= tol
    })
}

/// Smallest TG size `k` whose idealized integrated E\[M\] meets
/// `target_m`, or `None` if even `k = 255` misses it (then the target is
/// below what this population/loss combination allows).
///
/// Larger `k` amortises repairs over more packets (Fig. 7), so E\[M\] is
/// decreasing in `k` and a linear scan from small `k` finds the minimum
/// group size — which also minimises decoding latency and memory.
///
/// # Panics
/// Panics unless `target_m >= 1`.
pub fn min_group_for_target(pop: &Population, target_m: f64) -> Option<usize> {
    assert!(target_m >= 1.0, "E[M] below 1 is impossible");
    (1..=MAX_BLOCK).find(|&k| integrated::lower_bound(k, 0, pop) <= target_m)
}

/// For layered FEC with a fixed `k`: the parity count `h*` minimising
/// E\[M\] (the trade-off the paper illustrates with Figs. 3/4: too few
/// parities leave retransmissions, too many waste bandwidth). Returns
/// `(h*, E\[M\] at h*)`.
///
/// # Panics
/// Panics unless `1 <= k <= 255`.
pub fn best_layered_parity(k: usize, pop: &Population) -> (usize, f64) {
    assert!((1..=MAX_BLOCK).contains(&k), "k out of range");
    let mut best = (0usize, layered::expected_transmissions(k, 0, pop));
    for h in 1..=(MAX_BLOCK - k) {
        let m = layered::expected_transmissions(k, h, pop);
        if m < best.1 {
            best = (h, m);
        }
        // E\[M\] is convex-ish in h: once we are clearly past the minimum
        // (pure n/k growth), stop scanning.
        if m > best.1 * 1.5 && h > best.0 + 5 {
            break;
        }
    }
    best
}

/// Proactive-parity planning for latency-sensitive senders: the smallest
/// `a` such that a fraction >= `quantile` of receivers decode a group
/// from round 1 alone (no feedback round-trip). With independent loss the
/// per-receiver round-1 success probability is `P(Bin(k + a, p) <= a)`.
///
/// Returns `None` if even `a = 255 - k` cannot reach the quantile.
///
/// # Panics
/// Panics unless `k` in range, `p` in `[0, 1)`, `quantile` in `(0, 1]`.
pub fn min_proactive_parity(k: usize, p: f64, quantile: f64) -> Option<usize> {
    assert!((1..=MAX_BLOCK).contains(&k), "k out of range");
    assert!((0.0..1.0).contains(&p), "p must be in [0, 1)");
    assert!(quantile > 0.0 && quantile <= 1.0, "quantile in (0, 1]");
    (0..=(MAX_BLOCK - k))
        .find(|&a| crate::numerics::binom_cdf((k + a) as u64, a as u64, p) >= quantile)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parity_budget_matches_fig6() {
        // k = 7, p = 0.01: 3 parities reach the bound (2%) through 1e4.
        let pop = Population::homogeneous(0.01, 10_000);
        let h = min_parity_for_bound(7, &pop, 0.02).unwrap();
        assert!(h <= 3, "h={h}");
        // Lossless populations need none.
        let clean = Population::homogeneous(0.0, 1000);
        assert_eq!(min_parity_for_bound(7, &clean, 0.01), Some(0));
    }

    #[test]
    fn group_size_for_target() {
        let pop = Population::homogeneous(0.01, 1_000_000);
        // Fig. 7: k = 100 achieves ~1.09 at 1e6.
        let k = min_group_for_target(&pop, 1.10).unwrap();
        assert!((60..=110).contains(&k), "k={k}");
        // Impossible target.
        assert_eq!(min_group_for_target(&pop, 1.0000001), None);
        // Trivial target.
        assert_eq!(min_group_for_target(&pop, 100.0), Some(1));
    }

    #[test]
    fn layered_optimum_moves_with_population() {
        let small = Population::homogeneous(0.01, 10);
        let large = Population::homogeneous(0.01, 1_000_000);
        let (h_small, m_small) = best_layered_parity(20, &small);
        let (h_large, m_large) = best_layered_parity(20, &large);
        assert!(h_large >= h_small, "bigger populations want more parities");
        assert!(m_small <= m_large);
        // The optimum beats both endpoints it interpolates.
        let none = layered::expected_transmissions(20, 0, &large);
        assert!(m_large <= none);
    }

    #[test]
    fn proactive_parity_quantiles() {
        // k = 7, p = 0.01: one parity covers the vast majority of
        // receivers in round 1.
        let a = min_proactive_parity(7, 0.01, 0.99).unwrap();
        assert!(a <= 2, "a={a}");
        // Perfection requires more; heavy loss more still.
        let a_heavy = min_proactive_parity(7, 0.25, 0.99).unwrap();
        assert!(a_heavy >= 4, "a_heavy={a_heavy}");
        assert_eq!(min_proactive_parity(7, 0.0, 1.0), Some(0));
    }

    #[test]
    fn consistency_between_planners() {
        // The h chosen by min_parity_for_bound indeed achieves the bound.
        let pop = Population::homogeneous(0.05, 1000);
        let k = 20;
        let h = min_parity_for_bound(k, &pop, 0.05).unwrap();
        let bound = integrated::lower_bound(k, 0, &pop);
        let m = integrated::finite(k, h, 0, &pop);
        assert!((m - bound) / bound <= 0.05);
    }
}
