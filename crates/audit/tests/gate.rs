//! End-to-end gate tests for pm-audit.
//!
//! The load-bearing one is the *negative* self-test: a workspace seeded
//! with a fresh violation must FAIL the gate against a baseline that does
//! not allow it — proving the CI job is a real tripwire, not a no-op.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::Command;

use pm_audit::baseline::{self, Counts};
use pm_audit::{audit_workspace, gate};

/// A unique scratch workspace under the system temp dir. Uses the process
/// id plus a caller tag for uniqueness — no wall clock involved.
struct ScratchWorkspace {
    root: PathBuf,
}

impl ScratchWorkspace {
    fn new(tag: &str, lib_rs: &str) -> Self {
        Self::for_crate(tag, "seeded", lib_rs)
    }

    /// Like [`ScratchWorkspace::new`] but with a chosen package name, so
    /// crate-scoped rules (pm-simd, pm-net, pm-rse, …) can be exercised.
    fn for_crate(tag: &str, crate_name: &str, lib_rs: &str) -> Self {
        let root = std::env::temp_dir().join(format!("pm-audit-gate-{}-{tag}", std::process::id()));
        let _ = fs::remove_dir_all(&root);
        fs::create_dir_all(root.join("src")).unwrap();
        fs::write(
            root.join("Cargo.toml"),
            format!("[package]\nname = \"{crate_name}\"\nversion = \"0.0.0\"\n"),
        )
        .unwrap();
        fs::write(root.join("src/lib.rs"), lib_rs).unwrap();
        ScratchWorkspace { root }
    }

    /// Give the scratch workspace a changelog with `pr_count` PR entries,
    /// which drives `expires: PR<n>` pragma expiry.
    fn write_changelog(&self, pr_count: usize) {
        let mut text = String::from("# Changes\n\n");
        for i in 1..=pr_count {
            text.push_str(&format!("- PR {i}: entry\n"));
        }
        fs::write(self.root.join("CHANGES.md"), text).unwrap();
    }

    /// Run the pm-audit binary against this workspace with `baseline`
    /// (workspace-relative), returning (exit code, stdout).
    fn run_binary(&self, baseline: &str, extra: &[&str]) -> (Option<i32>, String) {
        let out = Command::new(env!("CARGO_BIN_EXE_pm-audit"))
            .args(["--root"])
            .arg(&self.root)
            .args(["--baseline"])
            .arg(self.root.join(baseline))
            .args(extra)
            .output()
            .unwrap();
        (
            out.status.code(),
            format!(
                "{}{}",
                String::from_utf8_lossy(&out.stdout),
                String::from_utf8_lossy(&out.stderr)
            ),
        )
    }
}

impl Drop for ScratchWorkspace {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.root);
    }
}

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

#[test]
fn seeded_violation_fails_the_gate() {
    let ws = ScratchWorkspace::new(
        "seeded",
        "pub fn f() -> std::time::Instant { std::time::Instant::now() }\n",
    );
    let report = audit_workspace(&ws.root).unwrap();
    assert_eq!(report.violations.len(), 1, "{:?}", report.violations);
    assert_eq!(report.violations[0].rule.name(), "determinism-time");
    let outcome = gate(&report, &Counts::new());
    assert!(
        !outcome.passed(),
        "seeded violation must fail an empty baseline"
    );
    assert_eq!(outcome.regressions.len(), 1);
    assert_eq!(outcome.regressions[0].current, 1);
    assert_eq!(outcome.regressions[0].baseline, 0);
}

#[test]
fn seeded_violation_fails_via_the_binary_exit_code() {
    let ws = ScratchWorkspace::new(
        "binary",
        "pub fn f() -> std::time::Instant { std::time::Instant::now() }\n",
    );
    let empty_baseline = ws.root.join("baseline.json");
    fs::write(&empty_baseline, "{\n}\n").unwrap();
    let out = Command::new(env!("CARGO_BIN_EXE_pm-audit"))
        .args(["--root"])
        .arg(&ws.root)
        .args(["--baseline"])
        .arg(&empty_baseline)
        .output()
        .unwrap();
    assert_eq!(
        out.status.code(),
        Some(1),
        "stdout: {}\nstderr: {}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("REGRESSION"), "{stdout}");
    assert!(stdout.contains("gate: FAIL"), "{stdout}");
}

#[test]
fn baselined_violation_passes_and_fixing_it_reports_improvement() {
    let ws = ScratchWorkspace::new(
        "ratchet",
        "pub fn f() -> std::time::Instant { std::time::Instant::now() }\n",
    );
    let report = audit_workspace(&ws.root).unwrap();
    // Commit today's count as the baseline: the gate passes.
    let allowed = report.counts.clone();
    assert!(gate(&report, &allowed).passed());
    // Fix the violation: the gate still passes and reports the headroom.
    fs::write(ws.root.join("src/lib.rs"), "pub fn f() {}\n").unwrap();
    let fixed = audit_workspace(&ws.root).unwrap();
    let outcome = gate(&fixed, &allowed);
    assert!(outcome.passed());
    assert_eq!(outcome.improvements.len(), 1);
    assert_eq!(outcome.improvements[0].current, 0);
    assert_eq!(outcome.improvements[0].baseline, 1);
}

#[test]
fn suppression_pragma_waives_the_seeded_violation() {
    let ws = ScratchWorkspace::new(
        "pragma",
        "// pm-audit: allow(determinism-time): gate test fixture\n\
         pub fn f() -> std::time::Instant { std::time::Instant::now() }\n",
    );
    let report = audit_workspace(&ws.root).unwrap();
    assert!(report.violations.is_empty(), "{:?}", report.violations);
    assert!(gate(&report, &Counts::new()).passed());
}

#[test]
fn baseline_json_roundtrips_through_the_writer_and_parser() {
    let ws = ScratchWorkspace::new(
        "roundtrip",
        "pub fn f() -> std::time::Instant { std::time::Instant::now() }\n",
    );
    let report = audit_workspace(&ws.root).unwrap();
    let json = baseline::to_json(&report.counts);
    let parsed = baseline::parse(&json).unwrap();
    assert_eq!(parsed, report.counts);
}

// --- negative self-tests for the v2 structural rules: each seeds one
// --- violation and proves the binary exits 1 naming the rule.

#[test]
fn seeded_unsafe_contract_violation_fails_via_binary() {
    // An undocumented `unsafe fn` containing an uncommented `unsafe {}`
    // block, in the one crate where unsafe is allowed at all.
    let ws = ScratchWorkspace::for_crate(
        "contract",
        "pm-simd",
        "pub unsafe fn f(p: *const u8) -> u8 { unsafe { *p } }\n",
    );
    // v1-format baseline generously allowing the raw unsafe-code count —
    // exercising the compat parser — but not the missing contracts.
    fs::write(
        ws.root.join("baseline.json"),
        "{\"unsafe-code\": {\"pm-simd\": 99}}\n",
    )
    .unwrap();
    let (code, out) = ws.run_binary("baseline.json", &[]);
    assert_eq!(code, Some(1), "{out}");
    assert!(out.contains("unsafe-safety-contract"), "{out}");
    assert!(out.contains("gate: FAIL"), "{out}");
}

#[test]
fn seeded_target_feature_violation_fails_via_binary() {
    let ws = ScratchWorkspace::for_crate(
        "feature",
        "pm-simd",
        "fn f(a: Reg, b: Reg) -> Reg { _mm256_xor_si256(a, b) }\n",
    );
    fs::write(ws.root.join("baseline.json"), "{}\n").unwrap();
    let (code, out) = ws.run_binary("baseline.json", &[]);
    assert_eq!(code, Some(1), "{out}");
    assert!(out.contains("target-feature-consistency"), "{out}");
}

#[test]
fn seeded_lossy_cast_violation_fails_via_binary() {
    let ws =
        ScratchWorkspace::for_crate("cast", "pm-net", "pub fn f(x: usize) -> u16 { x as u16 }\n");
    fs::write(ws.root.join("baseline.json"), "{}\n").unwrap();
    let (code, out) = ws.run_binary("baseline.json", &[]);
    assert_eq!(code, Some(1), "{out}");
    assert!(out.contains("lossy-cast"), "{out}");
}

#[test]
fn seeded_hot_loop_alloc_violation_fails_via_binary() {
    // `parity` is a declared pm-rse hot-path entry; an allocation two
    // call-graph hops below it must still be caught.
    let ws = ScratchWorkspace::for_crate(
        "hotloop",
        "pm-rse",
        "pub fn parity(n: usize) -> Vec<u8> { mid(n) }\n\
         fn mid(n: usize) -> Vec<u8> { leaf(n) }\n\
         fn leaf(n: usize) -> Vec<u8> { vec![0u8; n] }\n",
    );
    fs::write(ws.root.join("baseline.json"), "{}\n").unwrap();
    let (code, out) = ws.run_binary("baseline.json", &[]);
    assert_eq!(code, Some(1), "{out}");
    assert!(out.contains("hot-loop-alloc"), "{out}");
    assert!(out.contains("hops of hot-path entry"), "{out}");
}

#[test]
fn update_baseline_migrates_v1_and_round_trips() {
    let ws = ScratchWorkspace::new(
        "update",
        "pub fn f() -> std::time::Instant { std::time::Instant::now() }\n",
    );
    // Start from a v1 crate-wide baseline that allows the violation.
    fs::write(
        ws.root.join("baseline.json"),
        "{\"determinism-time\": {\"seeded\": 1}}\n",
    )
    .unwrap();
    let (code, out) = ws.run_binary("baseline.json", &["--update-baseline"]);
    assert_eq!(code, Some(0), "{out}");
    let rewritten = fs::read_to_string(ws.root.join("baseline.json")).unwrap();
    // The rewrite is in v2 per-item form: the count hangs off the fn name,
    // not the crate-wide "*" bucket.
    assert!(rewritten.contains("\"f\": 1"), "{rewritten}");
    assert!(!rewritten.contains("\"*\""), "{rewritten}");
    let parsed = baseline::parse(&rewritten).unwrap();
    let report = audit_workspace(&ws.root).unwrap();
    assert_eq!(parsed, report.counts, "rewritten baseline round-trips");
    // A plain re-run against the migrated file still gates green.
    let (code, out) = ws.run_binary("baseline.json", &[]);
    assert_eq!(code, Some(0), "{out}");
}

#[test]
fn reasonless_pragma_is_inert_and_flagged() {
    let ws = ScratchWorkspace::new(
        "noreason",
        "// pm-audit: allow(determinism-time):   \n\
         pub fn f() -> std::time::Instant { std::time::Instant::now() }\n",
    );
    let report = audit_workspace(&ws.root).unwrap();
    let rules: Vec<&str> = report.violations.iter().map(|v| v.rule.name()).collect();
    assert!(rules.contains(&"waiver-hygiene"), "{rules:?}");
    assert!(
        rules.contains(&"determinism-time"),
        "reasonless pragma must not suppress: {rules:?}"
    );
}

#[test]
fn expired_pragma_hard_fails_once_the_pr_count_passes() {
    let src = "// pm-audit: allow(determinism-time, expires: PR3): migration window\n\
               pub fn f() -> std::time::Instant { std::time::Instant::now() }\n";
    // Before the bound: the waiver holds.
    let ws = ScratchWorkspace::new("expiry", src);
    ws.write_changelog(2);
    let report = audit_workspace(&ws.root).unwrap();
    assert!(report.violations.is_empty(), "{:?}", report.violations);
    // At the bound: the pragma is expired — inert and itself a violation.
    ws.write_changelog(3);
    let report = audit_workspace(&ws.root).unwrap();
    let rules: Vec<&str> = report.violations.iter().map(|v| v.rule.name()).collect();
    assert!(rules.contains(&"waiver-hygiene"), "{rules:?}");
    assert!(rules.contains(&"determinism-time"), "{rules:?}");
}

#[test]
fn violations_are_attributed_to_items() {
    let ws = ScratchWorkspace::new(
        "items",
        "mod inner {\n\
             pub fn ticking() -> std::time::Instant { std::time::Instant::now() }\n\
         }\n",
    );
    let report = audit_workspace(&ws.root).unwrap();
    assert_eq!(report.violations.len(), 1, "{:?}", report.violations);
    assert_eq!(report.violations[0].item, "inner::ticking");
}

#[test]
fn full_workspace_audit_is_fast() {
    let root = repo_root();
    let start = std::time::Instant::now();
    let report = audit_workspace(&root).unwrap();
    let elapsed = start.elapsed();
    assert!(report.files_scanned > 50, "sanity: real workspace scanned");
    assert!(
        elapsed < std::time::Duration::from_secs(5),
        "full-workspace audit took {elapsed:?}, budget is 5 s"
    );
}

#[test]
fn workspace_self_audit_respects_the_committed_baseline() {
    let root = repo_root();
    let baseline_path = root.join("audit-baseline.json");
    let text = fs::read_to_string(&baseline_path).unwrap_or_else(|e| {
        panic!(
            "audit-baseline.json must be committed at the workspace root \
             ({}): {e}",
            baseline_path.display()
        )
    });
    let allowed = baseline::parse(&text).unwrap();
    let report = audit_workspace(&root).unwrap();
    let outcome = gate(&report, &allowed);
    assert!(
        outcome.passed(),
        "workspace regressed its audit baseline:\n{}",
        outcome
            .regressions
            .iter()
            .map(|d| format!(
                "  {} in {}: {} > baseline {}",
                d.rule, d.crate_name, d.current, d.baseline
            ))
            .collect::<Vec<_>>()
            .join("\n")
    );
}
