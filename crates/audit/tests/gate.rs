//! End-to-end gate tests for pm-audit.
//!
//! The load-bearing one is the *negative* self-test: a workspace seeded
//! with a fresh violation must FAIL the gate against a baseline that does
//! not allow it — proving the CI job is a real tripwire, not a no-op.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::Command;

use pm_audit::baseline::{self, Counts};
use pm_audit::{audit_workspace, gate};

/// A unique scratch workspace under the system temp dir. Uses the process
/// id plus a caller tag for uniqueness — no wall clock involved.
struct ScratchWorkspace {
    root: PathBuf,
}

impl ScratchWorkspace {
    fn new(tag: &str, lib_rs: &str) -> Self {
        let root = std::env::temp_dir().join(format!("pm-audit-gate-{}-{tag}", std::process::id()));
        let _ = fs::remove_dir_all(&root);
        fs::create_dir_all(root.join("src")).unwrap();
        fs::write(
            root.join("Cargo.toml"),
            "[package]\nname = \"seeded\"\nversion = \"0.0.0\"\n",
        )
        .unwrap();
        fs::write(root.join("src/lib.rs"), lib_rs).unwrap();
        ScratchWorkspace { root }
    }
}

impl Drop for ScratchWorkspace {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.root);
    }
}

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

#[test]
fn seeded_violation_fails_the_gate() {
    let ws = ScratchWorkspace::new(
        "seeded",
        "pub fn f() -> std::time::Instant { std::time::Instant::now() }\n",
    );
    let report = audit_workspace(&ws.root).unwrap();
    assert_eq!(report.violations.len(), 1, "{:?}", report.violations);
    assert_eq!(report.violations[0].rule.name(), "determinism-time");
    let outcome = gate(&report, &Counts::new());
    assert!(
        !outcome.passed(),
        "seeded violation must fail an empty baseline"
    );
    assert_eq!(outcome.regressions.len(), 1);
    assert_eq!(outcome.regressions[0].current, 1);
    assert_eq!(outcome.regressions[0].baseline, 0);
}

#[test]
fn seeded_violation_fails_via_the_binary_exit_code() {
    let ws = ScratchWorkspace::new(
        "binary",
        "pub fn f() -> std::time::Instant { std::time::Instant::now() }\n",
    );
    let empty_baseline = ws.root.join("baseline.json");
    fs::write(&empty_baseline, "{\n}\n").unwrap();
    let out = Command::new(env!("CARGO_BIN_EXE_pm-audit"))
        .args(["--root"])
        .arg(&ws.root)
        .args(["--baseline"])
        .arg(&empty_baseline)
        .output()
        .unwrap();
    assert_eq!(
        out.status.code(),
        Some(1),
        "stdout: {}\nstderr: {}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("REGRESSION"), "{stdout}");
    assert!(stdout.contains("gate: FAIL"), "{stdout}");
}

#[test]
fn baselined_violation_passes_and_fixing_it_reports_improvement() {
    let ws = ScratchWorkspace::new(
        "ratchet",
        "pub fn f() -> std::time::Instant { std::time::Instant::now() }\n",
    );
    let report = audit_workspace(&ws.root).unwrap();
    // Commit today's count as the baseline: the gate passes.
    let allowed = report.counts.clone();
    assert!(gate(&report, &allowed).passed());
    // Fix the violation: the gate still passes and reports the headroom.
    fs::write(ws.root.join("src/lib.rs"), "pub fn f() {}\n").unwrap();
    let fixed = audit_workspace(&ws.root).unwrap();
    let outcome = gate(&fixed, &allowed);
    assert!(outcome.passed());
    assert_eq!(outcome.improvements.len(), 1);
    assert_eq!(outcome.improvements[0].current, 0);
    assert_eq!(outcome.improvements[0].baseline, 1);
}

#[test]
fn suppression_pragma_waives_the_seeded_violation() {
    let ws = ScratchWorkspace::new(
        "pragma",
        "// pm-audit: allow(determinism-time): gate test fixture\n\
         pub fn f() -> std::time::Instant { std::time::Instant::now() }\n",
    );
    let report = audit_workspace(&ws.root).unwrap();
    assert!(report.violations.is_empty(), "{:?}", report.violations);
    assert!(gate(&report, &Counts::new()).passed());
}

#[test]
fn baseline_json_roundtrips_through_the_writer_and_parser() {
    let ws = ScratchWorkspace::new(
        "roundtrip",
        "pub fn f() -> std::time::Instant { std::time::Instant::now() }\n",
    );
    let report = audit_workspace(&ws.root).unwrap();
    let json = baseline::to_json(&report.counts);
    let parsed = baseline::parse(&json).unwrap();
    assert_eq!(parsed, report.counts);
}

#[test]
fn workspace_self_audit_respects_the_committed_baseline() {
    let root = repo_root();
    let baseline_path = root.join("audit-baseline.json");
    let text = fs::read_to_string(&baseline_path).unwrap_or_else(|e| {
        panic!(
            "audit-baseline.json must be committed at the workspace root \
             ({}): {e}",
            baseline_path.display()
        )
    });
    let allowed = baseline::parse(&text).unwrap();
    let report = audit_workspace(&root).unwrap();
    let outcome = gate(&report, &allowed);
    assert!(
        outcome.passed(),
        "workspace regressed its audit baseline:\n{}",
        outcome
            .regressions
            .iter()
            .map(|d| format!(
                "  {} in {}: {} > baseline {}",
                d.rule, d.crate_name, d.current, d.baseline
            ))
            .collect::<Vec<_>>()
            .join("\n")
    );
}
