//! Property tests for the structural item parser: its spans must
//! *partition* the token stream (top-level items tile it, children nest
//! strictly inside their parent and never overlap), and parsing must be
//! total on arbitrary input — hostile or not, it returns a tree.

use proptest::prelude::*;

use pm_audit::items::{self, Item};
use pm_audit::lexer::lex;

/// Item-shaped source fragments the generator can concatenate. Each is a
/// complete top-level item so the tiling property is interesting; the
/// parser must still cope when they are cut up by `arb_text` noise.
fn fragment() -> impl Strategy<Value = &'static str> {
    prop_oneof![
        Just("fn a() { let x = 1; }"),
        Just("pub fn b(v: u8) -> u8 { v }"),
        Just("pub unsafe fn c() {}"),
        Just("/// # Safety\n/// fine\npub unsafe fn d() {}"),
        Just("#[target_feature(enable = \"avx2\")]\nfn e() {}"),
        Just("mod m { fn inner() {} }"),
        Just("impl Thing { fn method(&self) {} }"),
        Just("trait T { fn req(&self); }"),
        Just("struct S { f: u8 }"),
        Just("enum E { A, B }"),
        Just("const K: u8 = 3;"),
        Just("use std::fmt;"),
        Just("#[cfg(test)]\nmod tests { fn t() {} }"),
        Just("// stray comment"),
        Just("let orphan = 5;"),
        Just("}"), // unbalanced close — parser must not wedge
        Just("{"), // unbalanced open
    ]
}

fn source() -> impl Strategy<Value = String> {
    proptest::collection::vec(fragment(), 0..8).prop_map(|parts| parts.join("\n"))
}

/// Arbitrary unicode text built char-by-char (the vendored proptest has no
/// regex strategies).
fn arb_text() -> impl Strategy<Value = String> {
    proptest::collection::vec(any::<char>(), 0..200).prop_map(|cs| cs.into_iter().collect())
}

/// Check the span contract recursively: children are contained in their
/// parent, mutually disjoint, and in order.
fn check_nesting(items: &[Item], bound: &std::ops::Range<usize>) -> Result<(), String> {
    let mut prev_end = bound.start;
    for item in items {
        let span = &item.tok_span;
        if span.start < prev_end || span.end > bound.end {
            return Err(format!(
                "span {span:?} escapes bound {bound:?} (prev_end {prev_end})"
            ));
        }
        if span.start > span.end {
            return Err(format!("inverted span {span:?}"));
        }
        check_nesting(&item.children, span)?;
        prev_end = span.end;
    }
    Ok(())
}

proptest! {
    /// Top-level item spans exactly tile the token stream: concatenated in
    /// order they cover every token once, with no gaps and no overlap.
    #[test]
    fn top_level_spans_tile_the_token_stream(src in source()) {
        let tokens = lex(&src);
        let tree = items::parse(&tokens);
        let mut pos = 0usize;
        for item in &tree.items {
            prop_assert_eq!(
                item.tok_span.start, pos,
                "gap or overlap before item {:?}", item.name
            );
            pos = item.tok_span.end;
        }
        prop_assert_eq!(pos, tokens.len(), "tail tokens not covered");
    }

    /// Children nest strictly inside their parent and are disjoint, at
    /// every depth.
    #[test]
    fn child_spans_nest_and_are_disjoint(src in source()) {
        let tokens = lex(&src);
        let tree = items::parse(&tokens);
        if let Err(msg) = check_nesting(&tree.items, &(0..tokens.len())) {
            prop_assert!(false, "{}", msg);
        }
    }

    /// Totality: the parser returns on arbitrary garbage, and its tiling
    /// contract holds even there.
    #[test]
    fn parser_total_and_tiling_on_arbitrary_input(src in arb_text()) {
        let tokens = lex(&src);
        let tree = items::parse(&tokens);
        let mut pos = 0usize;
        for item in &tree.items {
            prop_assert_eq!(item.tok_span.start, pos);
            pos = item.tok_span.end;
        }
        prop_assert_eq!(pos, tokens.len());
    }

    /// Byte spans are consistent with token spans: an item's byte span
    /// starts at its first token's byte offset.
    #[test]
    fn byte_spans_match_token_spans(src in source()) {
        let tokens = lex(&src);
        let tree = items::parse(&tokens);
        for item in &tree.items {
            if item.tok_span.is_empty() {
                continue;
            }
            let first = &tokens[item.tok_span.start];
            prop_assert_eq!(item.byte_span.start, first.start);
            let last = &tokens[item.tok_span.end - 1];
            prop_assert_eq!(item.byte_span.end, last.start + last.text.len());
        }
    }

    /// Flattening preserves every named fn exactly once and qualifies it
    /// with its module path.
    #[test]
    fn flatten_is_lossless_for_fns(src in source()) {
        let tokens = lex(&src);
        let tree = items::parse(&tokens);
        use pm_audit::items::ItemKind;
        fn count_fns(items: &[Item]) -> usize {
            items
                .iter()
                .map(|i| usize::from(matches!(i.kind, ItemKind::Fn)) + count_fns(&i.children))
                .sum()
        }
        let flat = items::flatten(&tree, "x");
        let flat_fns = flat.iter().filter(|q| matches!(q.kind, ItemKind::Fn)).count();
        prop_assert_eq!(flat_fns, count_fns(&tree.items));
    }
}
