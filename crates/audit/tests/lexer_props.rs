//! Property tests for the pm-audit lexer and its contract with the rule
//! engine: hazard spellings inside comments, string literals and raw
//! strings must never produce violations; the same spelling in code
//! position must. The lexer is also total (never panics) and partitions
//! the input into monotonically ordered, in-bounds spans.

use proptest::prelude::*;

use pm_audit::lexer::{lex, TokenKind};
use pm_audit::rules::scan_file;

/// Hazard spellings, one per rule family, all of which fire when placed in
/// code position inside a scanned crate.
const HAZARDS: &[&str] = &[
    "Instant::now()",
    "SystemTime::now()",
    "HashMap::new()",
    "thread_rng()",
    "x.unwrap()",
    "panic!(\"boom\")",
    "unsafe { }",
];

/// A strategy over identifier-ish filler text that cannot itself contain a
/// hazard or any quote/comment delimiter.
fn filler() -> impl Strategy<Value = String> {
    proptest::collection::vec(
        prop_oneof![
            Just("alpha"),
            Just("beta_2"),
            Just("let x = 1;"),
            Just("fn f() {}"),
            Just("// plain note"),
            Just("gamma"),
        ],
        0..4,
    )
    .prop_map(|parts| parts.join("\n"))
}

fn hazard() -> impl Strategy<Value = &'static str> {
    (0..HAZARDS.len()).prop_map(|i| HAZARDS[i])
}

/// Arbitrary unicode text built char-by-char (the vendored proptest has no
/// regex strategies): surrogate-free code points below U+D800, which still
/// covers quotes, backslashes, newlines, NULs and non-ASCII.
fn arb_text() -> impl Strategy<Value = String> {
    proptest::collection::vec(any::<char>(), 0..200).prop_map(|cs| cs.into_iter().collect())
}

/// Wrap a hazard so it is lexically quoted: the rule engine must not see it.
fn quoted_contexts(h: &str) -> Vec<String> {
    vec![
        format!("// hazard in a line comment: {h}"),
        format!("/* hazard in a block comment: {h} */"),
        format!("/* nested /* {h} */ still comment */"),
        format!(
            "let s = \"{}\";",
            h.replace('\\', "\\\\").replace('"', "\\\"")
        ),
        format!("let s = r\"{}\";", h.replace('"', "'")),
        format!("let s = r#\"{h}\"#;"),
        format!("let s = b\"{}\";", h.replace('"', "'")),
        format!("//! doc comment: {h}"),
        format!("/// outer doc: {h}"),
    ]
}

proptest! {
    /// Hazards spelled inside comments or string literals never fire,
    /// regardless of surrounding code.
    #[test]
    fn quoted_hazards_never_fire(pre in filler(), post in filler(), h in hazard()) {
        for ctx in quoted_contexts(h) {
            let src = format!("{pre}\n{ctx}\n{post}\n");
            // pm-core is in scope for every rule family used by HAZARDS.
            let violations = scan_file("pm-core", "crates/core/src/x.rs", &src);
            prop_assert!(
                violations.is_empty(),
                "quoted hazard fired: {:?} -> {:?}", ctx, violations
            );
        }
    }

    /// The same hazard in code position does fire — the quoting above is
    /// what suppresses it, not the rule being dead.
    #[test]
    fn code_position_hazards_fire(pre in filler(), h in hazard()) {
        let src = format!("{pre}\nfn g() {{ {h}; }}\n");
        let violations = scan_file("pm-core", "crates/core/src/x.rs", &src);
        prop_assert!(
            !violations.is_empty(),
            "code-position hazard did not fire: {:?}", h
        );
    }

    /// Totality: the lexer returns on arbitrary input, including
    /// unterminated strings, lone quotes, stray backslashes and non-ASCII.
    #[test]
    fn lexer_total_on_arbitrary_input(src in arb_text()) {
        let _ = lex(&src);
        let _ = scan_file("pm-core", "crates/core/src/x.rs", &src);
    }

    /// Totality on byte soup decoded lossily (exercises invalid-UTF-8
    /// replacement characters and control bytes).
    #[test]
    fn lexer_total_on_byte_soup(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let src = String::from_utf8_lossy(&bytes).into_owned();
        let _ = lex(&src);
    }

    /// Span invariants: token spans are in-bounds, non-empty, strictly
    /// ordered, and `text` matches the span it claims.
    #[test]
    fn spans_are_ordered_and_in_bounds(src in arb_text()) {
        let tokens = lex(&src);
        let mut prev_end = 0usize;
        for t in &tokens {
            prop_assert!(t.start >= prev_end, "overlapping spans");
            prop_assert!(!t.text.is_empty(), "empty token");
            prop_assert!(t.start + t.text.len() <= src.len(), "span out of bounds");
            prop_assert_eq!(&src[t.start..t.start + t.text.len()], t.text);
            prev_end = t.start + t.text.len();
        }
    }

    /// Line numbers are non-decreasing and consistent with the newlines
    /// preceding each token's start offset.
    #[test]
    fn line_numbers_match_newline_count(src in arb_text()) {
        let tokens = lex(&src);
        for t in &tokens {
            let expected = 1 + src[..t.start].matches('\n').count() as u32;
            prop_assert_eq!(t.line, expected, "line number drifted");
        }
    }

    /// Reconstructing the input from token spans plus the gaps between
    /// them yields the original source: nothing is dropped or duplicated.
    #[test]
    fn tokens_partition_the_source(src in arb_text()) {
        let tokens = lex(&src);
        let mut rebuilt = String::new();
        let mut pos = 0usize;
        for t in &tokens {
            rebuilt.push_str(&src[pos..t.start]);
            rebuilt.push_str(t.text);
            pos = t.start + t.text.len();
        }
        rebuilt.push_str(&src[pos..]);
        prop_assert_eq!(rebuilt, src);
    }

    /// Gaps between tokens contain only whitespace — every non-whitespace
    /// character lands inside exactly one token.
    #[test]
    fn gaps_are_whitespace_only(src in arb_text()) {
        let tokens = lex(&src);
        let mut pos = 0usize;
        for t in &tokens {
            prop_assert!(
                src[pos..t.start].chars().all(char::is_whitespace),
                "non-whitespace between tokens"
            );
            pos = t.start + t.text.len();
        }
        prop_assert!(src[pos..].chars().all(char::is_whitespace));
    }
}

#[test]
fn suppression_pragma_silences_only_named_rule() {
    let src = "\
// pm-audit: allow(determinism-time): test fixture
fn f() { let _ = Instant::now(); }
";
    assert!(scan_file("pm-core", "crates/core/src/x.rs", src).is_empty());
    // The same pragma does not silence a different rule.
    let src2 = "\
// pm-audit: allow(determinism-time): wrong rule named
fn f() { let _ = x.unwrap(); }
";
    let v = scan_file("pm-core", "crates/core/src/x.rs", src2);
    assert_eq!(v.len(), 1);
    assert_eq!(v[0].rule.name(), "panic-surface");
}

#[test]
fn comment_kinds_are_classified() {
    let tokens = lex("// line\n/* block */ ident \"str\" 'c' 'life 42");
    let kinds: Vec<TokenKind> = tokens.iter().map(|t| t.kind).collect();
    assert_eq!(
        kinds,
        vec![
            TokenKind::LineComment,
            TokenKind::BlockComment,
            TokenKind::Ident,
            TokenKind::Str,
            TokenKind::Char,
            TokenKind::Lifetime,
            TokenKind::Number,
        ]
    );
}
