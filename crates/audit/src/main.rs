#![forbid(unsafe_code)]
//! `pm-audit` CLI — scan the workspace and gate against a baseline.
//!
//! ```text
//! pm-audit [--root <dir>] [--baseline <file>] [--write-baseline <file>]
//!          [--json] [--quiet]
//! ```
//!
//! Exit codes: `0` gate passed, `1` a (rule, crate) count exceeds its
//! baseline entry, `2` usage or I/O error.

use std::path::PathBuf;
use std::process::ExitCode;

use pm_audit::baseline::Counts;

struct Opts {
    root: PathBuf,
    baseline: Option<PathBuf>,
    write_baseline: Option<PathBuf>,
    json: bool,
    quiet: bool,
}

fn parse_args() -> Result<Opts, String> {
    let mut opts = Opts {
        root: PathBuf::from("."),
        baseline: None,
        write_baseline: None,
        json: false,
        quiet: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => {
                opts.root = PathBuf::from(args.next().ok_or("--root needs a directory")?);
            }
            "--baseline" => {
                opts.baseline = Some(PathBuf::from(args.next().ok_or("--baseline needs a file")?));
            }
            "--write-baseline" => {
                opts.write_baseline = Some(PathBuf::from(
                    args.next().ok_or("--write-baseline needs a file")?,
                ));
            }
            "--json" => opts.json = true,
            "--quiet" => opts.quiet = true,
            "--help" | "-h" => {
                return Err("usage: pm-audit [--root <dir>] [--baseline <file>] \
                            [--write-baseline <file>] [--json] [--quiet]"
                    .into())
            }
            other => return Err(format!("unknown argument {other:?} (try --help)")),
        }
    }
    Ok(opts)
}

fn run() -> Result<bool, String> {
    let opts = parse_args()?;
    let report = pm_audit::audit_workspace(&opts.root)?;

    if let Some(path) = &opts.write_baseline {
        let json = pm_audit::baseline::to_json(&report.counts);
        std::fs::write(path, json).map_err(|e| format!("cannot write {}: {e}", path.display()))?;
        if !opts.quiet {
            eprintln!("pm-audit: wrote baseline to {}", path.display());
        }
    }

    let baseline_counts: Counts = match &opts.baseline {
        Some(path) => {
            let text = std::fs::read_to_string(path)
                .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
            pm_audit::baseline::parse(&text).map_err(|e| format!("{}: {e}", path.display()))?
        }
        None => Counts::new(),
    };
    let outcome = pm_audit::gate(&report, &baseline_counts);

    if !opts.quiet {
        if opts.json {
            print!("{}", pm_audit::render_json(&report, &outcome));
        } else {
            print!("{}", pm_audit::render_text(&report, &outcome));
        }
    }
    Ok(outcome.passed())
}

fn main() -> ExitCode {
    match run() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::from(1),
        Err(msg) => {
            eprintln!("pm-audit: {msg}");
            ExitCode::from(2)
        }
    }
}
