#![forbid(unsafe_code)]
//! `pm-audit` CLI — scan the workspace and gate against a baseline.
//!
//! ```text
//! pm-audit [--root <dir>] [--baseline <file>] [--write-baseline <file>]
//!          [--update-baseline] [--json] [--quiet]
//! ```
//!
//! `--update-baseline` rewrites the `--baseline` file from the current
//! run's counts — the sanctioned way to shrink the ratchet after a
//! cleanup, and the v1 → v2 (per-item) format migration in one step. CI
//! never passes it; the gate then trivially passes against the fresh
//! file, so the diff is reviewed like any other ratchet change.
//!
//! Exit codes: `0` gate passed, `1` a (rule, crate, item) count exceeds
//! its baseline entry, `2` usage or I/O error.

use std::path::PathBuf;
use std::process::ExitCode;

use pm_audit::baseline::Counts;

struct Opts {
    root: PathBuf,
    baseline: Option<PathBuf>,
    write_baseline: Option<PathBuf>,
    update_baseline: bool,
    json: bool,
    quiet: bool,
}

fn parse_args() -> Result<Opts, String> {
    let mut opts = Opts {
        root: PathBuf::from("."),
        baseline: None,
        write_baseline: None,
        update_baseline: false,
        json: false,
        quiet: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => {
                opts.root = PathBuf::from(args.next().ok_or("--root needs a directory")?);
            }
            "--baseline" => {
                opts.baseline = Some(PathBuf::from(args.next().ok_or("--baseline needs a file")?));
            }
            "--write-baseline" => {
                opts.write_baseline = Some(PathBuf::from(
                    args.next().ok_or("--write-baseline needs a file")?,
                ));
            }
            "--update-baseline" => opts.update_baseline = true,
            "--json" => opts.json = true,
            "--quiet" => opts.quiet = true,
            "--help" | "-h" => {
                return Err("usage: pm-audit [--root <dir>] [--baseline <file>] \
                            [--write-baseline <file>] [--update-baseline] [--json] [--quiet]"
                    .into())
            }
            other => return Err(format!("unknown argument {other:?} (try --help)")),
        }
    }
    if opts.update_baseline && opts.baseline.is_none() {
        return Err("--update-baseline needs --baseline <file> to know what to rewrite".into());
    }
    Ok(opts)
}

fn run() -> Result<bool, String> {
    let opts = parse_args()?;
    let report = pm_audit::audit_workspace(&opts.root)?;

    if let Some(path) = &opts.write_baseline {
        let json = pm_audit::baseline::to_json(&report.counts);
        std::fs::write(path, json).map_err(|e| format!("cannot write {}: {e}", path.display()))?;
        if !opts.quiet {
            eprintln!("pm-audit: wrote baseline to {}", path.display());
        }
    }
    if opts.update_baseline {
        // Rewrite in place (always v2), then gate against the fresh file
        // below — reading it back keeps the parse path honest.
        if let Some(path) = &opts.baseline {
            let json = pm_audit::baseline::to_json(&report.counts);
            std::fs::write(path, json)
                .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
            if !opts.quiet {
                eprintln!("pm-audit: updated baseline {}", path.display());
            }
        }
    }

    let baseline_counts: Counts = match &opts.baseline {
        Some(path) => {
            let text = std::fs::read_to_string(path)
                .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
            pm_audit::baseline::parse(&text).map_err(|e| format!("{}: {e}", path.display()))?
        }
        None => Counts::new(),
    };
    let outcome = pm_audit::gate(&report, &baseline_counts);

    if !opts.quiet {
        if opts.json {
            print!("{}", pm_audit::render_json(&report, &outcome));
        } else {
            print!("{}", pm_audit::render_text(&report, &outcome));
        }
    }
    Ok(outcome.passed())
}

fn main() -> ExitCode {
    match run() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::from(1),
        Err(msg) => {
            eprintln!("pm-audit: {msg}");
            ExitCode::from(2)
        }
    }
}
