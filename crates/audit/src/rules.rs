//! The audit rules and the per-file scanner.
//!
//! Every rule works on the token stream produced by [`crate::lexer`], so a
//! hazard spelled inside a comment, string or raw string can never fire.
//! Rules are scoped per crate (a wall-clock read is fine in `pm-bench`,
//! fatal in `pm-sim`) and individual lines can be waived with a pragma:
//!
//! ```text
//! // pm-audit: allow(panic-surface): guarded by is_complete() above
//! let row = self.pivots[i].as_ref().expect("complete");
//! ```
//!
//! A pragma suppresses the named rule(s) on its own line and on the line
//! directly below it, so both trailing and line-above styles work.

use std::collections::{BTreeMap, BTreeSet};

use crate::lexer::{lex, Token, TokenKind};

/// Crates whose `unsafe-code` count may be nonzero in the baseline.
///
/// pm-simd is the workspace's one sanctioned `unsafe` boundary: its SIMD
/// kernels need raw loads/stores and target-feature intrinsics, every
/// kernel is differentially proptested against the safe scalar reference,
/// and `#![forbid(unsafe_code)]` stays in force everywhere else. The
/// baseline parser rejects an `unsafe-code` allowance for any crate not
/// listed here, so the waiver cannot silently widen.
pub const UNSAFE_WAIVED_CRATES: &[&str] = &["pm-simd"];

/// Every rule the auditor knows, in reporting order.
pub const ALL_RULES: &[Rule] = &[
    Rule::DeterminismTime,
    Rule::DeterminismHashIter,
    Rule::RngEntropy,
    Rule::PanicSurface,
    Rule::UnsafeCode,
    Rule::EventVocabulary,
];

/// One audit rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// Wall-clock reads (`Instant::now`, `SystemTime`) outside the
    /// allowlisted wall-clock domains (pm-core runtime, pm-obs stopwatch,
    /// pm-bench). Simulated time is the only clock deterministic code may
    /// read.
    DeterminismTime,
    /// `HashMap`/`HashSet` in deterministic protocol/simulation state
    /// (pm-core, pm-sim, pm-loss): iteration order is randomized per
    /// process, so replay and the parallel==serial contract break. Use
    /// `BTreeMap`/`BTreeSet`.
    DeterminismHashIter,
    /// Entropy-seeded randomness (`thread_rng`, `from_entropy`, `OsRng`,
    /// `rand::random`): every RNG must derive from an explicit seed.
    RngEntropy,
    /// Panic paths in codec/protocol hot code (pm-gf, pm-rse, pm-core):
    /// `unwrap`/`expect`, panicking macros and direct indexing.
    PanicSurface,
    /// Any `unsafe` token anywhere in the workspace. Fires in every crate
    /// — including [`UNSAFE_WAIVED_CRATES`] — so the count stays visible;
    /// the waiver only permits a baseline allowance for those crates.
    UnsafeCode,
    /// The pm-obs `Event::name` match and the `EVENT_NAMES` vocabulary
    /// const must list the same number of events (obs-check validates
    /// traces against `EVENT_NAMES`, so a drift would let unvalidated
    /// event types through).
    EventVocabulary,
}

impl Rule {
    /// Stable kebab-case name used in reports, baselines and pragmas.
    pub fn name(&self) -> &'static str {
        match self {
            Rule::DeterminismTime => "determinism-time",
            Rule::DeterminismHashIter => "determinism-hash-iter",
            Rule::RngEntropy => "rng-entropy",
            Rule::PanicSurface => "panic-surface",
            Rule::UnsafeCode => "unsafe-code",
            Rule::EventVocabulary => "event-vocabulary",
        }
    }

    /// Parse a pragma/baseline rule name.
    pub fn from_name(name: &str) -> Option<Rule> {
        ALL_RULES.iter().copied().find(|r| r.name() == name)
    }

    /// Crates the rule applies to (`None` = every scanned crate).
    fn crates(&self) -> Option<&'static [&'static str]> {
        match self {
            Rule::DeterminismHashIter => Some(&["pm-core", "pm-sim", "pm-loss"]),
            Rule::PanicSurface => Some(&["pm-gf", "pm-rse", "pm-core"]),
            _ => None,
        }
    }

    /// Crates exempt from the rule even when `crates()` is `None`.
    fn exempt_crates(&self) -> &'static [&'static str] {
        match self {
            // Benchmarks measure wall-clock time by design, and the
            // auditor itself never runs inside a simulation.
            Rule::DeterminismTime => &["pm-bench", "pm-audit"],
            _ => &[],
        }
    }

    /// File-path suffixes exempt from the rule: the explicitly allowlisted
    /// wall-clock domains.
    fn exempt_files(&self) -> &'static [&'static str] {
        match self {
            Rule::DeterminismTime => &[
                // The threaded protocol runtime paces real packets.
                "core/src/runtime.rs",
                // The pm-obs stopwatch/span-timer machinery is the one
                // sanctioned wall-clock source for instrumentation.
                "obs/src/metrics.rs",
                "obs/src/recorder.rs",
            ],
            _ => &[],
        }
    }

    /// Does the rule apply to `crate_name` / `rel_path`?
    pub fn applies(&self, crate_name: &str, rel_path: &str) -> bool {
        if let Some(crates) = self.crates() {
            if !crates.contains(&crate_name) {
                return false;
            }
        }
        if self.exempt_crates().contains(&crate_name) {
            return false;
        }
        let unix_path = rel_path.replace('\\', "/");
        !self
            .exempt_files()
            .iter()
            .any(|suffix| unix_path.ends_with(suffix))
    }
}

/// One rule hit at one source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Which rule fired.
    pub rule: Rule,
    /// Cargo package name of the containing crate.
    pub crate_name: String,
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line number.
    pub line: u32,
    /// Human-readable description of the hit.
    pub message: String,
}

/// Files compiled only under `#[cfg(test)]` at their inclusion site, so
/// the in-file scanner cannot see the gate.
const TEST_ONLY_FILE_SUFFIXES: &[&str] = &["src/proptests.rs"];

/// Scan one source file and return every unsuppressed violation.
pub fn scan_file(crate_name: &str, rel_path: &str, src: &str) -> Vec<Violation> {
    let unix_path = rel_path.replace('\\', "/");
    if TEST_ONLY_FILE_SUFFIXES
        .iter()
        .any(|s| unix_path.ends_with(s))
    {
        return Vec::new();
    }
    let tokens = lex(src);
    let suppressed = collect_pragmas(&tokens);
    let code = non_test_significant_tokens(&tokens);

    let mut out = Vec::new();
    let mut push = |rule: Rule, line: u32, message: String| {
        if !rule.applies(crate_name, rel_path) {
            return;
        }
        if let Some(lines) = suppressed.get(&rule) {
            if lines.contains(&line) {
                return;
            }
        }
        out.push(Violation {
            rule,
            crate_name: crate_name.to_string(),
            file: rel_path.to_string(),
            line,
            message,
        });
    };

    for (i, tok) in code.iter().enumerate() {
        let prev = i.checked_sub(1).map(|j| code[j]);
        let next = code.get(i + 1).copied();
        let next2 = code.get(i + 2).copied();
        match (tok.kind, tok.text) {
            (TokenKind::Ident, "Instant")
                if is_punct(next, ":")
                    && is_punct(next2, ":")
                    && matches!(code.get(i + 3), Some(t) if t.text == "now") =>
            {
                push(
                    Rule::DeterminismTime,
                    tok.line,
                    "wall-clock read: Instant::now()".into(),
                );
            }
            (TokenKind::Ident, "SystemTime") => {
                push(
                    Rule::DeterminismTime,
                    tok.line,
                    "wall-clock type: SystemTime".into(),
                );
            }
            (TokenKind::Ident, "HashMap" | "HashSet" | "hash_map" | "hash_set") => {
                push(
                    Rule::DeterminismHashIter,
                    tok.line,
                    format!(
                        "{} in deterministic state (iteration order is per-process random); \
                         use BTreeMap/BTreeSet",
                        tok.text
                    ),
                );
            }
            (TokenKind::Ident, "thread_rng" | "from_entropy" | "ThreadRng" | "OsRng") => {
                push(
                    Rule::RngEntropy,
                    tok.line,
                    format!("entropy-seeded randomness: {}", tok.text),
                );
            }
            (TokenKind::Ident, "random")
                if is_punct(prev, ":")
                    && i >= 3
                    && code[i - 2].text == ":"
                    && code[i - 3].text == "rand" =>
            {
                push(
                    Rule::RngEntropy,
                    tok.line,
                    "entropy-seeded randomness: rand::random".into(),
                );
            }
            (TokenKind::Ident, "unwrap" | "expect" | "unwrap_err" | "expect_err")
                if is_punct(prev, ".") =>
            {
                push(
                    Rule::PanicSurface,
                    tok.line,
                    format!(".{}() panics on the error path", tok.text),
                );
            }
            (TokenKind::Ident, "panic" | "unreachable" | "todo" | "unimplemented")
                if is_punct(next, "!") =>
            {
                push(
                    Rule::PanicSurface,
                    tok.line,
                    format!("panicking macro: {}!", tok.text),
                );
            }
            (TokenKind::Punct, "[") if indexing_context(prev) => {
                push(
                    Rule::PanicSurface,
                    tok.line,
                    "direct indexing/slicing can panic on out-of-range".into(),
                );
            }
            (TokenKind::Ident, "unsafe") => {
                push(Rule::UnsafeCode, tok.line, "unsafe code".into());
            }
            _ => {}
        }
    }
    out
}

/// `expr[` is indexing when the previous significant token ends an
/// expression: an identifier (that is not a keyword), a closing bracket or
/// a literal. `#[attr]`, `![inner]`, types like `[u8; 4]` and macro calls
/// like `vec![…]` all have non-expression predecessors.
fn indexing_context(prev: Option<Token<'_>>) -> bool {
    const KEYWORDS: &[&str] = &[
        "as", "break", "const", "continue", "crate", "dyn", "else", "enum", "extern", "fn", "for",
        "if", "impl", "in", "let", "loop", "match", "mod", "move", "mut", "pub", "ref", "return",
        "static", "struct", "trait", "type", "unsafe", "use", "where", "while", "box", "await",
        "yield",
    ];
    match prev {
        Some(t) => match t.kind {
            TokenKind::Ident => !KEYWORDS.contains(&t.text),
            TokenKind::Punct => matches!(t.text, ")" | "]"),
            TokenKind::Number => true,
            _ => false,
        },
        None => false,
    }
}

fn is_punct(tok: Option<Token<'_>>, text: &str) -> bool {
    matches!(tok, Some(t) if t.kind == TokenKind::Punct && t.text == text)
}

/// Lines waived per rule. A `// pm-audit: allow(rule-a, rule-b): why`
/// comment suppresses the named rules on the pragma's own line and on the
/// following line.
fn collect_pragmas<'a>(tokens: &[Token<'a>]) -> BTreeMap<Rule, BTreeSet<u32>> {
    let mut out: BTreeMap<Rule, BTreeSet<u32>> = BTreeMap::new();
    for tok in tokens {
        if !matches!(tok.kind, TokenKind::LineComment | TokenKind::BlockComment) {
            continue;
        }
        let Some(idx) = tok.text.find("pm-audit:") else {
            continue;
        };
        let rest = &tok.text[idx + "pm-audit:".len()..];
        let Some(open) = rest.find("allow(") else {
            continue;
        };
        let Some(close) = rest[open..].find(')') else {
            continue;
        };
        for name in rest[open + "allow(".len()..open + close].split(',') {
            if let Some(rule) = Rule::from_name(name.trim()) {
                let lines = out.entry(rule).or_default();
                lines.insert(tok.line);
                lines.insert(tok.line + 1);
            }
        }
    }
    out
}

/// Strip test-only regions and return only the significant tokens.
///
/// Recognized gates: a file-level `#![cfg(test)]` (whole file is test
/// code) and item-level `#[cfg(test)]` / `#[test]` attributes (the
/// attributed item — through its closing brace or terminating semicolon —
/// is skipped, including any stacked attributes in between).
fn non_test_significant_tokens<'a>(tokens: &'a [Token<'a>]) -> Vec<Token<'a>> {
    let sig: Vec<Token<'a>> = tokens
        .iter()
        .copied()
        .filter(Token::is_significant)
        .collect();
    let mut out = Vec::with_capacity(sig.len());
    let mut i = 0;
    while i < sig.len() {
        if is_punct(sig.get(i).copied(), "#") {
            let inner = is_punct(sig.get(i + 1).copied(), "!");
            let attr_start = if inner { i + 2 } else { i + 1 };
            if is_punct(sig.get(attr_start).copied(), "[") {
                let (is_test_gate, attr_end) = parse_attribute(&sig, attr_start);
                if is_test_gate {
                    if inner {
                        // `#![cfg(test)]`: the whole remaining file is
                        // test-only.
                        return out;
                    }
                    i = skip_attributed_item(&sig, attr_end);
                    continue;
                }
                // Non-test attribute: emit nothing for it, move past.
                i = attr_end;
                continue;
            }
        }
        out.push(sig[i]);
        i += 1;
    }
    out
}

/// Parse the attribute starting at the `[` at `open`. Returns whether it
/// gates test code and the index just past the matching `]`.
fn parse_attribute<'a>(sig: &[Token<'a>], open: usize) -> (bool, usize) {
    let mut depth = 0usize;
    let mut saw_cfg = false;
    let mut saw_test = false;
    let mut i = open;
    while i < sig.len() {
        let t = sig[i];
        match (t.kind, t.text) {
            (TokenKind::Punct, "[") => depth += 1,
            (TokenKind::Punct, "]") => {
                depth -= 1;
                if depth == 0 {
                    i += 1;
                    break;
                }
            }
            (TokenKind::Ident, "cfg") => saw_cfg = true,
            (TokenKind::Ident, "test") => saw_test = true,
            _ => {}
        }
        i += 1;
    }
    // `#[test]` (bare) or `#[cfg(test)]` / `#[cfg(any(test, …))]`.
    let bare_test = saw_test && !saw_cfg && i == open + 3;
    (bare_test || (saw_cfg && saw_test), i)
}

/// Skip the item following a test attribute: any further attributes, then
/// tokens until the first top-level `;` or the close of the first brace
/// block.
fn skip_attributed_item<'a>(sig: &[Token<'a>], mut i: usize) -> usize {
    // Stacked attributes after the test gate.
    while is_punct(sig.get(i).copied(), "#") {
        let attr_start = if is_punct(sig.get(i + 1).copied(), "!") {
            i + 2
        } else {
            i + 1
        };
        if !is_punct(sig.get(attr_start).copied(), "[") {
            break;
        }
        let (_, end) = parse_attribute(sig, attr_start);
        i = end;
    }
    let mut depth = 0usize;
    while i < sig.len() {
        match (sig[i].kind, sig[i].text) {
            (TokenKind::Punct, "{") => depth += 1,
            (TokenKind::Punct, "}") => {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    return i + 1;
                }
            }
            (TokenKind::Punct, ";") if depth == 0 => return i + 1,
            _ => {}
        }
        i += 1;
    }
    i
}

/// The event-vocabulary cross-check, run against `crates/obs/src/event.rs`.
///
/// Counts the string literals returned by the `Event::name` match arms and
/// the string literals in the `EVENT_NAMES` const initializer; the two
/// must agree (obs-check validates traces against `EVENT_NAMES`, so a
/// missing entry would make a freshly added event fail validation — or,
/// worse, an over-long list would accept a name no event produces).
pub fn check_event_vocabulary(crate_name: &str, rel_path: &str, src: &str) -> Vec<Violation> {
    let tokens = lex(src);
    let sig: Vec<Token<'_>> = tokens
        .iter()
        .copied()
        .filter(|t| t.is_significant() || t.kind == TokenKind::Str)
        .collect();

    let name_arms = count_name_match_arms(&sig);
    let vocab = count_event_names_const(&sig);
    let mut out = Vec::new();
    let mut fail = |line: u32, message: String| {
        out.push(Violation {
            rule: Rule::EventVocabulary,
            crate_name: crate_name.to_string(),
            file: rel_path.to_string(),
            line,
            message,
        });
    };
    match (name_arms, vocab) {
        (None, _) => fail(1, "Event::name match arms not found".into()),
        (_, None) => fail(1, "EVENT_NAMES const not found".into()),
        (Some((arms, line)), Some((names, _))) if arms != names => fail(
            line,
            format!(
                "event vocabulary drift: Event::name has {arms} arms but EVENT_NAMES lists \
                 {names} names"
            ),
        ),
        _ => {}
    }
    out
}

/// Find `fn name` and count `=> "…"` arms inside its first match block.
fn count_name_match_arms<'a>(sig: &[Token<'a>]) -> Option<(usize, u32)> {
    let mut i = 0;
    // Locate `fn name` followed (eventually) by `match`.
    loop {
        while i < sig.len()
            && !(sig[i].text == "fn" && sig.get(i + 1).map(|t| t.text) == Some("name"))
        {
            i += 1;
        }
        if i >= sig.len() {
            return None;
        }
        let fn_line = sig[i].line;
        // Scan forward to the `match` keyword within this fn.
        let mut j = i + 2;
        while j < sig.len() && sig[j].text != "match" && sig[j].text != "fn" {
            j += 1;
        }
        if j >= sig.len() || sig[j].text == "fn" {
            i = j;
            continue;
        }
        // Enter the match block and count `=> "…"` pairs at any depth.
        let mut depth = 0usize;
        let mut entered = false;
        let mut arms = 0usize;
        let mut k = j;
        while k < sig.len() {
            match (sig[k].kind, sig[k].text) {
                (TokenKind::Punct, "{") => {
                    depth += 1;
                    entered = true;
                }
                (TokenKind::Punct, "}") => {
                    depth = depth.saturating_sub(1);
                    if entered && depth == 0 {
                        break;
                    }
                }
                (TokenKind::Str, _)
                    if k >= 2 && sig[k - 1].text == ">" && sig[k - 2].text == "=" =>
                {
                    arms += 1;
                }
                _ => {}
            }
            k += 1;
        }
        return Some((arms, fn_line));
    }
}

/// Find `EVENT_NAMES` and count the string literals in its initializer
/// (between the `=` and the terminating `;` — the type annotation
/// `[&str; N]` holds a `;` of its own, so counting starts at the `=`).
fn count_event_names_const<'a>(sig: &[Token<'a>]) -> Option<(usize, u32)> {
    let i = sig.iter().position(|t| t.text == "EVENT_NAMES")?;
    let line = sig[i].line;
    let eq = i + sig[i..].iter().position(|t| t.text == "=")?;
    let mut names = 0usize;
    for t in &sig[eq..] {
        match (t.kind, t.text) {
            (TokenKind::Str, _) => names += 1,
            (TokenKind::Punct, ";") => break,
            _ => {}
        }
    }
    Some((names, line))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scan(src: &str) -> Vec<Violation> {
        scan_file("pm-core", "crates/core/src/x.rs", src)
    }

    fn rules_of(vs: &[Violation]) -> Vec<Rule> {
        vs.iter().map(|v| v.rule).collect()
    }

    #[test]
    fn hazards_in_comments_and_strings_never_fire() {
        let src = r###"
            // Instant::now() HashMap unwrap() unsafe thread_rng
            /* SystemTime /* nested unsafe */ still */
            fn f() {
                let s = "Instant::now() unsafe HashMap";
                let r = r#"thread_rng() .unwrap() panic!"#;
            }
        "###;
        assert!(scan(src).is_empty(), "{:?}", scan(src));
    }

    #[test]
    fn determinism_time_fires_in_code() {
        let vs = scan("fn f() { let t = Instant::now(); }");
        assert_eq!(rules_of(&vs), vec![Rule::DeterminismTime]);
        let vs = scan("use std::time::SystemTime;");
        assert_eq!(rules_of(&vs), vec![Rule::DeterminismTime]);
    }

    #[test]
    fn hash_iter_scoped_to_deterministic_crates() {
        let src = "use std::collections::HashMap;";
        assert_eq!(scan(src).len(), 1);
        assert!(scan_file("pm-net", "crates/net/src/x.rs", src).is_empty());
    }

    #[test]
    fn rng_entropy_fires() {
        let vs = scan("fn f() { let mut r = thread_rng(); let x: u8 = rand::random(); }");
        assert_eq!(vs.len(), 2);
        // Seeded RNG calls named `random` on a bound rng are fine.
        assert!(scan("fn f(r: &mut R) { let x: f64 = r.random(); }").is_empty());
    }

    #[test]
    fn panic_surface_unwrap_expect_macros_indexing() {
        let vs = scan("fn f(v: Vec<u8>) { v.last().unwrap(); v.first().expect(\"x\"); }");
        assert_eq!(vs.len(), 2);
        let vs = scan("fn f() { panic!(\"boom\"); unreachable!(); }");
        assert_eq!(vs.len(), 2);
        let vs = scan("fn f(v: &[u8], i: usize) -> u8 { v[i] }");
        assert_eq!(rules_of(&vs), vec![Rule::PanicSurface]);
        // unwrap_or is not a panic path; attributes and types are not
        // indexing.
        assert!(scan("fn f(v: Vec<u8>) { v.first().copied().unwrap_or(0); }").is_empty());
        assert!(scan("#[derive(Debug)] struct S { b: [u8; 4] }").is_empty());
        assert!(scan("fn f() { let v = vec![1, 2]; }").is_empty());
    }

    #[test]
    fn panic_surface_scoped_out_of_sim() {
        let src = "fn f(v: &[u8]) -> u8 { v[0] }";
        assert!(scan_file("pm-sim", "crates/sim/src/x.rs", src).is_empty());
    }

    #[test]
    fn unsafe_fires_everywhere() {
        let src = "unsafe fn f() {}";
        for (krate, path) in [("pm-obs", "crates/obs/src/x.rs"), ("pm-sim", "s.rs")] {
            let vs = scan_file(krate, path, src);
            assert_eq!(rules_of(&vs), vec![Rule::UnsafeCode], "{krate}");
        }
    }

    #[test]
    fn pragma_suppresses_same_and_next_line() {
        let trailing = "fn f(v: Vec<u8>) { v.last().unwrap(); } // pm-audit: allow(panic-surface)";
        assert!(scan(trailing).is_empty());
        let above = "fn f(v: Vec<u8>) {\n    // pm-audit: allow(panic-surface): invariant\n    v.last().unwrap();\n}";
        assert!(scan(above).is_empty());
        // The pragma names only one rule; others still fire.
        let other = "// pm-audit: allow(unsafe-code)\nfn f(v: Vec<u8>) { v.last().unwrap(); }";
        assert_eq!(scan(other).len(), 1);
    }

    #[test]
    fn test_code_is_exempt() {
        let src = r#"
            fn prod(v: Vec<u8>) -> usize { v.len() }
            #[cfg(test)]
            mod tests {
                #[test]
                fn t() { Vec::<u8>::new().last().unwrap(); }
            }
        "#;
        assert!(scan(src).is_empty());
        let gated_fn = "#[cfg(test)]\nfn helper(v: Vec<u8>) { v.last().unwrap(); }";
        assert!(scan(gated_fn).is_empty());
        let whole_file = "#![cfg(test)]\nfn f(v: Vec<u8>) { v.last().unwrap(); }";
        assert!(scan(whole_file).is_empty());
    }

    #[test]
    fn non_test_attributes_do_not_hide_code() {
        let src = "#[derive(Debug)]\nstruct S;\nfn f(v: Vec<u8>) { v.last().unwrap(); }";
        assert_eq!(scan(src).len(), 1);
        let cfg_feature = "#[cfg(feature = \"x\")]\nfn f(v: Vec<u8>) { v.last().unwrap(); }";
        assert_eq!(scan(cfg_feature).len(), 1);
    }

    #[test]
    fn allowlisted_files_are_exempt() {
        let src = "fn f() { let t = Instant::now(); }";
        assert!(scan_file("pm-core", "crates/core/src/runtime.rs", src).is_empty());
        assert!(scan_file("pm-obs", "crates/obs/src/metrics.rs", src).is_empty());
        assert!(scan_file("pm-bench", "crates/bench/src/fig01.rs", src).is_empty());
        assert_eq!(scan_file("pm-net", "crates/net/src/udp.rs", src).len(), 1);
    }

    #[test]
    fn event_vocabulary_detects_drift() {
        let ok = r#"
            pub const EVENT_NAMES: [&str; 2] = ["a", "b"];
            impl Event {
                pub fn name(&self) -> &'static str {
                    match self {
                        Event::A { .. } => "a",
                        Event::B { .. } => "b",
                    }
                }
            }
        "#;
        assert!(check_event_vocabulary("pm-obs", "e.rs", ok).is_empty());
        let drifted = ok.replace(r#"["a", "b"]"#, r#"["a", "b", "c"]"#);
        let vs = check_event_vocabulary("pm-obs", "e.rs", &drifted);
        assert_eq!(rules_of(&vs), vec![Rule::EventVocabulary]);
        let missing = "fn other() {}";
        assert_eq!(check_event_vocabulary("pm-obs", "e.rs", missing).len(), 1);
    }

    #[test]
    fn proptests_files_are_skipped() {
        let vs = scan_file(
            "pm-gf",
            "crates/gf/src/proptests.rs",
            "fn f(v: Vec<u8>) { v.last().unwrap(); }",
        );
        assert!(vs.is_empty());
    }
}
