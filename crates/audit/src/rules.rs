//! The audit rules and the per-file scanner.
//!
//! Every rule works on the token stream produced by [`crate::lexer`], so a
//! hazard spelled inside a comment, string or raw string can never fire.
//! Structural rules additionally consult the item tree recovered by
//! [`crate::items`], which attributes each violation to its enclosing
//! `module::Type::fn` item for the per-item ratchet.
//!
//! Rules are scoped per crate (a wall-clock read is fine in `pm-bench`,
//! fatal in `pm-sim`) and individual lines can be waived with a pragma:
//!
//! ```text
//! // pm-audit: allow(panic-surface): guarded by is_complete() above
//! let row = self.pivots[i].as_ref().expect("complete");
//! ```
//!
//! A pragma suppresses the named rule(s) on its own line and on the line
//! directly below it, so both trailing and line-above styles work. The
//! reason after the closing `)` is **mandatory**: a pragma without one is
//! inert and raises a `waiver-hygiene` violation. A pragma may also carry
//! an expiry that turns it into a hard failure once the workspace's PR
//! count (lines starting `- PR` in CHANGES.md) reaches `n`:
//!
//! ```text
//! // pm-audit: allow(hot-loop-alloc, expires: PR9999): until the scratch
//! // buffer lands
//! ```

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use crate::items::{self, ItemKind, QualItem};
use crate::lexer::{lex, Token, TokenKind};

/// Crates whose `unsafe-code` count may be nonzero in the baseline.
///
/// pm-simd is the workspace's one sanctioned `unsafe` boundary: its SIMD
/// kernels need raw loads/stores and target-feature intrinsics, every
/// kernel is differentially proptested against the safe scalar reference,
/// and `#![forbid(unsafe_code)]` stays in force everywhere else. The
/// baseline parser rejects an `unsafe-code` allowance for any crate not
/// listed here, so the waiver cannot silently widen.
pub const UNSAFE_WAIVED_CRATES: &[&str] = &["pm-simd"];

/// Declared hot-path entry points for the `hot-loop-alloc` rule:
/// (crate, fn name). Allocation-shaped calls in any fn reachable within
/// [`HOT_LOOP_HOPS`] intra-crate call-graph hops of one of these must be
/// waived or baselined.
pub const HOT_PATH_ENTRIES: &[(&str, &str)] = &[
    // The RSE codec kernels: per-packet encode and decode work.
    ("pm-rse", "parity"),
    ("pm-rse", "decode"),
    ("pm-rse", "add_share"),
    ("pm-rse", "finish"),
    // The mux drive loop: one turn per poll wakeup.
    ("pm-mux", "turn"),
];

/// Call-graph radius for [`HOT_PATH_ENTRIES`] (entry itself is hop 0).
pub const HOT_LOOP_HOPS: u32 = 2;

/// Every rule the auditor knows, in reporting order.
pub const ALL_RULES: &[Rule] = &[
    Rule::DeterminismTime,
    Rule::DeterminismHashIter,
    Rule::RngEntropy,
    Rule::PanicSurface,
    Rule::UnsafeCode,
    Rule::UnsafeSafetyContract,
    Rule::TargetFeatureConsistency,
    Rule::LossyCast,
    Rule::HotLoopAlloc,
    Rule::WaiverHygiene,
    Rule::EventVocabulary,
];

/// One audit rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// Wall-clock reads (`Instant::now`, `SystemTime`) outside the
    /// allowlisted wall-clock domains (pm-core runtime, pm-obs stopwatch,
    /// pm-bench). Simulated time is the only clock deterministic code may
    /// read.
    DeterminismTime,
    /// `HashMap`/`HashSet` in deterministic protocol/simulation state
    /// (pm-core, pm-sim, pm-loss): iteration order is randomized per
    /// process, so replay and the parallel==serial contract break. Use
    /// `BTreeMap`/`BTreeSet`.
    DeterminismHashIter,
    /// Entropy-seeded randomness (`thread_rng`, `from_entropy`, `OsRng`,
    /// `rand::random`): every RNG must derive from an explicit seed.
    RngEntropy,
    /// Panic paths in codec/protocol hot code (pm-gf, pm-rse, pm-core):
    /// `unwrap`/`expect`, panicking macros and direct indexing.
    PanicSurface,
    /// Any `unsafe` token anywhere in the workspace. Fires in every crate
    /// — including [`UNSAFE_WAIVED_CRATES`] — so the count stays visible;
    /// the waiver only permits a baseline allowance for those crates.
    UnsafeCode,
    /// In [`UNSAFE_WAIVED_CRATES`]: every `unsafe fn` must carry a
    /// `# Safety` doc section and every `unsafe {}` block a `// SAFETY:`
    /// comment on or directly above its line. Ratchets to zero — unsafe
    /// code is waived, *undocumented* unsafe code is not.
    UnsafeSafetyContract,
    /// A fn body using `_mm256_*` (AVX2) or `vqtbl*` (NEON) intrinsics
    /// must be annotated `#[target_feature(enable = "…")]`, otherwise the
    /// compiler silently emits scalar code (or UB via mismatched ABI) for
    /// the kernel the vtable was supposed to accelerate.
    TargetFeatureConsistency,
    /// Possibly-truncating `as` casts to narrow integer types in the
    /// wire/codec crates (pm-net, pm-gf, pm-rse), where a silently
    /// dropped high byte is a protocol bug. Masked (`& 0xff`) and
    /// modulo-bounded (`% 256`) casts are recognized as guarded.
    LossyCast,
    /// Allocation-shaped calls (`Vec::new`, `to_vec`, `clone`, `collect`,
    /// `format!`, …) reachable within [`HOT_LOOP_HOPS`] intra-crate
    /// call-graph hops of a declared [`HOT_PATH_ENTRIES`] fn.
    HotLoopAlloc,
    /// Malformed waiver pragmas: a missing/empty reason, an unknown rule
    /// name inside `allow(…)`, or an `expires: PR<n>` bound the workspace
    /// has already passed. Never suppressible; baseline stays zero.
    WaiverHygiene,
    /// The pm-obs `Event::name` match and the `EVENT_NAMES` vocabulary
    /// const must list the same number of events (obs-check validates
    /// traces against `EVENT_NAMES`, so a drift would let unvalidated
    /// event types through).
    EventVocabulary,
}

impl Rule {
    /// Stable kebab-case name used in reports, baselines and pragmas.
    pub fn name(&self) -> &'static str {
        match self {
            Rule::DeterminismTime => "determinism-time",
            Rule::DeterminismHashIter => "determinism-hash-iter",
            Rule::RngEntropy => "rng-entropy",
            Rule::PanicSurface => "panic-surface",
            Rule::UnsafeCode => "unsafe-code",
            Rule::UnsafeSafetyContract => "unsafe-safety-contract",
            Rule::TargetFeatureConsistency => "target-feature-consistency",
            Rule::LossyCast => "lossy-cast",
            Rule::HotLoopAlloc => "hot-loop-alloc",
            Rule::WaiverHygiene => "waiver-hygiene",
            Rule::EventVocabulary => "event-vocabulary",
        }
    }

    /// Parse a pragma/baseline rule name.
    pub fn from_name(name: &str) -> Option<Rule> {
        ALL_RULES.iter().copied().find(|r| r.name() == name)
    }

    /// Crates the rule applies to (`None` = every scanned crate).
    fn crates(&self) -> Option<&'static [&'static str]> {
        match self {
            Rule::DeterminismHashIter => Some(&["pm-core", "pm-sim", "pm-loss"]),
            Rule::PanicSurface => Some(&["pm-gf", "pm-rse", "pm-core"]),
            Rule::UnsafeSafetyContract => Some(UNSAFE_WAIVED_CRATES),
            Rule::LossyCast => Some(&["pm-net", "pm-gf", "pm-rse"]),
            Rule::HotLoopAlloc => Some(&["pm-rse", "pm-mux"]),
            _ => None,
        }
    }

    /// Crates exempt from the rule even when `crates()` is `None`.
    fn exempt_crates(&self) -> &'static [&'static str] {
        match self {
            // Benchmarks measure wall-clock time by design, and the
            // auditor itself never runs inside a simulation.
            Rule::DeterminismTime => &["pm-bench", "pm-audit"],
            _ => &[],
        }
    }

    /// File-path suffixes exempt from the rule: the explicitly allowlisted
    /// wall-clock domains.
    fn exempt_files(&self) -> &'static [&'static str] {
        match self {
            Rule::DeterminismTime => &[
                // The threaded protocol runtime paces real packets.
                "core/src/runtime.rs",
                // The pm-obs stopwatch/span-timer machinery is the one
                // sanctioned wall-clock source for instrumentation.
                "obs/src/metrics.rs",
                "obs/src/recorder.rs",
            ],
            _ => &[],
        }
    }

    /// Does the rule apply to `crate_name` / `rel_path`?
    pub fn applies(&self, crate_name: &str, rel_path: &str) -> bool {
        if let Some(crates) = self.crates() {
            if !crates.contains(&crate_name) {
                return false;
            }
        }
        if self.exempt_crates().contains(&crate_name) {
            return false;
        }
        let unix_path = rel_path.replace('\\', "/");
        !self
            .exempt_files()
            .iter()
            .any(|suffix| unix_path.ends_with(suffix))
    }
}

/// One rule hit at one source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Which rule fired.
    pub rule: Rule,
    /// Cargo package name of the containing crate.
    pub crate_name: String,
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line number.
    pub line: u32,
    /// Qualified enclosing item (`module::Type::fn`), the baseline's
    /// attribution key; `(file)` for file-scope hits in a crate root.
    pub item: String,
    /// Human-readable description of the hit.
    pub message: String,
}

/// Per-fn record feeding the intra-crate call graph for `hot-loop-alloc`.
/// Collected per file, resolved crate-wide by [`check_hot_loops`].
#[derive(Debug)]
pub struct HotFn {
    /// Cargo package name.
    pub crate_name: String,
    /// Workspace-relative file path.
    pub file: String,
    /// Qualified item path (attribution key).
    pub qual: String,
    /// Leaf fn name — the call-graph vertex label.
    pub name: String,
    /// Names this fn's body calls (`ident(` and `.ident(` shapes).
    pub calls: BTreeSet<String>,
    /// Allocation-shaped calls in the body: (line, description).
    pub allocs: Vec<(u32, String)>,
    /// Lines waived for `hot-loop-alloc` by pragmas in this file.
    pub waived: BTreeSet<u32>,
}

/// Everything one file contributes to the workspace audit.
#[derive(Debug, Default)]
pub struct FileAnalysis {
    /// Per-file violations (all rules except `hot-loop-alloc`, which
    /// needs the crate-wide graph).
    pub violations: Vec<Violation>,
    /// Call-graph records, populated only in `hot-loop-alloc` crates.
    pub hot_fns: Vec<HotFn>,
}

/// Files compiled only under `#[cfg(test)]` at their inclusion site, so
/// the in-file scanner cannot see the gate.
const TEST_ONLY_FILE_SUFFIXES: &[&str] = &["src/proptests.rs"];

/// Scan one source file and return every unsuppressed violation.
/// Convenience wrapper over [`analyze_file`] with a zero PR count (so
/// pragma expiry never fires).
pub fn scan_file(crate_name: &str, rel_path: &str, src: &str) -> Vec<Violation> {
    analyze_file(crate_name, rel_path, src, 0).violations
}

/// Scan one source file: violations plus call-graph records.
/// `pr_count` is the workspace PR count used for pragma expiry.
pub fn analyze_file(crate_name: &str, rel_path: &str, src: &str, pr_count: u64) -> FileAnalysis {
    let unix_path = rel_path.replace('\\', "/");
    if TEST_ONLY_FILE_SUFFIXES
        .iter()
        .any(|s| unix_path.ends_with(s))
    {
        return FileAnalysis::default();
    }
    let tokens = lex(src);
    let pragmas = collect_pragmas(&tokens, pr_count);
    let code = non_test_significant_tokens(&tokens);
    let file_mod = items::module_path(rel_path);
    let tree = items::parse(&tokens);
    let flat = items::flatten(&tree, &file_mod);

    let mut out = Vec::new();

    // Waiver hygiene first: never suppressible, so a broken pragma cannot
    // waive itself.
    if Rule::WaiverHygiene.applies(crate_name, rel_path) {
        for (line, byte, message) in &pragmas.hygiene {
            out.push(Violation {
                rule: Rule::WaiverHygiene,
                crate_name: crate_name.to_string(),
                file: rel_path.to_string(),
                line: *line,
                item: items::item_key_at(&flat, &file_mod, *byte),
                message: message.clone(),
            });
        }
    }

    {
        let suppressed = &pragmas.suppressed;
        let flat_ref = &flat;
        let file_mod_ref = &file_mod;
        let mut push = |rule: Rule, line: u32, byte: usize, message: String| {
            if !rule.applies(crate_name, rel_path) {
                return;
            }
            if let Some(lines) = suppressed.get(&rule) {
                if lines.contains(&line) {
                    return;
                }
            }
            out.push(Violation {
                rule,
                crate_name: crate_name.to_string(),
                file: rel_path.to_string(),
                line,
                item: items::item_key_at(flat_ref, file_mod_ref, byte),
                message,
            });
        };

        token_pattern_rules(&code, &mut push);
        lossy_cast_rule(crate_name, rel_path, &code, &mut push);
        unsafe_safety_contract_rule(crate_name, rel_path, &tokens, &flat, &mut push);
        target_feature_rule(crate_name, rel_path, &tokens, &flat, &mut push);
    }

    let hot_fns = if Rule::HotLoopAlloc.applies(crate_name, rel_path) {
        let waived = pragmas
            .suppressed
            .get(&Rule::HotLoopAlloc)
            .cloned()
            .unwrap_or_default();
        extract_hot_fns(crate_name, rel_path, &tokens, &flat, &waived)
    } else {
        Vec::new()
    };

    FileAnalysis {
        violations: out,
        hot_fns,
    }
}

/// The original token-pattern rules (determinism, rng, panic, unsafe).
fn token_pattern_rules(code: &[Token<'_>], push: &mut impl FnMut(Rule, u32, usize, String)) {
    for (i, tok) in code.iter().enumerate() {
        let prev = i.checked_sub(1).map(|j| code[j]);
        let next = code.get(i + 1).copied();
        let next2 = code.get(i + 2).copied();
        match (tok.kind, tok.text) {
            (TokenKind::Ident, "Instant")
                if is_punct(next, ":")
                    && is_punct(next2, ":")
                    && matches!(code.get(i + 3), Some(t) if t.text == "now") =>
            {
                push(
                    Rule::DeterminismTime,
                    tok.line,
                    tok.start,
                    "wall-clock read: Instant::now()".into(),
                );
            }
            (TokenKind::Ident, "SystemTime") => {
                push(
                    Rule::DeterminismTime,
                    tok.line,
                    tok.start,
                    "wall-clock type: SystemTime".into(),
                );
            }
            (TokenKind::Ident, "HashMap" | "HashSet" | "hash_map" | "hash_set") => {
                push(
                    Rule::DeterminismHashIter,
                    tok.line,
                    tok.start,
                    format!(
                        "{} in deterministic state (iteration order is per-process random); \
                         use BTreeMap/BTreeSet",
                        tok.text
                    ),
                );
            }
            (TokenKind::Ident, "thread_rng" | "from_entropy" | "ThreadRng" | "OsRng") => {
                push(
                    Rule::RngEntropy,
                    tok.line,
                    tok.start,
                    format!("entropy-seeded randomness: {}", tok.text),
                );
            }
            (TokenKind::Ident, "random")
                if is_punct(prev, ":")
                    && i >= 3
                    && code[i - 2].text == ":"
                    && code[i - 3].text == "rand" =>
            {
                push(
                    Rule::RngEntropy,
                    tok.line,
                    tok.start,
                    "entropy-seeded randomness: rand::random".into(),
                );
            }
            (TokenKind::Ident, "unwrap" | "expect" | "unwrap_err" | "expect_err")
                if is_punct(prev, ".") =>
            {
                push(
                    Rule::PanicSurface,
                    tok.line,
                    tok.start,
                    format!(".{}() panics on the error path", tok.text),
                );
            }
            (TokenKind::Ident, "panic" | "unreachable" | "todo" | "unimplemented")
                if is_punct(next, "!") =>
            {
                push(
                    Rule::PanicSurface,
                    tok.line,
                    tok.start,
                    format!("panicking macro: {}!", tok.text),
                );
            }
            (TokenKind::Punct, "[") if indexing_context(prev) => {
                push(
                    Rule::PanicSurface,
                    tok.line,
                    tok.start,
                    "direct indexing/slicing can panic on out-of-range".into(),
                );
            }
            (TokenKind::Ident, "unsafe") => {
                push(Rule::UnsafeCode, tok.line, tok.start, "unsafe code".into());
            }
            _ => {}
        }
    }
}

/// Integer types whose `as` casts can drop high bits, and the largest
/// value they hold.
fn cast_target_max(name: &str) -> Option<u128> {
    match name {
        "u8" => Some(0xff),
        "i8" => Some(0x7f),
        "u16" => Some(0xffff),
        "i16" => Some(0x7fff),
        "u32" => Some(0xffff_ffff),
        "i32" => Some(0x7fff_ffff),
        _ => None,
    }
}

/// Evaluate an integer literal token (`0xff`, `1_000u32`, …).
fn literal_value(text: &str) -> Option<u128> {
    let t = text.replace('_', "");
    let mut t = t.as_str();
    for suffix in [
        "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize",
    ] {
        if let Some(stripped) = t.strip_suffix(suffix) {
            t = stripped;
            break;
        }
    }
    let (digits, radix) = if let Some(h) = t.strip_prefix("0x").or_else(|| t.strip_prefix("0X")) {
        (h, 16)
    } else if let Some(o) = t.strip_prefix("0o") {
        (o, 8)
    } else if let Some(b) = t.strip_prefix("0b") {
        (b, 2)
    } else {
        (t, 10)
    };
    u128::from_str_radix(digits, radix).ok()
}

/// How far back the lossy-cast guard scanner looks for a mask/modulo.
const CAST_GUARD_WINDOW: usize = 12;

/// Is the cast at `code[as_idx]` visibly bounded: a literal source that
/// fits, or an `& mask` / `% modulus` within the guard window (stopping
/// at statement boundaries) whose bound fits the target?
fn cast_is_guarded(code: &[Token<'_>], as_idx: usize, max: u128) -> bool {
    // Literal source: `0xff as u8`.
    if let Some(prev) = as_idx.checked_sub(1).map(|j| code[j]) {
        if prev.kind == TokenKind::Number {
            if let Some(v) = literal_value(prev.text) {
                if v <= max {
                    return true;
                }
            }
        }
    }
    let lo = as_idx.saturating_sub(CAST_GUARD_WINDOW);
    for j in (lo..as_idx).rev() {
        let t = code[j];
        if t.kind == TokenKind::Punct && matches!(t.text, ";" | "{" | "}") {
            break;
        }
        let (op, operand) = match (t.kind, t.text) {
            // `x & 0xff` / `x % 256`: operator then literal.
            (TokenKind::Punct, "&" | "%") => {
                let Some(n) = code.get(j + 1) else { continue };
                (t.text, *n)
            }
            // `0xff & x`: literal then operator.
            (TokenKind::Number, _) => {
                let Some(op_tok) = code.get(j + 1) else {
                    continue;
                };
                if !(op_tok.kind == TokenKind::Punct && matches!(op_tok.text, "&" | "%")) {
                    continue;
                }
                (op_tok.text, t)
            }
            _ => continue,
        };
        if operand.kind != TokenKind::Number {
            continue;
        }
        let Some(v) = literal_value(operand.text) else {
            continue;
        };
        let bound = match op {
            "&" => v,
            // `x % m` yields at most m - 1.
            _ => v.saturating_sub(1),
        };
        if bound <= max {
            return true;
        }
    }
    false
}

/// `lossy-cast`: possibly-truncating `as` casts to narrow integers.
fn lossy_cast_rule(
    crate_name: &str,
    rel_path: &str,
    code: &[Token<'_>],
    push: &mut impl FnMut(Rule, u32, usize, String),
) {
    if !Rule::LossyCast.applies(crate_name, rel_path) {
        return;
    }
    for (i, tok) in code.iter().enumerate() {
        if !(tok.kind == TokenKind::Ident && tok.text == "as") {
            continue;
        }
        let Some(target) = code.get(i + 1) else {
            continue;
        };
        if target.kind != TokenKind::Ident {
            continue;
        }
        let Some(max) = cast_target_max(target.text) else {
            continue;
        };
        if cast_is_guarded(code, i, max) {
            continue;
        }
        push(
            Rule::LossyCast,
            tok.line,
            tok.start,
            format!(
                "possibly truncating `as {}` cast (mask the value, or use try_from)",
                target.text
            ),
        );
    }
}

/// Lines "covered" by a `SAFETY` comment: every line of a comment run
/// containing `SAFETY`, plus the line directly below the run (where the
/// `unsafe` keyword of the documented block sits).
fn safety_covered_lines(tokens: &[Token<'_>]) -> BTreeSet<u32> {
    let mut covered = BTreeSet::new();
    let mut i = 0;
    while i < tokens.len() {
        if !matches!(
            tokens[i].kind,
            TokenKind::LineComment | TokenKind::BlockComment
        ) {
            i += 1;
            continue;
        }
        // A run of consecutive comment tokens.
        let start = i;
        let mut has_safety = false;
        let mut last_line = tokens[i].line;
        while i < tokens.len()
            && matches!(
                tokens[i].kind,
                TokenKind::LineComment | TokenKind::BlockComment
            )
        {
            if tokens[i].text.contains("SAFETY") {
                has_safety = true;
            }
            let newlines = tokens[i].text.matches('\n').count() as u32;
            last_line = tokens[i].line + newlines;
            i += 1;
        }
        if has_safety {
            for line in tokens[start].line..=last_line + 1 {
                covered.insert(line);
            }
        }
    }
    covered
}

/// `unsafe-safety-contract`: `unsafe fn`s need `# Safety` docs, `unsafe
/// {}` blocks need `// SAFETY:` comments.
fn unsafe_safety_contract_rule(
    crate_name: &str,
    rel_path: &str,
    tokens: &[Token<'_>],
    flat: &[QualItem],
    push: &mut impl FnMut(Rule, u32, usize, String),
) {
    if !Rule::UnsafeSafetyContract.applies(crate_name, rel_path) {
        return;
    }
    for item in flat {
        if item.kind == ItemKind::Fn && item.is_unsafe_fn && !item.is_test && !item.has_safety_doc {
            push(
                Rule::UnsafeSafetyContract,
                item.line,
                item.byte_span.start,
                format!("unsafe fn `{}` has no `# Safety` doc section", item.name),
            );
        }
    }
    let covered = safety_covered_lines(tokens);
    for (i, tok) in tokens.iter().enumerate() {
        if !(tok.kind == TokenKind::Ident && tok.text == "unsafe") {
            continue;
        }
        let next_sig = tokens[i + 1..].iter().find(|t| t.is_significant());
        if !matches!(next_sig, Some(t) if t.kind == TokenKind::Punct && t.text == "{") {
            continue; // `unsafe fn` / `unsafe impl`, handled above.
        }
        if items::item_at(flat, tok.start)
            .map(|q| q.is_test)
            .unwrap_or(false)
        {
            continue;
        }
        if !covered.contains(&tok.line) {
            push(
                Rule::UnsafeSafetyContract,
                tok.line,
                tok.start,
                "`unsafe {` block has no `// SAFETY:` comment".into(),
            );
        }
    }
}

/// `target-feature-consistency`: intrinsics imply the matching
/// `#[target_feature(enable = …)]` on the containing fn.
fn target_feature_rule(
    crate_name: &str,
    rel_path: &str,
    tokens: &[Token<'_>],
    flat: &[QualItem],
    push: &mut impl FnMut(Rule, u32, usize, String),
) {
    if !Rule::TargetFeatureConsistency.applies(crate_name, rel_path) {
        return;
    }
    for item in flat {
        if item.kind != ItemKind::Fn || item.is_test {
            continue;
        }
        let Some(body) = item.body.clone() else {
            continue;
        };
        let mut needed: BTreeSet<&str> = BTreeSet::new();
        for tok in &tokens[body] {
            if tok.kind != TokenKind::Ident {
                continue;
            }
            if tok.text.starts_with("_mm256_") {
                needed.insert("avx2");
            } else if tok.text.starts_with("vqtbl") {
                needed.insert("neon");
            }
        }
        for feature in needed {
            if item.target_features.iter().any(|f| f == feature) {
                continue;
            }
            push(
                Rule::TargetFeatureConsistency,
                item.line,
                item.byte_span.start,
                format!(
                    "fn `{}` uses {feature} intrinsics but is not \
                     #[target_feature(enable = \"{feature}\")]",
                    item.name
                ),
            );
        }
    }
}

/// Keywords that look like calls when followed by `(`.
const CALL_KEYWORDS: &[&str] = &[
    "if", "while", "for", "match", "loop", "return", "as", "in", "let", "fn", "move", "ref", "mut",
    "else", "unsafe", "box", "await", "yield", "dyn", "impl", "where", "pub", "use", "crate",
];

/// Paths whose `::new`-style constructors allocate.
const ALLOC_TYPES: &[&str] = &["Vec", "String", "Box", "VecDeque", "BTreeMap", "BTreeSet"];

/// Method names that allocate.
const ALLOC_METHODS: &[&str] = &["to_vec", "to_owned", "to_string", "clone"];

/// Extract per-fn call/alloc records for the hot-loop call graph.
fn extract_hot_fns(
    crate_name: &str,
    rel_path: &str,
    tokens: &[Token<'_>],
    flat: &[QualItem],
    waived: &BTreeSet<u32>,
) -> Vec<HotFn> {
    let mut out = Vec::new();
    for item in flat {
        if item.kind != ItemKind::Fn || item.is_test {
            continue;
        }
        let Some(body) = item.body.clone() else {
            continue;
        };
        let sig: Vec<Token<'_>> = tokens[body]
            .iter()
            .copied()
            .filter(Token::is_significant)
            .collect();
        let mut calls = BTreeSet::new();
        let mut allocs = Vec::new();
        for (i, tok) in sig.iter().enumerate() {
            if tok.kind != TokenKind::Ident {
                continue;
            }
            let prev = i.checked_sub(1).map(|j| sig[j]);
            let next = sig.get(i + 1).copied();
            if is_punct(next, "(")
                && !CALL_KEYWORDS.contains(&tok.text)
                && !matches!(prev, Some(p) if p.text == "fn")
            {
                calls.insert(tok.text.to_string());
            }
            if ALLOC_METHODS.contains(&tok.text) && is_punct(prev, ".") && is_punct(next, "(") {
                allocs.push((tok.line, format!("`.{}()`", tok.text)));
            } else if tok.text == "collect" && is_punct(prev, ".") {
                allocs.push((tok.line, "`.collect()`".to_string()));
            } else if matches!(tok.text, "format" | "vec") && is_punct(next, "!") {
                allocs.push((tok.line, format!("`{}!`", tok.text)));
            } else if ALLOC_TYPES.contains(&tok.text)
                && is_punct(next, ":")
                && is_punct(sig.get(i + 2).copied(), ":")
                && matches!(
                    sig.get(i + 3),
                    Some(t) if matches!(t.text, "new" | "with_capacity" | "from")
                )
            {
                let ctor = sig.get(i + 3).map(|t| t.text).unwrap_or("new");
                allocs.push((tok.line, format!("`{}::{ctor}`", tok.text)));
            }
        }
        out.push(HotFn {
            crate_name: crate_name.to_string(),
            file: rel_path.to_string(),
            qual: item.qual.clone(),
            name: item.name.clone(),
            calls,
            allocs,
            waived: waived.clone(),
        });
    }
    out
}

/// Phase 2 of the workspace audit: BFS the per-crate call graph from
/// [`HOT_PATH_ENTRIES`] and flag allocation-shaped calls within
/// [`HOT_LOOP_HOPS`] hops. Pragma waivers collected per file apply.
pub fn check_hot_loops(hot_fns: &[HotFn]) -> Vec<Violation> {
    let mut by_crate: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    for (i, f) in hot_fns.iter().enumerate() {
        by_crate.entry(f.crate_name.as_str()).or_default().push(i);
    }
    let mut out = Vec::new();
    for (crate_name, idxs) in by_crate {
        let entries: Vec<&str> = HOT_PATH_ENTRIES
            .iter()
            .filter(|(c, _)| *c == crate_name)
            .map(|(_, n)| *n)
            .collect();
        if entries.is_empty() {
            continue;
        }
        let mut by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        for &i in &idxs {
            by_name.entry(hot_fns[i].name.as_str()).or_default().push(i);
        }
        // BFS: fn index → (hops from entry, entry name). First reach wins,
        // which is also the shortest since the queue is breadth-first.
        let mut reached: BTreeMap<usize, (u32, &str)> = BTreeMap::new();
        let mut queue: VecDeque<(usize, u32, &str)> = VecDeque::new();
        for entry in &entries {
            for &i in by_name.get(entry).into_iter().flatten() {
                if let std::collections::btree_map::Entry::Vacant(slot) = reached.entry(i) {
                    slot.insert((0, entry));
                    queue.push_back((i, 0, entry));
                }
            }
        }
        while let Some((i, dist, entry)) = queue.pop_front() {
            if dist >= HOT_LOOP_HOPS {
                continue;
            }
            for callee in &hot_fns[i].calls {
                for &j in by_name.get(callee.as_str()).into_iter().flatten() {
                    if let std::collections::btree_map::Entry::Vacant(slot) = reached.entry(j) {
                        slot.insert((dist + 1, entry));
                        queue.push_back((j, dist + 1, entry));
                    }
                }
            }
        }
        for (&i, &(dist, entry)) in &reached {
            let f = &hot_fns[i];
            for (line, what) in &f.allocs {
                if f.waived.contains(line) {
                    continue;
                }
                out.push(Violation {
                    rule: Rule::HotLoopAlloc,
                    crate_name: f.crate_name.clone(),
                    file: f.file.clone(),
                    line: *line,
                    item: f.qual.clone(),
                    message: format!(
                        "allocation-shaped call {what} within {dist} hops of hot-path entry \
                         `{entry}`"
                    ),
                });
            }
        }
    }
    out.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    out
}

/// `expr[` is indexing when the previous significant token ends an
/// expression: an identifier (that is not a keyword), a closing bracket or
/// a literal. `#[attr]`, `![inner]`, types like `[u8; 4]` and macro calls
/// like `vec![…]` all have non-expression predecessors.
fn indexing_context(prev: Option<Token<'_>>) -> bool {
    const KEYWORDS: &[&str] = &[
        "as", "break", "const", "continue", "crate", "dyn", "else", "enum", "extern", "fn", "for",
        "if", "impl", "in", "let", "loop", "match", "mod", "move", "mut", "pub", "ref", "return",
        "static", "struct", "trait", "type", "unsafe", "use", "where", "while", "box", "await",
        "yield",
    ];
    match prev {
        Some(t) => match t.kind {
            TokenKind::Ident => !KEYWORDS.contains(&t.text),
            TokenKind::Punct => matches!(t.text, ")" | "]"),
            TokenKind::Number => true,
            _ => false,
        },
        None => false,
    }
}

fn is_punct(tok: Option<Token<'_>>, text: &str) -> bool {
    matches!(tok, Some(t) if t.kind == TokenKind::Punct && t.text == text)
}

/// Parsed waiver pragmas: suppressed lines per rule, plus hygiene
/// violations `(line, byte, message)` for malformed or expired pragmas.
struct PragmaScan {
    suppressed: BTreeMap<Rule, BTreeSet<u32>>,
    hygiene: Vec<(u32, usize, String)>,
}

/// Collect waiver pragmas: a `pm-audit` comment naming
/// `allow(rule-a, rule-b)`, an optional `expires: PR<n>` entry, and a
/// mandatory `: why` reason after the closing paren. A valid pragma
/// suppresses the named rules on its own line and the line below; an
/// invalid one (missing reason, unknown rule, bad or passed expiry)
/// suppresses nothing and is reported instead.
fn collect_pragmas(tokens: &[Token<'_>], pr_count: u64) -> PragmaScan {
    let mut scan = PragmaScan {
        suppressed: BTreeMap::new(),
        hygiene: Vec::new(),
    };
    for tok in tokens {
        if !matches!(tok.kind, TokenKind::LineComment | TokenKind::BlockComment) {
            continue;
        }
        let Some(idx) = tok.text.find("pm-audit:") else {
            continue;
        };
        let rest = &tok.text[idx + "pm-audit:".len()..];
        let Some(open) = rest.find("allow(") else {
            continue;
        };
        let mut problems: Vec<String> = Vec::new();
        let mut rules: Vec<Rule> = Vec::new();
        let body_start = open + "allow(".len();
        let close = match rest[open..].find(')') {
            Some(c) => open + c,
            None => {
                scan.hygiene.push((
                    tok.line,
                    tok.start,
                    "waiver pragma has an unclosed allow(".to_string(),
                ));
                continue;
            }
        };
        for entry in rest[body_start..close].split(',') {
            let entry = entry.trim();
            if entry.is_empty() {
                continue;
            }
            if let Some(expiry) = entry.strip_prefix("expires") {
                let spec = expiry.trim_start().strip_prefix(':').map(str::trim);
                match spec
                    .and_then(|s| s.strip_prefix("PR"))
                    .and_then(|n| n.parse::<u64>().ok())
                {
                    Some(n) if pr_count >= n => problems.push(format!(
                        "waiver expired: `expires: PR{n}` but CHANGES.md already records \
                         {pr_count} PRs — fix the violation or renew the waiver"
                    )),
                    Some(_) => {}
                    None => problems.push(format!(
                        "bad expiry {entry:?} in waiver pragma (want `expires: PR<n>`)"
                    )),
                }
            } else {
                match Rule::from_name(entry) {
                    Some(rule) => rules.push(rule),
                    None => problems.push(format!("unknown rule {entry:?} in waiver pragma")),
                }
            }
        }
        let after = rest[close + 1..].trim_start();
        let has_reason = after
            .strip_prefix(':')
            .map(|r| !r.trim().is_empty())
            .unwrap_or(false);
        if !has_reason {
            problems.push("waiver pragma has no reason (want `allow(rule): why`)".to_string());
        }
        if problems.is_empty() {
            for rule in rules {
                let lines = scan.suppressed.entry(rule).or_default();
                lines.insert(tok.line);
                lines.insert(tok.line + 1);
            }
        } else {
            for message in problems {
                scan.hygiene.push((tok.line, tok.start, message));
            }
        }
    }
    scan
}

/// Strip test-only regions and return only the significant tokens.
///
/// Recognized gates: a file-level `#![cfg(test)]` (whole file is test
/// code) and item-level `#[cfg(test)]` / `#[test]` attributes (the
/// attributed item — through its closing brace or terminating semicolon —
/// is skipped, including any stacked attributes in between).
fn non_test_significant_tokens<'a>(tokens: &'a [Token<'a>]) -> Vec<Token<'a>> {
    let sig: Vec<Token<'a>> = tokens
        .iter()
        .copied()
        .filter(Token::is_significant)
        .collect();
    let mut out = Vec::with_capacity(sig.len());
    let mut i = 0;
    while i < sig.len() {
        if is_punct(sig.get(i).copied(), "#") {
            let inner = is_punct(sig.get(i + 1).copied(), "!");
            let attr_start = if inner { i + 2 } else { i + 1 };
            if is_punct(sig.get(attr_start).copied(), "[") {
                let (is_test_gate, attr_end) = parse_attribute(&sig, attr_start);
                if is_test_gate {
                    if inner {
                        // `#![cfg(test)]`: the whole remaining file is
                        // test-only.
                        return out;
                    }
                    i = skip_attributed_item(&sig, attr_end);
                    continue;
                }
                // Non-test attribute: emit nothing for it, move past.
                i = attr_end;
                continue;
            }
        }
        out.push(sig[i]);
        i += 1;
    }
    out
}

/// Parse the attribute starting at the `[` at `open`. Returns whether it
/// gates test code and the index just past the matching `]`.
fn parse_attribute<'a>(sig: &[Token<'a>], open: usize) -> (bool, usize) {
    let mut depth = 0usize;
    let mut saw_cfg = false;
    let mut saw_test = false;
    let mut i = open;
    while i < sig.len() {
        let t = sig[i];
        match (t.kind, t.text) {
            (TokenKind::Punct, "[") => depth += 1,
            (TokenKind::Punct, "]") => {
                depth -= 1;
                if depth == 0 {
                    i += 1;
                    break;
                }
            }
            (TokenKind::Ident, "cfg") => saw_cfg = true,
            (TokenKind::Ident, "test") => saw_test = true,
            _ => {}
        }
        i += 1;
    }
    // `#[test]` (bare) or `#[cfg(test)]` / `#[cfg(any(test, …))]`.
    let bare_test = saw_test && !saw_cfg && i == open + 3;
    (bare_test || (saw_cfg && saw_test), i)
}

/// Skip the item following a test attribute: any further attributes, then
/// tokens until the first top-level `;` or the close of the first brace
/// block.
fn skip_attributed_item<'a>(sig: &[Token<'a>], mut i: usize) -> usize {
    // Stacked attributes after the test gate.
    while is_punct(sig.get(i).copied(), "#") {
        let attr_start = if is_punct(sig.get(i + 1).copied(), "!") {
            i + 2
        } else {
            i + 1
        };
        if !is_punct(sig.get(attr_start).copied(), "[") {
            break;
        }
        let (_, end) = parse_attribute(sig, attr_start);
        i = end;
    }
    let mut depth = 0usize;
    while i < sig.len() {
        match (sig[i].kind, sig[i].text) {
            (TokenKind::Punct, "{") => depth += 1,
            (TokenKind::Punct, "}") => {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    return i + 1;
                }
            }
            (TokenKind::Punct, ";") if depth == 0 => return i + 1,
            _ => {}
        }
        i += 1;
    }
    i
}

/// The event-vocabulary cross-check, run against `crates/obs/src/event.rs`.
///
/// Counts the string literals returned by the `Event::name` match arms and
/// the string literals in the `EVENT_NAMES` const initializer; the two
/// must agree (obs-check validates traces against `EVENT_NAMES`, so a
/// missing entry would make a freshly added event fail validation — or,
/// worse, an over-long list would accept a name no event produces).
pub fn check_event_vocabulary(crate_name: &str, rel_path: &str, src: &str) -> Vec<Violation> {
    let tokens = lex(src);
    let sig: Vec<Token<'_>> = tokens
        .iter()
        .copied()
        .filter(|t| t.is_significant() || t.kind == TokenKind::Str)
        .collect();

    let name_arms = count_name_match_arms(&sig);
    let vocab = count_event_names_const(&sig);
    let mut out = Vec::new();
    let mut fail = |line: u32, message: String| {
        out.push(Violation {
            rule: Rule::EventVocabulary,
            crate_name: crate_name.to_string(),
            file: rel_path.to_string(),
            line,
            item: "EVENT_NAMES".to_string(),
            message,
        });
    };
    match (name_arms, vocab) {
        (None, _) => fail(1, "Event::name match arms not found".into()),
        (_, None) => fail(1, "EVENT_NAMES const not found".into()),
        (Some((arms, line)), Some((names, _))) if arms != names => fail(
            line,
            format!(
                "event vocabulary drift: Event::name has {arms} arms but EVENT_NAMES lists \
                 {names} names"
            ),
        ),
        _ => {}
    }
    out
}

/// Find `fn name` and count `=> "…"` arms inside its first match block.
fn count_name_match_arms<'a>(sig: &[Token<'a>]) -> Option<(usize, u32)> {
    let mut i = 0;
    // Locate `fn name` followed (eventually) by `match`.
    loop {
        while i < sig.len()
            && !(sig[i].text == "fn" && sig.get(i + 1).map(|t| t.text) == Some("name"))
        {
            i += 1;
        }
        if i >= sig.len() {
            return None;
        }
        let fn_line = sig[i].line;
        // Scan forward to the `match` keyword within this fn.
        let mut j = i + 2;
        while j < sig.len() && sig[j].text != "match" && sig[j].text != "fn" {
            j += 1;
        }
        if j >= sig.len() || sig[j].text == "fn" {
            i = j;
            continue;
        }
        // Enter the match block and count `=> "…"` pairs at any depth.
        let mut depth = 0usize;
        let mut entered = false;
        let mut arms = 0usize;
        let mut k = j;
        while k < sig.len() {
            match (sig[k].kind, sig[k].text) {
                (TokenKind::Punct, "{") => {
                    depth += 1;
                    entered = true;
                }
                (TokenKind::Punct, "}") => {
                    depth = depth.saturating_sub(1);
                    if entered && depth == 0 {
                        break;
                    }
                }
                (TokenKind::Str, _)
                    if k >= 2 && sig[k - 1].text == ">" && sig[k - 2].text == "=" =>
                {
                    arms += 1;
                }
                _ => {}
            }
            k += 1;
        }
        return Some((arms, fn_line));
    }
}

/// Find `EVENT_NAMES` and count the string literals in its initializer
/// (between the `=` and the terminating `;` — the type annotation
/// `[&str; N]` holds a `;` of its own, so counting starts at the `=`).
fn count_event_names_const<'a>(sig: &[Token<'a>]) -> Option<(usize, u32)> {
    let i = sig.iter().position(|t| t.text == "EVENT_NAMES")?;
    let line = sig[i].line;
    let eq = i + sig[i..].iter().position(|t| t.text == "=")?;
    let mut names = 0usize;
    for t in &sig[eq..] {
        match (t.kind, t.text) {
            (TokenKind::Str, _) => names += 1,
            (TokenKind::Punct, ";") => break,
            _ => {}
        }
    }
    Some((names, line))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scan(src: &str) -> Vec<Violation> {
        scan_file("pm-core", "crates/core/src/x.rs", src)
    }

    fn rules_of(vs: &[Violation]) -> Vec<Rule> {
        vs.iter().map(|v| v.rule).collect()
    }

    #[test]
    fn hazards_in_comments_and_strings_never_fire() {
        let src = r###"
            // Instant::now() HashMap unwrap() unsafe thread_rng
            /* SystemTime /* nested unsafe */ still */
            fn f() {
                let s = "Instant::now() unsafe HashMap";
                let r = r#"thread_rng() .unwrap() panic!"#;
            }
        "###;
        assert!(scan(src).is_empty(), "{:?}", scan(src));
    }

    #[test]
    fn determinism_time_fires_in_code() {
        let vs = scan("fn f() { let t = Instant::now(); }");
        assert_eq!(rules_of(&vs), vec![Rule::DeterminismTime]);
        let vs = scan("use std::time::SystemTime;");
        assert_eq!(rules_of(&vs), vec![Rule::DeterminismTime]);
    }

    #[test]
    fn hash_iter_scoped_to_deterministic_crates() {
        let src = "use std::collections::HashMap;";
        assert_eq!(scan(src).len(), 1);
        assert!(scan_file("pm-obs", "crates/obs/src/x.rs", src).is_empty());
    }

    #[test]
    fn rng_entropy_fires() {
        let vs = scan("fn f() { let mut r = thread_rng(); let x: u8 = rand::random(); }");
        assert_eq!(vs.len(), 2);
        // Seeded RNG calls named `random` on a bound rng are fine.
        assert!(scan("fn f(r: &mut R) { let x: f64 = r.random(); }").is_empty());
    }

    #[test]
    fn panic_surface_unwrap_expect_macros_indexing() {
        let vs = scan("fn f(v: Vec<u8>) { v.last().unwrap(); v.first().expect(\"x\"); }");
        assert_eq!(vs.len(), 2);
        let vs = scan("fn f() { panic!(\"boom\"); unreachable!(); }");
        assert_eq!(vs.len(), 2);
        let vs = scan("fn f(v: &[u8], i: usize) -> u8 { v[i] }");
        assert_eq!(rules_of(&vs), vec![Rule::PanicSurface]);
        // unwrap_or is not a panic path; attributes and types are not
        // indexing.
        assert!(scan("fn f(v: Vec<u8>) { v.first().copied().unwrap_or(0); }").is_empty());
        assert!(scan("#[derive(Debug)] struct S { b: [u8; 4] }").is_empty());
        assert!(scan("fn f() { let v = vec![1, 2]; }").is_empty());
    }

    #[test]
    fn panic_surface_scoped_out_of_sim() {
        let src = "fn f(v: &[u8]) -> u8 { v[0] }";
        assert!(scan_file("pm-sim", "crates/sim/src/x.rs", src).is_empty());
    }

    #[test]
    fn unsafe_fires_everywhere() {
        let src = "unsafe fn f() {}";
        for (krate, path) in [("pm-obs", "crates/obs/src/x.rs"), ("pm-sim", "s.rs")] {
            let vs = scan_file(krate, path, src);
            assert_eq!(rules_of(&vs), vec![Rule::UnsafeCode], "{krate}");
        }
    }

    #[test]
    fn violations_carry_item_attribution() {
        let src = "impl Widget {\n    fn poke(v: &Vec<u8>) { v.last().unwrap(); }\n}\n";
        let vs = scan_file("pm-core", "crates/core/src/gadget.rs", src);
        assert_eq!(vs.len(), 1);
        assert_eq!(vs[0].item, "gadget::Widget::poke");
        // File-scope hits attribute to the module path.
        let vs = scan_file(
            "pm-core",
            "crates/core/src/gadget.rs",
            "use std::time::SystemTime;",
        );
        assert_eq!(vs.len(), 1);
        assert_eq!(vs[0].item, "gadget");
    }

    #[test]
    fn pragma_suppresses_same_and_next_line() {
        let trailing =
            "fn f(v: Vec<u8>) { v.last().unwrap(); } // pm-audit: allow(panic-surface): fixture";
        assert!(scan(trailing).is_empty());
        let above = "fn f(v: Vec<u8>) {\n    // pm-audit: allow(panic-surface): invariant\n    v.last().unwrap();\n}";
        assert!(scan(above).is_empty());
        // The pragma names only one rule; others still fire.
        let other =
            "// pm-audit: allow(unsafe-code): fixture\nfn f(v: Vec<u8>) { v.last().unwrap(); }";
        assert_eq!(scan(other).len(), 1);
    }

    #[test]
    fn reasonless_pragma_is_inert_and_flagged() {
        let src = "fn f(v: Vec<u8>) { v.last().unwrap(); } // pm-audit: allow(panic-surface)";
        let vs = scan(src);
        assert_eq!(
            rules_of(&vs),
            vec![Rule::WaiverHygiene, Rule::PanicSurface],
            "{vs:?}"
        );
        // Whitespace-only reasons count as missing.
        let ws = "fn f(v: Vec<u8>) { v.last().unwrap(); } // pm-audit: allow(panic-surface):   ";
        assert_eq!(scan(ws).len(), 2);
    }

    #[test]
    fn unknown_rule_in_pragma_is_flagged() {
        let src = "fn f() {} // pm-audit: allow(no-such-rule): because";
        let vs = scan(src);
        assert_eq!(rules_of(&vs), vec![Rule::WaiverHygiene]);
        assert!(vs[0].message.contains("no-such-rule"), "{vs:?}");
    }

    #[test]
    fn pragma_expiry_enforced_by_pr_count() {
        let src = "fn f(v: Vec<u8>) {\n    // pm-audit: allow(panic-surface, expires: PR12): temp\n    v.last().unwrap();\n}";
        // Before PR 12: waiver holds.
        let before = analyze_file("pm-core", "crates/core/src/x.rs", src, 11);
        assert!(before.violations.is_empty(), "{:?}", before.violations);
        // At PR 12: waiver is expired — inert and flagged.
        let after = analyze_file("pm-core", "crates/core/src/x.rs", src, 12);
        assert_eq!(
            rules_of(&after.violations),
            vec![Rule::WaiverHygiene, Rule::PanicSurface],
            "{:?}",
            after.violations
        );
        // A malformed expiry is flagged even before the bound.
        let bad = "fn f() {} // pm-audit: allow(panic-surface, expires: 12): temp";
        let vs = scan(bad);
        assert_eq!(rules_of(&vs), vec![Rule::WaiverHygiene]);
    }

    #[test]
    fn unsafe_safety_contract_fires_only_in_waived_crates() {
        let undocumented_fn = "pub unsafe fn f() {}";
        let vs = scan_file("pm-simd", "crates/simd/src/x.rs", undocumented_fn);
        assert!(
            rules_of(&vs).contains(&Rule::UnsafeSafetyContract),
            "{vs:?}"
        );
        // Same source outside the waived crates: only unsafe-code fires.
        let vs = scan_file("pm-obs", "crates/obs/src/x.rs", undocumented_fn);
        assert_eq!(rules_of(&vs), vec![Rule::UnsafeCode]);
    }

    #[test]
    fn unsafe_safety_contract_accepts_documented_sites() {
        let documented = "/// Kernel.\n///\n/// # Safety\n/// Caller checks AVX2.\npub unsafe fn f() {}\n\
                          fn g() {\n    // SAFETY: length asserted above.\n    unsafe { core() }\n}";
        let vs = scan_file("pm-simd", "crates/simd/src/x.rs", documented);
        assert!(
            !rules_of(&vs).contains(&Rule::UnsafeSafetyContract),
            "{vs:?}"
        );
        let undocumented_block = "fn g() {\n    unsafe { core() }\n}";
        let vs = scan_file("pm-simd", "crates/simd/src/x.rs", undocumented_block);
        assert!(
            rules_of(&vs).contains(&Rule::UnsafeSafetyContract),
            "{vs:?}"
        );
        // Multi-line SAFETY comment runs cover the block below them.
        let multi = "fn g() {\n    // SAFETY: the wrapper asserted every\n    // source length equals n.\n    unsafe { core() }\n}";
        let vs = scan_file("pm-simd", "crates/simd/src/x.rs", multi);
        assert!(
            !rules_of(&vs).contains(&Rule::UnsafeSafetyContract),
            "{vs:?}"
        );
    }

    #[test]
    fn target_feature_consistency() {
        let bad = "fn kern(a: __m256i, b: __m256i) -> __m256i { _mm256_xor_si256(a, b) }";
        let vs = scan_file("pm-simd", "crates/simd/src/x.rs", bad);
        assert!(
            rules_of(&vs).contains(&Rule::TargetFeatureConsistency),
            "{vs:?}"
        );
        let good = "#[target_feature(enable = \"avx2\")]\nfn kern(a: __m256i, b: __m256i) -> __m256i { _mm256_xor_si256(a, b) }";
        let vs = scan_file("pm-simd", "crates/simd/src/x.rs", good);
        assert!(
            !rules_of(&vs).contains(&Rule::TargetFeatureConsistency),
            "{vs:?}"
        );
        let neon = "fn kern(t: uint8x16_t, v: uint8x16_t) -> uint8x16_t { vqtbl1q_u8(t, v) }";
        let vs = scan_file("pm-obs", "crates/obs/src/x.rs", neon);
        assert!(
            rules_of(&vs).contains(&Rule::TargetFeatureConsistency),
            "neon rule applies workspace-wide: {vs:?}"
        );
    }

    #[test]
    fn lossy_cast_flags_unguarded_narrowing() {
        let vs = scan_file(
            "pm-net",
            "crates/net/src/x.rs",
            "fn f(x: u32) -> u8 { x as u8 }",
        );
        assert_eq!(rules_of(&vs), vec![Rule::LossyCast]);
        let vs = scan_file(
            "pm-net",
            "crates/net/src/x.rs",
            "fn f(x: usize) -> u16 { x as u16 }",
        );
        assert_eq!(rules_of(&vs), vec![Rule::LossyCast]);
        // Widening or same-width casts and usize casts don't fire.
        assert!(scan_file(
            "pm-net",
            "crates/net/src/x.rs",
            "fn f(x: u8) -> u64 { x as u64 }\nfn g(x: u8) -> usize { x as usize }"
        )
        .is_empty());
        // Out of scope crates don't fire.
        assert!(scan_file(
            "pm-obs",
            "crates/obs/src/x.rs",
            "fn f(x: u32) -> u8 { x as u8 }"
        )
        .is_empty());
    }

    #[test]
    fn lossy_cast_recognizes_guards() {
        for guarded in [
            "fn f(x: u32) -> u8 { (x & 0xff) as u8 }",
            "fn f(x: u32) -> u8 { (x & 0x0f) as u8 }",
            "fn f(x: u32) -> u8 { (0xff & x) as u8 }",
            "fn f(x: u32) -> u8 { (x % 256) as u8 }",
            "fn f() -> u8 { 255 as u8 }",
            "fn f(x: u32) -> u16 { (x & 0xffff) as u16 }",
        ] {
            assert!(
                scan_file("pm-net", "crates/net/src/x.rs", guarded).is_empty(),
                "{guarded}"
            );
        }
        // A mask wider than the target is not a guard.
        let wide_mask = "fn f(x: u32) -> u8 { (x & 0xfff) as u8 }";
        assert_eq!(
            scan_file("pm-net", "crates/net/src/x.rs", wide_mask).len(),
            1
        );
        // A guard in the previous statement does not leak through `;`.
        let stale = "fn f(x: u32, y: u32) -> u8 { let m = x & 0xff; y as u8 }";
        assert_eq!(scan_file("pm-net", "crates/net/src/x.rs", stale).len(), 1);
    }

    #[test]
    fn hot_loop_alloc_walks_the_call_graph() {
        let src = "fn parity(n: usize) { let out = vec![0u8; n]; helper(); }\n\
                   fn helper() { mid(); }\n\
                   fn mid() { let v = Vec::new(); }\n\
                   fn far() { let v = Vec::new(); }\n\
                   fn cold() { deep(); }\n\
                   fn deep() { let s = String::new(); }";
        let analysis = analyze_file("pm-rse", "crates/rse/src/x.rs", src, 0);
        let vs = check_hot_loops(&analysis.hot_fns);
        let items: Vec<&str> = vs.iter().map(|v| v.item.as_str()).collect();
        // parity (hop 0) and mid (hop 2, via helper) are flagged; far is
        // unreachable and deep is 1 hop past cold, which no entry reaches.
        assert_eq!(items, vec!["x::parity", "x::mid"], "{vs:?}");
        assert!(vs.iter().any(|v| v.message.contains("`vec!`")), "{vs:?}");
    }

    #[test]
    fn hot_loop_alloc_respects_waivers_and_scope() {
        let waived = "fn parity(n: usize) {\n    // pm-audit: allow(hot-loop-alloc): output buffer, api-mandated\n    let out = vec![0u8; n];\n}";
        let analysis = analyze_file("pm-rse", "crates/rse/src/x.rs", waived, 0);
        assert!(check_hot_loops(&analysis.hot_fns).is_empty());
        // Crates with no declared entries are never flagged.
        let src = "fn parity(n: usize) { let out = vec![0u8; n]; }";
        let analysis = analyze_file("pm-gf", "crates/gf/src/x.rs", src, 0);
        assert!(analysis.hot_fns.is_empty());
    }

    #[test]
    fn test_code_is_exempt() {
        let src = r#"
            fn prod(v: Vec<u8>) -> usize { v.len() }
            #[cfg(test)]
            mod tests {
                #[test]
                fn t() { Vec::<u8>::new().last().unwrap(); }
            }
        "#;
        assert!(scan(src).is_empty());
        let gated_fn = "#[cfg(test)]\nfn helper(v: Vec<u8>) { v.last().unwrap(); }";
        assert!(scan(gated_fn).is_empty());
        let whole_file = "#![cfg(test)]\nfn f(v: Vec<u8>) { v.last().unwrap(); }";
        assert!(scan(whole_file).is_empty());
        // Structural rules honor the same gates.
        let test_unsafe = "#[cfg(test)]\nfn t() { unsafe { core() } }";
        let vs = scan_file("pm-simd", "crates/simd/src/x.rs", test_unsafe);
        assert!(
            !rules_of(&vs).contains(&Rule::UnsafeSafetyContract),
            "{vs:?}"
        );
    }

    #[test]
    fn non_test_attributes_do_not_hide_code() {
        let src = "#[derive(Debug)]\nstruct S;\nfn f(v: Vec<u8>) { v.last().unwrap(); }";
        assert_eq!(scan(src).len(), 1);
        let cfg_feature = "#[cfg(feature = \"x\")]\nfn f(v: Vec<u8>) { v.last().unwrap(); }";
        assert_eq!(scan(cfg_feature).len(), 1);
    }

    #[test]
    fn allowlisted_files_are_exempt() {
        let src = "fn f() { let t = Instant::now(); }";
        assert!(scan_file("pm-core", "crates/core/src/runtime.rs", src).is_empty());
        assert!(scan_file("pm-obs", "crates/obs/src/metrics.rs", src).is_empty());
        assert!(scan_file("pm-bench", "crates/bench/src/fig01.rs", src).is_empty());
        assert_eq!(scan_file("pm-net", "crates/net/src/udp.rs", src).len(), 1);
    }

    #[test]
    fn event_vocabulary_detects_drift() {
        let ok = r#"
            pub const EVENT_NAMES: [&str; 2] = ["a", "b"];
            impl Event {
                pub fn name(&self) -> &'static str {
                    match self {
                        Event::A { .. } => "a",
                        Event::B { .. } => "b",
                    }
                }
            }
        "#;
        assert!(check_event_vocabulary("pm-obs", "e.rs", ok).is_empty());
        let drifted = ok.replace(r#"["a", "b"]"#, r#"["a", "b", "c"]"#);
        let vs = check_event_vocabulary("pm-obs", "e.rs", &drifted);
        assert_eq!(rules_of(&vs), vec![Rule::EventVocabulary]);
        let missing = "fn other() {}";
        assert_eq!(check_event_vocabulary("pm-obs", "e.rs", missing).len(), 1);
    }

    #[test]
    fn proptests_files_are_skipped() {
        let vs = scan_file(
            "pm-gf",
            "crates/gf/src/proptests.rs",
            "fn f(v: Vec<u8>) { v.last().unwrap(); }",
        );
        assert!(vs.is_empty());
    }
}
