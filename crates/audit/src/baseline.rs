//! The ratchet baseline: committed per-rule, per-crate, per-item
//! violation counts.
//!
//! `audit-baseline.json` maps rule name → crate name → item path → count
//! (format v2). The gate fails when any tracked bucket *exceeds* its
//! baseline entry (a missing entry means zero), and reports shrunken
//! counts so a cleanup PR can tighten the file — the ratchet only ever
//! moves down.
//!
//! v1 baselines (rule → crate → bare count) still parse: a bare count is
//! read as a crate-wide allowance under the [`CRATE_WIDE`] pseudo-item
//! `"*"`, compared against the crate's summed total. `--update-baseline`
//! rewrites the file in v2, migrating every `"*"` bucket to per-item
//! attribution in one step.
//!
//! The crate is zero-dependency, so the tiny JSON subset the baseline
//! needs is parsed and printed by hand.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::rules::{Rule, Violation, UNSAFE_WAIVED_CRATES};

/// Pseudo-item key denoting a v1 crate-wide allowance.
pub const CRATE_WIDE: &str = "*";

/// item path → violation count.
pub type ItemCounts = BTreeMap<String, u64>;

/// rule name → crate name → item path → violation count.
pub type Counts = BTreeMap<String, BTreeMap<String, ItemCounts>>;

/// Aggregate raw violations into baseline-shaped counts.
pub fn tally(violations: &[Violation]) -> Counts {
    let mut counts: Counts = BTreeMap::new();
    for v in violations {
        *counts
            .entry(v.rule.name().to_string())
            .or_default()
            .entry(v.crate_name.clone())
            .or_default()
            .entry(v.item.clone())
            .or_default() += 1;
    }
    counts
}

/// Sum a crate's per-item counts.
fn crate_total(items: &ItemCounts) -> u64 {
    items.values().sum()
}

/// One (rule, crate, item) bucket whose current count differs from the
/// baseline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Delta {
    /// Rule name.
    pub rule: String,
    /// Crate name.
    pub crate_name: String,
    /// Item path, or [`CRATE_WIDE`] when compared against a v1 crate-wide
    /// allowance.
    pub item: String,
    /// Committed baseline count.
    pub baseline: u64,
    /// Count found in this run.
    pub current: u64,
}

/// Compare current counts against the baseline. Returns
/// `(regressions, improvements)`: regressions fail the gate, improvements
/// are invitations to shrink the baseline.
///
/// A crate entry holding a [`CRATE_WIDE`] allowance (v1 migration path)
/// is compared on the summed total; otherwise every item in either map is
/// compared individually, so a violation *moving* between items is
/// visible even when the total is unchanged.
pub fn compare(current: &Counts, baseline: &Counts) -> (Vec<Delta>, Vec<Delta>) {
    let mut regressions = Vec::new();
    let mut improvements = Vec::new();
    let empty_crates = BTreeMap::new();
    let empty_items = ItemCounts::new();
    let mut crate_keys: Vec<(&String, &String)> = Vec::new();
    for (rule, crates) in current.iter().chain(baseline.iter()) {
        for crate_name in crates.keys() {
            if !crate_keys.contains(&(rule, crate_name)) {
                crate_keys.push((rule, crate_name));
            }
        }
    }
    crate_keys.sort();
    for (rule, crate_name) in crate_keys {
        let cur = current
            .get(rule)
            .unwrap_or(&empty_crates)
            .get(crate_name)
            .unwrap_or(&empty_items);
        let base = baseline
            .get(rule)
            .unwrap_or(&empty_crates)
            .get(crate_name)
            .unwrap_or(&empty_items);
        let mut classify = |delta: Delta| {
            if delta.current > delta.baseline {
                regressions.push(delta);
            } else if delta.current < delta.baseline {
                improvements.push(delta);
            }
        };
        if let Some(&allowance) = base.get(CRATE_WIDE) {
            // v1 crate-wide allowance: compare summed totals.
            classify(Delta {
                rule: rule.clone(),
                crate_name: crate_name.clone(),
                item: CRATE_WIDE.to_string(),
                baseline: allowance,
                current: crate_total(cur),
            });
            continue;
        }
        let mut items: Vec<&String> = cur.keys().chain(base.keys()).collect();
        items.sort();
        items.dedup();
        for item in items {
            classify(Delta {
                rule: rule.clone(),
                crate_name: crate_name.clone(),
                item: item.clone(),
                baseline: *base.get(item).unwrap_or(&0),
                current: *cur.get(item).unwrap_or(&0),
            });
        }
    }
    (regressions, improvements)
}

/// Render counts as deterministic, human-diffable JSON (format v2).
pub fn to_json(counts: &Counts) -> String {
    let mut s = String::from("{\n");
    let rules: Vec<_> = counts
        .iter()
        .map(|(rule, crates)| {
            let crates: Vec<_> = crates.iter().filter(|(_, i)| !i.is_empty()).collect();
            (rule, crates)
        })
        .filter(|(_, crates)| !crates.is_empty())
        .collect();
    for (ri, (rule, crates)) in rules.iter().enumerate() {
        let _ = writeln!(s, "  {}: {{", json_string(rule));
        for (ci, (crate_name, items)) in crates.iter().enumerate() {
            let _ = writeln!(s, "    {}: {{", json_string(crate_name));
            for (ii, (item, count)) in items.iter().enumerate() {
                let comma = if ii + 1 < items.len() { "," } else { "" };
                let _ = writeln!(s, "      {}: {count}{comma}", json_string(item));
            }
            let comma = if ci + 1 < crates.len() { "," } else { "" };
            let _ = writeln!(s, "    }}{comma}");
        }
        let comma = if ri + 1 < rules.len() { "," } else { "" };
        let _ = writeln!(s, "  }}{comma}");
    }
    s.push_str("}\n");
    s
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Parse a baseline file, v1 or v2 (the two nest differently at the crate
/// level: a v1 crate entry is a bare integer, read as a [`CRATE_WIDE`]
/// allowance; a v2 entry is an object of item → count). Unknown rule
/// names are rejected so a typo cannot silently allowlist anything, and a
/// nonzero `unsafe-code` allowance is only accepted for crates in
/// [`UNSAFE_WAIVED_CRATES`] — the unsafe boundary cannot be widened by
/// editing the baseline alone.
///
/// # Errors
/// A human-readable description of the first syntax or schema problem.
pub fn parse(text: &str) -> Result<Counts, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let mut counts = Counts::new();
    p.object(
        |p, rule, counts: &mut Counts| {
            if Rule::from_name(&rule).is_none() {
                return Err(format!("unknown rule {rule:?} in baseline"));
            }
            let mut crates = BTreeMap::new();
            p.object(
                |p, crate_name, crates: &mut BTreeMap<String, ItemCounts>| {
                    p.skip_ws();
                    let mut items = ItemCounts::new();
                    if p.bytes.get(p.pos) == Some(&b'{') {
                        // v2: per-item counts.
                        p.object(
                            |p, item, items: &mut ItemCounts| {
                                let n = p.integer()?;
                                items.insert(item, n);
                                Ok(())
                            },
                            &mut items,
                        )?;
                    } else {
                        // v1: bare crate-wide count.
                        let n = p.integer()?;
                        items.insert(CRATE_WIDE.to_string(), n);
                    }
                    crates.insert(crate_name, items);
                    Ok(())
                },
                &mut crates,
            )?;
            counts.insert(rule, crates);
            Ok(())
        },
        &mut counts,
    )?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing content at byte {}", p.pos));
    }
    if let Some(crates) = counts.get(Rule::UnsafeCode.name()) {
        for (crate_name, items) in crates {
            let total = crate_total(items);
            if total > 0 && !UNSAFE_WAIVED_CRATES.contains(&crate_name.as_str()) {
                return Err(format!(
                    "baseline allows {total} unsafe-code violations in {crate_name}, but only \
                     {UNSAFE_WAIVED_CRATES:?} may hold unsafe code"
                ));
            }
        }
    }
    Ok(counts)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .map(|b| b.is_ascii_whitespace())
            .unwrap_or(false)
        {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected {:?} at byte {}, found {:?}",
                b as char,
                self.pos,
                self.bytes.get(self.pos).map(|&c| c as char)
            ))
        }
    }

    /// Parse `{ "key": <value>, … }`, calling `field` per key.
    fn object<T>(
        &mut self,
        mut field: impl FnMut(&mut Self, String, &mut T) -> Result<(), String>,
        acc: &mut T,
    ) -> Result<(), String> {
        self.expect(b'{')?;
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b'}') {
            self.pos += 1;
            return Ok(());
        }
        loop {
            let key = self.string()?;
            self.expect(b':')?;
            field(self, key, acc)?;
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => {
                    self.pos += 1;
                    self.skip_ws();
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(());
                }
                other => {
                    return Err(format!(
                        "expected ',' or '}}' at byte {}, found {:?}",
                        self.pos,
                        other.map(|&c| c as char)
                    ))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err("unterminated string in baseline".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        other => {
                            return Err(format!(
                                "unsupported escape {:?} at byte {}",
                                other.map(|&c| c as char),
                                self.pos
                            ))
                        }
                    }
                    self.pos += 1;
                }
                Some(&b) => {
                    // Baselines hold ASCII names; pass other bytes through.
                    out.push(b as char);
                    self.pos += 1;
                }
            }
        }
    }

    fn integer(&mut self) -> Result<u64, String> {
        self.skip_ws();
        let start = self.pos;
        while self
            .bytes
            .get(self.pos)
            .map(u8::is_ascii_digit)
            .unwrap_or(false)
        {
            self.pos += 1;
        }
        if start == self.pos {
            return Err(format!("expected a count at byte {start}"));
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| format!("bad count at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counts(entries: &[(&str, &str, &str, u64)]) -> Counts {
        let mut c = Counts::new();
        for &(rule, krate, item, n) in entries {
            c.entry(rule.into())
                .or_default()
                .entry(krate.into())
                .or_default()
                .insert(item.into(), n);
        }
        c
    }

    #[test]
    fn json_roundtrip_is_identity() {
        let c = counts(&[
            ("panic-surface", "pm-gf", "field::Gf::div", 12),
            ("panic-surface", "pm-gf", "(file)", 2),
            ("panic-surface", "pm-rse", "decoder::RseDecoder::decode", 3),
            ("unsafe-code", "pm-simd", "avx2::xor", 1),
        ]);
        let parsed = parse(&to_json(&c)).unwrap();
        assert_eq!(parsed, c);
    }

    #[test]
    fn v1_baselines_parse_as_crate_wide() {
        let v1 = r#"{"panic-surface": {"pm-gf": 84, "pm-rse": 85}}"#;
        let parsed = parse(v1).unwrap();
        assert_eq!(
            parsed,
            counts(&[
                ("panic-surface", "pm-gf", CRATE_WIDE, 84),
                ("panic-surface", "pm-rse", CRATE_WIDE, 85),
            ])
        );
        // Mixed v1/v2 crates in one file parse too.
        let mixed = r#"{"panic-surface": {"pm-gf": 84, "pm-rse": {"decoder::decode": 3}}}"#;
        let parsed = parse(mixed).unwrap();
        assert_eq!(parsed["panic-surface"]["pm-gf"][CRATE_WIDE], 84);
        assert_eq!(parsed["panic-surface"]["pm-rse"]["decoder::decode"], 3);
    }

    #[test]
    fn empty_baseline_parses() {
        assert_eq!(parse("{}").unwrap(), Counts::new());
        assert_eq!(parse(" {\n} ").unwrap(), Counts::new());
    }

    #[test]
    fn unknown_rule_rejected() {
        let err = parse(r#"{"no-such-rule": {"pm-gf": 1}}"#).unwrap_err();
        assert!(err.contains("unknown rule"), "{err}");
    }

    #[test]
    fn unsafe_allowance_only_for_waived_crates() {
        // The sanctioned boundary may carry a nonzero allowance, v1 or v2…
        assert!(parse(r#"{"unsafe-code": {"pm-simd": 40}}"#).is_ok());
        assert!(parse(r#"{"unsafe-code": {"pm-simd": {"avx2::xor": 2}}}"#).is_ok());
        // …a zero entry anywhere is harmless…
        assert!(parse(r#"{"unsafe-code": {"pm-core": 0}}"#).is_ok());
        // …but a nonzero allowance outside the waiver list is rejected in
        // either format.
        let err = parse(r#"{"unsafe-code": {"pm-core": 1}}"#).unwrap_err();
        assert!(
            err.contains("pm-core") && err.contains("unsafe-code"),
            "{err}"
        );
        let err = parse(r#"{"unsafe-code": {"pm-core": {"lib::f": 1}}}"#).unwrap_err();
        assert!(err.contains("pm-core"), "{err}");
    }

    #[test]
    fn syntax_errors_are_diagnosed() {
        for bad in [
            "",
            "{",
            r#"{"panic-surface""#,
            r#"{"panic-surface": {"x": }}"#,
            r#"{"panic-surface": {"x": {"item": }}}"#,
        ] {
            assert!(parse(bad).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn compare_classifies_per_item_deltas() {
        let base = counts(&[
            ("panic-surface", "pm-gf", "field::div", 5),
            ("unsafe-code", "pm-simd", "avx2::xor", 2),
        ]);
        let cur = counts(&[
            ("panic-surface", "pm-gf", "field::div", 7),
            ("rng-entropy", "pm-sim", "run", 1),
        ]);
        let (regressions, improvements) = compare(&cur, &base);
        assert_eq!(
            regressions,
            vec![
                Delta {
                    rule: "panic-surface".into(),
                    crate_name: "pm-gf".into(),
                    item: "field::div".into(),
                    baseline: 5,
                    current: 7,
                },
                Delta {
                    rule: "rng-entropy".into(),
                    crate_name: "pm-sim".into(),
                    item: "run".into(),
                    baseline: 0,
                    current: 1,
                },
            ]
        );
        assert_eq!(improvements.len(), 1);
        assert_eq!(improvements[0].rule, "unsafe-code");
        assert_eq!(improvements[0].current, 0);
    }

    #[test]
    fn moved_violations_are_visible_despite_equal_totals() {
        let base = counts(&[("panic-surface", "pm-gf", "field::div", 1)]);
        let cur = counts(&[("panic-surface", "pm-gf", "field::mul", 1)]);
        let (regressions, improvements) = compare(&cur, &base);
        assert_eq!(regressions.len(), 1, "{regressions:?}");
        assert_eq!(regressions[0].item, "field::mul");
        assert_eq!(improvements.len(), 1);
        assert_eq!(improvements[0].item, "field::div");
    }

    #[test]
    fn crate_wide_allowance_compares_totals() {
        let base = counts(&[("panic-surface", "pm-gf", CRATE_WIDE, 5)]);
        // Five violations spread across items: within the allowance.
        let cur = counts(&[
            ("panic-surface", "pm-gf", "field::div", 3),
            ("panic-surface", "pm-gf", "field::mul", 2),
        ]);
        let (regressions, improvements) = compare(&cur, &base);
        assert!(regressions.is_empty() && improvements.is_empty());
        // A sixth pushes the total over.
        let over = counts(&[("panic-surface", "pm-gf", "field::div", 6)]);
        let (regressions, _) = compare(&over, &base);
        assert_eq!(regressions.len(), 1);
        assert_eq!(regressions[0].item, CRATE_WIDE);
        assert_eq!(regressions[0].current, 6);
    }

    #[test]
    fn equal_counts_pass() {
        let c = counts(&[("panic-surface", "pm-gf", "field::div", 5)]);
        let (regressions, improvements) = compare(&c, &c);
        assert!(regressions.is_empty() && improvements.is_empty());
    }
}
