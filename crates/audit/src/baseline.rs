//! The ratchet baseline: committed per-rule, per-crate violation counts.
//!
//! `audit-baseline.json` maps rule name → crate name → count. The gate
//! fails when any (rule, crate) pair *exceeds* its baseline entry (a
//! missing entry means zero), and reports shrunken counts so a cleanup PR
//! can tighten the file — the ratchet only ever moves down.
//!
//! The crate is zero-dependency, so the tiny JSON subset the baseline
//! needs (objects of objects of integers) is parsed and printed by hand.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::rules::{Rule, Violation, UNSAFE_WAIVED_CRATES};

/// rule name → crate name → violation count.
pub type Counts = BTreeMap<String, BTreeMap<String, u64>>;

/// Aggregate raw violations into baseline-shaped counts.
pub fn tally(violations: &[Violation]) -> Counts {
    let mut counts: Counts = BTreeMap::new();
    for v in violations {
        *counts
            .entry(v.rule.name().to_string())
            .or_default()
            .entry(v.crate_name.clone())
            .or_default() += 1;
    }
    counts
}

/// One (rule, crate) pair whose current count differs from the baseline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Delta {
    /// Rule name.
    pub rule: String,
    /// Crate name.
    pub crate_name: String,
    /// Committed baseline count.
    pub baseline: u64,
    /// Count found in this run.
    pub current: u64,
}

/// Compare current counts against the baseline. Returns
/// `(regressions, improvements)`: regressions fail the gate, improvements
/// are invitations to shrink the baseline.
pub fn compare(current: &Counts, baseline: &Counts) -> (Vec<Delta>, Vec<Delta>) {
    let mut regressions = Vec::new();
    let mut improvements = Vec::new();
    let zero = BTreeMap::new();
    let mut keys: Vec<(&String, &String)> = Vec::new();
    for (rule, crates) in current.iter().chain(baseline.iter()) {
        for crate_name in crates.keys() {
            if !keys.contains(&(rule, crate_name)) {
                keys.push((rule, crate_name));
            }
        }
    }
    keys.sort();
    for (rule, crate_name) in keys {
        let cur = *current
            .get(rule)
            .unwrap_or(&zero)
            .get(crate_name)
            .unwrap_or(&0);
        let base = *baseline
            .get(rule)
            .unwrap_or(&zero)
            .get(crate_name)
            .unwrap_or(&0);
        let delta = Delta {
            rule: rule.clone(),
            crate_name: crate_name.clone(),
            baseline: base,
            current: cur,
        };
        if cur > base {
            regressions.push(delta);
        } else if cur < base {
            improvements.push(delta);
        }
    }
    (regressions, improvements)
}

/// Render counts as deterministic, human-diffable JSON.
pub fn to_json(counts: &Counts) -> String {
    let mut s = String::from("{\n");
    let rules: Vec<_> = counts.iter().filter(|(_, c)| !c.is_empty()).collect();
    for (ri, (rule, crates)) in rules.iter().enumerate() {
        let _ = writeln!(s, "  {}: {{", json_string(rule));
        for (ci, (crate_name, count)) in crates.iter().enumerate() {
            let comma = if ci + 1 < crates.len() { "," } else { "" };
            let _ = writeln!(s, "    {}: {count}{comma}", json_string(crate_name));
        }
        let comma = if ri + 1 < rules.len() { "," } else { "" };
        let _ = writeln!(s, "  }}{comma}");
    }
    s.push_str("}\n");
    s
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Parse a baseline file. Accepts exactly the shape [`to_json`] writes
/// (an object of objects of non-negative integers), with arbitrary
/// whitespace. Unknown rule names are rejected so a typo cannot silently
/// allowlist anything, and a nonzero `unsafe-code` allowance is only
/// accepted for crates in [`UNSAFE_WAIVED_CRATES`] — the unsafe boundary
/// cannot be widened by editing the baseline alone.
///
/// # Errors
/// A human-readable description of the first syntax or schema problem.
pub fn parse(text: &str) -> Result<Counts, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let mut counts = Counts::new();
    p.object(
        |p, rule, counts: &mut Counts| {
            if Rule::from_name(&rule).is_none() {
                return Err(format!("unknown rule {rule:?} in baseline"));
            }
            let mut crates = BTreeMap::new();
            p.object(
                |p, crate_name, crates: &mut BTreeMap<String, u64>| {
                    let n = p.integer()?;
                    crates.insert(crate_name, n);
                    Ok(())
                },
                &mut crates,
            )?;
            counts.insert(rule, crates);
            Ok(())
        },
        &mut counts,
    )?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing content at byte {}", p.pos));
    }
    if let Some(crates) = counts.get(Rule::UnsafeCode.name()) {
        for (crate_name, &count) in crates {
            if count > 0 && !UNSAFE_WAIVED_CRATES.contains(&crate_name.as_str()) {
                return Err(format!(
                    "baseline allows {count} unsafe-code violations in {crate_name}, but only \
                     {UNSAFE_WAIVED_CRATES:?} may hold unsafe code"
                ));
            }
        }
    }
    Ok(counts)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .map(|b| b.is_ascii_whitespace())
            .unwrap_or(false)
        {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected {:?} at byte {}, found {:?}",
                b as char,
                self.pos,
                self.bytes.get(self.pos).map(|&c| c as char)
            ))
        }
    }

    /// Parse `{ "key": <value>, … }`, calling `field` per key.
    fn object<T>(
        &mut self,
        mut field: impl FnMut(&mut Self, String, &mut T) -> Result<(), String>,
        acc: &mut T,
    ) -> Result<(), String> {
        self.expect(b'{')?;
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b'}') {
            self.pos += 1;
            return Ok(());
        }
        loop {
            let key = self.string()?;
            self.expect(b':')?;
            field(self, key, acc)?;
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => {
                    self.pos += 1;
                    self.skip_ws();
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(());
                }
                other => {
                    return Err(format!(
                        "expected ',' or '}}' at byte {}, found {:?}",
                        self.pos,
                        other.map(|&c| c as char)
                    ))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err("unterminated string in baseline".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        other => {
                            return Err(format!(
                                "unsupported escape {:?} at byte {}",
                                other.map(|&c| c as char),
                                self.pos
                            ))
                        }
                    }
                    self.pos += 1;
                }
                Some(&b) => {
                    // Baselines hold ASCII names; pass other bytes through.
                    out.push(b as char);
                    self.pos += 1;
                }
            }
        }
    }

    fn integer(&mut self) -> Result<u64, String> {
        self.skip_ws();
        let start = self.pos;
        while self
            .bytes
            .get(self.pos)
            .map(u8::is_ascii_digit)
            .unwrap_or(false)
        {
            self.pos += 1;
        }
        if start == self.pos {
            return Err(format!("expected a count at byte {start}"));
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| format!("bad count at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counts(entries: &[(&str, &str, u64)]) -> Counts {
        let mut c = Counts::new();
        for &(rule, krate, n) in entries {
            c.entry(rule.into()).or_default().insert(krate.into(), n);
        }
        c
    }

    #[test]
    fn json_roundtrip_is_identity() {
        let c = counts(&[
            ("panic-surface", "pm-gf", 12),
            ("panic-surface", "pm-rse", 3),
            ("unsafe-code", "pm-core", 0),
        ]);
        let parsed = parse(&to_json(&c)).unwrap();
        assert_eq!(parsed, c);
    }

    #[test]
    fn empty_baseline_parses() {
        assert_eq!(parse("{}").unwrap(), Counts::new());
        assert_eq!(parse(" {\n} ").unwrap(), Counts::new());
    }

    #[test]
    fn unknown_rule_rejected() {
        let err = parse(r#"{"no-such-rule": {"pm-gf": 1}}"#).unwrap_err();
        assert!(err.contains("unknown rule"), "{err}");
    }

    #[test]
    fn unsafe_allowance_only_for_waived_crates() {
        // The sanctioned boundary may carry a nonzero allowance…
        assert!(parse(r#"{"unsafe-code": {"pm-simd": 40}}"#).is_ok());
        // …a zero entry anywhere is harmless…
        assert!(parse(r#"{"unsafe-code": {"pm-core": 0}}"#).is_ok());
        // …but a nonzero allowance outside the waiver list is rejected.
        let err = parse(r#"{"unsafe-code": {"pm-core": 1}}"#).unwrap_err();
        assert!(
            err.contains("pm-core") && err.contains("unsafe-code"),
            "{err}"
        );
    }

    #[test]
    fn syntax_errors_are_diagnosed() {
        for bad in [
            "",
            "{",
            r#"{"panic-surface""#,
            r#"{"panic-surface": {"x": }}"#,
        ] {
            assert!(parse(bad).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn compare_classifies_deltas() {
        let base = counts(&[("panic-surface", "pm-gf", 5), ("unsafe-code", "pm-rse", 2)]);
        let cur = counts(&[("panic-surface", "pm-gf", 7), ("rng-entropy", "pm-sim", 1)]);
        let (regressions, improvements) = compare(&cur, &base);
        assert_eq!(
            regressions,
            vec![
                Delta {
                    rule: "panic-surface".into(),
                    crate_name: "pm-gf".into(),
                    baseline: 5,
                    current: 7,
                },
                Delta {
                    rule: "rng-entropy".into(),
                    crate_name: "pm-sim".into(),
                    baseline: 0,
                    current: 1,
                },
            ]
        );
        assert_eq!(improvements.len(), 1);
        assert_eq!(improvements[0].rule, "unsafe-code");
        assert_eq!(improvements[0].current, 0);
    }

    #[test]
    fn equal_counts_pass() {
        let c = counts(&[("panic-surface", "pm-gf", 5)]);
        let (regressions, improvements) = compare(&c, &c);
        assert!(regressions.is_empty() && improvements.is_empty());
    }
}
