//! Structural item parser: the brace-tree layer between the total lexer
//! and the rule engine.
//!
//! [`parse`] recovers, from the token stream alone, the structure the
//! per-item ratchet and the structural rules need: the module tree,
//! `fn`/`impl`/`trait` items with their attributes and leading doc
//! comments, `unsafe fn` markers, `#[target_feature]` annotations and
//! `#[cfg(test)]` gates, plus each item's body span so body-scoped rules
//! (intrinsics use, allocation calls, casts) know which item a token
//! belongs to.
//!
//! Like the lexer, the parser is **total**: it never fails, it only
//! classifies. On arbitrary input it degrades to `Other` items, and it
//! upholds one hard structural contract, property-tested in
//! `tests/item_props.rs`:
//!
//! * the top-level items' token spans are contiguous and tile the whole
//!   token stream (every token belongs to exactly one top-level item);
//! * child spans nest strictly inside their parent's span, are disjoint,
//!   and appear in source order — recursively.
//!
//! It is *not* a Rust parser: generics, patterns and expressions are
//! skimmed by bracket matching only, and names recovered from hostile
//! input are approximate. That is enough for attribution — a violation
//! lands in the right `module::Type::fn` bucket for every file rustc
//! accepts.

use std::ops::Range;

use crate::lexer::{Token, TokenKind};

/// What kind of item a node is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ItemKind {
    /// A function (free, method, or trait method signature).
    Fn,
    /// An inline `mod name { … }` or declaration `mod name;`.
    Mod,
    /// An `impl` block; `name` is the implemented type's last segment.
    Impl,
    /// A `trait` definition.
    Trait,
    /// Anything else: `use`, `struct`, `const`, macros, stray tokens.
    Other,
}

/// One node of the item tree.
#[derive(Debug)]
pub struct Item {
    /// What the node is.
    pub kind: ItemKind,
    /// Leaf name (fn/mod/trait name, impl target type); a placeholder
    /// like `(item)` when no name could be recovered.
    pub name: String,
    /// 1-based line of the item keyword (not its attributes).
    pub line: u32,
    /// Token-index span in the lexed stream, **including** leading
    /// doc comments and attributes. Top-level spans tile the stream.
    pub tok_span: Range<usize>,
    /// Byte span derived from `tok_span`.
    pub byte_span: Range<usize>,
    /// Token-index span of the `{ … }` body (braces included), if any.
    pub body: Option<Range<usize>>,
    /// Gated by `#[cfg(test)]` / `#[test]` (directly; ancestors are
    /// checked by the flattener).
    pub is_test: bool,
    /// Declared `unsafe fn`.
    pub is_unsafe_fn: bool,
    /// Features named by `#[target_feature(enable = "…")]` attributes.
    pub target_features: Vec<String>,
    /// Leading doc comments contain a `# Safety` section.
    pub has_safety_doc: bool,
    /// Nested items (mod/impl/trait bodies are recursed into; fn bodies
    /// are not — nested fns attribute to the enclosing fn).
    pub children: Vec<Item>,
}

/// The parsed file: top-level items plus file-level flags.
#[derive(Debug)]
pub struct ItemTree {
    /// Top-level items in source order; spans tile the token stream.
    pub items: Vec<Item>,
    /// The file opens with `#![cfg(test)]` — everything is test code.
    pub file_is_test: bool,
}

/// Parse a lexed token stream into an item tree. Total: never panics,
/// always terminates, and the returned spans tile the input.
pub fn parse(tokens: &[Token<'_>]) -> ItemTree {
    let mut p = Parser { tokens, pos: 0 };
    let mut file_is_test = false;
    // File-level inner attributes (`#![…]`) before the first item.
    loop {
        let save = p.pos;
        p.skip_comments_only();
        if p.is_punct("#") && p.punct_at(p.pos + 1, "!") && p.punct_at(p.pos + 2, "[") {
            let info = p.consume_attribute();
            if info.is_test {
                file_is_test = true;
            }
        } else {
            p.pos = save;
            break;
        }
    }
    p.pos = 0;
    let items = p.parse_items(tokens.len());
    ItemTree {
        items,
        file_is_test,
    }
}

/// What one `#[…]` attribute contributed.
#[derive(Default)]
struct AttrInfo {
    is_test: bool,
    target_features: Vec<String>,
}

struct Parser<'a, 't> {
    tokens: &'a [Token<'t>],
    pos: usize,
}

/// Keywords that may precede an item's defining keyword.
const MODIFIERS: &[&str] = &["pub", "default", "const", "async", "unsafe", "extern"];

impl<'a, 't> Parser<'a, 't> {
    fn tok(&self, i: usize) -> Option<&Token<'t>> {
        self.tokens.get(i)
    }

    fn punct_at(&self, i: usize, text: &str) -> bool {
        matches!(self.tok(i), Some(t) if t.kind == TokenKind::Punct && t.text == text)
    }

    fn is_punct(&self, text: &str) -> bool {
        self.punct_at(self.pos, text)
    }

    fn ident_at(&self, i: usize) -> Option<&'t str> {
        match self.tok(i) {
            Some(t) if t.kind == TokenKind::Ident => Some(t.text),
            _ => None,
        }
    }

    fn is_comment(&self, i: usize) -> bool {
        matches!(
            self.tok(i),
            Some(t) if matches!(t.kind, TokenKind::LineComment | TokenKind::BlockComment)
        )
    }

    fn skip_comments_only(&mut self) {
        while self.is_comment(self.pos) {
            self.pos += 1;
        }
    }

    /// Parse items until `end`, guaranteeing the returned spans tile
    /// `[start, end)`.
    fn parse_items(&mut self, end: usize) -> Vec<Item> {
        let mut out: Vec<Item> = Vec::new();
        while self.pos < end {
            let before = self.pos;
            let item = self.parse_item(end);
            debug_assert!(self.pos > before, "item parser must make progress");
            if self.pos == before {
                // Defensive: never loop forever, even if a bug above
                // fails to consume. Swallow one token as Other.
                self.pos += 1;
            }
            out.push(item);
        }
        out
    }

    /// Parse one item starting at `self.pos`, consuming at least one
    /// token and never reading past `end`.
    fn parse_item(&mut self, end: usize) -> Item {
        let start = self.pos;

        // Leading trivia: doc comments, plain comments, attributes.
        let mut is_test = false;
        let mut target_features = Vec::new();
        let mut has_safety_doc = false;
        loop {
            if self.pos >= end {
                break;
            }
            if self.is_comment(self.pos) {
                if let Some(t) = self.tok(self.pos) {
                    if is_doc_comment(t.text) && doc_has_safety(t.text) {
                        has_safety_doc = true;
                    }
                }
                self.pos += 1;
                continue;
            }
            if self.is_punct("#") {
                let bracket = if self.punct_at(self.pos + 1, "!") {
                    self.pos + 2
                } else {
                    self.pos + 1
                };
                if self.punct_at(bracket, "[") {
                    let info = self.consume_attribute();
                    is_test |= info.is_test;
                    target_features.extend(info.target_features);
                    continue;
                }
                // A lone `#` that is not an attribute: stray token.
                break;
            }
            break;
        }

        if self.pos >= end {
            // Trailing comments/attributes at end of scope become one
            // Other item so the tiling invariant holds.
            return self.finish_item(
                ItemKind::Other,
                "(trailing)",
                start,
                None,
                is_test,
                false,
                target_features,
                has_safety_doc,
                Vec::new(),
            );
        }

        // Modifiers before the defining keyword.
        let mut is_unsafe = false;
        while let Some(word) = self.ident_at(self.pos) {
            if !MODIFIERS.contains(&word) {
                break;
            }
            // `const X: … = …;` items (not `const fn`) end here.
            if word == "const" && self.ident_at(self.pos + 1) != Some("fn") {
                break;
            }
            if word == "unsafe" {
                // `unsafe` as a modifier only when an item keyword
                // follows; `unsafe { … }` blocks stay inside fn bodies.
                match self.ident_at(self.pos + 1) {
                    Some("fn" | "impl" | "trait" | "extern") => is_unsafe = true,
                    _ => break,
                }
            }
            self.pos += 1;
            if word == "pub" && self.is_punct("(") {
                self.consume_bracketed("(", ")", end);
            }
            if word == "extern" {
                if let Some(t) = self.tok(self.pos) {
                    if t.kind == TokenKind::Str {
                        self.pos += 1; // the ABI string
                    }
                }
            }
        }

        let keyword = self.ident_at(self.pos);
        let line = self.tok(self.pos).map(|t| t.line).unwrap_or(1);
        match keyword {
            Some("fn") => {
                self.pos += 1;
                let name = self.take_name("(fn)");
                let body = self.consume_signature_and_body(end);
                self.finish_item(
                    ItemKind::Fn,
                    &name,
                    start,
                    body,
                    is_test,
                    is_unsafe,
                    target_features,
                    has_safety_doc,
                    Vec::new(),
                )
                .with_line(line)
            }
            Some("mod") => {
                self.pos += 1;
                let name = self.take_name("(mod)");
                let (body, children) = self.consume_braced_children(end);
                self.finish_item(
                    ItemKind::Mod,
                    &name,
                    start,
                    body,
                    is_test,
                    false,
                    target_features,
                    has_safety_doc,
                    children,
                )
                .with_line(line)
            }
            Some("impl") => {
                self.pos += 1;
                let name = self.impl_target_name(end);
                let (body, children) = self.consume_braced_children(end);
                self.finish_item(
                    ItemKind::Impl,
                    &name,
                    start,
                    body,
                    is_test,
                    false,
                    target_features,
                    has_safety_doc,
                    children,
                )
                .with_line(line)
            }
            Some("trait") => {
                self.pos += 1;
                let name = self.take_name("(trait)");
                self.skip_until_open_brace(end);
                let (body, children) = self.consume_braced_children(end);
                self.finish_item(
                    ItemKind::Trait,
                    &name,
                    start,
                    body,
                    is_test,
                    is_unsafe,
                    target_features,
                    has_safety_doc,
                    children,
                )
                .with_line(line)
            }
            Some("struct" | "enum" | "union") => {
                self.pos += 1;
                let name = self.take_name("(type)");
                self.consume_to_item_end(end);
                self.finish_item(
                    ItemKind::Other,
                    &name,
                    start,
                    None,
                    is_test,
                    false,
                    target_features,
                    has_safety_doc,
                    Vec::new(),
                )
                .with_line(line)
            }
            Some("macro_rules") => {
                self.pos += 1;
                if self.is_punct("!") {
                    self.pos += 1;
                }
                let name = self.take_name("(macro)");
                self.consume_to_item_end(end);
                self.finish_item(
                    ItemKind::Other,
                    &name,
                    start,
                    None,
                    is_test,
                    false,
                    target_features,
                    has_safety_doc,
                    Vec::new(),
                )
                .with_line(line)
            }
            Some("use" | "type" | "static" | "const" | "extern" | "crate") => {
                let name = keyword.unwrap_or("(item)").to_string();
                self.pos += 1;
                self.consume_to_semicolon(end);
                self.finish_item(
                    ItemKind::Other,
                    &name,
                    start,
                    None,
                    is_test,
                    false,
                    target_features,
                    has_safety_doc,
                    Vec::new(),
                )
                .with_line(line)
            }
            Some(_) => {
                // Unknown head (macro invocation, hostile input): consume
                // to the first top-level `;` or through one brace block.
                self.pos += 1;
                self.consume_to_item_end(end);
                self.finish_item(
                    ItemKind::Other,
                    "(item)",
                    start,
                    None,
                    is_test,
                    false,
                    target_features,
                    has_safety_doc,
                    Vec::new(),
                )
                .with_line(line)
            }
            None => {
                // Stray punctuation/literal: one token, one Other item.
                self.pos = (self.pos + 1).min(end);
                self.finish_item(
                    ItemKind::Other,
                    "(item)",
                    start,
                    None,
                    is_test,
                    false,
                    target_features,
                    has_safety_doc,
                    Vec::new(),
                )
                .with_line(line)
            }
        }
    }

    /// Take an identifier as the item name, or the fallback.
    fn take_name(&mut self, fallback: &str) -> String {
        if let Some(word) = self.ident_at(self.pos) {
            self.pos += 1;
            word.to_string()
        } else {
            fallback.to_string()
        }
    }

    /// Consume one `#[…]` / `#![…]` attribute (cursor on `#`), matching
    /// brackets, and classify it.
    fn consume_attribute(&mut self) -> AttrInfo {
        let mut info = AttrInfo::default();
        self.pos += 1; // '#'
        if self.is_punct("!") {
            self.pos += 1;
        }
        if !self.is_punct("[") {
            return info;
        }
        let mut depth = 0usize;
        let mut saw_cfg = false;
        let mut saw_test = false;
        let mut saw_target_feature = false;
        let mut idents = 0usize;
        while let Some(t) = self.tok(self.pos) {
            match (t.kind, t.text) {
                (TokenKind::Punct, "[") => depth += 1,
                (TokenKind::Punct, "]") => {
                    depth = depth.saturating_sub(1);
                    if depth == 0 {
                        self.pos += 1;
                        break;
                    }
                }
                (TokenKind::Ident, "cfg") => {
                    saw_cfg = true;
                    idents += 1;
                }
                (TokenKind::Ident, "test") => {
                    saw_test = true;
                    idents += 1;
                }
                (TokenKind::Ident, "target_feature") => {
                    saw_target_feature = true;
                    idents += 1;
                }
                (TokenKind::Ident, _) => idents += 1,
                (TokenKind::Str, _) if saw_target_feature => {
                    for feature in strip_str_quotes(t.text).split(',') {
                        let feature = feature.trim();
                        if !feature.is_empty() {
                            info.target_features.push(feature.to_string());
                        }
                    }
                }
                _ => {}
            }
            self.pos += 1;
        }
        let bare_test = saw_test && !saw_cfg && idents == 1;
        info.is_test = bare_test || (saw_cfg && saw_test);
        info
    }

    /// From a fn name onward: consume the signature (tracking `()`/`[]`
    /// depth) until a top-level `{` (then the whole body) or `;`.
    /// Returns the body token span, braces included.
    fn consume_signature_and_body(&mut self, end: usize) -> Option<Range<usize>> {
        let mut depth = 0usize;
        while self.pos < end {
            let Some(t) = self.tok(self.pos) else { break };
            if t.kind == TokenKind::Punct {
                match t.text {
                    "(" | "[" => depth += 1,
                    ")" | "]" => depth = depth.saturating_sub(1),
                    "{" if depth == 0 => {
                        let body_start = self.pos;
                        self.consume_bracketed("{", "}", end);
                        return Some(body_start..self.pos);
                    }
                    ";" if depth == 0 => {
                        self.pos += 1;
                        return None;
                    }
                    _ => {}
                }
            }
            self.pos += 1;
        }
        None
    }

    /// Consume a balanced bracket pair starting at the cursor (which must
    /// sit on `open`); leaves the cursor just past the matching close.
    fn consume_bracketed(&mut self, open: &str, close: &str, end: usize) {
        let mut depth = 0usize;
        while self.pos < end {
            if self.is_punct(open) {
                depth += 1;
            } else if self.is_punct(close) {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    self.pos += 1;
                    return;
                }
            }
            self.pos += 1;
        }
    }

    /// For mod/impl/trait: expect `{` (or `;` for `mod name;`), recurse
    /// into the braces for child items. Returns (body span, children).
    fn consume_braced_children(&mut self, end: usize) -> (Option<Range<usize>>, Vec<Item>) {
        self.skip_until_open_brace(end);
        if self.is_punct(";") {
            self.pos += 1;
            return (None, Vec::new());
        }
        if !self.is_punct("{") {
            return (None, Vec::new());
        }
        let body_start = self.pos;
        // Find the matching close brace, then parse children strictly
        // inside it.
        let save = self.pos;
        self.consume_bracketed("{", "}", end);
        let body_end = self.pos;
        let inner_start = save + 1;
        let inner_end = if body_end > save + 1 && self.punct_at(body_end - 1, "}") {
            body_end - 1
        } else {
            body_end
        };
        let mut child_parser = Parser {
            tokens: self.tokens,
            pos: inner_start,
        };
        let children = child_parser.parse_items(inner_end);
        (Some(body_start..body_end), children)
    }

    /// Advance to the next top-level `{` or `;` (for headers that may
    /// contain generics, bounds and where clauses).
    fn skip_until_open_brace(&mut self, end: usize) {
        let mut depth = 0usize;
        while self.pos < end {
            if self.is_punct("(") || self.is_punct("[") {
                depth += 1;
            } else if self.is_punct(")") || self.is_punct("]") {
                depth = depth.saturating_sub(1);
            } else if depth == 0 && (self.is_punct("{") || self.is_punct(";")) {
                return;
            }
            self.pos += 1;
        }
    }

    /// Consume to a top-level `;`, tracking all bracket kinds (so
    /// `use x::{a, b};` and initializer expressions survive).
    fn consume_to_semicolon(&mut self, end: usize) {
        let mut depth = 0usize;
        while self.pos < end {
            if self.is_punct("{") || self.is_punct("(") || self.is_punct("[") {
                depth += 1;
            } else if self.is_punct("}") || self.is_punct(")") || self.is_punct("]") {
                depth = depth.saturating_sub(1);
            } else if depth == 0 && self.is_punct(";") {
                self.pos += 1;
                return;
            }
            self.pos += 1;
        }
    }

    /// Consume to a top-level `;` **or** through the first top-level
    /// brace block (struct bodies, macro invocations with braces).
    fn consume_to_item_end(&mut self, end: usize) {
        let mut depth = 0usize;
        while self.pos < end {
            if self.is_punct("(") || self.is_punct("[") {
                depth += 1;
            } else if self.is_punct(")") || self.is_punct("]") {
                depth = depth.saturating_sub(1);
            } else if depth == 0 && self.is_punct("{") {
                self.consume_bracketed("{", "}", end);
                // `struct S { … }` ends at the brace; a following `;`
                // (e.g. after a macro) is its own stray token.
                return;
            } else if depth == 0 && self.is_punct(";") {
                self.pos += 1;
                return;
            }
            self.pos += 1;
        }
    }

    /// Recover the implemented type's name from an `impl` header: skip
    /// leading generics (`impl<T: Bound, …>`), then take the last path
    /// segment before the body brace — or, when `for` is present
    /// (`impl Trait for Type`), the first segment after `for`. Stops at
    /// `where`. Leaves the cursor where it started scanning (the body
    /// consumer re-walks the header).
    fn impl_target_name(&mut self, end: usize) -> String {
        let mut i = self.pos;
        // Leading generic parameters: match angle brackets, tolerating
        // `->` arrows inside bounds like `Fn() -> R`.
        if self.punct_at(i, "<") {
            let mut depth = 0usize;
            while i < end {
                if self.punct_at(i, "<") {
                    depth += 1;
                } else if self.punct_at(i, ">") {
                    if i > 0 && self.punct_at(i - 1, "-") {
                        // arrow, not a closing angle
                    } else {
                        depth = depth.saturating_sub(1);
                        if depth == 0 {
                            i += 1;
                            break;
                        }
                    }
                }
                i += 1;
            }
        }
        let mut last_ident: Option<&str> = None;
        let mut after_for: Option<&str> = None;
        let mut saw_for = false;
        let mut bracket_depth = 0usize;
        let mut angle_depth = 0usize;
        while i < end {
            let Some(t) = self.tok(i) else { break };
            match (t.kind, t.text) {
                (TokenKind::Punct, "(" | "[") => bracket_depth += 1,
                (TokenKind::Punct, ")" | "]") => bracket_depth = bracket_depth.saturating_sub(1),
                (TokenKind::Punct, "<") if bracket_depth == 0 => angle_depth += 1,
                (TokenKind::Punct, ">")
                    if bracket_depth == 0 && !(i > 0 && self.punct_at(i - 1, "-")) =>
                {
                    angle_depth = angle_depth.saturating_sub(1);
                }
                (TokenKind::Punct, "{" | ";") if bracket_depth == 0 && angle_depth == 0 => break,
                (TokenKind::Ident, "where") if bracket_depth == 0 && angle_depth == 0 => break,
                (TokenKind::Ident, "for") if bracket_depth == 0 && angle_depth == 0 => {
                    saw_for = true;
                }
                (TokenKind::Ident, word)
                    if bracket_depth == 0 && angle_depth == 0 && word != "dyn" && word != "mut" =>
                {
                    if saw_for && after_for.is_none() {
                        after_for = Some(word);
                    }
                    // Track the last segment of the current path; a
                    // qualified path keeps overwriting until the path
                    // ends.
                    last_ident = Some(word);
                }
                _ => {}
            }
            i += 1;
        }
        after_for.or(last_ident).unwrap_or("(impl)").to_string()
    }

    #[allow(clippy::too_many_arguments)]
    fn finish_item(
        &self,
        kind: ItemKind,
        name: &str,
        start: usize,
        body: Option<Range<usize>>,
        is_test: bool,
        is_unsafe_fn: bool,
        target_features: Vec<String>,
        has_safety_doc: bool,
        children: Vec<Item>,
    ) -> Item {
        let end = self
            .pos
            .max(start + 1)
            .min(self.tokens.len().max(start + 1));
        let byte_start = self
            .tokens
            .get(start)
            .map(|t| t.start)
            .unwrap_or(usize::MAX);
        let byte_end = self
            .tokens
            .get(end.saturating_sub(1))
            .map(|t| t.start + t.text.len())
            .unwrap_or(byte_start);
        let line = self.tokens.get(start).map(|t| t.line).unwrap_or(1);
        Item {
            kind,
            name: name.to_string(),
            line,
            tok_span: start..end,
            byte_span: byte_start..byte_end,
            body,
            is_test,
            is_unsafe_fn,
            target_features,
            has_safety_doc,
            children,
        }
    }
}

impl Item {
    fn with_line(mut self, line: u32) -> Item {
        self.line = line;
        self
    }
}

fn is_doc_comment(text: &str) -> bool {
    text.starts_with("///") || text.starts_with("/**") || text.starts_with("//!")
}

fn doc_has_safety(text: &str) -> bool {
    text.contains("# Safety")
}

fn strip_str_quotes(text: &str) -> &str {
    // `"…"` (with possible r/b prefixes and hashes); good enough for
    // attribute values, which are plain string literals in practice.
    let inner = text.trim_start_matches(['r', 'b', 'c', '#']);
    inner
        .strip_prefix('"')
        .and_then(|s| s.strip_suffix('"'))
        .unwrap_or(inner)
}

/// One flattened item with its crate-relative qualified name, used for
/// attribution and the structural rules.
#[derive(Debug)]
pub struct QualItem {
    /// `module::Type::fn`-style path, rooted at the file's module path.
    pub qual: String,
    /// Leaf name (the fn name for `Fn` items).
    pub name: String,
    /// What the node is.
    pub kind: ItemKind,
    /// 1-based line of the item keyword.
    pub line: u32,
    /// Byte span including attributes/docs.
    pub byte_span: Range<usize>,
    /// Token span of the `{ … }` body, braces included.
    pub body: Option<Range<usize>>,
    /// This item, or any ancestor, is test-gated.
    pub is_test: bool,
    /// Declared `unsafe fn`.
    pub is_unsafe_fn: bool,
    /// `#[target_feature(enable = …)]` features.
    pub target_features: Vec<String>,
    /// Leading docs contain a `# Safety` section.
    pub has_safety_doc: bool,
    /// Nesting depth (0 = top level), for innermost-wins attribution.
    pub depth: usize,
}

/// Flatten a tree into qualified items. `file_mod` is the module path
/// derived from the file's path (empty for `lib.rs`/`main.rs`).
pub fn flatten(tree: &ItemTree, file_mod: &str) -> Vec<QualItem> {
    let mut out = Vec::new();
    for item in &tree.items {
        flatten_into(item, file_mod, tree.file_is_test, 0, &mut out);
    }
    out
}

fn flatten_into(
    item: &Item,
    prefix: &str,
    ancestor_test: bool,
    depth: usize,
    out: &mut Vec<QualItem>,
) {
    let qual = if prefix.is_empty() {
        item.name.clone()
    } else {
        format!("{prefix}::{}", item.name)
    };
    let is_test = ancestor_test || item.is_test;
    out.push(QualItem {
        qual: qual.clone(),
        name: item.name.clone(),
        kind: item.kind,
        line: item.line,
        byte_span: item.byte_span.clone(),
        body: item.body.clone(),
        is_test,
        is_unsafe_fn: item.is_unsafe_fn,
        target_features: item.target_features.clone(),
        has_safety_doc: item.has_safety_doc,
        depth,
    });
    for child in &item.children {
        flatten_into(child, &qual, is_test, depth + 1, out);
    }
}

/// The module path a file contributes: the path after `src/`, minus the
/// extension, with `lib`/`main`/`mod` leaves dropped —
/// `crates/rse/src/encoder.rs` → `encoder`, `crates/gf/src/lib.rs` → ``.
pub fn module_path(rel_path: &str) -> String {
    let unix = rel_path.replace('\\', "/");
    let after_src = unix
        .rsplit_once("src/")
        .map(|(_, rest)| rest)
        .unwrap_or(unix.as_str());
    let no_ext = after_src.strip_suffix(".rs").unwrap_or(after_src);
    let mut segments: Vec<&str> = no_ext.split('/').filter(|s| !s.is_empty()).collect();
    if matches!(segments.last(), Some(&"lib") | Some(&"main") | Some(&"mod")) {
        segments.pop();
    }
    segments.join("::")
}

/// The attribution key for a byte offset: the innermost named item
/// (fn/impl/mod/trait) containing it, or `(file)` rooted at the module
/// path when the byte sits at file scope.
pub fn item_key_at(flat: &[QualItem], file_mod: &str, byte: usize) -> String {
    let mut best: Option<&QualItem> = None;
    for item in flat {
        if !item.byte_span.contains(&byte) {
            continue;
        }
        if !matches!(
            item.kind,
            ItemKind::Fn | ItemKind::Impl | ItemKind::Mod | ItemKind::Trait
        ) {
            continue;
        }
        if best.map(|b| item.depth >= b.depth).unwrap_or(true) {
            best = Some(item);
        }
    }
    match best {
        Some(item) => item.qual.clone(),
        None if file_mod.is_empty() => "(file)".to_string(),
        None => file_mod.to_string(),
    }
}

/// The innermost item of any kind containing `byte` (for test-gating
/// checks on tokens).
pub fn item_at(flat: &[QualItem], byte: usize) -> Option<&QualItem> {
    let mut best: Option<&QualItem> = None;
    for item in flat {
        if !item.byte_span.contains(&byte) {
            continue;
        }
        if best.map(|b| item.depth >= b.depth).unwrap_or(true) {
            best = Some(item);
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn tree(src: &str) -> ItemTree {
        parse(&lex(src))
    }

    #[test]
    fn recovers_fns_mods_impls() {
        let src = r#"
            pub fn free() {}
            mod inner {
                fn nested() {}
            }
            impl Widget {
                pub fn method(&self) -> u8 { 0 }
            }
            impl fmt::Debug for Gadget {
                fn fmt(&self) {}
            }
        "#;
        let t = tree(src);
        let names: Vec<(ItemKind, &str)> =
            t.items.iter().map(|i| (i.kind, i.name.as_str())).collect();
        assert_eq!(
            names,
            vec![
                (ItemKind::Fn, "free"),
                (ItemKind::Mod, "inner"),
                (ItemKind::Impl, "Widget"),
                (ItemKind::Impl, "Gadget"),
            ]
        );
        assert_eq!(t.items[1].children[0].name, "nested");
        assert_eq!(t.items[2].children[0].name, "method");
    }

    #[test]
    fn impl_with_generics_names_the_type() {
        let src = "impl<T: Clone, C: Fn() -> u8> Mux<T, C> { fn go(&self) {} }";
        let t = tree(src);
        assert_eq!(t.items[0].name, "Mux");
        assert_eq!(t.items[0].children[0].name, "go");
    }

    #[test]
    fn impl_where_clause_does_not_steal_the_name() {
        let src = "impl<T> Pool<T> where T: Send { fn go(&self) {} }";
        let t = tree(src);
        assert_eq!(t.items[0].name, "Pool");
    }

    #[test]
    fn unsafe_fn_and_safety_docs_detected() {
        let src = r#"
            /// Does a thing.
            ///
            /// # Safety
            /// Caller must uphold X.
            pub unsafe fn documented() {}
            unsafe fn bare() {}
            fn safe_one() { unsafe { core() } }
        "#;
        let t = tree(src);
        assert!(t.items[0].is_unsafe_fn && t.items[0].has_safety_doc);
        assert!(t.items[1].is_unsafe_fn && !t.items[1].has_safety_doc);
        assert!(!t.items[2].is_unsafe_fn);
    }

    #[test]
    fn target_feature_attr_parsed() {
        let src = "#[inline]\n#[target_feature(enable = \"avx2\")]\nfn kern() {}";
        let t = tree(src);
        assert_eq!(t.items[0].target_features, vec!["avx2".to_string()]);
    }

    #[test]
    fn cfg_test_marks_items_and_propagates() {
        let src = r#"
            fn prod() {}
            #[cfg(test)]
            mod tests {
                #[test]
                fn t() {}
            }
        "#;
        let t = tree(src);
        assert!(!t.items[0].is_test);
        assert!(t.items[1].is_test);
        let flat = flatten(&t, "");
        let test_fn = flat.iter().find(|q| q.name == "t").unwrap();
        assert!(test_fn.is_test, "ancestor cfg(test) must propagate");
    }

    #[test]
    fn file_level_cfg_test_gates_everything() {
        let t = tree("#![cfg(test)]\nfn helper() {}\n");
        assert!(t.file_is_test);
        let flat = flatten(&t, "");
        assert!(flat.iter().all(|q| q.is_test));
    }

    #[test]
    fn module_paths_from_file_paths() {
        assert_eq!(module_path("crates/rse/src/encoder.rs"), "encoder");
        assert_eq!(module_path("crates/gf/src/lib.rs"), "");
        assert_eq!(module_path("src/main.rs"), "");
        assert_eq!(module_path("crates/x/src/a/b.rs"), "a::b");
        assert_eq!(module_path("crates/x/src/a/mod.rs"), "a");
    }

    #[test]
    fn attribution_finds_the_innermost_item() {
        let src = "impl Codec {\n    fn encode(&self) { body(); }\n}\n";
        let tokens = lex(src);
        let t = parse(&tokens);
        let flat = flatten(&t, "enc");
        let body_byte = src.find("body").unwrap();
        assert_eq!(item_key_at(&flat, "enc", body_byte), "enc::Codec::encode");
        // A byte at file scope (none here, so probe past the impl).
        assert_eq!(item_key_at(&flat, "enc", src.len() + 10), "enc");
    }

    #[test]
    fn top_level_spans_tile_the_stream() {
        let src = r#"
            use std::fmt;
            const X: u8 = 3;
            /// doc
            fn f() { let v = vec![1]; }
            struct S { a: u8 }
            enum E { A, B }
            fn g<T: Fn() -> u8>(t: T) -> u8 where T: Send { t() }
        "#;
        let tokens = lex(src);
        let t = parse(&tokens);
        let mut next = 0usize;
        for item in &t.items {
            assert_eq!(item.tok_span.start, next, "gap before {:?}", item.name);
            assert!(item.tok_span.end > item.tok_span.start);
            next = item.tok_span.end;
        }
        assert_eq!(next, tokens.len(), "trailing tokens not covered");
    }

    #[test]
    fn hostile_input_is_total() {
        for src in [
            "}}}{{{",
            "fn",
            "impl<",
            "pub pub pub",
            "#[",
            "fn f(",
            "mod m { fn g(",
            "unsafe",
            "macro_rules! m { () => {} }",
        ] {
            let tokens = lex(src);
            let t = parse(&tokens);
            let covered: usize = t.items.iter().map(|i| i.tok_span.len()).sum();
            assert_eq!(covered, tokens.len(), "{src:?}");
        }
    }
}
