//! A small hand-rolled Rust lexer, just rich enough for static auditing.
//!
//! The rule engine must never fire on text inside comments, string
//! literals, raw strings, byte strings or char literals — `"Instant::now"`
//! in a doc comment is not a determinism hazard. This lexer classifies
//! exactly those regions and hands the rule engine a token stream in which
//! comments and literals are opaque single tokens. It does **not** attempt
//! full Rust grammar: everything that is not whitespace, a comment, a
//! literal, an identifier or a number is a one-character punctuation
//! token, which is all the pattern matchers need.
//!
//! Invariants (property-tested in `tests/lexer_props.rs`):
//!
//! * lexing never panics and always terminates, on arbitrary input;
//! * token spans are strictly increasing and non-overlapping, and every
//!   non-whitespace byte of the input is covered by exactly one token;
//! * hazard keywords embedded in comments/strings produce `Comment`/`Str`
//!   tokens, never `Ident` tokens.

/// Classification of one lexed region.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword.
    Ident,
    /// Integer or float literal (including suffixed forms).
    Number,
    /// String-ish literal: `"…"`, `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#`,
    /// `c"…"` — contents are opaque to the rule engine.
    Str,
    /// Char or byte-char literal: `'x'`, `b'\n'`.
    Char,
    /// Lifetime such as `'a` or `'static`.
    Lifetime,
    /// `// …` line comment (doc comments included).
    LineComment,
    /// `/* … */` block comment, nesting-aware.
    BlockComment,
    /// Any other single character.
    Punct,
}

/// One token: kind, source text and position.
#[derive(Debug, Clone, Copy)]
pub struct Token<'a> {
    /// What the region is.
    pub kind: TokenKind,
    /// The exact source text of the token.
    pub text: &'a str,
    /// Byte offset of the token start.
    pub start: usize,
    /// 1-based line number of the token start.
    pub line: u32,
}

impl<'a> Token<'a> {
    /// True for tokens the pattern matchers should consider (identifiers
    /// and punctuation); comments and literals are opaque.
    pub fn is_significant(&self) -> bool {
        matches!(
            self.kind,
            TokenKind::Ident | TokenKind::Punct | TokenKind::Number
        )
    }
}

/// Lex `src` completely. Unterminated literals/comments extend to the end
/// of input (the lexer is total: it never fails, it only classifies).
pub fn lex(src: &str) -> Vec<Token<'_>> {
    Lexer {
        src,
        bytes: src.as_bytes(),
        pos: 0,
        line: 1,
    }
    .run()
}

struct Lexer<'a> {
    src: &'a str,
    bytes: &'a [u8],
    pos: usize,
    line: u32,
}

impl<'a> Lexer<'a> {
    fn run(mut self) -> Vec<Token<'a>> {
        let mut out = Vec::new();
        while self.pos < self.bytes.len() {
            let start = self.pos;
            let line = self.line;
            let b = self.bytes[self.pos];
            let kind = match b {
                b' ' | b'\t' | b'\r' | b'\n' => {
                    self.bump();
                    continue;
                }
                b'/' if self.peek(1) == Some(b'/') => self.line_comment(),
                b'/' if self.peek(1) == Some(b'*') => self.block_comment(),
                b'"' => self.string(),
                b'\'' => self.char_or_lifetime(),
                b'0'..=b'9' => self.number(),
                _ if is_ident_start(b) => self.ident_or_prefixed_literal(),
                _ => {
                    self.bump();
                    TokenKind::Punct
                }
            };
            debug_assert!(self.pos > start, "lexer must always make progress");
            out.push(Token {
                kind,
                text: &self.src[start..self.pos],
                start,
                line,
            });
        }
        out
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.bytes.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) {
        if self.bytes[self.pos] == b'\n' {
            self.line += 1;
        }
        self.pos += 1;
    }

    fn line_comment(&mut self) -> TokenKind {
        while self.pos < self.bytes.len() && self.bytes[self.pos] != b'\n' {
            self.pos += 1;
        }
        TokenKind::LineComment
    }

    fn block_comment(&mut self) -> TokenKind {
        // Consume "/*", then match nested pairs until depth returns to 0.
        self.pos += 2;
        let mut depth = 1usize;
        while self.pos < self.bytes.len() && depth > 0 {
            if self.bytes[self.pos] == b'/' && self.peek(1) == Some(b'*') {
                depth += 1;
                self.pos += 2;
            } else if self.bytes[self.pos] == b'*' && self.peek(1) == Some(b'/') {
                depth -= 1;
                self.pos += 2;
            } else {
                self.bump();
            }
        }
        TokenKind::BlockComment
    }

    /// Ordinary (escaped) string literal, starting at `"`.
    fn string(&mut self) -> TokenKind {
        self.bump(); // opening quote
        while self.pos < self.bytes.len() {
            match self.bytes[self.pos] {
                b'\\' => {
                    self.bump();
                    if self.pos < self.bytes.len() {
                        self.bump(); // the escaped character (covers \" and \\)
                    }
                }
                b'"' => {
                    self.bump();
                    break;
                }
                _ => self.bump(),
            }
        }
        TokenKind::Str
    }

    /// Raw string starting at `r` (or after a `b`/`c` prefix): zero or
    /// more `#`, then `"`, terminated by `"` plus the same number of `#`.
    /// Returns false (and rewinds nothing — caller guards) if the text at
    /// `self.pos` is not actually a raw-string opener.
    fn raw_string(&mut self) -> TokenKind {
        let mut hashes = 0usize;
        while self.peek(0) == Some(b'#') {
            hashes += 1;
            self.pos += 1;
        }
        if self.peek(0) == Some(b'"') {
            self.bump();
            'outer: while self.pos < self.bytes.len() {
                if self.bytes[self.pos] == b'"' {
                    self.bump();
                    for _ in 0..hashes {
                        if self.peek(0) == Some(b'#') {
                            self.pos += 1;
                        } else {
                            continue 'outer;
                        }
                    }
                    break;
                } else {
                    self.bump();
                }
            }
        }
        TokenKind::Str
    }

    /// `'x'`, `'\n'` → Char; `'a`, `'static` → Lifetime.
    fn char_or_lifetime(&mut self) -> TokenKind {
        self.bump(); // the quote
        match self.peek(0) {
            Some(b'\\') => {
                // Escaped char literal: consume escape then scan to quote.
                self.bump();
                if self.pos < self.bytes.len() {
                    self.bump();
                }
                while self.pos < self.bytes.len() && self.bytes[self.pos] != b'\'' {
                    self.bump();
                }
                if self.peek(0) == Some(b'\'') {
                    self.bump();
                }
                TokenKind::Char
            }
            Some(c) if is_ident_start(c) => {
                // `'a'` is a char; `'a` / `'abc` without a closing quote on
                // the next byte is a lifetime.
                if self.peek(1) == Some(b'\'') {
                    self.pos += 2;
                    TokenKind::Char
                } else {
                    while self
                        .peek(0)
                        .map(|c| is_ident_start(c) || c.is_ascii_digit())
                        .unwrap_or(false)
                    {
                        self.pos += 1;
                    }
                    TokenKind::Lifetime
                }
            }
            Some(_) => {
                // Non-identifier char like `'+'` or unicode: scan to the
                // closing quote on this line.
                while self.pos < self.bytes.len()
                    && self.bytes[self.pos] != b'\''
                    && self.bytes[self.pos] != b'\n'
                {
                    self.bump();
                }
                if self.peek(0) == Some(b'\'') {
                    self.bump();
                }
                TokenKind::Char
            }
            None => TokenKind::Char,
        }
    }

    fn number(&mut self) -> TokenKind {
        // Digits, underscores, hex/bin/oct bodies and type suffixes; a dot
        // joins only when followed by a digit (so `0.iter()` still splits).
        while self
            .peek(0)
            .map(|c| c.is_ascii_alphanumeric() || c == b'_')
            .unwrap_or(false)
        {
            self.pos += 1;
        }
        if self.peek(0) == Some(b'.') && self.peek(1).map(|c| c.is_ascii_digit()).unwrap_or(false) {
            self.pos += 1;
            while self
                .peek(0)
                .map(|c| c.is_ascii_alphanumeric() || c == b'_')
                .unwrap_or(false)
            {
                self.pos += 1;
            }
        }
        TokenKind::Number
    }

    fn ident_or_prefixed_literal(&mut self) -> TokenKind {
        let start = self.pos;
        while self
            .peek(0)
            .map(|c| is_ident_start(c) || c.is_ascii_digit())
            .unwrap_or(false)
        {
            self.pos += 1;
        }
        let word = &self.src[start..self.pos];
        // Literal prefixes: r"", r#""#, b"", br"", rb is invalid, c"", cr"".
        match word {
            "r" | "br" | "cr" => {
                // `r"…"` / `r#"…"#` are raw strings; `r#ident` is a raw
                // identifier, which stays an Ident.
                let raw_ident = word == "r"
                    && self.peek(0) == Some(b'#')
                    && self.peek(1).map(is_ident_start).unwrap_or(false);
                if raw_ident {
                    self.pos += 1;
                    while self
                        .peek(0)
                        .map(|c| is_ident_start(c) || c.is_ascii_digit())
                        .unwrap_or(false)
                    {
                        self.pos += 1;
                    }
                    return TokenKind::Ident;
                }
                if matches!(self.peek(0), Some(b'"') | Some(b'#')) {
                    return self.raw_string();
                }
            }
            "b" | "c" => {
                if self.peek(0) == Some(b'"') {
                    return self.string();
                }
                if word == "b" && self.peek(0) == Some(b'\'') {
                    return self.char_or_lifetime();
                }
            }
            _ => {}
        }
        TokenKind::Ident
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, &str)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn comments_are_opaque() {
        let toks = kinds("x // Instant::now() here\ny");
        assert_eq!(toks[0], (TokenKind::Ident, "x"));
        assert_eq!(toks[1].0, TokenKind::LineComment);
        assert_eq!(toks[2], (TokenKind::Ident, "y"));
    }

    #[test]
    fn nested_block_comments() {
        let toks = kinds("a /* outer /* unsafe */ still comment */ b");
        assert_eq!(toks.len(), 3);
        assert_eq!(toks[1].0, TokenKind::BlockComment);
        assert!(toks[1].1.contains("unsafe"));
    }

    #[test]
    fn strings_and_escapes() {
        let toks = kinds(r#"let s = "he said \"unwrap()\"";"#);
        let strs: Vec<_> = toks.iter().filter(|t| t.0 == TokenKind::Str).collect();
        assert_eq!(strs.len(), 1);
        assert!(strs[0].1.contains("unwrap"));
    }

    #[test]
    fn raw_strings_with_hashes() {
        let toks = kinds(r###"let s = r#"contains "quotes" and unsafe"#; x"###);
        let strs: Vec<_> = toks.iter().filter(|t| t.0 == TokenKind::Str).collect();
        assert_eq!(strs.len(), 1);
        assert!(strs[0].1.contains("unsafe"));
        assert_eq!(toks.last().unwrap(), &(TokenKind::Ident, "x"));
    }

    #[test]
    fn byte_and_c_strings() {
        for src in [r#"b"bytes SystemTime""#, r#"c"cstr""#, r##"br#"raw"#"##] {
            let toks = kinds(src);
            assert_eq!(toks.len(), 1, "{src}: {toks:?}");
            assert_eq!(toks[0].0, TokenKind::Str);
        }
    }

    #[test]
    fn lifetimes_vs_chars() {
        let toks = kinds("fn f<'a>(x: &'a u8) { let c = 'x'; let n = '\\n'; }");
        let lifetimes = toks.iter().filter(|t| t.0 == TokenKind::Lifetime).count();
        let chars = toks.iter().filter(|t| t.0 == TokenKind::Char).count();
        assert_eq!(lifetimes, 2);
        assert_eq!(chars, 2);
    }

    #[test]
    fn line_numbers_advance() {
        let toks = lex("a\nb\n\nc");
        let lines: Vec<u32> = toks.iter().map(|t| t.line).collect();
        assert_eq!(lines, vec![1, 2, 4]);
    }

    #[test]
    fn unterminated_inputs_are_total() {
        for src in ["\"never closed", "/* never closed", "r#\"never", "'x"] {
            let toks = lex(src);
            assert!(!toks.is_empty(), "{src}");
        }
    }

    #[test]
    fn numbers_do_not_eat_method_calls() {
        let toks = kinds("1.5f64 + 0.max(2) + 0xff_u32");
        assert!(toks.contains(&(TokenKind::Ident, "max")));
        assert_eq!(toks[0], (TokenKind::Number, "1.5f64"));
        assert_eq!(toks.last().unwrap().0, TokenKind::Number);
    }
}
