#![forbid(unsafe_code)]
//! # pm-audit — workspace invariant auditor
//!
//! A zero-dependency static-analysis pass over every workspace `src/`
//! file, enforcing the contracts the rest of the stack only states in
//! prose:
//!
//! | rule | invariant |
//! |---|---|
//! | `determinism-time` | no wall-clock reads outside the allowlisted runtime/stopwatch/bench domains |
//! | `determinism-hash-iter` | no `HashMap`/`HashSet` in pm-core/pm-sim/pm-loss deterministic state |
//! | `rng-entropy` | every RNG is explicitly seeded — no `thread_rng`/`from_entropy`/`rand::random` |
//! | `panic-surface` | `unwrap`/`expect`/panicking macros/indexing in pm-gf/pm-rse/pm-core are ratcheted down |
//! | `unsafe-code` | no `unsafe` outside the waived pm-simd kernel boundary ([`rules::UNSAFE_WAIVED_CRATES`]) |
//! | `unsafe-safety-contract` | every pm-simd `unsafe fn` carries `# Safety` docs, every `unsafe {}` block a `// SAFETY:` comment |
//! | `target-feature-consistency` | fn bodies using `_mm256_*`/`vqtbl*` intrinsics are `#[target_feature]`-annotated |
//! | `lossy-cast` | no unguarded truncating `as` casts in pm-net/pm-gf/pm-rse wire and codec code |
//! | `hot-loop-alloc` | no allocation-shaped calls within [`rules::HOT_LOOP_HOPS`] call-graph hops of [`rules::HOT_PATH_ENTRIES`] |
//! | `waiver-hygiene` | pragmas carry reasons; `expires: PR<n>` bounds hard-fail once passed |
//! | `event-vocabulary` | pm-obs `Event::name` and `EVENT_NAMES` (used by obs-check) cannot drift |
//!
//! Violations are attributed to their enclosing item by the structural
//! parser ([`items`]) and counted per (rule, crate, item) against the
//! committed `audit-baseline.json`: any increase fails the gate (exit 1),
//! any decrease is reported so the baseline can be shrunk (or rewritten
//! with `--update-baseline`). Individual lines are waived with reasoned
//! `allow(<rule>)` pragma comments (see [`rules`]); the lexer ([`lexer`]) is
//! comment/string/raw-string aware, so hazards spelled in documentation
//! or literals never fire.
//!
//! Vendored stand-ins under `vendor/` model *external* crates and are out
//! of contract, so they are not scanned.

pub mod baseline;
pub mod items;
pub mod lexer;
pub mod rules;

use std::fmt::Write as _;
use std::path::{Path, PathBuf};

use baseline::{Counts, Delta};
use rules::Violation;

/// Everything one audit run produced.
#[derive(Debug)]
pub struct AuditReport {
    /// Every unsuppressed violation, in deterministic (path, line) order.
    pub violations: Vec<Violation>,
    /// Per-rule, per-crate, per-item tallies of `violations`.
    pub counts: Counts,
    /// Files scanned (workspace-relative), for the report footer.
    pub files_scanned: usize,
}

/// Outcome of gating an [`AuditReport`] against a baseline.
#[derive(Debug)]
pub struct GateOutcome {
    /// (rule, crate, item) buckets over baseline — any entry fails the
    /// gate.
    pub regressions: Vec<Delta>,
    /// (rule, crate, item) buckets under baseline — shrink the baseline.
    pub improvements: Vec<Delta>,
}

impl GateOutcome {
    /// True when no count exceeds its baseline.
    pub fn passed(&self) -> bool {
        self.regressions.is_empty()
    }
}

/// Scan the workspace rooted at `root`: `<root>/src` plus every
/// `<root>/crates/*/src`, in sorted order.
///
/// # Errors
/// I/O problems walking or reading the tree.
pub fn audit_workspace(root: &Path) -> Result<AuditReport, String> {
    let mut files: Vec<(String, PathBuf)> = Vec::new(); // (crate name, dir)
    let root_src = root.join("src");
    if root_src.is_dir() {
        files.push((package_name(root), root_src));
    }
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        let mut entries: Vec<PathBuf> = std::fs::read_dir(&crates_dir)
            .map_err(|e| format!("cannot read {}: {e}", crates_dir.display()))?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.join("src").is_dir())
            .collect();
        entries.sort();
        for dir in entries {
            files.push((package_name(&dir), dir.join("src")));
        }
    }
    if files.is_empty() {
        return Err(format!(
            "{}: no src/ or crates/*/src directories found",
            root.display()
        ));
    }

    let pr_count = workspace_pr_count(root);
    let mut violations = Vec::new();
    let mut hot_fns = Vec::new();
    let mut files_scanned = 0usize;
    for (crate_name, src_dir) in files {
        let mut rs_files = Vec::new();
        collect_rs_files(&src_dir, &mut rs_files)?;
        rs_files.sort();
        for path in rs_files {
            let text = std::fs::read_to_string(&path)
                .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .to_string_lossy()
                .replace('\\', "/");
            files_scanned += 1;
            let analysis = rules::analyze_file(&crate_name, &rel, &text, pr_count);
            violations.extend(analysis.violations);
            hot_fns.extend(analysis.hot_fns);
            if rel.ends_with("obs/src/event.rs") {
                violations.extend(rules::check_event_vocabulary(&crate_name, &rel, &text));
            }
        }
    }
    // Phase 2: rules needing the crate-wide call graph.
    violations.extend(rules::check_hot_loops(&hot_fns));
    violations.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    let counts = baseline::tally(&violations);
    Ok(AuditReport {
        violations,
        counts,
        files_scanned,
    })
}

/// Gate a report against baseline counts.
pub fn gate(report: &AuditReport, baseline_counts: &Counts) -> GateOutcome {
    let (regressions, improvements) = baseline::compare(&report.counts, baseline_counts);
    GateOutcome {
        regressions,
        improvements,
    }
}

/// The workspace PR count pragma expiry is checked against: the number of
/// `- PR`-prefixed entries in `<root>/CHANGES.md` (0 when absent, so
/// expiry never fires in scratch workspaces without a changelog).
fn workspace_pr_count(root: &Path) -> u64 {
    std::fs::read_to_string(root.join("CHANGES.md"))
        .map(|text| {
            text.lines()
                .filter(|l| l.trim_start().starts_with("- PR"))
                .count() as u64
        })
        .unwrap_or(0)
}

/// Best-effort `name = "…"` from a crate dir's Cargo.toml; falls back to
/// `pm-<dirname>`.
fn package_name(dir: &Path) -> String {
    if let Ok(manifest) = std::fs::read_to_string(dir.join("Cargo.toml")) {
        for line in manifest.lines() {
            let line = line.trim();
            if let Some(rest) = line.strip_prefix("name") {
                let rest = rest.trim_start();
                if let Some(rest) = rest.strip_prefix('=') {
                    let v = rest.trim().trim_matches('"');
                    if !v.is_empty() {
                        return v.to_string();
                    }
                }
            }
        }
    }
    let dirname = dir
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_else(|| "unknown".into());
    format!("pm-{dirname}")
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let entries =
        std::fs::read_dir(dir).map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
    for entry in entries {
        let path = entry.map_err(|e| e.to_string())?.path();
        if path.is_dir() {
            collect_rs_files(&path, out)?;
        } else if path.extension().map(|e| e == "rs").unwrap_or(false) {
            out.push(path);
        }
    }
    Ok(())
}

/// Human-readable report: violations, per-rule summary, gate verdict.
pub fn render_text(report: &AuditReport, outcome: &GateOutcome) -> String {
    let mut s = String::new();
    for v in &report.violations {
        let _ = writeln!(s, "{}:{}: {}: {}", v.file, v.line, v.rule.name(), v.message);
    }
    if !report.violations.is_empty() {
        s.push('\n');
    }
    let _ = writeln!(
        s,
        "pm-audit: {} files scanned, {} violations",
        report.files_scanned,
        report.violations.len()
    );
    for (rule, crates) in &report.counts {
        let total: u64 = crates
            .values()
            .map(|items| items.values().sum::<u64>())
            .sum();
        let per_crate: Vec<String> = crates
            .iter()
            .map(|(c, items)| format!("{c}: {}", items.values().sum::<u64>()))
            .collect();
        let _ = writeln!(s, "  {rule}: {total} ({})", per_crate.join(", "));
    }
    for d in &outcome.improvements {
        let _ = writeln!(
            s,
            "improvable: {} in {} [{}] is {} but baseline allows {} — shrink the baseline \
             (or run --update-baseline)",
            d.rule, d.crate_name, d.item, d.current, d.baseline
        );
    }
    for d in &outcome.regressions {
        let _ = writeln!(
            s,
            "REGRESSION: {} in {} [{}]: {} > baseline {}",
            d.rule, d.crate_name, d.item, d.current, d.baseline
        );
    }
    let _ = writeln!(
        s,
        "gate: {}",
        if outcome.passed() { "PASS" } else { "FAIL" }
    );
    s
}

/// Machine-readable report (one JSON object).
pub fn render_json(report: &AuditReport, outcome: &GateOutcome) -> String {
    let mut s = String::from("{\n  \"violations\": [\n");
    for (i, v) in report.violations.iter().enumerate() {
        let comma = if i + 1 < report.violations.len() {
            ","
        } else {
            ""
        };
        let _ = writeln!(
            s,
            "    {{\"file\": {}, \"line\": {}, \"rule\": {}, \"crate\": {}, \"item\": {}, \
             \"message\": {}}}{comma}",
            json_str(&v.file),
            v.line,
            json_str(v.rule.name()),
            json_str(&v.crate_name),
            json_str(&v.item),
            json_str(&v.message)
        );
    }
    s.push_str("  ],\n  \"counts\": ");
    let counts_json = baseline::to_json(&report.counts);
    s.push_str(&indent_tail(counts_json.trim_end(), "  "));
    let _ = writeln!(s, ",\n  \"files_scanned\": {},", report.files_scanned);
    let _ = writeln!(
        s,
        "  \"regressions\": {},",
        deltas_json(&outcome.regressions)
    );
    let _ = writeln!(
        s,
        "  \"improvements\": {},",
        deltas_json(&outcome.improvements)
    );
    let _ = writeln!(s, "  \"pass\": {}", outcome.passed());
    s.push_str("}\n");
    s
}

fn deltas_json(deltas: &[Delta]) -> String {
    let items: Vec<String> = deltas
        .iter()
        .map(|d| {
            format!(
                "{{\"rule\": {}, \"crate\": {}, \"item\": {}, \"baseline\": {}, \"current\": {}}}",
                json_str(&d.rule),
                json_str(&d.crate_name),
                json_str(&d.item),
                d.baseline,
                d.current
            )
        })
        .collect();
    format!("[{}]", items.join(", "))
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn indent_tail(block: &str, pad: &str) -> String {
    let mut lines = block.lines();
    let first = lines.next().unwrap_or("");
    let mut out = String::from(first);
    for line in lines {
        out.push('\n');
        out.push_str(pad);
        out.push_str(line);
    }
    out
}
