//! An unknown `PM_SIMD` value must surface as a clean typed error from
//! `try_kernels()` — not a panic, and not a silent fall-through to some
//! backend. Own binary: the bad value must be in place before the
//! process-wide selection is memoized.

use pm_simd::{try_kernels, DispatchError, ENV_VAR};

#[test]
fn unknown_value_errors_cleanly() {
    std::env::set_var(ENV_VAR, "avx512-dreams");

    match try_kernels() {
        Err(DispatchError::UnknownBackend { value }) => assert_eq!(value, "avx512-dreams"),
        other => panic!("expected UnknownBackend, got {other:?}"),
    }

    // The error is memoized too: later callers see the same failure rather
    // than a half-configured codec, and the infallible telemetry accessor
    // degrades to a marker value.
    assert!(try_kernels().is_err());
    assert_eq!(pm_simd::backend_name(), "invalid");
}
