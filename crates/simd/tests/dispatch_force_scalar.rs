//! `PM_SIMD=scalar` must force the portable fallback even on SIMD-capable
//! hosts. Dispatch is memoized process-wide, so this lives in its own
//! integration-test binary where the override is installed before the first
//! kernel access — and wins over whatever `PM_SIMD` the harness inherited.

use pm_gf::gf256::Gf256;
use pm_gf::slice::reference;
use pm_simd::{kernels, try_kernels, Backend, ENV_VAR};

#[test]
fn forced_scalar_wins_over_detection() {
    std::env::set_var(ENV_VAR, "scalar");

    let k = kernels();
    assert_eq!(
        k.backend(),
        Backend::Scalar,
        "PM_SIMD=scalar must select the fallback even though this host \
         detects {:?}",
        Backend::detect()
    );
    assert_eq!(pm_simd::backend_name(), "scalar");

    // The memoized selection is stable across calls.
    assert_eq!(try_kernels().unwrap().backend(), Backend::Scalar);

    // And the fallback actually computes: differential spot-check against
    // the definitional reference on an odd, tail-heavy length.
    let src: Vec<u8> = (0..77u32).map(|i| (i * 37 + 11) as u8).collect();
    let mut dst: Vec<u8> = (0..77u32).map(|i| (i * 13 + 5) as u8).collect();
    let mut want = dst.clone();
    reference::mul_add_slice(Gf256(0x8e), &src, &mut want);
    k.mul_add_slice(Gf256(0x8e), &src, &mut dst);
    assert_eq!(dst, want);
}
