//! `PM_SIMD=auto` (and unset) resolves to the best backend the host
//! supports — the same answer `Backend::detect()` gives.

use pm_simd::{kernels, Backend, ENV_VAR};

#[test]
fn auto_matches_detection() {
    std::env::set_var(ENV_VAR, "auto");
    assert_eq!(kernels().backend(), Backend::detect());
}
