//! Forcing a backend the host cannot run is a typed `Unavailable` error,
//! not a crash in the first kernel call.

#[cfg(not(target_arch = "aarch64"))]
#[test]
fn forcing_neon_off_aarch64_errors() {
    use pm_simd::{try_kernels, Backend, DispatchError, ENV_VAR};

    std::env::set_var(ENV_VAR, "neon");
    match try_kernels() {
        Err(DispatchError::Unavailable { backend }) => assert_eq!(backend, Backend::Neon),
        other => panic!("expected Unavailable, got {other:?}"),
    }
}

#[cfg(target_arch = "aarch64")]
#[test]
fn forcing_neon_on_aarch64_succeeds() {
    use pm_simd::{kernels, Backend, ENV_VAR};

    std::env::set_var(ENV_VAR, "neon");
    assert_eq!(kernels().backend(), Backend::Neon);
}
