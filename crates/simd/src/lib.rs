//! Runtime-dispatched SIMD kernels for the GF(2^8)/GF(2^16) codec hot loops.
//!
//! The paper's Section 5 throughput argument hinges on end-host coding rate:
//! a packet-level RSE coder spends essentially all of its time in
//! `parity ^= coeff * data` over whole packets. The table-driven scalar
//! kernels in `pm-gf` resolve one byte per step through a 256-entry row;
//! the SIMD backends here resolve 32 (AVX2) or 16 (NEON) bytes per step
//! with the classic nibble-split trick: each coefficient `c` expands to two
//! 16-entry tables — `lo[x] = c·x` and `hi[x] = c·(x<<4)` — and a full
//! product is `lo[s & 0xf] ^ hi[s >> 4]`, computed lane-parallel with
//! `_mm256_shuffle_epi8` / `vqtbl1q_u8`.
//!
//! ## Dispatch
//!
//! Backend selection happens **once per process**: [`try_kernels`] consults
//! the `PM_SIMD` environment variable (`scalar`, `avx2`, `neon`, or `auto`;
//! unset means `auto`), performs runtime CPU-feature detection
//! (`is_x86_feature_detected!("avx2")`; NEON is baseline on aarch64), and
//! memoizes a `&'static` [`Kernels`] vtable. Every backend computes
//! byte-identical results — GF arithmetic is exact — so the choice affects
//! throughput only, never transcripts; the differential proptests in this
//! crate pin each backend against the scalar reference across arbitrary
//! lengths, unaligned offsets, and sub-vector tails.
//!
//! ## The unsafe boundary
//!
//! This crate is the one sanctioned home for `unsafe` in the workspace
//! (`#![forbid(unsafe_code)]` everywhere else): raw SIMD loads/stores and
//! cross-feature calls into `#[target_feature]` functions. The pm-audit
//! `unsafe-code` rule ratchets the count in `audit-baseline.json` and its
//! baseline waiver names pm-simd alone, so a new `unsafe` token anywhere —
//! including here — still trips the gate.

#![deny(unsafe_op_in_unsafe_fn)]

use std::fmt;
use std::sync::OnceLock;

use pm_gf::field::GfField;
use pm_gf::gf256::Gf256;
use pm_gf::mul_table::mul_row;

#[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
mod avx2;
#[cfg(target_arch = "aarch64")]
mod neon;
mod scalar;
mod tables;

#[cfg(test)]
mod proptests;

/// Environment variable overriding backend selection: `scalar`, `avx2`,
/// `neon`, or `auto` (the default when unset).
pub const ENV_VAR: &str = "PM_SIMD";

/// A codec kernel backend.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Backend {
    /// Portable scalar kernels delegating to the table-driven `pm_gf::slice`
    /// routines. Always available.
    Scalar,
    /// AVX2 nibble-split kernels, 32 bytes per step (x86/x86_64 with runtime
    /// `avx2` detection).
    Avx2,
    /// NEON nibble-split kernels, 16 bytes per step (aarch64, where NEON is
    /// part of the baseline ISA).
    Neon,
}

impl Backend {
    /// Stable lowercase name, as accepted by `PM_SIMD` and emitted in the
    /// `session_config` trace event's `backend` field.
    pub fn name(self) -> &'static str {
        match self {
            Backend::Scalar => "scalar",
            Backend::Avx2 => "avx2",
            Backend::Neon => "neon",
        }
    }

    /// Whether the current host can run this backend.
    pub fn is_available(self) -> bool {
        match self {
            Backend::Scalar => true,
            Backend::Avx2 => {
                #[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
                {
                    std::arch::is_x86_feature_detected!("avx2")
                }
                #[cfg(not(any(target_arch = "x86", target_arch = "x86_64")))]
                {
                    false
                }
            }
            Backend::Neon => cfg!(target_arch = "aarch64"),
        }
    }

    /// The fastest backend the current host supports (`auto` resolution).
    pub fn detect() -> Backend {
        if Backend::Avx2.is_available() {
            Backend::Avx2
        } else if Backend::Neon.is_available() {
            Backend::Neon
        } else {
            Backend::Scalar
        }
    }

    /// Parse a `PM_SIMD` value. `auto` yields `None` (resolve via
    /// [`Backend::detect`]); anything else must name a backend exactly.
    pub fn parse(value: &str) -> Result<Option<Backend>, DispatchError> {
        match value {
            "auto" => Ok(None),
            "scalar" => Ok(Some(Backend::Scalar)),
            "avx2" => Ok(Some(Backend::Avx2)),
            "neon" => Ok(Some(Backend::Neon)),
            other => Err(DispatchError::UnknownBackend {
                value: other.to_string(),
            }),
        }
    }
}

impl fmt::Display for Backend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Why `PM_SIMD`-driven dispatch failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DispatchError {
    /// `PM_SIMD` was set to something other than `scalar|avx2|neon|auto`.
    UnknownBackend {
        /// The offending value.
        value: String,
    },
    /// `PM_SIMD` forced a backend the current host cannot run.
    Unavailable {
        /// The backend that was requested.
        backend: Backend,
    },
}

impl fmt::Display for DispatchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DispatchError::UnknownBackend { value } => write!(
                f,
                "unknown {ENV_VAR} value {value:?} (expected scalar, avx2, neon, or auto)"
            ),
            DispatchError::Unavailable { backend } => write!(
                f,
                "{ENV_VAR} forces backend {backend:?}, which this host does not support"
            ),
        }
    }
}

impl std::error::Error for DispatchError {}

/// Precomputed lookup tables for one GF(2^8) coefficient, shared by every
/// backend: the 256-entry multiplication row (scalar path and vector tails)
/// plus the 32-byte nibble-split pair (SIMD path; `lo` table at bytes 0..16,
/// `hi` at 16..32). Both live in process-wide caches, so the handle is a
/// couple of `&'static` references — cheap to build per call and cheaper to
/// cache per matrix coefficient, as the RSE encoder does.
#[derive(Clone, Copy)]
pub struct CoeffTables {
    c: Gf256,
    row: &'static [u8; 256],
    nib: &'static [u8; 32],
}

impl CoeffTables {
    /// Resolve (or lazily build) the tables for coefficient `c`.
    pub fn new(c: Gf256) -> CoeffTables {
        CoeffTables {
            c,
            row: mul_row(c),
            nib: tables::nib_tables(c),
        }
    }

    /// The coefficient these tables multiply by.
    pub fn coeff(&self) -> Gf256 {
        self.c
    }

    pub(crate) fn row(&self) -> &'static [u8; 256] {
        self.row
    }

    pub(crate) fn nib(&self) -> &'static [u8; 32] {
        self.nib
    }
}

impl fmt::Debug for CoeffTables {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CoeffTables").field("c", &self.c).finish()
    }
}

/// Precomputed tables for one GF(2^16) coefficient (the wide codec's
/// per-coefficient state): byte-split product tables for the scalar path
/// (`lo[b] = c·b`, `hi[b] = c·(b<<8)`) plus four 16-entry nibble tables per
/// result byte for the SIMD path (`nib_lo[i][n]` / `nib_hi[i][n]` are the
/// low/high result bytes of `c·(n << 4i)`).
///
/// At 1.2 KB per coefficient this is meant to be cached by the caller —
/// `pm-rse`'s wide codec keeps one per matrix coefficient, exactly as it
/// did for its previous scalar-only tables.
#[derive(Clone)]
pub struct WideCoeff {
    pub(crate) lo: [u16; 256],
    pub(crate) hi: [u16; 256],
    pub(crate) nib_lo: [[u8; 16]; 4],
    pub(crate) nib_hi: [[u8; 16]; 4],
}

impl WideCoeff {
    /// Build the tables for coefficient `c` in `field` (a width-16 field).
    pub fn new(field: &GfField, c: u16) -> WideCoeff {
        let mut lo = [0u16; 256];
        let mut hi = [0u16; 256];
        for (b, (l, h)) in lo.iter_mut().zip(hi.iter_mut()).enumerate() {
            *l = field.mul(c, b as u16);
            *h = field.mul(c, (b as u16) << 8);
        }
        let mut nib_lo = [[0u8; 16]; 4];
        let mut nib_hi = [[0u8; 16]; 4];
        for i in 0..4 {
            for n in 0..16 {
                let p = field.mul(c, (n as u16) << (4 * i));
                nib_lo[i][n] = (p & 0xff) as u8;
                nib_hi[i][n] = (p >> 8) as u8;
            }
        }
        WideCoeff {
            lo,
            hi,
            nib_lo,
            nib_hi,
        }
    }
}

impl fmt::Debug for WideCoeff {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("WideCoeff").finish_non_exhaustive()
    }
}

type XorFn = fn(&mut [u8], &[u8]);
type MulFn = fn(&CoeffTables, &[u8], &mut [u8]);
type ScaleFn = fn(&CoeffTables, &mut [u8]);
type MultiRowsFn = fn(&[(CoeffTables, &[u8])], &mut [u8]);
type WideFn = fn(&WideCoeff, &[u8], &mut [u16]);

/// A backend's kernel vtable. Obtain one via [`kernels`] / [`try_kernels`]
/// (dispatched) or [`kernels_for`] (explicit, for benches and differential
/// tests); all handles are `&'static`, so they are free to copy around.
///
/// Length preconditions are asserted here, once, at the safe surface — the
/// backend functions behind the pointers rely on them.
pub struct Kernels {
    backend: Backend,
    xor: XorFn,
    mul_add: MulFn,
    mul: MulFn,
    scale: ScaleFn,
    multi_rows: MultiRowsFn,
    wide: WideFn,
}

impl Kernels {
    /// Which backend this vtable runs on.
    pub fn backend(&self) -> Backend {
        self.backend
    }

    /// `dst ^= src`, element-wise.
    ///
    /// # Panics
    /// Panics if the lengths differ.
    pub fn xor_slice(&self, dst: &mut [u8], src: &[u8]) {
        assert_eq!(dst.len(), src.len(), "xor_slice length mismatch");
        (self.xor)(dst, src);
    }

    /// `dst ^= c * src` — multiply-accumulate with a scalar coefficient.
    ///
    /// # Panics
    /// Panics if the lengths differ.
    pub fn mul_add_slice(&self, c: Gf256, src: &[u8], dst: &mut [u8]) {
        assert_eq!(dst.len(), src.len(), "mul_add_slice length mismatch");
        if c.is_zero() {
            return;
        }
        if c == Gf256::ONE {
            (self.xor)(dst, src);
            return;
        }
        (self.mul_add)(&CoeffTables::new(c), src, dst);
    }

    /// `dst ^= c * src` with the coefficient's tables prebuilt — the
    /// zero-setup variant for callers that cache [`CoeffTables`] across many
    /// packets, mirroring `pm_gf::slice::mul_add_row`.
    ///
    /// # Panics
    /// Panics if the lengths differ.
    pub fn mul_add_tables(&self, t: &CoeffTables, src: &[u8], dst: &mut [u8]) {
        assert_eq!(dst.len(), src.len(), "mul_add_slice length mismatch");
        if t.c.is_zero() {
            return;
        }
        (self.mul_add)(t, src, dst);
    }

    /// `dst = c * src` (overwrites `dst`).
    ///
    /// # Panics
    /// Panics if the lengths differ.
    pub fn mul_slice(&self, c: Gf256, src: &[u8], dst: &mut [u8]) {
        assert_eq!(dst.len(), src.len(), "mul_slice length mismatch");
        if c.is_zero() {
            dst.fill(0);
            return;
        }
        if c == Gf256::ONE {
            dst.copy_from_slice(src);
            return;
        }
        (self.mul)(&CoeffTables::new(c), src, dst);
    }

    /// Scale a slice in place: `data *= c`.
    pub fn scale_slice(&self, c: Gf256, data: &mut [u8]) {
        if c == Gf256::ONE {
            return;
        }
        if c.is_zero() {
            data.fill(0);
            return;
        }
        (self.scale)(&CoeffTables::new(c), data);
    }

    /// `dst ^= c1*src1 ^ c2*src2 ^ ...` — batched multiply-accumulate over
    /// up to four sources per destination pass. Zero coefficients are
    /// skipped.
    ///
    /// # Panics
    /// Panics if any source length differs from `dst.len()`.
    pub fn mul_add_multi(&self, sources: &[(Gf256, &[u8])], dst: &mut [u8]) {
        for (_, src) in sources {
            assert_eq!(dst.len(), src.len(), "mul_add_multi length mismatch");
        }
        let live: Vec<(CoeffTables, &[u8])> = sources
            .iter()
            .filter(|(c, _)| !c.is_zero())
            .map(|(c, src)| (CoeffTables::new(*c), *src))
            .collect();
        (self.multi_rows)(&live, dst);
    }

    /// Prebuilt-tables variant of [`Kernels::mul_add_multi`], for callers
    /// that hold [`CoeffTables`] per matrix coefficient. A zero coefficient
    /// contributes nothing (its tables are all-zero) but still costs a pass
    /// — callers that want the skip should filter first, as
    /// [`Kernels::mul_add_multi`] does.
    ///
    /// # Panics
    /// Panics if any source length differs from `dst.len()`.
    pub fn mul_add_multi_rows(&self, sources: &[(CoeffTables, &[u8])], dst: &mut [u8]) {
        for (_, src) in sources {
            assert_eq!(dst.len(), src.len(), "mul_add_multi length mismatch");
        }
        (self.multi_rows)(sources, dst);
    }

    /// GF(2^16) multiply-accumulate: `dst[i] ^= c * sym_i`, where `sym_i`
    /// is the big-endian 16-bit symbol at `src[2i..2i+2]` and `dst` holds
    /// native-endian accumulator words.
    ///
    /// # Panics
    /// Panics if `src.len() != 2 * dst.len()`.
    pub fn wide_mul_add(&self, t: &WideCoeff, src: &[u8], dst: &mut [u16]) {
        assert_eq!(src.len(), dst.len() * 2, "wide_mul_add length mismatch");
        (self.wide)(t, src, dst);
    }
}

impl fmt::Debug for Kernels {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Kernels")
            .field("backend", &self.backend)
            .finish_non_exhaustive()
    }
}

static SCALAR_KERNELS: Kernels = Kernels {
    backend: Backend::Scalar,
    xor: scalar::xor,
    mul_add: scalar::mul_add,
    mul: scalar::mul,
    scale: scalar::scale,
    multi_rows: scalar::mul_add_multi_rows,
    wide: scalar::wide_mul_add,
};

#[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
static AVX2_KERNELS: Kernels = Kernels {
    backend: Backend::Avx2,
    xor: avx2::xor,
    mul_add: avx2::mul_add,
    mul: avx2::mul,
    scale: avx2::scale,
    multi_rows: avx2::mul_add_multi_rows,
    wide: avx2::wide_mul_add,
};

#[cfg(target_arch = "aarch64")]
static NEON_KERNELS: Kernels = Kernels {
    backend: Backend::Neon,
    xor: neon::xor,
    mul_add: neon::mul_add,
    mul: neon::mul,
    scale: neon::scale,
    multi_rows: neon::mul_add_multi_rows,
    // The wide codec only builds per-coefficient tables for long packets,
    // where the scalar byte-split walk is already table-bound; a NEON wide
    // kernel has not been written, so the vtable falls back to scalar.
    wide: scalar::wide_mul_add,
};

/// The kernel vtable for a specific backend, or `None` if the current host
/// cannot run it. Intended for benches and differential tests; production
/// callers should go through [`kernels`] / [`try_kernels`].
pub fn kernels_for(backend: Backend) -> Option<&'static Kernels> {
    if !backend.is_available() {
        return None;
    }
    match backend {
        Backend::Scalar => Some(&SCALAR_KERNELS),
        #[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
        Backend::Avx2 => Some(&AVX2_KERNELS),
        #[cfg(target_arch = "aarch64")]
        Backend::Neon => Some(&NEON_KERNELS),
        #[allow(unreachable_patterns)]
        _ => None,
    }
}

fn auto_kernels() -> &'static Kernels {
    kernels_for(Backend::detect()).expect("detected backend is always available")
}

/// The process-wide dispatched kernels: resolved once from `PM_SIMD` plus
/// runtime CPU detection, then memoized for the lifetime of the process.
/// Changing the variable after the first call has no effect.
pub fn try_kernels() -> Result<&'static Kernels, DispatchError> {
    static SELECTED: OnceLock<Result<&'static Kernels, DispatchError>> = OnceLock::new();
    SELECTED
        .get_or_init(|| {
            let value = match std::env::var(ENV_VAR) {
                Ok(v) => v,
                Err(std::env::VarError::NotPresent) => return Ok(auto_kernels()),
                Err(std::env::VarError::NotUnicode(_)) => {
                    return Err(DispatchError::UnknownBackend {
                        value: "<non-unicode>".to_string(),
                    })
                }
            };
            match Backend::parse(&value)? {
                None => Ok(auto_kernels()),
                Some(forced) => {
                    kernels_for(forced).ok_or(DispatchError::Unavailable { backend: forced })
                }
            }
        })
        .clone()
}

/// Panicking variant of [`try_kernels`], for callers with no error channel.
///
/// # Panics
/// Panics if `PM_SIMD` is set to an unknown value or forces a backend this
/// host cannot run.
pub fn kernels() -> &'static Kernels {
    match try_kernels() {
        Ok(k) => k,
        Err(e) => panic!("pm-simd dispatch failed: {e}"),
    }
}

/// The dispatched backend's name, or `"invalid"` when `PM_SIMD` is bad —
/// for telemetry emitters that must not fail.
pub fn backend_name() -> &'static str {
    try_kernels()
        .map(|k| k.backend().name())
        .unwrap_or("invalid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_known_values() {
        assert_eq!(Backend::parse("auto").unwrap(), None);
        assert_eq!(Backend::parse("scalar").unwrap(), Some(Backend::Scalar));
        assert_eq!(Backend::parse("avx2").unwrap(), Some(Backend::Avx2));
        assert_eq!(Backend::parse("neon").unwrap(), Some(Backend::Neon));
    }

    #[test]
    fn parse_rejects_unknown_values() {
        for bad in ["", "AVX2", "sse2", "scalar ", "auto,avx2"] {
            match Backend::parse(bad) {
                Err(DispatchError::UnknownBackend { value }) => assert_eq!(value, bad),
                other => panic!("expected UnknownBackend for {bad:?}, got {other:?}"),
            }
        }
    }

    #[test]
    fn scalar_is_always_available() {
        assert!(Backend::Scalar.is_available());
        assert_eq!(
            kernels_for(Backend::Scalar).unwrap().backend(),
            Backend::Scalar
        );
    }

    #[test]
    fn detect_names_an_available_backend() {
        let b = Backend::detect();
        assert!(b.is_available(), "detect() returned unavailable {b:?}");
        assert_eq!(kernels_for(b).unwrap().backend(), b);
    }

    #[test]
    fn unavailable_backends_have_no_kernels() {
        for b in [Backend::Scalar, Backend::Avx2, Backend::Neon] {
            assert_eq!(kernels_for(b).is_some(), b.is_available(), "{b:?}");
        }
    }

    #[test]
    fn dispatch_errors_render() {
        let e = DispatchError::UnknownBackend {
            value: "sse9".to_string(),
        };
        assert!(e.to_string().contains("sse9"));
        assert!(e.to_string().contains(ENV_VAR));
        let e = DispatchError::Unavailable {
            backend: Backend::Neon,
        };
        assert!(e.to_string().contains("Neon"));
    }

    #[test]
    fn coeff_tables_expose_coefficient() {
        let t = CoeffTables::new(Gf256(7));
        assert_eq!(t.coeff(), Gf256(7));
        assert_eq!(format!("{t:?}"), "CoeffTables { c: Gf256(7) }");
    }
}
