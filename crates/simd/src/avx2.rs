//! AVX2 nibble-split kernels: 32 GF(2^8) products per shuffle pair.
//!
//! Each step loads 32 source bytes, splits them into nibbles, and resolves
//! both halves through `_mm256_shuffle_epi8` against the coefficient's
//! broadcast 16-entry lo/hi tables:
//!
//! ```text
//! prod = shuffle(lo_t, s & 0x0f) ^ shuffle(hi_t, (s >> 4) & 0x0f)
//! ```
//!
//! Sub-32-byte tails fall back to the coefficient's 256-entry scalar row, so
//! arbitrary lengths and unaligned buffers work; all loads/stores are
//! unaligned (`loadu`/`storeu`).
//!
//! # Safety
//!
//! The public wrappers call `#[target_feature(enable = "avx2")]` functions,
//! which is sound only on AVX2 hosts. They are reachable solely through the
//! `AVX2_KERNELS` vtable, and `kernels_for` refuses to hand that out unless
//! `is_x86_feature_detected!("avx2")` holds. The kernels index raw pointers
//! at 32-byte granularity; the `Kernels` methods assert the length
//! preconditions (`src.len() == dst.len()`, and `2 * dst.len()` for the wide
//! kernel) before the pointers are formed.

#[cfg(target_arch = "x86")]
use core::arch::x86::*;
#[cfg(target_arch = "x86_64")]
use core::arch::x86_64::*;

use crate::{CoeffTables, WideCoeff};

pub(crate) fn xor(dst: &mut [u8], src: &[u8]) {
    // SAFETY: only reachable via the AVX2 vtable, selected after runtime
    // feature detection.
    unsafe { xor_avx2(dst, src) }
}

pub(crate) fn mul_add(t: &CoeffTables, src: &[u8], dst: &mut [u8]) {
    // SAFETY: as above — AVX2 was detected before this vtable existed.
    unsafe { mul_add_avx2(t, src, dst) }
}

pub(crate) fn mul(t: &CoeffTables, src: &[u8], dst: &mut [u8]) {
    // SAFETY: as above.
    unsafe { mul_avx2(t, src, dst) }
}

pub(crate) fn scale(t: &CoeffTables, data: &mut [u8]) {
    // SAFETY: as above.
    unsafe { scale_avx2(t, data) }
}

pub(crate) fn mul_add_multi_rows(sources: &[(CoeffTables, &[u8])], dst: &mut [u8]) {
    // SAFETY: as above.
    unsafe { mul_add_multi_rows_avx2(sources, dst) }
}

pub(crate) fn wide_mul_add(t: &WideCoeff, src: &[u8], dst: &mut [u16]) {
    // SAFETY: as above.
    unsafe { wide_mul_add_avx2(t, src, dst) }
}

/// Broadcast a coefficient's 16-byte lo/hi nibble tables to both 128-bit
/// lanes, matching `_mm256_shuffle_epi8`'s per-lane indexing.
#[inline]
#[target_feature(enable = "avx2")]
fn broadcast_tables(nib: &[u8; 32]) -> (__m256i, __m256i) {
    // SAFETY: `nib` is 32 readable bytes; unaligned loads.
    let (lo, hi) = unsafe {
        (
            _mm_loadu_si128(nib.as_ptr() as *const __m128i),
            _mm_loadu_si128(nib.as_ptr().add(16) as *const __m128i),
        )
    };
    (
        _mm256_broadcastsi128_si256(lo),
        _mm256_broadcastsi128_si256(hi),
    )
}

/// 32 parallel GF(2^8) products of `s` by the tables' coefficient.
#[inline]
#[target_feature(enable = "avx2")]
fn product32(lo_t: __m256i, hi_t: __m256i, s: __m256i) -> __m256i {
    let mask = _mm256_set1_epi8(0x0f);
    let lo = _mm256_and_si256(s, mask);
    // No epi8 shift exists; shift wider lanes and mask the stray bits away.
    let hi = _mm256_and_si256(_mm256_srli_epi64::<4>(s), mask);
    _mm256_xor_si256(_mm256_shuffle_epi8(lo_t, lo), _mm256_shuffle_epi8(hi_t, hi))
}

#[target_feature(enable = "avx2")]
fn xor_avx2(dst: &mut [u8], src: &[u8]) {
    let n = dst.len();
    let mut o = 0;
    while o + 32 <= n {
        // SAFETY: o + 32 <= n and the wrapper asserted src.len() == n.
        unsafe {
            let d = _mm256_loadu_si256(dst.as_ptr().add(o) as *const __m256i);
            let s = _mm256_loadu_si256(src.as_ptr().add(o) as *const __m256i);
            _mm256_storeu_si256(
                dst.as_mut_ptr().add(o) as *mut __m256i,
                _mm256_xor_si256(d, s),
            );
        }
        o += 32;
    }
    pm_gf::slice::xor_slice(&mut dst[o..], &src[o..]);
}

#[target_feature(enable = "avx2")]
fn mul_add_avx2(t: &CoeffTables, src: &[u8], dst: &mut [u8]) {
    let n = dst.len();
    let (lo_t, hi_t) = broadcast_tables(t.nib());
    let mut o = 0;
    while o + 32 <= n {
        // SAFETY: o + 32 <= n and the wrapper asserted src.len() == n.
        unsafe {
            let s = _mm256_loadu_si256(src.as_ptr().add(o) as *const __m256i);
            let d = _mm256_loadu_si256(dst.as_ptr().add(o) as *const __m256i);
            _mm256_storeu_si256(
                dst.as_mut_ptr().add(o) as *mut __m256i,
                _mm256_xor_si256(d, product32(lo_t, hi_t, s)),
            );
        }
        o += 32;
    }
    let row = t.row();
    for (d, s) in dst[o..].iter_mut().zip(&src[o..]) {
        *d ^= row[*s as usize];
    }
}

#[target_feature(enable = "avx2")]
fn mul_avx2(t: &CoeffTables, src: &[u8], dst: &mut [u8]) {
    let n = dst.len();
    let (lo_t, hi_t) = broadcast_tables(t.nib());
    let mut o = 0;
    while o + 32 <= n {
        // SAFETY: o + 32 <= n and the wrapper asserted src.len() == n.
        unsafe {
            let s = _mm256_loadu_si256(src.as_ptr().add(o) as *const __m256i);
            _mm256_storeu_si256(
                dst.as_mut_ptr().add(o) as *mut __m256i,
                product32(lo_t, hi_t, s),
            );
        }
        o += 32;
    }
    let row = t.row();
    for (d, s) in dst[o..].iter_mut().zip(&src[o..]) {
        *d = row[*s as usize];
    }
}

#[target_feature(enable = "avx2")]
fn scale_avx2(t: &CoeffTables, data: &mut [u8]) {
    let n = data.len();
    let (lo_t, hi_t) = broadcast_tables(t.nib());
    let mut o = 0;
    while o + 32 <= n {
        // SAFETY: o + 32 <= n.
        unsafe {
            let d = _mm256_loadu_si256(data.as_ptr().add(o) as *const __m256i);
            _mm256_storeu_si256(
                data.as_mut_ptr().add(o) as *mut __m256i,
                product32(lo_t, hi_t, d),
            );
        }
        o += 32;
    }
    let row = t.row();
    for d in data[o..].iter_mut() {
        *d = row[*d as usize];
    }
}

#[target_feature(enable = "avx2")]
fn mul_add_multi_rows_avx2(sources: &[(CoeffTables, &[u8])], dst: &mut [u8]) {
    let n = dst.len();
    // Mirror the scalar kernel's grouping: up to four sources per
    // destination pass, so each parity vector is loaded and stored once per
    // group instead of once per coefficient.
    for group in sources.chunks(4) {
        let mut lo_t = [_mm256_setzero_si256(); 4];
        let mut hi_t = lo_t;
        for (i, (t, _)) in group.iter().enumerate() {
            let (lo, hi) = broadcast_tables(t.nib());
            lo_t[i] = lo;
            hi_t[i] = hi;
        }
        let mut o = 0;
        while o + 32 <= n {
            // SAFETY: o + 32 <= n and the wrapper asserted every source
            // length equals n.
            unsafe {
                let mut acc = _mm256_loadu_si256(dst.as_ptr().add(o) as *const __m256i);
                for (i, (_, src)) in group.iter().enumerate() {
                    let s = _mm256_loadu_si256(src.as_ptr().add(o) as *const __m256i);
                    acc = _mm256_xor_si256(acc, product32(lo_t[i], hi_t[i], s));
                }
                _mm256_storeu_si256(dst.as_mut_ptr().add(o) as *mut __m256i, acc);
            }
            o += 32;
        }
        for (i, d) in dst[o..].iter_mut().enumerate() {
            let mut b = *d;
            for (t, src) in group {
                b ^= t.row()[src[o + i] as usize];
            }
            *d = b;
        }
    }
}

#[target_feature(enable = "avx2")]
fn wide_mul_add_avx2(t: &WideCoeff, src: &[u8], dst: &mut [u16]) {
    // 16 big-endian GF(2^16) symbols per 32-byte load. Even byte positions
    // hold a value's high byte (nibbles n3n2), odd positions its low byte
    // (n1n0); nibble table i maps n to c·(n << 4i), split into low/high
    // result bytes. Per u16 lane, the even-position contribution sits in
    // the lane's low byte and the odd-position one in its high byte, so one
    // mask and one lane shift recombine them into a full result byte.
    let symbols = dst.len();
    let mut tl = [_mm256_setzero_si256(); 4];
    let mut th = tl;
    for i in 0..4 {
        // SAFETY: each nibble table is 16 readable bytes.
        unsafe {
            tl[i] = _mm256_broadcastsi128_si256(_mm_loadu_si128(
                t.nib_lo[i].as_ptr() as *const __m128i
            ));
            th[i] = _mm256_broadcastsi128_si256(_mm_loadu_si128(
                t.nib_hi[i].as_ptr() as *const __m128i
            ));
        }
    }
    let mask = _mm256_set1_epi8(0x0f);
    let byte_lo = _mm256_set1_epi16(0x00ff);
    let mut s = 0;
    while s + 16 <= symbols {
        // SAFETY: the wrapper asserted src.len() == 2 * symbols, and
        // s + 16 <= symbols bounds both the 32-byte source load and the
        // 16-word destination access.
        unsafe {
            let v = _mm256_loadu_si256(src.as_ptr().add(2 * s) as *const __m256i);
            let vl = _mm256_and_si256(v, mask);
            let vh = _mm256_and_si256(_mm256_srli_epi64::<4>(v), mask);
            // Low result byte of every product.
            let even = _mm256_xor_si256(
                _mm256_shuffle_epi8(tl[2], vl),
                _mm256_shuffle_epi8(tl[3], vh),
            );
            let odd = _mm256_xor_si256(
                _mm256_shuffle_epi8(tl[0], vl),
                _mm256_shuffle_epi8(tl[1], vh),
            );
            let r_lo =
                _mm256_xor_si256(_mm256_and_si256(even, byte_lo), _mm256_srli_epi16::<8>(odd));
            // High result byte, same recombination against the hi tables.
            let even_h = _mm256_xor_si256(
                _mm256_shuffle_epi8(th[2], vl),
                _mm256_shuffle_epi8(th[3], vh),
            );
            let odd_h = _mm256_xor_si256(
                _mm256_shuffle_epi8(th[0], vl),
                _mm256_shuffle_epi8(th[1], vh),
            );
            let r_hi = _mm256_xor_si256(
                _mm256_and_si256(even_h, byte_lo),
                _mm256_srli_epi16::<8>(odd_h),
            );
            let r = _mm256_or_si256(r_lo, _mm256_slli_epi16::<8>(r_hi));
            let dp = dst.as_mut_ptr().add(s) as *mut __m256i;
            let d = _mm256_loadu_si256(dp as *const __m256i);
            _mm256_storeu_si256(dp, _mm256_xor_si256(d, r));
        }
        s += 16;
    }
    for (d, pair) in dst[s..].iter_mut().zip(src[2 * s..].chunks_exact(2)) {
        *d ^= t.lo[pair[1] as usize] ^ t.hi[pair[0] as usize];
    }
}
