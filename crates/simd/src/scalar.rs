//! Portable scalar backend: delegates to the table-driven `pm_gf::slice`
//! kernels, so the fallback path is exactly the code every prior release
//! shipped. This module contains no `unsafe` and is the differential
//! oracle the SIMD backends are proptested against.

use pm_gf::slice;

use crate::{CoeffTables, WideCoeff};

pub(crate) fn xor(dst: &mut [u8], src: &[u8]) {
    slice::xor_slice(dst, src);
}

pub(crate) fn mul_add(t: &CoeffTables, src: &[u8], dst: &mut [u8]) {
    slice::mul_add_row(t.row(), src, dst);
}

pub(crate) fn mul(t: &CoeffTables, src: &[u8], dst: &mut [u8]) {
    let row = t.row();
    for (d, s) in dst.iter_mut().zip(src.iter()) {
        *d = row[*s as usize];
    }
}

pub(crate) fn scale(t: &CoeffTables, data: &mut [u8]) {
    let row = t.row();
    for d in data.iter_mut() {
        *d = row[*d as usize];
    }
}

pub(crate) fn mul_add_multi_rows(sources: &[(CoeffTables, &[u8])], dst: &mut [u8]) {
    let rows: Vec<(&[u8; 256], &[u8])> = sources.iter().map(|(t, src)| (t.row(), *src)).collect();
    slice::mul_add_multi_rows(&rows, dst);
}

/// GF(2^16) byte-split walk: each big-endian symbol resolves through the
/// coefficient's two 256-entry product tables (`lo` indexed by the value's
/// low byte, `hi` by its high byte; multiplication distributes over the
/// XOR split because the field has characteristic 2).
pub(crate) fn wide_mul_add(t: &WideCoeff, src: &[u8], dst: &mut [u16]) {
    for (d, pair) in dst.iter_mut().zip(src.chunks_exact(2)) {
        *d ^= t.lo[pair[1] as usize] ^ t.hi[pair[0] as usize];
    }
}
