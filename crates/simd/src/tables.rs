//! Process-wide nibble-split table cache.
//!
//! Each GF(2^8) coefficient `c` expands to two 16-entry lookup tables laid
//! out back to back in one 32-byte row: bytes 0..16 hold `c·x` for the low
//! source nibble `x`, bytes 16..32 hold `c·(x<<4)` for the high nibble, so a
//! full product is `lo[s & 0xf] ^ hi[s >> 4]`. All 256 coefficients fit in
//! 8 KB, built once on first use — the same lazily-shared shape as
//! `pm-gf`'s 64 KB `MulTable`, and the layout the SIMD backends broadcast
//! straight into vector registers.

use std::sync::OnceLock;

use pm_gf::gf256::Gf256;

static NIB_TABLES: OnceLock<Box<[[u8; 32]; 256]>> = OnceLock::new();

pub(crate) fn nib_tables(c: Gf256) -> &'static [u8; 32] {
    let all = NIB_TABLES.get_or_init(|| {
        let mut t = Box::new([[0u8; 32]; 256]);
        for (coeff, row) in t.iter_mut().enumerate() {
            let c = Gf256(coeff as u8);
            for x in 0..16u8 {
                row[x as usize] = (c * Gf256(x)).0;
                row[16 + x as usize] = (c * Gf256(x << 4)).0;
            }
        }
        t
    });
    &all[c.0 as usize]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nibble_split_reconstructs_full_products() {
        for c in [0u8, 1, 2, 3, 29, 76, 143, 255] {
            let nib = nib_tables(Gf256(c));
            for x in 0..=255u8 {
                let split = nib[(x & 0x0f) as usize] ^ nib[16 + (x >> 4) as usize];
                assert_eq!(
                    split,
                    (Gf256(c) * Gf256(x)).0,
                    "c={c} x={x}: lo/hi split disagrees with field product"
                );
            }
        }
    }
}
