//! NEON nibble-split kernels (aarch64): 16 GF(2^8) products per table pair.
//!
//! Mirrors the AVX2 module at 16-byte granularity, with `vqtbl1q_u8` doing
//! the nibble lookups (its index type is a full byte, so no broadcast step
//! is needed — each 16-entry table loads straight into one register).
//! Sub-16-byte tails fall back to the coefficient's 256-entry scalar row.
//! The GF(2^16) wide kernel is not vectorized on this backend; the vtable
//! routes it to `scalar::wide_mul_add`.
//!
//! # Safety
//!
//! NEON is part of the aarch64 baseline ISA, so `Backend::Neon` is always
//! available on this architecture and the `#[target_feature]` calls in the
//! wrappers are sound. The kernels index raw pointers at 16-byte
//! granularity; the `Kernels` methods assert the length preconditions
//! before the pointers are formed.

// Depending on the toolchain vintage, NEON arithmetic intrinsics are either
// plain `unsafe fn`s or safe-in-target_feature-context; keep the blanket
// blocks and tolerate the lint where they turn out unnecessary.
#![allow(unused_unsafe)]

use core::arch::aarch64::*;

use crate::CoeffTables;

pub(crate) fn xor(dst: &mut [u8], src: &[u8]) {
    // SAFETY: aarch64-only module; NEON is baseline there.
    unsafe { xor_neon(dst, src) }
}

pub(crate) fn mul_add(t: &CoeffTables, src: &[u8], dst: &mut [u8]) {
    // SAFETY: as above.
    unsafe { mul_add_neon(t, src, dst) }
}

pub(crate) fn mul(t: &CoeffTables, src: &[u8], dst: &mut [u8]) {
    // SAFETY: as above.
    unsafe { mul_neon(t, src, dst) }
}

pub(crate) fn scale(t: &CoeffTables, data: &mut [u8]) {
    // SAFETY: as above.
    unsafe { scale_neon(t, data) }
}

pub(crate) fn mul_add_multi_rows(sources: &[(CoeffTables, &[u8])], dst: &mut [u8]) {
    // SAFETY: as above.
    unsafe { mul_add_multi_rows_neon(sources, dst) }
}

#[inline]
#[target_feature(enable = "neon")]
fn load_tables(nib: &[u8; 32]) -> (uint8x16_t, uint8x16_t) {
    // SAFETY: `nib` is 32 readable bytes.
    unsafe { (vld1q_u8(nib.as_ptr()), vld1q_u8(nib.as_ptr().add(16))) }
}

/// 16 parallel GF(2^8) products of `s` by the tables' coefficient.
#[inline]
#[target_feature(enable = "neon")]
fn product16(lo_t: uint8x16_t, hi_t: uint8x16_t, s: uint8x16_t) -> uint8x16_t {
    // SAFETY: register-only NEON ops; callers are #[target_feature(neon)].
    unsafe {
        let lo = vandq_u8(s, vdupq_n_u8(0x0f));
        let hi = vshrq_n_u8::<4>(s);
        veorq_u8(vqtbl1q_u8(lo_t, lo), vqtbl1q_u8(hi_t, hi))
    }
}

#[target_feature(enable = "neon")]
fn xor_neon(dst: &mut [u8], src: &[u8]) {
    let n = dst.len();
    let mut o = 0;
    while o + 16 <= n {
        // SAFETY: o + 16 <= n and the wrapper asserted src.len() == n.
        unsafe {
            let d = vld1q_u8(dst.as_ptr().add(o));
            let s = vld1q_u8(src.as_ptr().add(o));
            vst1q_u8(dst.as_mut_ptr().add(o), veorq_u8(d, s));
        }
        o += 16;
    }
    pm_gf::slice::xor_slice(&mut dst[o..], &src[o..]);
}

#[target_feature(enable = "neon")]
fn mul_add_neon(t: &CoeffTables, src: &[u8], dst: &mut [u8]) {
    let n = dst.len();
    let (lo_t, hi_t) = load_tables(t.nib());
    let mut o = 0;
    while o + 16 <= n {
        // SAFETY: o + 16 <= n and the wrapper asserted src.len() == n.
        unsafe {
            let s = vld1q_u8(src.as_ptr().add(o));
            let d = vld1q_u8(dst.as_ptr().add(o));
            vst1q_u8(
                dst.as_mut_ptr().add(o),
                veorq_u8(d, product16(lo_t, hi_t, s)),
            );
        }
        o += 16;
    }
    let row = t.row();
    for (d, s) in dst[o..].iter_mut().zip(&src[o..]) {
        *d ^= row[*s as usize];
    }
}

#[target_feature(enable = "neon")]
fn mul_neon(t: &CoeffTables, src: &[u8], dst: &mut [u8]) {
    let n = dst.len();
    let (lo_t, hi_t) = load_tables(t.nib());
    let mut o = 0;
    while o + 16 <= n {
        // SAFETY: o + 16 <= n and the wrapper asserted src.len() == n.
        unsafe {
            let s = vld1q_u8(src.as_ptr().add(o));
            vst1q_u8(dst.as_mut_ptr().add(o), product16(lo_t, hi_t, s));
        }
        o += 16;
    }
    let row = t.row();
    for (d, s) in dst[o..].iter_mut().zip(&src[o..]) {
        *d = row[*s as usize];
    }
}

#[target_feature(enable = "neon")]
fn scale_neon(t: &CoeffTables, data: &mut [u8]) {
    let n = data.len();
    let (lo_t, hi_t) = load_tables(t.nib());
    let mut o = 0;
    while o + 16 <= n {
        // SAFETY: o + 16 <= n.
        unsafe {
            let d = vld1q_u8(data.as_ptr().add(o));
            vst1q_u8(data.as_mut_ptr().add(o), product16(lo_t, hi_t, d));
        }
        o += 16;
    }
    let row = t.row();
    for d in data[o..].iter_mut() {
        *d = row[*d as usize];
    }
}

#[target_feature(enable = "neon")]
fn mul_add_multi_rows_neon(sources: &[(CoeffTables, &[u8])], dst: &mut [u8]) {
    let n = dst.len();
    for group in sources.chunks(4) {
        // SAFETY: vdupq_n_u8 is a register splat with no memory access.
        let mut lo_t = unsafe { [vdupq_n_u8(0); 4] };
        let mut hi_t = lo_t;
        for (i, (t, _)) in group.iter().enumerate() {
            let (lo, hi) = load_tables(t.nib());
            lo_t[i] = lo;
            hi_t[i] = hi;
        }
        let mut o = 0;
        while o + 16 <= n {
            // SAFETY: o + 16 <= n and the wrapper asserted every source
            // length equals n.
            unsafe {
                let mut acc = vld1q_u8(dst.as_ptr().add(o));
                for (i, (_, src)) in group.iter().enumerate() {
                    let s = vld1q_u8(src.as_ptr().add(o));
                    acc = veorq_u8(acc, product16(lo_t[i], hi_t[i], s));
                }
                vst1q_u8(dst.as_mut_ptr().add(o), acc);
            }
            o += 16;
        }
        for (i, d) in dst[o..].iter_mut().enumerate() {
            let mut b = *d;
            for (t, src) in group {
                b ^= t.row()[src[o + i] as usize];
            }
            *d = b;
        }
    }
}
