//! Differential property tests: every backend this host can run must be
//! byte-for-byte identical to the scalar reference on every kernel, across
//! arbitrary lengths (covering the sub-vector tail paths), unaligned
//! buffer offsets, and arbitrary coefficients. This is the contract that
//! lets `PM_SIMD` change throughput without ever changing a transcript.

use proptest::prelude::*;

use pm_gf::field::GfField;
use pm_gf::gf256::Gf256;
use pm_gf::slice::reference;

use crate::{kernels_for, Backend, CoeffTables, Kernels, WideCoeff};

fn backends() -> Vec<&'static Kernels> {
    [Backend::Scalar, Backend::Avx2, Backend::Neon]
        .into_iter()
        .filter_map(kernels_for)
        .collect()
}

fn wide_field() -> &'static GfField {
    static FIELD: std::sync::OnceLock<GfField> = std::sync::OnceLock::new();
    FIELD.get_or_init(|| GfField::new(16).expect("GF(2^16)"))
}

/// Deterministic pseudo-random bytes (xorshift) for buffer contents.
fn bytes_from_seed(len: usize, seed: u64) -> Vec<u8> {
    let mut s = seed | 1;
    (0..len)
        .map(|_| {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s >> 24) as u8
        })
        .collect()
}

proptest! {
    /// `mul_add_slice` / `mul_slice` / `scale_slice` / `xor_slice` agree
    /// with the definitional per-byte reference on every backend. `off`
    /// slides the working window through a larger allocation so the vector
    /// loops see misaligned heads; `len` down to 0 exercises the pure-tail
    /// path.
    #[test]
    fn unary_kernels_match_reference(
        c in any::<u8>(),
        len in 0usize..300,
        off in 0usize..33,
        sseed in any::<u64>(),
        dseed in any::<u64>(),
    ) {
        let c = Gf256(c);
        let src_buf = bytes_from_seed(off + len, sseed);
        let src = &src_buf[off..];

        let mut mul_add_want = bytes_from_seed(off + len, dseed)[off..].to_vec();
        reference::mul_add_slice(c, src, &mut mul_add_want);
        let mut mul_want = vec![0u8; len];
        reference::mul_slice(c, src, &mut mul_want);
        let mut scale_want = src.to_vec();
        reference::scale_slice(c, &mut scale_want);
        let mut xor_want = bytes_from_seed(off + len, dseed)[off..].to_vec();
        for (d, s) in xor_want.iter_mut().zip(src) {
            *d ^= s;
        }

        for k in backends() {
            let name = k.backend().name();

            let mut buf = bytes_from_seed(off + len, dseed);
            k.mul_add_slice(c, src, &mut buf[off..]);
            prop_assert_eq!(&buf[off..], mul_add_want.as_slice(), "mul_add on {}", name);

            // Prebuilt-tables variant hits the same kernel minus fast paths.
            let mut buf = bytes_from_seed(off + len, dseed);
            k.mul_add_tables(&CoeffTables::new(c), src, &mut buf[off..]);
            prop_assert_eq!(&buf[off..], mul_add_want.as_slice(), "mul_add_tables on {}", name);

            let mut buf = vec![0xa5u8; off + len];
            k.mul_slice(c, src, &mut buf[off..]);
            prop_assert_eq!(&buf[off..], mul_want.as_slice(), "mul on {}", name);

            let mut buf = src_buf.clone();
            k.scale_slice(c, &mut buf[off..]);
            prop_assert_eq!(&buf[off..], scale_want.as_slice(), "scale on {}", name);

            let mut buf = bytes_from_seed(off + len, dseed);
            k.xor_slice(&mut buf[off..], src);
            prop_assert_eq!(&buf[off..], xor_want.as_slice(), "xor on {}", name);
        }
    }

    /// The batched multi-source kernel equals sequential scalar-reference
    /// accumulation for any batch size — covering the 1..=4 group arms,
    /// multi-group batches, and zero coefficients in the mix.
    #[test]
    fn mul_add_multi_matches_reference(
        coeffs in proptest::collection::vec(any::<u8>(), 0..10),
        len in 0usize..200,
        off in 0usize..33,
        seed in any::<u64>(),
    ) {
        let sources: Vec<Vec<u8>> = (0..coeffs.len())
            .map(|i| bytes_from_seed(off + len, seed ^ (i as u64 + 1)))
            .collect();
        let pairs: Vec<(Gf256, &[u8])> = coeffs
            .iter()
            .zip(&sources)
            .map(|(&c, s)| (Gf256(c), &s[off..]))
            .collect();

        let mut want = bytes_from_seed(off + len, seed ^ 0xD57)[off..].to_vec();
        reference::mul_add_multi(&pairs, &mut want);

        for k in backends() {
            let name = k.backend().name();

            let mut buf = bytes_from_seed(off + len, seed ^ 0xD57);
            k.mul_add_multi(&pairs, &mut buf[off..]);
            prop_assert_eq!(&buf[off..], want.as_slice(), "mul_add_multi on {}", name);

            // Tables variant: zero coefficients stay in the batch (their
            // tables are all-zero) and must contribute nothing.
            let with_tables: Vec<(CoeffTables, &[u8])> = pairs
                .iter()
                .map(|(c, s)| (CoeffTables::new(*c), *s))
                .collect();
            let mut buf = bytes_from_seed(off + len, seed ^ 0xD57);
            k.mul_add_multi_rows(&with_tables, &mut buf[off..]);
            prop_assert_eq!(&buf[off..], want.as_slice(), "mul_add_multi_rows on {}", name);
        }
    }

    /// GF(2^16) wide kernel: every backend matches an independent
    /// symbol-at-a-time `field.mul` loop over big-endian symbols, across
    /// the 16-symbol vector boundary and on misaligned buffers.
    #[test]
    fn wide_mul_add_matches_field_mul(
        c in any::<u16>(),
        symbols in 0usize..200,
        off in 0usize..33,
        seed in any::<u64>(),
    ) {
        let field = wide_field();
        let t = WideCoeff::new(field, c);
        let src_buf = bytes_from_seed(off + 2 * symbols, seed);
        let src = &src_buf[off..];
        let dst0: Vec<u16> = bytes_from_seed(2 * symbols, seed ^ 0x9E37)
            .chunks_exact(2)
            .map(|p| u16::from_le_bytes([p[0], p[1]]))
            .collect();

        let mut want = dst0.clone();
        for (d, pair) in want.iter_mut().zip(src.chunks_exact(2)) {
            *d ^= field.mul(c, u16::from_be_bytes([pair[0], pair[1]]));
        }

        for k in backends() {
            let mut dst = dst0.clone();
            k.wide_mul_add(&t, src, &mut dst);
            prop_assert_eq!(&dst, &want, "wide_mul_add on {}", k.backend().name());
        }
    }
}

/// Exhaustive over all 256 coefficients at a fixed awkward length (covers
/// both the vector body and the tail in one buffer) — cheap insurance the
/// proptest sampling can't skip a coefficient.
#[test]
fn all_coefficients_match_reference() {
    let src = bytes_from_seed(77, 0x1234_5678);
    for c in 0..=255u8 {
        let c = Gf256(c);
        let mut want = bytes_from_seed(77, 0xABCD);
        reference::mul_add_slice(c, &src, &mut want);
        for k in backends() {
            let mut dst = bytes_from_seed(77, 0xABCD);
            k.mul_add_slice(c, &src, &mut dst);
            assert_eq!(dst, want, "c={:?} backend={}", c, k.backend().name());
        }
    }
}

#[test]
fn length_mismatch_panics_on_every_backend() {
    for k in backends() {
        let name = k.backend().name();
        let r = std::panic::catch_unwind(|| {
            let mut dst = vec![0u8; 4];
            k.mul_add_slice(Gf256(3), &[1, 2, 3], &mut dst);
        });
        assert!(r.is_err(), "mul_add length mismatch must panic on {name}");
        let r = std::panic::catch_unwind(|| {
            let mut dst = vec![0u16; 4];
            let t = WideCoeff::new(wide_field(), 9);
            k.wide_mul_add(&t, &[1, 2, 3], &mut dst);
        });
        assert!(r.is_err(), "wide length mismatch must panic on {name}");
    }
}
