//! Session geometry — chunking a byte stream into transmission groups and
//! reassembling it — plus the typed end-of-session outcome
//! ([`SessionReport`]).

use std::collections::BTreeMap;
use std::time::Duration;

use bytes::Bytes;

use pm_net::Message;

use crate::costs::CostCounters;
use crate::error::ProtocolError;

/// Typed outcome of a sender session: who finished, who was given up on,
/// and how much network hostility the driver absorbed along the way.
///
/// Returned by [`drive_sender`](crate::runtime::drive_sender). A session
/// that runs under a [`ResiliencePolicy`](crate::runtime::ResiliencePolicy)
/// with an eviction deadline can end *degraded*: complete for the
/// responsive population with the silent stragglers evicted and counted
/// here rather than stalling the whole transfer.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionReport {
    /// Work counters at session end.
    pub counters: CostCounters,
    /// Wall-clock duration of the session.
    pub elapsed: Duration,
    /// Identities of the receivers that reported `Done`, ascending.
    pub completed: Vec<u32>,
    /// Receivers evicted for staying silent past the eviction deadline.
    pub evicted: u32,
    /// Corrupt datagrams counted-and-dropped by the driver.
    pub corrupt_dropped: u64,
    /// Transient send failures absorbed by retrying.
    pub send_retries: u64,
    /// Flight-recorder dump, attached when the session ended degraded and
    /// a recorder was wired in (see
    /// [`drive_sender_flight`](crate::runtime::drive_sender_flight)).
    pub postmortem: Option<pm_obs::Postmortem>,
}

impl SessionReport {
    /// True when the session completed for only part of the announced
    /// population (at least one receiver was evicted).
    pub fn is_degraded(&self) -> bool {
        self.evicted > 0
    }
}

/// Immutable description of one transfer's layout.
///
/// `groups - 1` full groups of `k` packets are followed by one final group
/// of `last_k <= k` packets; every packet carries exactly `payload_len`
/// bytes (the tail is zero-padded and trimmed back to `total_bytes` on
/// reassembly). Each group's FEC block keeps the same parity budget `h`,
/// so the final group's block size is `last_k + h`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SessionPlan {
    /// Session identifier.
    pub session: u32,
    /// Data packets per full group.
    pub k: u16,
    /// Parity budget per group.
    pub h: u16,
    /// Payload bytes per packet.
    pub payload_len: u32,
    /// Number of transmission groups (0 for an empty transfer).
    pub groups: u32,
    /// Data packets in the final group (`== k` when the length divides
    /// evenly; 0 only when `groups == 0`).
    pub last_k: u16,
    /// Exact transfer length in bytes.
    pub total_bytes: u64,
}

impl SessionPlan {
    /// Plan a transfer of `total_bytes` with group size `k`, parity budget
    /// `h` and packet payload `payload_len`.
    ///
    /// # Errors
    /// [`ProtocolError::Config`] on zero/oversize parameters.
    pub fn new(
        session: u32,
        total_bytes: u64,
        k: usize,
        h: usize,
        payload_len: usize,
    ) -> Result<Self, ProtocolError> {
        if k == 0 || k + h > 255 {
            return Err(ProtocolError::Config(format!(
                "bad group geometry k={k} h={h}"
            )));
        }
        if payload_len == 0 {
            return Err(ProtocolError::Config("payload_len must be positive".into()));
        }
        let packets = total_bytes.div_ceil(payload_len as u64);
        let groups = packets.div_ceil(k as u64);
        if groups > u32::MAX as u64 {
            return Err(ProtocolError::Config("transfer too large".into()));
        }
        let last_k = if groups == 0 {
            0
        } else {
            let rem = packets % k as u64;
            if rem == 0 {
                k as u16
            } else {
                rem as u16
            }
        };
        Ok(SessionPlan {
            session,
            k: k as u16,
            h: h as u16,
            payload_len: payload_len as u32,
            groups: groups as u32,
            last_k,
            total_bytes,
        })
    }

    /// Data packets in group `g`.
    ///
    /// # Panics
    /// Panics if `g >= groups`.
    pub fn group_k(&self, g: u32) -> usize {
        assert!(g < self.groups, "group {g} out of range");
        if g + 1 == self.groups {
            self.last_k as usize
        } else {
            self.k as usize
        }
    }

    /// FEC block size of group `g` (`group_k + h`).
    pub fn group_n(&self, g: u32) -> usize {
        self.group_k(g) + self.h as usize
    }

    /// Total data packets across all groups.
    pub fn total_packets(&self) -> u64 {
        if self.groups == 0 {
            0
        } else {
            (self.groups as u64 - 1) * self.k as u64 + self.last_k as u64
        }
    }

    /// The announce message describing this plan.
    pub fn announce(&self) -> Message {
        Message::Announce {
            session: self.session,
            groups: self.groups,
            k: self.k,
            n: self.k + self.h,
            last_k: if self.groups == 0 { 1 } else { self.last_k },
            payload_len: self.payload_len,
            total_bytes: self.total_bytes,
        }
    }

    /// Reconstruct a plan from an announce message.
    ///
    /// # Errors
    /// [`ProtocolError::Inconsistent`] if the message is not an announce
    /// or carries impossible geometry.
    pub fn from_announce(msg: &Message) -> Result<Self, ProtocolError> {
        let Message::Announce {
            session,
            groups,
            k,
            n,
            last_k,
            payload_len,
            total_bytes,
        } = *msg
        else {
            return Err(ProtocolError::Inconsistent(
                "expected an announce message".into(),
            ));
        };
        if k == 0 || n < k || payload_len == 0 {
            return Err(ProtocolError::Inconsistent(
                "announce carries bad geometry".into(),
            ));
        }
        Ok(SessionPlan {
            session,
            k,
            h: n - k,
            payload_len,
            groups,
            last_k: if groups == 0 { 0 } else { last_k },
            total_bytes,
        })
    }

    /// Split `data` into per-group padded packets.
    ///
    /// # Panics
    /// Panics if `data.len() != total_bytes` (caller constructed the plan
    /// from this very buffer).
    pub fn split(&self, data: &[u8]) -> Vec<Vec<Bytes>> {
        assert_eq!(
            data.len() as u64,
            self.total_bytes,
            "plan/data length mismatch"
        );
        let plen = self.payload_len as usize;
        let mut out = Vec::with_capacity(self.groups as usize);
        let mut off = 0usize;
        for g in 0..self.groups {
            let gk = self.group_k(g);
            let mut packets = Vec::with_capacity(gk);
            for _ in 0..gk {
                let end = (off + plen).min(data.len());
                let mut payload = Vec::with_capacity(plen);
                payload.extend_from_slice(&data[off..end]);
                payload.resize(plen, 0);
                packets.push(Bytes::from(payload));
                off = end;
            }
            out.push(packets);
        }
        out
    }

    /// Reassemble the byte stream from decoded groups (keys `0..groups`).
    ///
    /// # Errors
    /// [`ProtocolError::Inconsistent`] if groups are missing or have the
    /// wrong shape.
    pub fn reassemble(&self, groups: &BTreeMap<u32, Vec<Bytes>>) -> Result<Vec<u8>, ProtocolError> {
        let mut out = Vec::with_capacity(self.total_bytes as usize);
        for g in 0..self.groups {
            let packets = groups.get(&g).ok_or_else(|| {
                ProtocolError::Inconsistent(format!("group {g} missing at reassembly"))
            })?;
            if packets.len() != self.group_k(g) {
                return Err(ProtocolError::Inconsistent(format!(
                    "group {g} has {} packets, expected {}",
                    packets.len(),
                    self.group_k(g)
                )));
            }
            for p in packets {
                if p.len() != self.payload_len as usize {
                    return Err(ProtocolError::Inconsistent(format!(
                        "group {g} packet size {} != {}",
                        p.len(),
                        self.payload_len
                    )));
                }
                out.extend_from_slice(p);
            }
        }
        out.truncate(self.total_bytes as usize);
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data(n: usize) -> Vec<u8> {
        (0..n).map(|i| (i * 31 % 251) as u8).collect()
    }

    #[test]
    fn exact_multiple_layout() {
        let p = SessionPlan::new(1, 7 * 4 * 16, 7, 3, 16).unwrap();
        assert_eq!(p.groups, 4);
        assert_eq!(p.last_k, 7);
        assert_eq!(p.total_packets(), 28);
        assert_eq!(p.group_k(3), 7);
        assert_eq!(p.group_n(0), 10);
    }

    #[test]
    fn ragged_tail_layout() {
        // 100 bytes, 16-byte packets => 7 packets; k = 3 => groups 3,
        // last_k = 1.
        let p = SessionPlan::new(1, 100, 3, 2, 16).unwrap();
        assert_eq!(p.groups, 3);
        assert_eq!(p.last_k, 1);
        assert_eq!(p.total_packets(), 7);
        assert_eq!(p.group_k(2), 1);
        assert_eq!(p.group_n(2), 3);
    }

    #[test]
    fn empty_transfer() {
        let p = SessionPlan::new(1, 0, 7, 3, 1024).unwrap();
        assert_eq!(p.groups, 0);
        assert_eq!(p.total_packets(), 0);
        assert_eq!(p.split(&[]).len(), 0);
        assert_eq!(p.reassemble(&BTreeMap::new()).unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn split_reassemble_roundtrip() {
        for len in [1usize, 15, 16, 17, 100, 1000, 7 * 16] {
            let p = SessionPlan::new(9, len as u64, 7, 3, 16).unwrap();
            let bytes = data(len);
            let split = p.split(&bytes);
            assert_eq!(split.len(), p.groups as usize);
            let map: BTreeMap<u32, Vec<Bytes>> = split
                .into_iter()
                .enumerate()
                .map(|(i, g)| (i as u32, g))
                .collect();
            assert_eq!(p.reassemble(&map).unwrap(), bytes, "len={len}");
        }
    }

    #[test]
    fn padding_is_zero() {
        let p = SessionPlan::new(1, 5, 2, 1, 4).unwrap();
        let split = p.split(&data(5));
        // 5 bytes over 4-byte packets: 2 packets, second padded.
        assert_eq!(split[0][1][1..], [0, 0, 0][..]);
    }

    #[test]
    fn announce_roundtrip() {
        let p = SessionPlan::new(3, 12345, 20, 40, 512).unwrap();
        let q = SessionPlan::from_announce(&p.announce()).unwrap();
        assert_eq!(p, q);
        // Empty plan survives too (last_k encodes as 1 on the wire, comes
        // back as 0 because groups == 0).
        let p = SessionPlan::new(3, 0, 20, 40, 512).unwrap();
        let q = SessionPlan::from_announce(&p.announce()).unwrap();
        assert_eq!(p, q);
    }

    #[test]
    fn from_announce_rejects_non_announce() {
        let r = SessionPlan::from_announce(&Message::Fin { session: 1 });
        assert!(matches!(r, Err(ProtocolError::Inconsistent(_))));
    }

    #[test]
    fn reassemble_detects_missing_and_malformed() {
        let p = SessionPlan::new(1, 64, 2, 1, 16).unwrap();
        let split = p.split(&data(64));
        let mut map: BTreeMap<u32, Vec<Bytes>> = split
            .into_iter()
            .enumerate()
            .map(|(i, g)| (i as u32, g))
            .collect();
        let mut missing = map.clone();
        missing.remove(&1);
        assert!(p.reassemble(&missing).is_err());
        map.get_mut(&0).unwrap().pop();
        assert!(p.reassemble(&map).is_err());
    }

    #[test]
    fn invalid_plans_rejected() {
        assert!(SessionPlan::new(1, 10, 0, 3, 16).is_err());
        assert!(SessionPlan::new(1, 10, 200, 100, 16).is_err());
        assert!(SessionPlan::new(1, 10, 7, 3, 0).is_err());
    }
}
