//! Protocol configuration.

use crate::error::ProtocolError;

/// How the sender decides the session is over.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CompletionPolicy {
    /// Wait until this many distinct receivers have reported `Done`.
    /// Reliable-multicast semantics with a known population.
    KnownReceivers(u32),
    /// Declare completion after this many seconds without any NAK
    /// following the last poll (open populations; weaker guarantee).
    Quiescence(f64),
}

/// Configuration of an NP (or N2) session.
#[derive(Debug, Clone, PartialEq)]
pub struct NpConfig {
    /// Data packets per transmission group (`k`).
    pub k: usize,
    /// Maximum parities per group (`h = n - k`). The paper's assumption is
    /// "h sufficiently large that the sender never runs out"; the default
    /// fills the GF(2^8) block.
    pub h: usize,
    /// Parities multicast proactively with round 1 (`a` in Section 3.2;
    /// 0 = pure reactive NP).
    pub proactive_parity: usize,
    /// Adapt the proactive parity count to *measured* demand: the sender
    /// tracks each group's round-1 NAK demand and sends the recent
    /// average (rounded up) proactively with subsequent groups, within
    /// the `h` budget. Extension beyond the paper (its Section 4.1 flags
    /// adaptive redundancy estimation as follow-on work); effective when
    /// transmission is paced slowly enough for feedback to arrive while
    /// groups are still being scheduled.
    pub adaptive_parity: bool,
    /// Payload bytes per packet.
    pub payload_len: usize,
    /// NAK slot width `Ts`, seconds.
    pub nak_slot: f64,
    /// How long the sender waits for NAKs after a poll before assuming the
    /// round satisfied everyone, seconds. Should comfortably exceed
    /// `k * nak_slot` plus one RTT.
    pub round_timeout: f64,
    /// Pre-encode all parities before transmission starts (Fig. 18's
    /// "NP pre-encode").
    pub preencode: bool,
    /// Completion detection.
    pub completion: CompletionPolicy,
    /// Re-announce interval while the session is idle, seconds.
    pub announce_interval: f64,
    /// RNG seed for NAK jitter.
    pub seed: u64,
}

impl NpConfig {
    /// A small-packet config suitable for tests and examples:
    /// `k = 7`, full parity budget, 1 KB payloads.
    pub fn small(completion: CompletionPolicy) -> Self {
        NpConfig {
            k: 7,
            h: 248,
            proactive_parity: 0,
            adaptive_parity: false,
            payload_len: 1024,
            nak_slot: 0.002,
            round_timeout: 0.100,
            preencode: false,
            completion,
            announce_interval: 0.050,
            seed: 0,
        }
    }

    /// Validate invariants.
    ///
    /// # Errors
    /// [`ProtocolError::Config`] describing the first violated invariant.
    pub fn validate(&self) -> Result<(), ProtocolError> {
        if self.k == 0 {
            return Err(ProtocolError::Config("k must be at least 1".into()));
        }
        if self.k + self.h > 255 {
            return Err(ProtocolError::Config(format!(
                "k + h = {} exceeds the GF(2^8) block limit of 255",
                self.k + self.h
            )));
        }
        if self.proactive_parity > self.h {
            return Err(ProtocolError::Config(format!(
                "proactive parities {} exceed the parity budget h = {}",
                self.proactive_parity, self.h
            )));
        }
        if self.payload_len == 0 || self.payload_len > pm_net::wire::MAX_PAYLOAD {
            return Err(ProtocolError::Config(format!(
                "payload_len {} out of range 1..={}",
                self.payload_len,
                pm_net::wire::MAX_PAYLOAD
            )));
        }
        if self.nak_slot <= 0.0 || self.round_timeout <= 0.0 || self.announce_interval <= 0.0 {
            return Err(ProtocolError::Config(
                "timing parameters must be positive".into(),
            ));
        }
        if let CompletionPolicy::KnownReceivers(0) = self.completion {
            return Err(ProtocolError::Config("KnownReceivers(0) is vacuous".into()));
        }
        if let CompletionPolicy::Quiescence(q) = self.completion {
            if q <= 0.0 {
                return Err(ProtocolError::Config(
                    "quiescence period must be positive".into(),
                ));
            }
        }
        Ok(())
    }

    /// FEC block size `n = k + h`.
    pub fn n(&self) -> usize {
        self.k + self.h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_config_valid() {
        NpConfig::small(CompletionPolicy::KnownReceivers(3))
            .validate()
            .unwrap();
        NpConfig::small(CompletionPolicy::Quiescence(1.0))
            .validate()
            .unwrap();
    }

    #[test]
    fn invariants_enforced() {
        let base = NpConfig::small(CompletionPolicy::KnownReceivers(1));
        let mut c = base.clone();
        c.k = 0;
        assert!(c.validate().is_err());
        let mut c = base.clone();
        c.k = 200;
        c.h = 100;
        assert!(c.validate().is_err());
        let mut c = base.clone();
        c.proactive_parity = 500;
        assert!(c.validate().is_err());
        let mut c = base.clone();
        c.payload_len = 0;
        assert!(c.validate().is_err());
        let mut c = base.clone();
        c.nak_slot = 0.0;
        assert!(c.validate().is_err());
        let mut c = base.clone();
        c.completion = CompletionPolicy::KnownReceivers(0);
        assert!(c.validate().is_err());
        let mut c = base;
        c.completion = CompletionPolicy::Quiescence(-1.0);
        assert!(c.validate().is_err());
    }

    #[test]
    fn n_accessor() {
        let c = NpConfig::small(CompletionPolicy::KnownReceivers(1));
        assert_eq!(c.n(), c.k + c.h);
    }
}
